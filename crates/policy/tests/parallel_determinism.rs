//! Parallel checking is an implementation detail: for any worker count
//! the checker must produce byte-identical reports and verdict
//! histories. A serial (threads = 1) and a parallel (threads = 4)
//! checker are driven in lockstep through random change batches and
//! compared after every step; a second test proves a panic on a pool
//! worker propagates out of the checking pass instead of deadlocking
//! or being swallowed.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rc_apkeep::{
    ApkModel, ElementKey, ModelRule, PortAction, RuleMatch, RuleUpdate, UpdateOrder,
};
use rc_netcfg::types::{IfaceId, NodeId, Port, Prefix};
use rc_policy::{PacketClass, Policy, PolicyChecker};

const NODES: u32 = 5;
const PREFIXES: [&str; 3] = ["10.0.0.0/24", "10.0.1.0/24", "10.0.0.0/23"];
/// Interpreted iface choices: forward along the chain, host-deliver,
/// or backwards (loop-prone).
const IFACES: [u32; 3] = [1, 9, 0];

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn port(node: u32, iface: u32) -> Port {
    Port { node: n(node), iface: IfaceId(iface) }
}

fn fwd(node: u32, prefix: &str, iface: u32) -> ModelRule {
    let p: Prefix = prefix.parse().unwrap();
    ModelRule {
        element: ElementKey::Forward(n(node)),
        priority: p.len() as u32,
        rule_match: RuleMatch::DstPrefix(p),
        action: PortAction::forward(vec![IfaceId(iface)]),
    }
}

/// One model + checker half of the lockstep pair, on a 5-node chain
/// (node i ↔ node i+1 via ifaces 1/0) with a standing policy mix.
struct Net {
    model: ApkModel,
    checker: PolicyChecker,
}

fn build(threads: Option<usize>) -> Net {
    let mut model = ApkModel::new();
    let mut checker = PolicyChecker::new();
    checker.set_threads(threads);
    checker.set_nodes((0..NODES).map(n));
    let mut links = Vec::new();
    for i in 0..NODES - 1 {
        links.push((port(i, 1), port(i + 1, 0), 1));
        links.push((port(i + 1, 0), port(i, 1), 1));
    }
    checker.apply_link_delta(&links);

    let class = |p: &str| PacketClass::DstPrefix(p.parse().unwrap());
    checker.add_policy(
        &mut model,
        Policy::Reachability { src: n(0), dst: n(NODES - 1), class: class(PREFIXES[0]) },
    );
    checker.add_policy(
        &mut model,
        Policy::Isolation { src: n(0), dst: n(NODES - 1), class: class(PREFIXES[1]) },
    );
    checker.add_policy(
        &mut model,
        Policy::Waypoint { src: n(0), dst: n(NODES - 1), via: n(2), class: class(PREFIXES[2]) },
    );
    checker.add_policy(&mut model, Policy::LoopFree { class: PacketClass::All });
    checker.add_policy(&mut model, Policy::BlackholeFree { src: n(0), class: class(PREFIXES[0]) });
    Net { model, checker }
}

/// One generated operation: a forwarding-rule toggle or a link toggle.
/// Interpretation (present-set tracking) happens in the test body so
/// both halves of the pair see the exact same update lists.
#[derive(Clone, Debug)]
enum Op {
    /// Toggle `fwd(node, PREFIXES[pidx], IFACES[iidx])`.
    Rule { node: u32, pidx: usize, iidx: usize },
    /// Toggle both directions of chain link `idx` ↔ `idx + 1`.
    Link { idx: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..NODES, 0..PREFIXES.len(), 0..IFACES.len())
            .prop_map(|(node, pidx, iidx)| Op::Rule { node, pidx, iidx }),
        1 => (0..NODES - 1).prop_map(|idx| Op::Link { idx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reports_are_identical_for_any_worker_count(
        steps in prop::collection::vec(prop::collection::vec(arb_op(), 1..4), 1..10),
    ) {
        let mut serial = build(Some(1));
        let mut par = build(Some(4));

        let full_s = serial.checker.check_full(&mut serial.model);
        let full_p = par.checker.check_full(&mut par.model);
        prop_assert_eq!(&full_s, &full_p, "initial full pass");

        let mut rules_up: BTreeSet<(u32, usize, usize)> = BTreeSet::new();
        let mut links_down: BTreeSet<u32> = BTreeSet::new();
        for (i, step) in steps.iter().enumerate() {
            let mut updates = Vec::new();
            let mut link_delta: Vec<(Port, Port, isize)> = Vec::new();
            for op in step {
                match *op {
                    Op::Rule { node, pidx, iidx } => {
                        let rule = fwd(node, PREFIXES[pidx], IFACES[iidx]);
                        if rules_up.insert((node, pidx, iidx)) {
                            updates.push(RuleUpdate::Insert(rule));
                        } else {
                            rules_up.remove(&(node, pidx, iidx));
                            updates.push(RuleUpdate::Remove(rule));
                        }
                    }
                    Op::Link { idx } => {
                        let dir = if links_down.insert(idx) { -1 } else { 1 };
                        if dir > 0 {
                            links_down.remove(&idx);
                        }
                        link_delta.push((port(idx, 1), port(idx + 1, 0), dir));
                        link_delta.push((port(idx + 1, 0), port(idx, 1), dir));
                    }
                }
            }

            let touched_s = serial.checker.apply_link_delta(&link_delta);
            let touched_p = par.checker.apply_link_delta(&link_delta);
            prop_assert_eq!(&touched_s, &touched_p, "step {}: touched ECs", i);

            let sum_s = serial.model.apply_batch(updates.clone(), UpdateOrder::InsertFirst);
            let sum_p = par.model.apply_batch(updates, UpdateOrder::InsertFirst);
            prop_assert_eq!(sum_s.affected.len(), sum_p.affected.len(), "step {}: model", i);

            let rep_s = serial.checker.check_incremental(&mut serial.model, &sum_s, touched_s);
            let rep_p = par.checker.check_incremental(&mut par.model, &sum_p, touched_p);
            prop_assert_eq!(&rep_s, &rep_p, "step {}: incremental report", i);
            prop_assert_eq!(
                serial.checker.verdicts(),
                par.checker.verdicts(),
                "step {}: verdict history", i
            );
        }

        // A final full pass over the accumulated state must agree too.
        let full_s = serial.checker.check_full(&mut serial.model);
        let full_p = par.checker.check_full(&mut par.model);
        prop_assert_eq!(&full_s, &full_p, "final full pass");
        prop_assert_eq!(serial.checker.verdicts(), par.checker.verdicts());
    }
}

/// A panic on whichever pool worker walks the armed EC must unwind out
/// of the checking pass (so the verifier's catch_unwind containment
/// sees it) — completing at all proves it did not deadlock the pool.
#[test]
fn worker_panic_propagates_to_the_caller() {
    // Silence the default hook for the expected injected panic only.
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX));
        if !injected {
            default(info);
        }
    }));

    let mut net = build(Some(4));
    // Populate several ECs so the walk phase actually fans out.
    let updates = (0..PREFIXES.len())
        .flat_map(|p| (0..NODES).map(move |node| RuleUpdate::Insert(fwd(node, PREFIXES[p], 1))))
        .collect();
    net.model.apply_batch(updates, UpdateOrder::InsertFirst);
    let target = net.model.ecs().map(|e| e.0).max().expect("model has ECs");

    rc_faults::arm_walk_panic(target);
    let Net { mut model, mut checker } = net;
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        checker.check_full(&mut model)
    }))
    .expect_err("armed walk must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.starts_with(rc_faults::INJECTED_PANIC_PREFIX), "got: {msg:?}");
    rc_faults::disarm_walk_panic();

    // The pool is scoped per call: the next pass runs clean.
    let report = checker.check_full(&mut model);
    assert!(report.affected_ecs > 0);
}
