//! Property tests: the SCC-condensation analysis must agree with a
//! naive per-source BFS on random forwarding graphs.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use rc_netcfg::types::NodeId;
use rc_policy::{analyze, EcGraph};

const N: u32 = 8;

#[derive(Clone, Debug)]
struct RandomGraph {
    edges: Vec<(u32, u32)>,
    delivers: Vec<u32>,
    drops: Vec<u32>,
    denies: Vec<u32>,
}

fn arb_graph() -> impl Strategy<Value = RandomGraph> {
    (
        prop::collection::vec((0..N, 0..N), 0..20),
        prop::collection::vec(0..N, 0..4),
        prop::collection::vec(0..N, 0..4),
        prop::collection::vec(0..N, 0..4),
    )
        .prop_map(|(edges, delivers, drops, denies)| RandomGraph {
            edges,
            delivers,
            drops,
            denies,
        })
}

fn to_ec_graph(g: &RandomGraph) -> EcGraph {
    let mut eg = EcGraph::default();
    for &(a, b) in &g.edges {
        eg.succ.entry(NodeId(a)).or_default().insert(NodeId(b));
    }
    eg.delivers.extend(g.delivers.iter().map(|&i| NodeId(i)));
    eg.drops.extend(g.drops.iter().map(|&i| NodeId(i)));
    eg.denies.extend(g.denies.iter().map(|&i| NodeId(i)));
    eg
}

/// Naive oracle: BFS reachability from each node over the successor
/// edges, then read terminal sets off the reachable region. A node
/// "can loop" iff it reaches a node that lies on a cycle (which in a
/// reachable-set formulation means: some reachable node can reach
/// itself through at least one edge).
fn naive(g: &RandomGraph, start: u32) -> (BTreeSet<u32>, BTreeSet<u32>, BTreeSet<u32>, bool) {
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(a, b) in &g.edges {
        adj.entry(a).or_default().push(b);
    }
    let mut reach = BTreeSet::new();
    let mut queue = vec![start];
    while let Some(v) = queue.pop() {
        if !reach.insert(v) {
            continue;
        }
        for &w in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            queue.push(w);
        }
    }
    let filter = |set: &[u32]| -> BTreeSet<u32> {
        set.iter().copied().filter(|v| reach.contains(v)).collect()
    };
    // Loop: some reachable node v reaches itself via ≥1 edge.
    let loops = reach.iter().any(|&v| {
        let mut seen = BTreeSet::new();
        let mut q: Vec<u32> =
            adj.get(&v).map(|s| s.to_vec()).unwrap_or_default();
        while let Some(w) = q.pop() {
            if w == v {
                return true;
            }
            if !seen.insert(w) {
                continue;
            }
            for &x in adj.get(&w).map(Vec::as_slice).unwrap_or(&[]) {
                q.push(x);
            }
        }
        false
    });
    (filter(&g.delivers), filter(&g.drops), filter(&g.denies), loops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn analysis_matches_naive_bfs(g in arb_graph(), start in 0..N) {
        let eg = to_ec_graph(&g);
        let a = analyze(&eg);
        let (delivered, dropped, denied, loops) = naive(&g, start);
        let s = NodeId(start);

        let got_del: BTreeSet<u32> =
            a.delivered.get(&s).map(|d| d.iter().map(|n| n.0).collect()).unwrap_or_default();
        let got_drop: BTreeSet<u32> =
            a.dropped.get(&s).map(|d| d.iter().map(|n| n.0).collect()).unwrap_or_default();
        let got_deny: BTreeSet<u32> =
            a.denied.get(&s).map(|d| d.iter().map(|n| n.0).collect()).unwrap_or_default();

        // The analysis only reports nodes that appear in the graph; a
        // start node with no edges and no terminal flags is absent from
        // its maps, which the naive side sees as "reaches only itself".
        let known = eg.succ.contains_key(&s)
            || eg.succ.values().any(|v| v.contains(&s))
            || eg.delivers.contains(&s)
            || eg.drops.contains(&s)
            || eg.denies.contains(&s);
        if known {
            prop_assert_eq!(&got_del, &delivered, "delivered from {}", start);
            prop_assert_eq!(&got_drop, &dropped, "dropped from {}", start);
            prop_assert_eq!(&got_deny, &denied, "denied from {}", start);
            prop_assert_eq!(a.looping.contains(&s), loops, "loops from {}", start);
        } else {
            prop_assert!(got_del.is_empty() && delivered.is_empty());
            prop_assert!(got_drop.is_empty() && dropped.is_empty());
            prop_assert!(!loops);
        }
    }
}
