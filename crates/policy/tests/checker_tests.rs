//! End-to-end tests of the incremental policy checker against a
//! hand-built data plane model.

use std::collections::BTreeSet;

use rc_apkeep::*;
use rc_netcfg::facts::Dir;
use rc_netcfg::types::{IfaceId, NodeId, Port, Prefix};
use rc_policy::{PacketClass, Policy, PolicyChecker};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn port(node: u32, iface: u32) -> Port {
    Port { node: n(node), iface: IfaceId(iface) }
}

fn fwd(node: u32, prefix: &str, iface: u32) -> ModelRule {
    let p: Prefix = prefix.parse().unwrap();
    ModelRule {
        element: ElementKey::Forward(n(node)),
        priority: p.len() as u32,
        rule_match: RuleMatch::DstPrefix(p),
        action: PortAction::forward(vec![IfaceId(iface)]),
    }
}

/// A 3-node chain 0 –(eth1/eth0)– 1 –(eth1/eth0)– 2, with node 2
/// owning 172.16.0.0/24 behind its host interface (iface 9).
struct Chain {
    model: ApkModel,
    checker: PolicyChecker,
}

const PFX: &str = "172.16.0.0/24";

fn chain() -> Chain {
    let mut model = ApkModel::new();
    model.apply_batch(
        vec![
            RuleUpdate::Insert(fwd(0, PFX, 1)),
            RuleUpdate::Insert(fwd(1, PFX, 1)),
            RuleUpdate::Insert(fwd(2, PFX, 9)), // host-facing: no link
        ],
        UpdateOrder::InsertFirst,
    );
    let mut checker = PolicyChecker::new();
    checker.set_nodes([n(0), n(1), n(2)]);
    checker.apply_link_delta(&[
        (port(0, 1), port(1, 0), 1),
        (port(1, 0), port(0, 1), 1),
        (port(1, 1), port(2, 0), 1),
        (port(2, 0), port(1, 1), 1),
    ]);
    Chain { model, checker }
}

#[test]
fn full_check_reachability() {
    let Chain { mut model, mut checker } = chain();
    let reach = checker.add_policy(
        &mut model,
        Policy::Reachability {
            src: n(0),
            dst: n(2),
            class: PacketClass::DstPrefix(PFX.parse().unwrap()),
        },
    );
    let report = checker.check_full(&mut model);
    assert!(checker.is_satisfied(reach));
    assert!(report.newly_violated.is_empty());
    // Pairs: every node delivers the prefix EC at node 2.
    assert!(checker.pair_ecs(n(0), n(2)).is_some());
    assert!(checker.pair_ecs(n(1), n(2)).is_some());
    assert_eq!(checker.num_pairs(), 3); // (0,2), (1,2), (2,2)
}

#[test]
fn rule_removal_breaks_reachability_incrementally() {
    let Chain { mut model, mut checker } = chain();
    let reach = checker.add_policy(
        &mut model,
        Policy::Reachability {
            src: n(0),
            dst: n(2),
            class: PacketClass::DstPrefix(PFX.parse().unwrap()),
        },
    );
    checker.check_full(&mut model);
    assert!(checker.is_satisfied(reach));

    // Remove node 1's route: the prefix EC now blackholes at 1.
    let summary =
        model.apply_batch(vec![RuleUpdate::Remove(fwd(1, PFX, 1))], UpdateOrder::InsertFirst);
    let report = checker.check_incremental(&mut model, &summary, BTreeSet::new());
    assert_eq!(report.newly_violated, vec![reach]);
    assert!(!checker.is_satisfied(reach));
    assert!(report.affected_ecs >= 1);
    assert!(report.affected_pairs >= 2, "(0,2) and (1,2) lost the EC");

    // Repair it: the checker reports the policy as newly satisfied.
    let summary =
        model.apply_batch(vec![RuleUpdate::Insert(fwd(1, PFX, 1))], UpdateOrder::InsertFirst);
    let report = checker.check_incremental(&mut model, &summary, BTreeSet::new());
    assert_eq!(report.newly_satisfied, vec![reach]);
    assert!(checker.is_satisfied(reach));
}

#[test]
fn unrelated_policies_are_not_rechecked() {
    let Chain { mut model, mut checker } = chain();
    // Install a second, disjoint prefix at node 0 only.
    model.apply_batch(
        vec![RuleUpdate::Insert(fwd(0, "192.168.0.0/24", 9))],
        UpdateOrder::InsertFirst,
    );
    let other = checker.add_policy(
        &mut model,
        Policy::Reachability {
            src: n(0),
            dst: n(0),
            class: PacketClass::DstPrefix("192.168.0.0/24".parse().unwrap()),
        },
    );
    let _ = other;
    checker.check_full(&mut model);

    // Change only the 172.16/24 forwarding.
    let summary =
        model.apply_batch(vec![RuleUpdate::Remove(fwd(1, PFX, 1))], UpdateOrder::InsertFirst);
    let report = checker.check_incremental(&mut model, &summary, BTreeSet::new());
    // Only the affected packet space's policies get re-evaluated: the
    // 192.168 policy must be skipped.
    assert_eq!(report.policies_checked, 0, "no policy registered on 172.16/24 here");
}

#[test]
fn isolation_policy() {
    let Chain { mut model, mut checker } = chain();
    let iso = checker.add_policy(
        &mut model,
        Policy::Isolation {
            src: n(0),
            dst: n(2),
            class: PacketClass::DstPrefix(PFX.parse().unwrap()),
        },
    );
    let report = checker.check_full(&mut model);
    assert_eq!(report.newly_violated, vec![iso], "traffic flows, isolation violated");

    // Deny the prefix at node 1's ingress: isolation becomes satisfied.
    let acl = ModelRule {
        element: ElementKey::Filter(n(1), IfaceId(0), Dir::In),
        priority: u32::MAX - 10,
        rule_match: RuleMatch::Acl {
            proto: None,
            src: Prefix::DEFAULT,
            dst: PFX.parse().unwrap(),
            dst_ports: None,
        },
        action: PortAction::Deny,
    };
    let summary = model.apply_batch(vec![RuleUpdate::Insert(acl)], UpdateOrder::InsertFirst);
    let report = checker.check_incremental(&mut model, &summary, BTreeSet::new());
    assert_eq!(report.newly_satisfied, vec![iso]);
}

#[test]
fn loop_detection() {
    let Chain { mut model, mut checker } = chain();
    let loopfree = checker.add_policy(&mut model, Policy::LoopFree { class: PacketClass::All });
    checker.check_full(&mut model);
    assert!(checker.is_satisfied(loopfree));

    // Point node 1's route back at node 0: 0 → 1 → 0 loop.
    let summary = model.apply_batch(
        vec![
            RuleUpdate::Remove(fwd(1, PFX, 1)),
            RuleUpdate::Insert(fwd(1, PFX, 0)),
        ],
        UpdateOrder::InsertFirst,
    );
    let report = checker.check_incremental(&mut model, &summary, BTreeSet::new());
    assert_eq!(report.newly_violated, vec![loopfree]);
}

#[test]
fn blackhole_detection() {
    let Chain { mut model, mut checker } = chain();
    let bh = checker.add_policy(
        &mut model,
        Policy::BlackholeFree {
            src: n(0),
            class: PacketClass::DstPrefix(PFX.parse().unwrap()),
        },
    );
    checker.check_full(&mut model);
    assert!(checker.is_satisfied(bh));

    let summary =
        model.apply_batch(vec![RuleUpdate::Remove(fwd(2, PFX, 9))], UpdateOrder::InsertFirst);
    let report = checker.check_incremental(&mut model, &summary, BTreeSet::new());
    assert_eq!(report.newly_violated, vec![bh], "packets now die at node 2");
}

#[test]
fn waypoint_policy() {
    // Diamond: 0 → {1, 2} → 3; waypoint via 1.
    let mut model = ApkModel::new();
    model.apply_batch(
        vec![
            RuleUpdate::Insert(ModelRule {
                element: ElementKey::Forward(n(0)),
                priority: 24,
                rule_match: RuleMatch::DstPrefix(PFX.parse().unwrap()),
                action: PortAction::forward(vec![IfaceId(1)]),
            }),
            RuleUpdate::Insert(fwd(1, PFX, 1)),
            RuleUpdate::Insert(fwd(2, PFX, 1)),
            RuleUpdate::Insert(fwd(3, PFX, 9)),
        ],
        UpdateOrder::InsertFirst,
    );
    let mut checker = PolicyChecker::new();
    checker.set_nodes([n(0), n(1), n(2), n(3)]);
    checker.apply_link_delta(&[
        (port(0, 1), port(1, 0), 1), // 0→1
        (port(0, 2), port(2, 0), 1), // 0→2 (unused until ECMP)
        (port(1, 1), port(3, 0), 1), // 1→3
        (port(2, 1), port(3, 1), 1), // 2→3
    ]);
    let wp = checker.add_policy(
        &mut model,
        Policy::Waypoint {
            src: n(0),
            dst: n(3),
            via: n(1),
            class: PacketClass::DstPrefix(PFX.parse().unwrap()),
        },
    );
    checker.check_full(&mut model);
    assert!(checker.is_satisfied(wp), "all traffic goes 0→1→3");

    // ECMP at node 0 over both branches: some packets dodge node 1.
    let summary = model.apply_batch(
        vec![
            RuleUpdate::Remove(ModelRule {
                element: ElementKey::Forward(n(0)),
                priority: 24,
                rule_match: RuleMatch::DstPrefix(PFX.parse().unwrap()),
                action: PortAction::forward(vec![IfaceId(1)]),
            }),
            RuleUpdate::Insert(ModelRule {
                element: ElementKey::Forward(n(0)),
                priority: 24,
                rule_match: RuleMatch::DstPrefix(PFX.parse().unwrap()),
                action: PortAction::forward(vec![IfaceId(1), IfaceId(2)]),
            }),
        ],
        UpdateOrder::InsertFirst,
    );
    let report = checker.check_incremental(&mut model, &summary, BTreeSet::new());
    assert_eq!(report.newly_violated, vec![wp]);
}

#[test]
fn link_failure_invalidates_ecs_without_rule_changes() {
    let Chain { mut model, mut checker } = chain();
    let reach = checker.add_policy(
        &mut model,
        Policy::Reachability {
            src: n(0),
            dst: n(2),
            class: PacketClass::DstPrefix(PFX.parse().unwrap()),
        },
    );
    checker.check_full(&mut model);

    // Take the 1–2 link down without touching any rule (e.g., a static
    // route keeps pointing at a dead interface).
    let touched = checker.apply_link_delta(&[
        (port(1, 1), port(2, 0), -1),
        (port(2, 0), port(1, 1), -1),
    ]);
    assert!(!touched.is_empty(), "the prefix EC used that link");
    let empty = BatchSummary::default();
    let report = checker.check_incremental(&mut model, &empty, touched);
    // Node 1 now forwards out a link-less interface: that counts as
    // delivery off-network at 1, so reachability to 2 is violated.
    assert_eq!(report.newly_violated, vec![reach]);
}

#[test]
fn split_children_inherit_state() {
    let Chain { mut model, mut checker } = chain();
    checker.check_full(&mut model);
    let pairs_before = checker.num_pairs();

    // An ACL on a sub-range splits the prefix EC; the non-denied half
    // keeps flowing, so (0,2) must still have a deliverable EC.
    let acl = ModelRule {
        element: ElementKey::Filter(n(1), IfaceId(0), Dir::In),
        priority: u32::MAX - 10,
        rule_match: RuleMatch::Acl {
            proto: Some(6),
            src: Prefix::DEFAULT,
            dst: "172.16.0.0/25".parse().unwrap(),
            dst_ports: Some((80, 80)),
        },
        action: PortAction::Deny,
    };
    let summary = model.apply_batch(vec![RuleUpdate::Insert(acl)], UpdateOrder::InsertFirst);
    assert_eq!(summary.ec_splits, 1);
    checker.check_incremental(&mut model, &summary, BTreeSet::new());
    assert!(checker.pair_ecs(n(0), n(2)).is_some(), "non-HTTP half still delivers");
    assert!(checker.num_pairs() >= pairs_before);
}

#[test]
fn fresh_full_check_takes_the_insert_only_fast_path() {
    let Chain { mut model, mut checker } = chain();
    let reach = checker.add_policy(
        &mut model,
        Policy::Reachability {
            src: n(0),
            dst: n(2),
            class: PacketClass::DstPrefix(PFX.parse().unwrap()),
        },
    );
    assert_eq!(checker.fresh_full_passes(), 0);

    // First full pass: nothing to diff against — the fast path fires,
    // and its insert-only merge produced the same state a diffing pass
    // would have.
    let first = checker.check_full(&mut model);
    assert_eq!(checker.fresh_full_passes(), 1);
    assert!(checker.is_satisfied(reach));
    assert_eq!(checker.num_pairs(), 3);

    // Second full pass over populated state must NOT take it (it has
    // real diffs to compute), and, diffing against identical state,
    // reports no pair changes.
    let second = checker.check_full(&mut model);
    assert_eq!(checker.fresh_full_passes(), 1, "fast path is fresh-only");
    assert_eq!(second.total_pairs, first.total_pairs);
    assert_eq!(second.changed_pairs, 0);
    assert!(second.newly_violated.is_empty() && second.newly_satisfied.is_empty());
}

#[test]
fn only_net_affected_drives_recheck() {
    // Split-vs-affected: `BatchSummary.affected` (the net set) is what
    // drives incremental policy work. A batch that splits an EC but
    // leaves every child on its pre-split action must re-check nothing
    // — splits only register the child ids, they trigger no policy
    // re-evaluation on their own.
    let Chain { mut model, mut checker } = chain();
    let reach = checker.add_policy(
        &mut model,
        Policy::Reachability {
            src: n(0),
            dst: n(2),
            class: PacketClass::DstPrefix(PFX.parse().unwrap()),
        },
    );
    checker.check_full(&mut model);
    assert!(checker.is_satisfied(reach));

    // Insert and remove the same ACL slice in one batch: churn (a
    // split, moves) with no net behaviour change.
    let acl = ModelRule {
        element: ElementKey::Filter(n(1), IfaceId(0), Dir::In),
        priority: u32::MAX - 10,
        rule_match: RuleMatch::Acl {
            proto: Some(6),
            src: Prefix::DEFAULT,
            dst: "172.16.0.0/25".parse().unwrap(),
            dst_ports: Some((80, 80)),
        },
        action: PortAction::Deny,
    };
    let summary = model.apply_batch(
        vec![RuleUpdate::Insert(acl.clone()), RuleUpdate::Remove(acl)],
        UpdateOrder::InsertFirst,
    );
    assert!(summary.ec_splits >= 1, "churn happened");
    assert!(summary.ec_moves >= 1);
    assert!(summary.affected.is_empty(), "but the net set is empty");

    let report = checker.check_incremental(&mut model, &summary, BTreeSet::new());
    assert_eq!(report.affected_ecs, 0, "no net change, no ECs re-analyzed");
    assert_eq!(report.policies_checked, 0, "no policy re-evaluated");
    assert_eq!(report.affected_pairs, 0);
    assert!(report.newly_violated.is_empty() && report.newly_satisfied.is_empty());
    assert!(checker.is_satisfied(reach));
}
