//! Incremental network policy checking over an equivalence-class data
//! plane model.
//!
//! This is the third stage of the RealConfig pipeline: it consumes the
//! affected-EC reports of the [`rc_apkeep`] model and re-validates only
//! the policies registered on the packets that actually changed
//! behaviour. Supported policies: reachability, isolation, waypoint,
//! loop freedom, and blackhole freedom.

pub mod checker;
pub mod walk;

pub use checker::{CheckReport, PacketClass, Policy, PolicyChecker, PolicyId};
pub use walk::{analyze, build_ec_graph, EcAnalysis, EcGraph};
