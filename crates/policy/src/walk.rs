//! Per-EC forwarding analysis.
//!
//! For one equivalence class, the network's forwarding behaviour is a
//! small graph over devices: each node either delivers (forwards out a
//! host-facing interface), drops (FIB drop or no route), is filtered
//! (an ACL denies the EC), or forwards to successor devices (several,
//! under ECMP). [`analyze`] condenses that graph (Tarjan SCC) and
//! propagates outcomes so that every device's fate — which delivery
//! points it can reach, where its packets can be dropped or denied,
//! whether they can loop — comes out of one linear-time pass, shared by
//! all sources.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rc_apkeep::{EcId, EcView, ElementKey, PortAction};
use rc_netcfg::facts::Dir;
use rc_netcfg::types::{NodeId, Port};

/// The forwarding graph of one EC.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EcGraph {
    pub succ: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Nodes that deliver the EC to an attached host network.
    pub delivers: BTreeSet<NodeId>,
    /// Nodes where the EC is dropped (FIB drop action or no route).
    pub drops: BTreeSet<NodeId>,
    /// Nodes at which an ACL denies the EC (egress ACL at the sending
    /// node, ingress ACL recorded at the filtering node).
    pub denies: BTreeSet<NodeId>,
    /// Link endpoints this EC's forwarding uses (for invalidation when
    /// links change).
    pub ports_used: BTreeSet<Port>,
    /// Out-ports each node sends this EC through (link-facing and
    /// host-facing alike) — the raw material for path signatures.
    pub node_ports: BTreeMap<NodeId, BTreeSet<Port>>,
    /// Edges removed by ACLs: `(sender, out port, filtering port,
    /// direction)` — `Out` blocked leaving the sender, `In` blocked
    /// entering the filtering port's device. Used by packet tracing to
    /// show *where* a packet was denied.
    pub blocked_edges: Vec<(NodeId, Port, Port, Dir)>,
}

/// Build the forwarding graph of `ec` over the given nodes and links
/// (`topo` maps each link's source port to its destination port).
/// `exclude` removes one node (used for waypoint checks).
///
/// Takes an [`EcView`] — the model's read-only EC→port snapshot — not
/// the model itself, so any number of per-EC walks can run concurrently
/// over one borrowed view (see the checker's parallel recheck).
pub fn build_ec_graph(
    model: &EcView<'_>,
    ec: EcId,
    nodes: &BTreeSet<NodeId>,
    topo: &BTreeMap<Port, Port>,
    exclude: Option<NodeId>,
) -> EcGraph {
    let mut g = EcGraph::default();
    for &n in nodes {
        if Some(n) == exclude {
            continue;
        }
        let action = model.action(ElementKey::Forward(n), ec);
        let ifaces = match action {
            None | Some(PortAction::Drop) => {
                g.drops.insert(n);
                continue;
            }
            Some(PortAction::Deliver(ifaces)) => {
                // Connected routes: the packet terminates here (subject
                // to the egress ACL of the delivering interface).
                for i in ifaces.clone() {
                    let port = Port { node: n, iface: i };
                    if model.action(ElementKey::Filter(n, i, Dir::Out), ec)
                        == Some(&PortAction::Deny)
                    {
                        g.denies.insert(n);
                        g.blocked_edges.push((n, port, port, Dir::Out));
                    } else {
                        g.delivers.insert(n);
                        g.node_ports.entry(n).or_default().insert(port);
                    }
                }
                continue;
            }
            Some(PortAction::Forward(ifaces)) => ifaces.clone(),
            Some(other) => unreachable!("filter action {other:?} on a forwarding element"),
        };
        for i in ifaces {
            let port = Port { node: n, iface: i };
            // Egress ACL at the sending interface.
            if model.action(ElementKey::Filter(n, i, Dir::Out), ec) == Some(&PortAction::Deny) {
                g.denies.insert(n);
                g.blocked_edges.push((n, port, port, Dir::Out));
                continue;
            }
            match topo.get(&port) {
                None => {
                    // Host-facing interface: the packet leaves the
                    // modeled network here.
                    g.delivers.insert(n);
                    g.node_ports.entry(n).or_default().insert(port);
                }
                Some(dst) => {
                    g.ports_used.insert(port);
                    g.ports_used.insert(*dst);
                    g.node_ports.entry(n).or_default().insert(port);
                    // Ingress ACL at the receiving interface.
                    if model.action(ElementKey::Filter(dst.node, dst.iface, Dir::In), ec)
                        == Some(&PortAction::Deny)
                    {
                        g.denies.insert(dst.node);
                        g.blocked_edges.push((n, port, *dst, Dir::In));
                    } else if Some(dst.node) != exclude {
                        g.succ.entry(n).or_default().insert(dst.node);
                    }
                }
            }
        }
    }
    g
}

/// Per-source outcome of one EC's forwarding graph. Because forwarding
/// is source-independent, a "source" is just a starting node, and the
/// answer for each start is the answer for its SCC.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EcAnalysis {
    /// start node → delivery nodes its packets can reach.
    pub delivered: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// start node → nodes where its packets can be dropped.
    pub dropped: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// start node → nodes where its packets can be ACL-denied.
    pub denied: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Start nodes whose packets can enter a forwarding loop.
    pub looping: BTreeSet<NodeId>,
    pub ports_used: BTreeSet<Port>,
    /// Per start node, a hash of the set of out-ports its packets can
    /// traverse — a cheap "which paths does this source use" signature.
    /// A changed signature means the source's paths were modified even
    /// if delivery outcomes did not change (the paper counts such pairs
    /// as affected).
    pub path_sig: BTreeMap<NodeId, u64>,
}

/// Condense the graph and propagate outcomes to every start node.
pub fn analyze(graph: &EcGraph) -> EcAnalysis {
    // Collect every node that appears anywhere.
    let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
    nodes.extend(graph.succ.keys().copied());
    nodes.extend(graph.succ.values().flatten().copied());
    nodes.extend(graph.delivers.iter().copied());
    nodes.extend(graph.drops.iter().copied());
    nodes.extend(graph.denies.iter().copied());
    nodes.extend(graph.node_ports.keys().copied());

    // Iterative Tarjan SCC.
    let index_of: BTreeMap<NodeId, usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let node_list: Vec<NodeId> = nodes.iter().copied().collect();
    let n = node_list.len();
    let succ_idx: Vec<Vec<usize>> = node_list
        .iter()
        .map(|u| {
            graph
                .succ
                .get(u)
                .map(|s| s.iter().map(|v| index_of[v]).collect())
                .unwrap_or_default()
        })
        .collect();

    let mut comp_of = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut disc = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_disc = 0usize;
    let mut num_comps = 0usize;

    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        child: usize,
    }
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: root, child: 0 }];
        disc[root] = next_disc;
        low[root] = next_disc;
        next_disc += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.child < succ_idx[v].len() {
                let w = succ_idx[v][frame.child];
                frame.child += 1;
                if disc[w] == usize::MAX {
                    disc[w] = next_disc;
                    low[w] = next_disc;
                    next_disc += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, child: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                if low[v] == disc[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp_of[w] = num_comps;
                        if w == v {
                            break;
                        }
                    }
                    num_comps += 1;
                }
                call.pop();
                if let Some(parent) = call.last() {
                    let pv = parent.v;
                    low[pv] = low[pv].min(low[v]);
                }
            }
        }
    }

    // Component data. Tarjan numbers components in reverse topological
    // order (a component is finished only after everything it reaches),
    // so iterating comp 0..num_comps processes successors first.
    let mut comp_nodes: Vec<Vec<usize>> = vec![Vec::new(); num_comps];
    for v in 0..n {
        comp_nodes[comp_of[v]].push(v);
    }
    #[derive(Clone, Default)]
    struct CompData {
        delivered: BTreeSet<NodeId>,
        dropped: BTreeSet<NodeId>,
        denied: BTreeSet<NodeId>,
        looping: bool,
        ports: BTreeSet<Port>,
    }
    let mut data: Vec<CompData> = vec![CompData::default(); num_comps];
    for c in 0..num_comps {
        let mut d = CompData::default();
        // Cyclic component: more than one node, or a self-loop.
        let cyclic = comp_nodes[c].len() > 1
            || comp_nodes[c].iter().any(|&v| succ_idx[v].contains(&v));
        d.looping = cyclic;
        for &v in &comp_nodes[c] {
            let node = node_list[v];
            if graph.delivers.contains(&node) {
                d.delivered.insert(node);
            }
            if graph.drops.contains(&node) {
                d.dropped.insert(node);
            }
            if graph.denies.contains(&node) {
                d.denied.insert(node);
            }
            if let Some(ports) = graph.node_ports.get(&node) {
                d.ports.extend(ports.iter().copied());
            }
            for &w in &succ_idx[v] {
                let cw = comp_of[w];
                if cw != c {
                    debug_assert!(cw < c, "condensation order violated");
                    d.delivered.extend(data[cw].delivered.iter().copied());
                    d.dropped.extend(data[cw].dropped.iter().copied());
                    d.denied.extend(data[cw].denied.iter().copied());
                    d.looping |= data[cw].looping;
                    let other = data[cw].ports.clone();
                    d.ports.extend(other);
                }
            }
        }
        data[c] = d;
    }

    let mut out = EcAnalysis { ports_used: graph.ports_used.clone(), ..Default::default() };
    for v in 0..n {
        let node = node_list[v];
        let d = &data[comp_of[v]];
        if !d.delivered.is_empty() {
            out.delivered.insert(node, d.delivered.clone());
        }
        if !d.dropped.is_empty() {
            out.dropped.insert(node, d.dropped.clone());
        }
        if !d.denied.is_empty() {
            out.denied.insert(node, d.denied.clone());
        }
        if d.looping {
            out.looping.insert(node);
        }
        if !d.ports.is_empty() {
            // FNV-1a over the sorted port set.
            let mut h: u64 = 0xcbf29ce484222325;
            for p in &d.ports {
                for word in [p.node.0 as u64, p.iface.0 as u64] {
                    h = (h ^ word).wrapping_mul(0x100000001b3);
                }
            }
            out.path_sig.insert(node, h);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn graph(edges: &[(u32, u32)], delivers: &[u32], drops: &[u32]) -> EcGraph {
        let mut g = EcGraph::default();
        for &(a, b) in edges {
            g.succ.entry(n(a)).or_default().insert(n(b));
        }
        g.delivers.extend(delivers.iter().map(|&i| n(i)));
        g.drops.extend(drops.iter().map(|&i| n(i)));
        g
    }

    #[test]
    fn chain_delivers() {
        let g = graph(&[(0, 1), (1, 2)], &[2], &[]);
        let a = analyze(&g);
        assert_eq!(a.delivered[&n(0)], BTreeSet::from([n(2)]));
        assert_eq!(a.delivered[&n(1)], BTreeSet::from([n(2)]));
        assert!(a.looping.is_empty());
        assert!(a.dropped.is_empty());
    }

    #[test]
    fn ecmp_reaches_both_outcomes() {
        // 0 → {1, 2}; 1 delivers, 2 drops.
        let g = graph(&[(0, 1), (0, 2)], &[1], &[2]);
        let a = analyze(&g);
        assert_eq!(a.delivered[&n(0)], BTreeSet::from([n(1)]));
        assert_eq!(a.dropped[&n(0)], BTreeSet::from([n(2)]));
    }

    #[test]
    fn cycle_is_detected() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)], &[], &[]);
        let a = analyze(&g);
        assert_eq!(a.looping, BTreeSet::from([n(0), n(1), n(2)]));
        // A node feeding the cycle also loops.
        let g = graph(&[(9, 0), (0, 1), (1, 0)], &[], &[]);
        let a = analyze(&g);
        assert!(a.looping.contains(&n(9)));
    }

    #[test]
    fn self_loop_is_a_loop() {
        let g = graph(&[(0, 0)], &[], &[]);
        let a = analyze(&g);
        assert_eq!(a.looping, BTreeSet::from([n(0)]));
    }

    #[test]
    fn cycle_with_exit_both_loops_and_delivers() {
        // 0 ↔ 1, and 1 → 2 which delivers: packets may loop or exit.
        let g = graph(&[(0, 1), (1, 0), (1, 2)], &[2], &[]);
        let a = analyze(&g);
        assert!(a.looping.contains(&n(0)));
        assert_eq!(a.delivered[&n(0)], BTreeSet::from([n(2)]));
    }

    #[test]
    fn diamond_no_false_loop() {
        let g = graph(&[(0, 1), (0, 2), (1, 3), (2, 3)], &[3], &[]);
        let a = analyze(&g);
        assert!(a.looping.is_empty(), "a diamond is not a loop");
        assert_eq!(a.delivered[&n(0)], BTreeSet::from([n(3)]));
    }

    #[test]
    fn denies_propagate() {
        let mut g = graph(&[(0, 1)], &[], &[]);
        g.denies.insert(n(1));
        let a = analyze(&g);
        assert_eq!(a.denied[&n(0)], BTreeSet::from([n(1)]));
    }
}
