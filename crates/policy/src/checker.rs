//! The incremental network policy checker (paper §4.2, third stage).
//!
//! The checker keeps, per EC, the analysis of its forwarding graph, and
//! the two maps the paper describes: EC → forwarding state (our
//! [`EcAnalysis`] generalizes "set of paths") and (src, dst) pair → the
//! ECs deliverable between them. After a batch of data plane model
//! changes it re-analyzes **only the affected ECs**, updates the pair
//! map for the pairs those ECs touch, and re-evaluates **only the
//! policies registered on affected packets** — reporting both newly
//! violated and newly satisfied policies (the latter lets an operator
//! confirm a repair worked).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use rc_apkeep::{ApkModel, BatchSummary, EcId};
use rc_bdd::{Predicate, Ref};
use rc_netcfg::types::{NodeId, Port, Prefix};

use crate::walk::{analyze, build_ec_graph, EcAnalysis};

/// Identifier of a registered policy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PolicyId(pub u32);

/// The packets a policy speaks about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketClass {
    /// All packets.
    All,
    /// Packets destined to a prefix.
    DstPrefix(Prefix),
    /// A flow: optional protocol / destination prefix / destination
    /// port constraints, conjoined.
    Flow { proto: Option<u8>, dst_prefix: Option<Prefix>, dst_port: Option<u16> },
}

/// A forwarding policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Every packet of `class` injected at `src` must be able to reach
    /// a delivery at `dst`.
    Reachability { src: NodeId, dst: NodeId, class: PacketClass },
    /// No packet of `class` injected at `src` may reach `dst`.
    Isolation { src: NodeId, dst: NodeId, class: PacketClass },
    /// Packets of `class` delivered from `src` to `dst` must always
    /// traverse `via`.
    Waypoint { src: NodeId, dst: NodeId, via: NodeId, class: PacketClass },
    /// No packet of `class` may enter a forwarding loop, from any
    /// source.
    LoopFree { class: PacketClass },
    /// No packet of `class` injected at `src` may be dropped in the
    /// network (ACL denies are intentional and do not count).
    BlackholeFree { src: NodeId, class: PacketClass },
}

struct Registered {
    policy: Policy,
    pred: Ref,
    satisfied: bool,
}

/// Report of one (full or incremental) checking pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// ECs re-analyzed in this pass.
    pub affected_ecs: usize,
    /// (src, dst) pairs whose paths were modified (rerouted or
    /// gained/lost delivery) — the paper's "#Pairs affected", i.e. the
    /// pairs the incremental checker had to revisit.
    pub affected_pairs: usize,
    /// (src, dst) pairs whose deliverable-EC set actually changed
    /// (a subset of `affected_pairs`).
    pub changed_pairs: usize,
    /// Total pairs currently in the reachability map.
    pub total_pairs: usize,
    /// Policies re-evaluated.
    pub policies_checked: usize,
    /// Policies that switched satisfied → violated.
    pub newly_violated: Vec<PolicyId>,
    /// Policies that switched violated → satisfied.
    pub newly_satisfied: Vec<PolicyId>,
}

/// Minimum affected-EC count before the walk phase is dispatched to
/// the pool; smaller passes run inline on the caller's thread (counted
/// by `par.small_tasks_inlined`).
const WALK_INLINE_MIN: usize = 8;

/// The incremental policy checker. Holds EC-keyed state; must be used
/// with the *same* [`ApkModel`] across its lifetime (its predicates
/// live in that model's BDD manager).
pub struct PolicyChecker {
    nodes: BTreeSet<NodeId>,
    topo: BTreeMap<Port, Port>,
    ec_state: HashMap<EcId, EcAnalysis>,
    pair_ecs: BTreeMap<(NodeId, NodeId), BTreeSet<EcId>>,
    /// Reverse index: which ECs' forwarding uses a port.
    port_users: HashMap<Port, BTreeSet<EcId>>,
    policies: Vec<Registered>,
    /// Per-checker worker-count override for the parallel walk phase
    /// (`None`: the process-global [`rc_par::threads`] knob).
    threads: Option<usize>,
    /// Full passes that took the fresh fast path (no prior EC state to
    /// diff against) — pinned by tests to prove a fresh `check_full`
    /// does no redundant clearing work.
    fresh_full_passes: u64,
    telemetry: Option<CheckerTelemetry>,
}

/// Cached metric handles (name lookups happen once, at attach time).
/// The pool metrics register lazily, on the first pass that actually
/// ran multi-worker, so serial runs' snapshots carry no `pool.*` keys.
struct CheckerTelemetry {
    registry: rc_telemetry::Telemetry,
    affected_ecs: rc_telemetry::Counter,
    policies_checked: rc_telemetry::Counter,
    policies_registered: rc_telemetry::Gauge,
    pairs: rc_telemetry::Gauge,
    check_incremental_us: rc_telemetry::Histogram,
    check_full_us: rc_telemetry::Histogram,
    pool_workers: Option<rc_telemetry::Gauge>,
    pool_tasks: Option<rc_telemetry::Counter>,
    pool_steals: Option<rc_telemetry::Counter>,
    pool_busy_us: Option<rc_telemetry::Histogram>,
    small_tasks_inlined: Option<rc_telemetry::Counter>,
}

impl CheckerTelemetry {
    fn new(registry: &rc_telemetry::Telemetry) -> Self {
        CheckerTelemetry {
            registry: registry.clone(),
            affected_ecs: registry.counter("policy.affected_ecs"),
            policies_checked: registry.counter("policy.policies_checked"),
            policies_registered: registry.gauge("policy.policies_registered"),
            pairs: registry.gauge("policy.pairs"),
            check_incremental_us: registry.histogram("policy.check_incremental_us"),
            check_full_us: registry.histogram("policy.check_full_us"),
            pool_workers: None,
            pool_tasks: None,
            pool_steals: None,
            pool_busy_us: None,
            small_tasks_inlined: None,
        }
    }

    /// Count one walk phase that was inlined on the caller's thread
    /// because it was too small to be worth pool dispatch. Lazily
    /// registered so serial runs' snapshots carry no `par.*` keys.
    fn record_inlined(&mut self) {
        let reg = &self.registry;
        self.small_tasks_inlined
            .get_or_insert_with(|| reg.counter("par.small_tasks_inlined"))
            .add(1);
    }

    /// Record one parallel walk phase's pool statistics. Serial passes
    /// (one worker) record nothing, keeping their snapshots unchanged.
    fn record_pool(&mut self, stats: &rc_par::PoolStats) {
        if stats.workers <= 1 {
            return;
        }
        let reg = &self.registry;
        self.pool_workers
            .get_or_insert_with(|| reg.gauge("pool.workers"))
            .set(stats.workers as i64);
        self.pool_tasks.get_or_insert_with(|| reg.counter("pool.tasks")).add(stats.tasks);
        self.pool_steals.get_or_insert_with(|| reg.counter("pool.steals")).add(stats.steals);
        let busy = self.pool_busy_us.get_or_insert_with(|| reg.histogram("pool.busy_us"));
        for &us in &stats.busy_us {
            busy.record(us);
        }
    }
}

impl Default for PolicyChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyChecker {
    pub fn new() -> Self {
        PolicyChecker {
            nodes: BTreeSet::new(),
            topo: BTreeMap::new(),
            ec_state: HashMap::new(),
            pair_ecs: BTreeMap::new(),
            port_users: HashMap::new(),
            policies: Vec::new(),
            threads: None,
            fresh_full_passes: 0,
            telemetry: None,
        }
    }

    /// Override the worker count for this checker's parallel walk
    /// phase. `None` falls back to the process-global knob
    /// ([`rc_par::threads`]: `set_threads` / `RC_THREADS` / available
    /// parallelism); `Some(1)` forces the exact serial path.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// The per-checker worker-count override, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// How many full passes took the fresh fast path (no prior EC state
    /// to diff against).
    pub fn fresh_full_passes(&self) -> u64 {
        self.fresh_full_passes
    }

    /// Attach a telemetry registry. Every checking pass records the ECs
    /// re-analyzed (`policy.affected_ecs`), policies re-evaluated vs
    /// registered (`policy.policies_checked` vs the
    /// `policy.policies_registered` gauge), and its latency — full and
    /// incremental passes into separate histograms.
    pub fn set_telemetry(&mut self, registry: &rc_telemetry::Telemetry) {
        self.telemetry = Some(CheckerTelemetry::new(registry));
    }

    /// Add or remove devices.
    pub fn set_nodes(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.nodes = nodes.into_iter().collect();
    }

    /// Apply directed link changes (`+1` up, `-1` down). Returns the ECs
    /// whose forwarding used an affected port (they must be re-checked
    /// even if no FIB rule changed).
    pub fn apply_link_delta(&mut self, delta: &[(Port, Port, isize)]) -> BTreeSet<EcId> {
        let mut touched = BTreeSet::new();
        for &(src, dst, diff) in delta {
            if diff > 0 {
                self.topo.insert(src, dst);
            } else {
                self.topo.remove(&src);
            }
            for port in [src, dst] {
                if let Some(users) = self.port_users.get(&port) {
                    touched.extend(users.iter().copied());
                }
            }
        }
        touched
    }

    /// Register a policy. Its packet-class predicate is compiled into
    /// the model's BDD manager. The policy starts "satisfied" and gets
    /// its real status on the next check.
    pub fn add_policy(&mut self, model: &mut ApkModel, policy: Policy) -> PolicyId {
        let class = match &policy {
            Policy::Reachability { class, .. }
            | Policy::Isolation { class, .. }
            | Policy::Waypoint { class, .. }
            | Policy::LoopFree { class }
            | Policy::BlackholeFree { class, .. } => *class,
        };
        let pred = match class {
            PacketClass::All => Ref::TRUE,
            PacketClass::DstPrefix(p) => {
                model.preds().pkt_prefix(rc_bdd::pkt::Field::DstIp, p.addr().0, p.len() as u32)
            }
            PacketClass::Flow { proto, dst_prefix, dst_port } => {
                use rc_bdd::pkt::Field;
                let preds = model.preds();
                let mut acc = Ref::TRUE;
                if let Some(pr) = proto {
                    let p = preds.pkt_value(Field::Proto, pr as u32);
                    acc = preds.and(acc, p);
                }
                if let Some(p) = dst_prefix {
                    let d = preds.pkt_prefix(Field::DstIp, p.addr().0, p.len() as u32);
                    acc = preds.and(acc, d);
                }
                if let Some(pt) = dst_port {
                    let d = preds.pkt_value(Field::DstPort, pt as u32);
                    acc = preds.and(acc, d);
                }
                acc
            }
        };
        let id = PolicyId(self.policies.len() as u32);
        self.policies.push(Registered { policy, pred, satisfied: true });
        id
    }

    /// Current status of a policy.
    pub fn is_satisfied(&self, id: PolicyId) -> bool {
        self.policies[id.0 as usize].satisfied
    }

    /// The registered policies with their current verdicts, in
    /// registration order (index = [`PolicyId`]). Rebuild support: a
    /// fresh checker fed these through [`PolicyChecker::add_policy`] +
    /// [`PolicyChecker::restore_verdict`] preserves both the policy ids
    /// and the satisfaction history, so newly-violated/newly-satisfied
    /// deltas stay correct across a full rebuild.
    pub fn policy_specs(&self) -> Vec<(Policy, bool)> {
        self.policies.iter().map(|r| (r.policy.clone(), r.satisfied)).collect()
    }

    /// Current verdict vector (index = [`PolicyId`]).
    pub fn verdicts(&self) -> Vec<bool> {
        self.policies.iter().map(|r| r.satisfied).collect()
    }

    /// Overwrite one stored verdict without re-evaluating (rebuild and
    /// rollback support).
    pub fn restore_verdict(&mut self, id: PolicyId, satisfied: bool) {
        if let Some(r) = self.policies.get_mut(id.0 as usize) {
            r.satisfied = satisfied;
        }
    }

    /// Overwrite the stored verdicts from a snapshot taken with
    /// [`PolicyChecker::verdicts`] (transaction rollback: a failed
    /// checking pass may have flipped some flags before dying).
    pub fn restore_verdicts(&mut self, snapshot: &[bool]) {
        for (r, &s) in self.policies.iter_mut().zip(snapshot) {
            r.satisfied = s;
        }
    }

    /// The ECs currently deliverable from `src` to `dst`.
    pub fn pair_ecs(&self, src: NodeId, dst: NodeId) -> Option<&BTreeSet<EcId>> {
        self.pair_ecs.get(&(src, dst))
    }

    /// Number of (src, dst) pairs with at least one deliverable EC.
    pub fn num_pairs(&self) -> usize {
        self.pair_ecs.len()
    }

    /// Build the forwarding graph of one EC over the checker's current
    /// topology (for tracing and ad-hoc queries).
    pub fn ec_graph(&self, model: &ApkModel, ec: EcId) -> crate::walk::EcGraph {
        crate::walk::build_ec_graph(&model.ec_view(), ec, &self.nodes, &self.topo, None)
    }

    /// Check everything from scratch (initial verification).
    pub fn check_full(&mut self, model: &mut ApkModel) -> CheckReport {
        let all: BTreeSet<EcId> = model.ecs().collect();
        self.recheck(model, all, true)
    }

    /// Incremental check after a data plane model batch: re-analyze the
    /// affected ECs (plus any invalidated by `extra`, e.g. link
    /// changes) and re-evaluate only policies registered on them.
    pub fn check_incremental(
        &mut self,
        model: &mut ApkModel,
        summary: &BatchSummary,
        extra: BTreeSet<EcId>,
    ) -> CheckReport {
        // Fault injection: no error channel here either — error-mode
        // faults escalate to a panic for the verifier's containment.
        if rc_faults::fire(rc_faults::FaultPoint::PolicyCheck) {
            panic!(
                "{} error at policy check escalated to panic (no error channel)",
                rc_faults::INJECTED_PANIC_PREFIX
            );
        }
        // Splits first: the child EC behaves exactly like its pre-split
        // parent until a move says otherwise.
        for &(parent, child) in &summary.splits {
            if let Some(state) = self.ec_state.get(&parent).cloned() {
                for port in &state.ports_used {
                    self.port_users.entry(*port).or_default().insert(child);
                }
                for ecs in self.pair_ecs.values_mut() {
                    if ecs.contains(&parent) {
                        ecs.insert(child);
                    }
                }
                self.ec_state.insert(child, state);
            }
        }
        let mut affected: BTreeSet<EcId> = extra;
        affected.extend(summary.affected.iter().map(|a| a.ec));
        // A split refines the parent's predicate: both halves need
        // re-analysis only if a move happened, which `affected` already
        // captures; but the *parent* keeps state computed for the wider
        // predicate — its graph is unchanged (forwarding state was
        // uniform), so nothing to redo.
        self.recheck(model, affected, false)
    }

    fn recheck(&mut self, model: &mut ApkModel, affected: BTreeSet<EcId>, full: bool) -> CheckReport {
        let start = std::time::Instant::now();
        let mut report = CheckReport { affected_ecs: affected.len(), ..Default::default() };
        let mut changed_pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut touched_pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();

        // A fresh full pass has no prior state: every `old` below would
        // be `Default`, the removal diffs are no-ops, and the path-sig
        // touched pairs are a subset of the changed pairs — so the
        // insert-only merge underneath is byte-identical and cheaper.
        let fresh = full
            && self.ec_state.is_empty()
            && self.pair_ecs.is_empty()
            && self.port_users.is_empty();
        if fresh {
            self.fresh_full_passes += 1;
        }

        // Phase 1: walk the affected ECs' forwarding graphs. The walks
        // only read the model — through an immutable `EcView` snapshot —
        // and the checker's node/topology sets, so they fan out across
        // the worker pool. Results come back in input (ascending-EC)
        // order, so the serial merge in phase 2, and with it the report
        // and the verdict history, is identical for any worker count.
        let affected_list: Vec<EcId> = affected.iter().copied().collect();
        let mut nthreads = self.threads.unwrap_or_else(rc_par::threads);
        // Adaptive fallback: a handful of walks is cheaper on the
        // caller's thread than the scoped-pool spawn it would trigger.
        // Walks are order-independent, so inlining changes nothing but
        // latency.
        let inlined = nthreads > 1 && affected_list.len() < WALK_INLINE_MIN;
        if inlined {
            nthreads = 1;
        }
        let (analyses, pool_stats) = {
            let view = model.ec_view();
            let nodes = &self.nodes;
            let topo = &self.topo;
            rc_par::par_map_indexed_in(nthreads, &affected_list, |_, &ec| {
                rc_faults::fire_walk(ec.0);
                analyze(&build_ec_graph(&view, ec, nodes, topo, None))
            })
        };
        if let Some(tel) = &mut self.telemetry {
            tel.record_pool(&pool_stats);
            if inlined {
                tel.record_inlined();
            }
        }

        // Phase 2: merge per-EC analyses into the checker's state,
        // strictly in ascending EC order.
        for (&ec, new) in affected_list.iter().zip(analyses) {
            if fresh {
                for port in &new.ports_used {
                    self.port_users.entry(*port).or_default().insert(ec);
                }
                for (src, dsts) in &new.delivered {
                    for d in dsts {
                        changed_pairs.insert((*src, *d));
                        self.pair_ecs.entry((*src, *d)).or_default().insert(ec);
                    }
                }
                self.ec_state.insert(ec, new);
                continue;
            }
            let old = self.ec_state.remove(&ec).unwrap_or_default();

            // Update the port reverse index.
            for port in old.ports_used.difference(&new.ports_used) {
                if let Some(users) = self.port_users.get_mut(port) {
                    users.remove(&ec);
                }
            }
            for port in new.ports_used.difference(&old.ports_used) {
                self.port_users.entry(*port).or_default().insert(ec);
            }

            // Update the pair map: the pairs (s, d) with d in
            // delivered(s) changed where old and new disagree.
            for (src, dsts) in &old.delivered {
                for d in dsts {
                    if !new.delivered.get(src).is_some_and(|nd| nd.contains(d)) {
                        changed_pairs.insert((*src, *d));
                        if let Some(set) = self.pair_ecs.get_mut(&(*src, *d)) {
                            set.remove(&ec);
                            if set.is_empty() {
                                self.pair_ecs.remove(&(*src, *d));
                            }
                        }
                    }
                }
            }
            for (src, dsts) in &new.delivered {
                for d in dsts {
                    if !old.delivered.get(src).is_some_and(|od| od.contains(d)) {
                        changed_pairs.insert((*src, *d));
                        self.pair_ecs.entry((*src, *d)).or_default().insert(ec);
                    }
                }
            }
            // Pairs whose paths were modified: sources whose path
            // signature changed, paired with every delivery endpoint
            // they had before or have now.
            let mut srcs: BTreeSet<NodeId> = BTreeSet::new();
            srcs.extend(old.path_sig.keys().copied());
            srcs.extend(new.path_sig.keys().copied());
            for s in srcs {
                if old.path_sig.get(&s) == new.path_sig.get(&s) {
                    continue;
                }
                for dsts in [old.delivered.get(&s), new.delivered.get(&s)].into_iter().flatten() {
                    for d in dsts {
                        touched_pairs.insert((s, *d));
                    }
                }
            }
            self.ec_state.insert(ec, new);
        }

        touched_pairs.extend(changed_pairs.iter().copied());
        report.affected_pairs = touched_pairs.len();
        report.changed_pairs = changed_pairs.len();
        report.total_pairs = self.pair_ecs.len();

        // Re-evaluate policies registered on affected packets.
        let affected_pred = if full {
            Ref::TRUE
        } else {
            let ec_preds: Vec<Ref> = affected.iter().map(|&e| model.ec_pred(e)).collect();
            model.preds().or_all(ec_preds)
        };
        for idx in 0..self.policies.len() {
            let relevant = full || {
                let pred = self.policies[idx].pred;
                // Read-only satisfiability probe: no node interning, no
                // apply-cache traffic (see `Bdd::intersects`).
                model.preds().intersects(pred, affected_pred)
            };
            if !relevant {
                continue;
            }
            report.policies_checked += 1;
            let now = self.evaluate(model, idx);
            let was = self.policies[idx].satisfied;
            self.policies[idx].satisfied = now;
            match (was, now) {
                (true, false) => report.newly_violated.push(PolicyId(idx as u32)),
                (false, true) => report.newly_satisfied.push(PolicyId(idx as u32)),
                _ => {}
            }
        }
        if let Some(tel) = &self.telemetry {
            tel.affected_ecs.add(report.affected_ecs as u64);
            tel.policies_checked.add(report.policies_checked as u64);
            tel.policies_registered.set(self.policies.len() as i64);
            tel.pairs.set(self.pair_ecs.len() as i64);
            let us = start.elapsed().as_micros() as u64;
            if full {
                tel.check_full_us.record(us);
            } else {
                tel.check_incremental_us.record(us);
            }
        }
        // Attribute the BDD op-cache traffic of the policy-evaluation
        // predicates above to the model's telemetry (if attached).
        model.sync_bdd_telemetry();
        report
    }

    fn evaluate(&mut self, model: &mut ApkModel, idx: usize) -> bool {
        let pred = self.policies[idx].pred;
        let policy = self.policies[idx].policy.clone();
        let ecs = model.ecs_intersecting(pred);
        match policy {
            Policy::Reachability { src, dst, .. } => {
                // Every packet of the class must have a delivering EC.
                let mut uncovered = pred;
                for &ec in &ecs {
                    if self.delivers(ec, src, dst) {
                        let ep = model.ec_pred(ec);
                        uncovered = model.preds().diff(uncovered, ep);
                        if uncovered.is_false() {
                            break;
                        }
                    }
                }
                uncovered.is_false()
            }
            Policy::Isolation { src, dst, .. } => {
                ecs.iter().all(|&ec| !self.delivers(ec, src, dst))
            }
            Policy::Waypoint { src, dst, via, .. } => ecs.iter().all(|&ec| {
                if !self.delivers(ec, src, dst) {
                    return true; // vacuous: nothing delivered
                }
                // Deliverable while avoiding the waypoint ⇒ violated.
                let g = build_ec_graph(&model.ec_view(), ec, &self.nodes, &self.topo, Some(via));
                let a = analyze(&g);
                !a.delivered.get(&src).is_some_and(|d| d.contains(&dst))
            }),
            Policy::LoopFree { .. } => ecs.iter().all(|&ec| {
                self.ec_state.get(&ec).is_none_or(|s| s.looping.is_empty())
            }),
            Policy::BlackholeFree { src, .. } => ecs.iter().all(|&ec| {
                self.ec_state
                    .get(&ec)
                    .is_none_or(|s| !s.dropped.contains_key(&src))
            }),
        }
    }

    fn delivers(&self, ec: EcId, src: NodeId, dst: NodeId) -> bool {
        self.ec_state
            .get(&ec)
            .and_then(|s| s.delivered.get(&src))
            .is_some_and(|d| d.contains(&dst))
    }
}

// ---------------------------------------------------------------------
// Durable-state serialization.
//
// The checker's state is EC-keyed analysis plus registered policies;
// its predicate handles point into the model's predicate store, which
// the snapshot carries wholesale with arena indices preserved — so
// handles serialize as raw indices and stay valid after restore.

fn wire_err<T>(msg: impl Into<String>) -> Result<T, rc_store::WireError> {
    Err(rc_store::WireError(msg.into()))
}

fn encode_node(w: &mut rc_store::Writer, n: NodeId) {
    w.u32(n.0);
}

fn decode_node(r: &mut rc_store::Reader<'_>) -> Result<NodeId, rc_store::WireError> {
    Ok(NodeId(r.u32()?))
}

fn encode_port(w: &mut rc_store::Writer, p: Port) {
    w.u32(p.node.0);
    w.u32(p.iface.0);
}

fn decode_port(r: &mut rc_store::Reader<'_>) -> Result<Port, rc_store::WireError> {
    let node = NodeId(r.u32()?);
    let iface = rc_netcfg::types::IfaceId(r.u32()?);
    Ok(Port { node, iface })
}

fn encode_node_set(w: &mut rc_store::Writer, s: &BTreeSet<NodeId>) {
    w.len_prefix(s.len());
    for &n in s {
        encode_node(w, n);
    }
}

fn decode_node_set(
    r: &mut rc_store::Reader<'_>,
) -> Result<BTreeSet<NodeId>, rc_store::WireError> {
    let n = r.len_prefix()?;
    let mut out = BTreeSet::new();
    for _ in 0..n {
        out.insert(decode_node(r)?);
    }
    Ok(out)
}

fn encode_node_set_map(w: &mut rc_store::Writer, m: &BTreeMap<NodeId, BTreeSet<NodeId>>) {
    w.len_prefix(m.len());
    for (&k, v) in m {
        encode_node(w, k);
        encode_node_set(w, v);
    }
}

fn decode_node_set_map(
    r: &mut rc_store::Reader<'_>,
) -> Result<BTreeMap<NodeId, BTreeSet<NodeId>>, rc_store::WireError> {
    let n = r.len_prefix()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let k = decode_node(r)?;
        out.insert(k, decode_node_set(r)?);
    }
    Ok(out)
}

fn encode_prefix(w: &mut rc_store::Writer, p: Prefix) {
    w.u32(p.addr().0);
    w.u8(p.len());
}

fn decode_prefix(r: &mut rc_store::Reader<'_>) -> Result<Prefix, rc_store::WireError> {
    let addr = r.u32()?;
    let len = r.u8()?;
    if len > 32 {
        return wire_err(format!("prefix length {len} > 32"));
    }
    Ok(Prefix::new(rc_netcfg::types::Ip(addr), len))
}

fn encode_class(w: &mut rc_store::Writer, c: &PacketClass) {
    match c {
        PacketClass::All => w.u8(0),
        PacketClass::DstPrefix(p) => {
            w.u8(1);
            encode_prefix(w, *p);
        }
        PacketClass::Flow { proto, dst_prefix, dst_port } => {
            w.u8(2);
            match proto {
                Some(p) => {
                    w.u8(1);
                    w.u8(*p);
                }
                None => w.u8(0),
            }
            match dst_prefix {
                Some(p) => {
                    w.u8(1);
                    encode_prefix(w, *p);
                }
                None => w.u8(0),
            }
            match dst_port {
                Some(p) => {
                    w.u8(1);
                    w.u16(*p);
                }
                None => w.u8(0),
            }
        }
    }
}

fn decode_class(r: &mut rc_store::Reader<'_>) -> Result<PacketClass, rc_store::WireError> {
    match r.u8()? {
        0 => Ok(PacketClass::All),
        1 => Ok(PacketClass::DstPrefix(decode_prefix(r)?)),
        2 => {
            let proto = match r.u8()? {
                0 => None,
                1 => Some(r.u8()?),
                t => return wire_err(format!("bad proto option tag {t}")),
            };
            let dst_prefix = match r.u8()? {
                0 => None,
                1 => Some(decode_prefix(r)?),
                t => return wire_err(format!("bad dst_prefix option tag {t}")),
            };
            let dst_port = match r.u8()? {
                0 => None,
                1 => Some(r.u16()?),
                t => return wire_err(format!("bad dst_port option tag {t}")),
            };
            Ok(PacketClass::Flow { proto, dst_prefix, dst_port })
        }
        t => wire_err(format!("unknown packet class tag {t}")),
    }
}

fn encode_policy(w: &mut rc_store::Writer, p: &Policy) {
    match p {
        Policy::Reachability { src, dst, class } => {
            w.u8(0);
            encode_node(w, *src);
            encode_node(w, *dst);
            encode_class(w, class);
        }
        Policy::Isolation { src, dst, class } => {
            w.u8(1);
            encode_node(w, *src);
            encode_node(w, *dst);
            encode_class(w, class);
        }
        Policy::Waypoint { src, dst, via, class } => {
            w.u8(2);
            encode_node(w, *src);
            encode_node(w, *dst);
            encode_node(w, *via);
            encode_class(w, class);
        }
        Policy::LoopFree { class } => {
            w.u8(3);
            encode_class(w, class);
        }
        Policy::BlackholeFree { src, class } => {
            w.u8(4);
            encode_node(w, *src);
            encode_class(w, class);
        }
    }
}

fn decode_policy(r: &mut rc_store::Reader<'_>) -> Result<Policy, rc_store::WireError> {
    match r.u8()? {
        0 => {
            let (src, dst) = (decode_node(r)?, decode_node(r)?);
            Ok(Policy::Reachability { src, dst, class: decode_class(r)? })
        }
        1 => {
            let (src, dst) = (decode_node(r)?, decode_node(r)?);
            Ok(Policy::Isolation { src, dst, class: decode_class(r)? })
        }
        2 => {
            let (src, dst, via) = (decode_node(r)?, decode_node(r)?, decode_node(r)?);
            Ok(Policy::Waypoint { src, dst, via, class: decode_class(r)? })
        }
        3 => Ok(Policy::LoopFree { class: decode_class(r)? }),
        4 => {
            let src = decode_node(r)?;
            Ok(Policy::BlackholeFree { src, class: decode_class(r)? })
        }
        t => wire_err(format!("unknown policy tag {t}")),
    }
}

fn encode_analysis(w: &mut rc_store::Writer, a: &EcAnalysis) {
    encode_node_set_map(w, &a.delivered);
    encode_node_set_map(w, &a.dropped);
    encode_node_set_map(w, &a.denied);
    encode_node_set(w, &a.looping);
    w.len_prefix(a.ports_used.len());
    for &p in &a.ports_used {
        encode_port(w, p);
    }
    w.len_prefix(a.path_sig.len());
    for (&n, &sig) in &a.path_sig {
        encode_node(w, n);
        w.u64(sig);
    }
}

fn decode_analysis(r: &mut rc_store::Reader<'_>) -> Result<EcAnalysis, rc_store::WireError> {
    let delivered = decode_node_set_map(r)?;
    let dropped = decode_node_set_map(r)?;
    let denied = decode_node_set_map(r)?;
    let looping = decode_node_set(r)?;
    let mut ports_used = BTreeSet::new();
    for _ in 0..r.len_prefix()? {
        ports_used.insert(decode_port(r)?);
    }
    let mut path_sig = BTreeMap::new();
    for _ in 0..r.len_prefix()? {
        let n = decode_node(r)?;
        path_sig.insert(n, r.u64()?);
    }
    Ok(EcAnalysis { delivered, dropped, denied, looping, ports_used, path_sig })
}

impl PolicyChecker {
    /// Serialize the full checker state — topology view, per-EC
    /// analysis, reachability indexes, and registered policies with
    /// their verdicts — for a durable snapshot.
    pub fn encode_state(&self, w: &mut rc_store::Writer) {
        encode_node_set(w, &self.nodes);
        w.len_prefix(self.topo.len());
        for (&a, &b) in &self.topo {
            encode_port(w, a);
            encode_port(w, b);
        }
        let mut ecs: Vec<_> = self.ec_state.iter().collect();
        ecs.sort_by_key(|(ec, _)| **ec);
        w.len_prefix(ecs.len());
        for (&ec, analysis) in ecs {
            w.u32(ec.0);
            encode_analysis(w, analysis);
        }
        w.len_prefix(self.pair_ecs.len());
        for (&(a, b), ecs) in &self.pair_ecs {
            encode_node(w, a);
            encode_node(w, b);
            w.len_prefix(ecs.len());
            for &ec in ecs {
                w.u32(ec.0);
            }
        }
        w.len_prefix(self.port_users.len());
        let mut users: Vec<_> = self.port_users.iter().collect();
        users.sort_by_key(|(p, _)| **p);
        for (&port, ecs) in users {
            encode_port(w, port);
            w.len_prefix(ecs.len());
            for &ec in ecs {
                w.u32(ec.0);
            }
        }
        w.len_prefix(self.policies.len());
        for reg in &self.policies {
            encode_policy(w, &reg.policy);
            w.u32(reg.pred.index());
            w.u8(reg.satisfied as u8);
        }
        w.u64(self.fresh_full_passes);
    }

    /// Rebuild a checker from [`PolicyChecker::encode_state`] bytes.
    /// `pred_slots` is the size of the restored predicate store the
    /// policy handles point into, used to bounds-check every handle.
    /// Telemetry and the worker-count override are not restored; the
    /// caller re-attaches them.
    pub fn decode_state(
        r: &mut rc_store::Reader<'_>,
        pred_slots: u32,
    ) -> Result<PolicyChecker, rc_store::WireError> {
        let nodes = decode_node_set(r)?;
        let mut topo = BTreeMap::new();
        for _ in 0..r.len_prefix()? {
            let a = decode_port(r)?;
            let b = decode_port(r)?;
            topo.insert(a, b);
        }
        let mut ec_state = HashMap::new();
        for _ in 0..r.len_prefix()? {
            let ec = EcId(r.u32()?);
            let analysis = decode_analysis(r)?;
            if ec_state.insert(ec, analysis).is_some() {
                return wire_err(format!("duplicate EC {} in checker state", ec.0));
            }
        }
        let mut pair_ecs = BTreeMap::new();
        for _ in 0..r.len_prefix()? {
            let a = decode_node(r)?;
            let b = decode_node(r)?;
            let mut ecs = BTreeSet::new();
            for _ in 0..r.len_prefix()? {
                ecs.insert(EcId(r.u32()?));
            }
            pair_ecs.insert((a, b), ecs);
        }
        let mut port_users = HashMap::new();
        for _ in 0..r.len_prefix()? {
            let port = decode_port(r)?;
            let mut ecs = BTreeSet::new();
            for _ in 0..r.len_prefix()? {
                ecs.insert(EcId(r.u32()?));
            }
            if port_users.insert(port, ecs).is_some() {
                return wire_err("duplicate port in port_users");
            }
        }
        let mut policies = Vec::new();
        for i in 0..r.len_prefix()? {
            let policy = decode_policy(r)?;
            let pred = r.u32()?;
            if pred >= pred_slots {
                return wire_err(format!("policy {i} has invalid predicate handle {pred}"));
            }
            let satisfied = match r.u8()? {
                0 => false,
                1 => true,
                t => return wire_err(format!("bad verdict tag {t}")),
            };
            policies.push(Registered { policy, pred: Ref::from_index(pred), satisfied });
        }
        let fresh_full_passes = r.u64()?;
        Ok(PolicyChecker {
            nodes,
            topo,
            ec_state,
            pair_ecs,
            port_users,
            policies,
            threads: None,
            fresh_full_passes,
            telemetry: None,
        })
    }
}
