//! Conversion between the routing engine's FIB/filter deltas and the EC
//! model's rule updates.
//!
//! The routing engine reports FIB changes entry-by-entry (one entry per
//! ECMP leg); the EC model wants one logical rule per `(node, prefix)`
//! whose port action carries the whole ECMP group. This module
//! maintains the grouped view and emits replace-style rule updates.

use std::collections::BTreeMap;

use rc_apkeep::{ElementKey, ModelRule, PortAction, RuleMatch, RuleUpdate};
use rc_netcfg::types::{NodeId, Prefix};
use rc_routing::route::{FibAction, FibDelta, FilterRule};

/// Grouped FIB state: the current logical rule per `(node, prefix)`.
/// `Clone` so the verifier can snapshot it for transaction rollback.
#[derive(Clone, Default)]
pub(crate) struct FibGrouper {
    current: BTreeMap<(NodeId, Prefix), PortAction>,
}

impl FibGrouper {
    /// Fold a FIB delta into the grouped view, emitting the rule
    /// updates that take the EC model from the old grouped state to the
    /// new one.
    pub fn convert(&mut self, delta: &FibDelta) -> Vec<RuleUpdate> {
        // Collect the (node, prefix) groups touched by this delta.
        let mut touched: BTreeMap<(NodeId, Prefix), (Vec<FibAction>, Vec<FibAction>)> =
            BTreeMap::new();
        for e in &delta.inserted {
            touched.entry((e.node, e.prefix)).or_default().0.push(e.action);
        }
        for e in &delta.removed {
            touched.entry((e.node, e.prefix)).or_default().1.push(e.action);
        }

        let mut updates = Vec::new();
        for ((node, prefix), (ins, rem)) in touched {
            let old = self.current.get(&(node, prefix)).cloned();
            let new = Self::regroup(old.as_ref(), &ins, &rem);
            if old == new {
                continue;
            }
            let mk = |action: PortAction| ModelRule {
                element: ElementKey::Forward(node),
                priority: prefix.len() as u32,
                rule_match: RuleMatch::DstPrefix(prefix),
                action,
            };
            if let Some(o) = old {
                updates.push(RuleUpdate::Remove(mk(o)));
                self.current.remove(&(node, prefix));
            }
            if let Some(n) = new {
                updates.push(RuleUpdate::Insert(mk(n.clone())));
                self.current.insert((node, prefix), n);
            }
        }
        updates
    }

    /// Apply per-entry changes to a grouped action. Forward legs,
    /// local-delivery legs and drop cannot mix for one `(node, prefix)`
    /// — admin-distance selection keeps a single protocol's entries.
    fn regroup(
        old: Option<&PortAction>,
        ins: &[FibAction],
        rem: &[FibAction],
    ) -> Option<PortAction> {
        let (mut fwd, mut local): (Vec<_>, Vec<_>) = match old {
            Some(PortAction::Forward(v)) => (v.clone(), Vec::new()),
            Some(PortAction::Deliver(v)) => (Vec::new(), v.clone()),
            Some(PortAction::Drop) | None => (Vec::new(), Vec::new()),
            Some(other) => unreachable!("filter action {other:?} in the FIB"),
        };
        let mut drop = matches!(old, Some(PortAction::Drop));
        for a in rem {
            match a {
                FibAction::Forward(i) => fwd.retain(|x| x != i),
                FibAction::Local(i) => local.retain(|x| x != i),
                FibAction::Drop => drop = false,
            }
        }
        for a in ins {
            match a {
                FibAction::Forward(i) => {
                    if !fwd.contains(i) {
                        fwd.push(*i);
                    }
                }
                FibAction::Local(i) => {
                    if !local.contains(i) {
                        local.push(*i);
                    }
                }
                FibAction::Drop => drop = true,
            }
        }
        debug_assert!(
            (drop as usize) + (!fwd.is_empty()) as usize + (!local.is_empty()) as usize <= 1,
            "mixed FIB actions for one prefix: drop={drop} fwd={fwd:?} local={local:?}"
        );
        if drop {
            Some(PortAction::Drop)
        } else if !local.is_empty() {
            Some(PortAction::deliver(local))
        } else if !fwd.is_empty() {
            Some(PortAction::forward(fwd))
        } else {
            None
        }
    }

    /// Number of grouped FIB rules currently installed.
    pub fn len(&self) -> usize {
        self.current.len()
    }
}

/// Convert a filter rule to its EC model form.
pub(crate) fn filter_rule(f: &FilterRule) -> ModelRule {
    ModelRule {
        element: ElementKey::Filter(f.node, f.iface, f.dir),
        // ACLs: lower sequence numbers match first.
        priority: u32::MAX - f.seq,
        rule_match: RuleMatch::Acl {
            proto: f.proto,
            src: f.src,
            dst: f.dst,
            dst_ports: f.dst_ports,
        },
        action: if f.permit { PortAction::Permit } else { PortAction::Deny },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_netcfg::types::IfaceId;
    use rc_routing::route::FibEntry;

    fn entry(node: u32, prefix: &str, iface: u32) -> FibEntry {
        FibEntry {
            node: NodeId(node),
            prefix: prefix.parse().unwrap(),
            action: FibAction::Forward(IfaceId(iface)),
        }
    }

    #[test]
    fn insert_then_ecmp_then_shrink() {
        let mut g = FibGrouper::default();
        // First leg.
        let ups = g.convert(&FibDelta { inserted: vec![entry(0, "10.0.0.0/8", 1)], removed: vec![] });
        assert_eq!(ups.len(), 1);
        assert!(matches!(&ups[0], RuleUpdate::Insert(r) if r.action == PortAction::forward(vec![IfaceId(1)])));

        // Second leg: replace with the 2-way group.
        let ups = g.convert(&FibDelta { inserted: vec![entry(0, "10.0.0.0/8", 2)], removed: vec![] });
        assert_eq!(ups.len(), 2);
        assert!(matches!(&ups[0], RuleUpdate::Remove(_)));
        assert!(
            matches!(&ups[1], RuleUpdate::Insert(r) if r.action == PortAction::forward(vec![IfaceId(1), IfaceId(2)]))
        );

        // Lose one leg.
        let ups = g.convert(&FibDelta { inserted: vec![], removed: vec![entry(0, "10.0.0.0/8", 1)] });
        assert!(
            matches!(&ups[1], RuleUpdate::Insert(r) if r.action == PortAction::forward(vec![IfaceId(2)]))
        );

        // Lose the last leg: pure removal.
        let ups = g.convert(&FibDelta { inserted: vec![], removed: vec![entry(0, "10.0.0.0/8", 2)] });
        assert_eq!(ups.len(), 1);
        assert!(matches!(&ups[0], RuleUpdate::Remove(_)));
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn simultaneous_swap_is_one_replace() {
        let mut g = FibGrouper::default();
        g.convert(&FibDelta { inserted: vec![entry(0, "10.0.0.0/8", 1)], removed: vec![] });
        let ups = g.convert(&FibDelta {
            inserted: vec![entry(0, "10.0.0.0/8", 2)],
            removed: vec![entry(0, "10.0.0.0/8", 1)],
        });
        assert_eq!(ups.len(), 2, "one remove + one insert");
    }

    #[test]
    fn no_op_delta_emits_nothing() {
        let mut g = FibGrouper::default();
        g.convert(&FibDelta { inserted: vec![entry(0, "10.0.0.0/8", 1)], removed: vec![] });
        let ups = g.convert(&FibDelta { inserted: vec![], removed: vec![] });
        assert!(ups.is_empty());
    }

    #[test]
    fn drop_entries_group() {
        let mut g = FibGrouper::default();
        let drop_entry = FibEntry {
            node: NodeId(0),
            prefix: "10.0.0.0/8".parse().unwrap(),
            action: FibAction::Drop,
        };
        let ups = g.convert(&FibDelta { inserted: vec![drop_entry], removed: vec![] });
        assert!(matches!(&ups[0], RuleUpdate::Insert(r) if r.action == PortAction::Drop));
    }
}
