//! The RealConfig verifier: configurations in, incremental verification
//! reports out.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use rc_apkeep::{ApkModel, RuleUpdate, UpdateOrder};
use rc_netcfg::change::{ChangeError, ChangeSet};
use rc_netcfg::facts::{fact_delta, lower, Fact, Registry};
use rc_netcfg::linediff::diff_lines;
use rc_netcfg::parser::{parse_config, ParseError};
use rc_netcfg::printer::print_config;
use rc_netcfg::types::{NodeId, Port, Prefix};
use rc_netcfg::DeviceConfig;
use rc_policy::{PacketClass, Policy, PolicyChecker, PolicyId};
use rc_routing::engine::RoutingEngine;
use rc_routing::route::FibEntry;

use crate::convert::{filter_rule, FibGrouper};
use crate::report::{ChangeReport, FullReport};

mod persist;
mod queue;
pub use persist::{RestoreReport, RestoreSource};
pub use queue::{ChangeQueue, CoalescePolicy, StreamReport};

/// Verifier errors.
///
/// # Failure model
///
/// Every variant leaves the *observable* verifier state — configs,
/// facts, warnings, FIB, policy verdicts — at the last good set (the
/// failed change is never committed). The variants differ in whether
/// the *internal* pipeline state survived:
///
/// - [`Error::Parse`] and [`Error::Change`] fail before the pipeline
///   runs: nothing happened, keep applying changes.
/// - [`Error::Divergence`] and [`Error::Internal`] poison the verifier:
///   the incremental engines may hold partial results of the failed
///   change. [`RealConfig::needs_rebuild`] reports this state, and
///   [`RealConfig::rebuild`] (or the automatic
///   [`RealConfig::apply_configs_or_rebuild`]) recovers from it.
#[derive(Debug)]
pub enum Error {
    /// A configuration failed to parse.
    Parse(ParseError),
    /// A change operation could not be applied (the verifier state is
    /// unchanged).
    Change(ChangeError),
    /// The control plane failed to converge. The verifier is poisoned —
    /// call [`RealConfig::rebuild`] to recover in place.
    Divergence(rc_dataflow::EvalError),
    /// A pipeline stage panicked mid-change (a bug, or an injected
    /// fault). The panic was contained; the verifier is poisoned — call
    /// [`RealConfig::rebuild`] to recover in place.
    Internal(String),
    /// The verifier is poisoned by an earlier [`Error::Divergence`] or
    /// [`Error::Internal`] and cannot verify changes until
    /// [`RealConfig::rebuild`] succeeds.
    Poisoned,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Change(e) => write!(f, "change error: {e}"),
            Error::Divergence(e) => write!(f, "control plane divergence: {e}"),
            Error::Internal(msg) => write!(f, "internal pipeline failure: {msg}"),
            Error::Poisoned => write!(
                f,
                "verifier is poisoned by an earlier failure; rebuild() it from the \
                 last good configurations"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<ChangeError> for Error {
    fn from(e: ChangeError) -> Self {
        Error::Change(e)
    }
}

impl From<rc_dataflow::EvalError> for Error {
    fn from(e: rc_dataflow::EvalError) -> Self {
        Error::Divergence(e)
    }
}

/// How many changes the verifier absorbs before folding engine history
/// (see [`RealConfig::set_auto_compact`]). Compaction keeps per-change
/// latency flat over long change streams at the cost of a periodic
/// sweep; 64 keeps the sweep amortized well under the incremental work.
pub const DEFAULT_AUTO_COMPACT: u32 = 64;

/// The incremental network configuration verifier (the paper's
/// RealConfig): chains the incremental data plane generator, the
/// incremental EC model updater and the incremental policy checker.
pub struct RealConfig {
    configs: BTreeMap<String, DeviceConfig>,
    registry: Registry,
    facts: BTreeSet<Fact>,
    warnings: BTreeSet<String>,
    engine: RoutingEngine,
    model: ApkModel,
    checker: PolicyChecker,
    grouper: FibGrouper,
    devices: BTreeSet<NodeId>,
    update_order: UpdateOrder,
    /// Ablation/test support: run the EC model with its dst-interval
    /// candidate index disabled (full O(#ECs) scans). Survives rebuilds.
    model_full_scan: bool,
    /// Predicate backend the model was built with (BDDs or Delta-net
    /// interval atoms). Captured at construction; survives rebuilds.
    backend: rc_bdd::PredKind,
    /// Worker-count override for the checker's parallel walk phase
    /// (`None`: the process-global `rc_par` knob). Survives rebuilds.
    threads: Option<usize>,
    /// Compact engine history every this many changes (None: never).
    auto_compact: Option<u32>,
    changes_since_compact: u32,
    /// Threshold-driven compaction: when set, engine history is folded
    /// only on operators whose recent trace layer outgrew the policy's
    /// ratio of their base — instead of the count-based sweep above.
    /// Survives rebuilds (it is a RealConfig field, not engine state).
    adaptive_compact: Option<rc_dataflow::CompactionPolicy>,
    /// Shared metric registry for all three pipeline stages.
    telemetry: rc_telemetry::Telemetry,
    /// Set when a failure may have left the incremental engines holding
    /// partial results of a rejected change (see [`Error`]). While set,
    /// applies are refused with [`Error::Poisoned`] until
    /// [`RealConfig::rebuild`] succeeds.
    poisoned: bool,
    /// Durable warm state (state directory, snapshot sequence, apply
    /// journal). `None` unless a state directory is attached — the
    /// in-memory-only common case pays one `Option` check per apply.
    store: Option<persist::StoreState>,
}

/// Extract a human-readable message from a contained panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "pipeline stage panicked (non-string payload)".to_string()
    }
}

impl RealConfig {
    /// Build the verifier and run the initial full verification.
    pub fn new(configs: BTreeMap<String, DeviceConfig>) -> Result<(Self, FullReport), Error> {
        Self::with_order(configs, UpdateOrder::InsertFirst)
    }

    /// [`RealConfig::new`] with an explicit data plane model update
    /// order (insertion-first is the fast one; Table 3 quantifies why).
    /// The predicate backend comes from the process-global default
    /// ([`rc_bdd::default_backend`]: `--backend` / `RC_BACKEND`).
    pub fn with_order(
        configs: BTreeMap<String, DeviceConfig>,
        update_order: UpdateOrder,
    ) -> Result<(Self, FullReport), Error> {
        Self::with_order_backend(configs, update_order, rc_bdd::default_backend())
    }

    /// [`RealConfig::with_order`] with an explicit predicate backend,
    /// bypassing the process-global default. Tests and benchmarks that
    /// compare backends side by side use this to avoid racing on the
    /// global knob.
    pub fn with_order_backend(
        configs: BTreeMap<String, DeviceConfig>,
        update_order: UpdateOrder,
        backend: rc_bdd::PredKind,
    ) -> Result<(Self, FullReport), Error> {
        let mut rc = RealConfig {
            configs: BTreeMap::new(),
            registry: Registry::new(),
            facts: BTreeSet::new(),
            warnings: BTreeSet::new(),
            engine: RoutingEngine::new(),
            model: ApkModel::with_backend(backend),
            checker: PolicyChecker::new(),
            grouper: FibGrouper::default(),
            devices: BTreeSet::new(),
            update_order,
            model_full_scan: false,
            backend,
            threads: None,
            auto_compact: Some(DEFAULT_AUTO_COMPACT),
            changes_since_compact: 0,
            adaptive_compact: None,
            telemetry: rc_telemetry::Telemetry::new(),
            poisoned: false,
            store: None,
        };
        rc.engine.set_telemetry(rc.telemetry.clone());
        rc.model.set_telemetry(&rc.telemetry);
        rc.checker.set_telemetry(&rc.telemetry);
        let mut report = FullReport::default();

        let lowered = lower(&configs, &mut rc.registry);
        rc.warnings = lowered.warnings.iter().map(|w| w.to_string()).collect();
        report.warnings = rc.warnings.iter().cloned().collect();

        let t = Instant::now();
        let stats = rc.engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1)))?;
        report.dp_gen = t.elapsed();
        report.dp_records = stats.records;

        rc.facts = lowered.facts;
        rc.configs = configs;
        rc.sync_structure_from_delta(
            &rc.facts.iter().cloned().map(|f| (f, 1)).collect::<Vec<_>>(),
        );

        let t = Instant::now();
        let mut updates = rc.grouper.convert(rc.engine.fib_delta());
        let (fins, _frem) = rc.engine.filter_delta();
        updates.extend(fins.iter().map(|f| RuleUpdate::Insert(filter_rule(f))));
        let summary = rc.model.apply_batch(updates, rc.update_order);
        report.model_update = t.elapsed();
        report.fib_entries = rc.engine.fib().len();
        report.rules = rc.model.num_rules();
        report.ecs = rc.model.num_ecs();
        let _ = summary;

        let t = Instant::now();
        let check = rc.checker.check_full(&mut rc.model);
        report.policy_check = t.elapsed();
        report.pairs = check.total_pairs;
        report.violated = check.newly_violated.iter().map(|p| p.0).collect();
        report.metrics = rc.telemetry.snapshot();

        Ok((rc, report))
    }

    /// Parse configuration texts and build the verifier.
    pub fn from_texts<'a, I: IntoIterator<Item = &'a str>>(
        texts: I,
    ) -> Result<(Self, FullReport), Error> {
        let mut configs = BTreeMap::new();
        for t in texts {
            let cfg = parse_config(t).map_err(Error::Parse)?;
            configs.insert(cfg.hostname.clone(), cfg);
        }
        Self::new(configs)
    }

    /// Update the checker's device set and link map from a fact delta;
    /// returns the ECs invalidated by link changes.
    fn sync_structure_from_delta(&mut self, delta: &[(Fact, isize)]) -> BTreeSet<rc_apkeep::EcId> {
        let mut link_delta: Vec<(Port, Port, isize)> = Vec::new();
        let mut devices_changed = false;
        for (f, r) in delta {
            match f {
                Fact::Link { src, dst } => link_delta.push((*src, *dst, *r)),
                Fact::Device(n) => {
                    devices_changed = true;
                    if *r > 0 {
                        self.devices.insert(*n);
                    } else {
                        self.devices.remove(n);
                    }
                }
                _ => {}
            }
        }
        if devices_changed {
            self.checker.set_nodes(self.devices.iter().copied());
        }
        self.checker.apply_link_delta(&link_delta)
    }

    /// Verify a configuration change incrementally. On success the
    /// change is committed; on failure the configurations are left
    /// untouched (see [`Error`] for the poisoning contract).
    pub fn apply_change(&mut self, cs: &ChangeSet) -> Result<ChangeReport, Error> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        let mut new_configs = self.configs.clone();
        if let Err(e) = cs.apply(&mut new_configs) {
            // Nothing ran: a pure rollback (the cheapest kind).
            self.telemetry.counter("verifier.rollbacks").incr();
            return Err(Error::Change(e));
        }
        self.apply_configs(new_configs)
    }

    /// [`RealConfig::apply_change`] with the self-healing fallback of
    /// [`RealConfig::apply_configs_or_rebuild`].
    pub fn apply_change_or_rebuild(&mut self, cs: &ChangeSet) -> Result<ChangeReport, Error> {
        if self.poisoned {
            self.rebuild()?;
        }
        let mut new_configs = self.configs.clone();
        if let Err(e) = cs.apply(&mut new_configs) {
            self.telemetry.counter("verifier.rollbacks").incr();
            return Err(Error::Change(e));
        }
        self.apply_configs_or_rebuild(new_configs)
    }

    /// Verify a transition to an arbitrary new configuration set
    /// incrementally — e.g., files an operator edited by hand. Devices
    /// may be added or removed; whatever differs is derived from the
    /// fact delta, exactly as for [`RealConfig::apply_change`].
    ///
    /// # Transaction contract
    ///
    /// The three-stage pipeline runs as a transaction: no verifier
    /// field (`configs`, `facts`, `warnings`, device set, checker link
    /// map, FIB grouper, policy verdicts) is committed until all three
    /// stages succeed. On any failure — an `Err` from a stage or a
    /// contained panic — the observable state rolls back to the
    /// pre-change snapshot. Failures raised after stage 1 started
    /// mutating the incremental engines additionally poison the
    /// verifier (see [`Error`] and [`RealConfig::rebuild`]).
    ///
    /// The only pre-transaction mutation is name interning into the
    /// shared registry while lowering the *candidate* configurations:
    /// the registry is append-only (existing ids never change meaning),
    /// so a failed change can at worst leave unused names interned —
    /// benign, and invisible through every accessor.
    pub fn apply_configs(
        &mut self,
        new_configs: BTreeMap<String, DeviceConfig>,
    ) -> Result<ChangeReport, Error> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        // Snapshot the cheap rollback-able state. The heavy engine /
        // model / checker state is deliberately *not* snapshotted
        // (cloning a dataflow trace per change would dwarf the
        // incremental work); failures after stage 1 begins poison the
        // verifier and recovery goes through `rebuild()` instead.
        let devices_snap = self.devices.clone();
        let grouper_snap = self.grouper.clone();
        let verdicts_snap = self.checker.verdicts();

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.apply_configs_txn(new_configs)
        }));
        let err = match outcome {
            Ok(Ok(report)) => return Ok(report),
            Ok(Err(e)) => e,
            Err(payload) => Error::Internal(panic_message(payload.as_ref())),
        };

        // Roll back: the commit point was never reached, so configs /
        // facts / warnings are untouched; restore what the stages
        // touched along the way.
        self.devices = devices_snap;
        self.grouper = grouper_snap;
        self.checker.set_nodes(self.devices.iter().copied());
        self.checker.restore_verdicts(&verdicts_snap);
        self.telemetry.counter("verifier.rollbacks").incr();
        if matches!(err, Error::Divergence(_) | Error::Internal(_)) {
            self.poisoned = true;
            self.telemetry.counter("verifier.poison_events").incr();
        }
        Err(err)
    }

    /// The transaction body: all three stages, then the commit point.
    /// Mutates heavy pipeline state as it goes; `apply_configs` owns
    /// rollback and poisoning.
    fn apply_configs_txn(
        &mut self,
        new_configs: BTreeMap<String, DeviceConfig>,
    ) -> Result<ChangeReport, Error> {
        let mut report = ChangeReport::default();
        self.diff_config_lines(&new_configs, &mut report);

        // Semantic view: fact delta. (Lowering interns names into the
        // shared registry — the benign pre-transaction mutation
        // documented on `apply_configs`.)
        let lowered = lower(&new_configs, &mut self.registry);
        let new_warnings: BTreeSet<String> =
            lowered.warnings.iter().map(|w| w.to_string()).collect();
        report.warnings = new_warnings.difference(&self.warnings).cloned().collect();
        let delta = fact_delta(&self.facts, &lowered.facts);
        report.fact_changes = delta.len();

        // Stage 1: incremental data plane generation. First heavy
        // mutation — an `Err` from here on poisons.
        let t = Instant::now();
        let stats = self.engine.apply(delta.iter().cloned())?;
        report.dp_gen = t.elapsed();
        report.dp_records = stats.records;

        let touched = self.sync_structure_from_delta(&delta);

        // Stage 2: incremental model update.
        let t = Instant::now();
        let mut updates = self.grouper.convert(self.engine.fib_delta());
        let (fins, frem) = self.engine.filter_delta();
        updates.extend(frem.iter().map(|f| RuleUpdate::Remove(filter_rule(f))));
        updates.extend(fins.iter().map(|f| RuleUpdate::Insert(filter_rule(f))));
        report.rules_inserted = updates.iter().filter(|u| u.is_insert()).count();
        report.rules_removed = updates.len() - report.rules_inserted;
        let summary = self.model.apply_batch(updates, self.update_order);
        report.model_update = t.elapsed();
        report.ec_moves = summary.ec_moves;
        report.ec_splits = summary.ec_splits;
        report.affected_ecs = summary.affected.len();

        // Stage 3: incremental policy checking.
        let t = Instant::now();
        let check = self.checker.check_incremental(&mut self.model, &summary, touched);
        report.policy_check = t.elapsed();
        report.affected_pairs = check.affected_pairs;
        report.changed_pairs = check.changed_pairs;
        report.total_pairs = check.total_pairs;
        report.policies_checked = check.policies_checked;
        report.newly_violated = check.newly_violated.iter().map(|p| p.0).collect();
        report.newly_satisfied = check.newly_satisfied.iter().map(|p| p.0).collect();

        // History compaction keeps long change streams flat (see the
        // `churn` and `throughput` benchmarks). Threshold-driven when an
        // adaptive policy is set (compact only operators whose recent
        // layer outgrew their base), count-based otherwise. Still
        // pre-commit: a failure here must not leave new configs
        // committed.
        self.changes_since_compact += 1;
        if let Some(policy) = self.adaptive_compact {
            if self.engine.compact_adaptive(&policy) > 0 {
                self.changes_since_compact = 0;
            }
        } else if let Some(every) = self.auto_compact {
            if self.changes_since_compact >= every {
                self.engine.compact();
                self.changes_since_compact = 0;
            }
        }

        // Commit point: all three stages succeeded. The journal record
        // is computed against the pre-commit configs, appended only
        // after the in-memory commit — a crash between the two loses at
        // most the change that was never reported as applied.
        let journal_record = self.journal_record_for(&new_configs);
        self.configs = new_configs;
        self.facts = lowered.facts;
        self.warnings = new_warnings;
        if let Some(record) = journal_record {
            self.journal_append(record);
        }

        report.metrics = self.telemetry.snapshot();
        Ok(report)
    }

    /// Textual view of a candidate change (the paper's "insertions or
    /// deletions of configuration lines"). Added or removed devices
    /// diff against an empty configuration. Read-only.
    fn diff_config_lines(
        &self,
        new_configs: &BTreeMap<String, DeviceConfig>,
        report: &mut ChangeReport,
    ) {
        let empty = String::new();
        for (name, new_cfg) in new_configs {
            let old_text =
                self.configs.get(name).map(print_config).unwrap_or_else(|| empty.clone());
            let new_text = print_config(new_cfg);
            if old_text != new_text {
                let d = diff_lines(&old_text, &new_text);
                report.lines_inserted += d.insertions();
                report.lines_deleted += d.deletions();
            }
        }
        for (name, old_cfg) in &self.configs {
            if !new_configs.contains_key(name) {
                let d = diff_lines(&print_config(old_cfg), &empty);
                report.lines_deleted += d.deletions();
            }
        }
    }

    /// Verify a transition with the self-healing fallback: try the
    /// incremental path, and on any failure fall back to verifying the
    /// new configurations from scratch (policies and their satisfaction
    /// history carry over, so the report's verdict deltas stay
    /// correct). If even the from-scratch build rejects the new
    /// configurations (e.g. they genuinely diverge), the verifier heals
    /// itself back to the last good configurations and surfaces the
    /// incremental error — in every case the verifier ends the call
    /// un-poisoned unless recovery itself failed twice.
    pub fn apply_configs_or_rebuild(
        &mut self,
        new_configs: BTreeMap<String, DeviceConfig>,
    ) -> Result<ChangeReport, Error> {
        if self.poisoned {
            self.rebuild()?;
        }
        let first = match self.apply_configs(new_configs.clone()) {
            Ok(report) => return Ok(report),
            Err(e) => e,
        };

        // The incremental path failed and rolled back; verify the new
        // configurations from scratch instead.
        let mut report = ChangeReport { recovered: true, ..Default::default() };
        self.diff_config_lines(&new_configs, &mut report);
        let old_warnings = self.warnings.clone();
        let lowered = lower(&new_configs, &mut self.registry);
        report.fact_changes = fact_delta(&self.facts, &lowered.facts).len();

        let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.rebuild_from(new_configs)
        }));
        match rebuilt {
            Ok(Ok((full, check))) => {
                self.telemetry.counter("verifier.recoveries").incr();
                report.dp_gen = full.dp_gen;
                report.dp_records = full.dp_records;
                report.model_update = full.model_update;
                report.policy_check = full.policy_check;
                report.total_pairs = check.total_pairs;
                report.policies_checked = check.policies_checked;
                report.newly_violated = check.newly_violated.iter().map(|p| p.0).collect();
                report.newly_satisfied = check.newly_satisfied.iter().map(|p| p.0).collect();
                report.warnings =
                    self.warnings.difference(&old_warnings).cloned().collect();
                report.metrics = self.telemetry.snapshot();
                Ok(report)
            }
            // The new configurations do not verify even from scratch.
            // Heal back to the last good set and surface the
            // incremental failure.
            _ => {
                if self.poisoned {
                    let _ = self.rebuild();
                }
                Err(first)
            }
        }
    }

    /// Whether the verifier is poisoned and must be rebuilt before it
    /// can verify further changes (see [`Error`]).
    pub fn needs_rebuild(&self) -> bool {
        self.poisoned
    }

    /// Rebuild the whole incremental pipeline from the last good
    /// configurations — the recovery path after [`Error::Divergence`]
    /// or [`Error::Internal`]. Registered policies and their
    /// satisfaction history are preserved, so verdict deltas of
    /// subsequent changes remain correct. On success the verifier is
    /// un-poisoned and exactly equivalent to a fresh
    /// [`RealConfig::new`] over the same configurations.
    pub fn rebuild(&mut self) -> Result<FullReport, Error> {
        let configs = self.configs.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.rebuild_from(configs)
        }));
        match outcome {
            Ok(Ok((report, _check))) => Ok(report),
            Ok(Err(e)) => Err(e),
            Err(payload) => Err(Error::Internal(panic_message(payload.as_ref()))),
        }
    }

    /// Build a fresh pipeline over `configs` and commit it wholesale.
    /// Nothing is committed on failure: the verifier keeps its previous
    /// (possibly poisoned) state.
    fn rebuild_from(
        &mut self,
        configs: BTreeMap<String, DeviceConfig>,
    ) -> Result<(FullReport, rc_policy::CheckReport), Error> {
        let t0 = Instant::now();
        let mut report = FullReport::default();

        let mut engine = RoutingEngine::new();
        engine.set_telemetry(self.telemetry.clone());
        engine.set_threads(self.threads);
        let mut model = ApkModel::with_backend(self.backend);
        model.set_telemetry(&self.telemetry);
        model.set_full_scan(self.model_full_scan);
        model.set_threads(self.threads);
        let mut checker = PolicyChecker::new();
        checker.set_telemetry(&self.telemetry);
        checker.set_threads(self.threads);
        let mut grouper = FibGrouper::default();

        let lowered = lower(&configs, &mut self.registry);
        let warnings: BTreeSet<String> =
            lowered.warnings.iter().map(|w| w.to_string()).collect();
        report.warnings = warnings.iter().cloned().collect();

        let t = Instant::now();
        let stats = engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1)))?;
        report.dp_gen = t.elapsed();
        report.dp_records = stats.records;

        // Device set and checker link map from the full fact set.
        let mut devices = BTreeSet::new();
        let mut link_delta: Vec<(Port, Port, isize)> = Vec::new();
        for f in &lowered.facts {
            match f {
                Fact::Device(n) => {
                    devices.insert(*n);
                }
                Fact::Link { src, dst } => link_delta.push((*src, *dst, 1)),
                _ => {}
            }
        }
        checker.set_nodes(devices.iter().copied());
        checker.apply_link_delta(&link_delta);

        let t = Instant::now();
        let mut updates = grouper.convert(engine.fib_delta());
        let (fins, _frem) = engine.filter_delta();
        updates.extend(fins.iter().map(|f| RuleUpdate::Insert(filter_rule(f))));
        let summary = model.apply_batch(updates, self.update_order);
        report.model_update = t.elapsed();
        report.fib_entries = engine.fib().len();
        report.rules = model.num_rules();
        report.ecs = model.num_ecs();
        let _ = summary;

        // Re-register the policies in id order with their pre-failure
        // verdicts, so the check below reports newly-violated /
        // newly-satisfied relative to what the caller last saw.
        for (policy, satisfied) in self.checker.policy_specs() {
            let id = checker.add_policy(&mut model, policy);
            checker.restore_verdict(id, satisfied);
        }
        let t = Instant::now();
        let check = checker.check_full(&mut model);
        report.policy_check = t.elapsed();
        report.pairs = check.total_pairs;
        report.violated = check.newly_violated.iter().map(|p| p.0).collect();

        // Commit the rebuilt pipeline wholesale.
        let configs_changed = self.configs != configs;
        self.engine = engine;
        self.model = model;
        self.checker = checker;
        self.grouper = grouper;
        self.configs = configs;
        self.facts = lowered.facts;
        self.warnings = warnings;
        self.devices = devices;
        self.changes_since_compact = 0;
        self.poisoned = false;
        if configs_changed {
            // These configs never went through the journaled apply
            // path; the on-disk journal no longer extends to the
            // current state. Re-base persistence on a fresh snapshot.
            self.rebase_journal_after_rebuild();
        }
        self.telemetry.counter("verifier.rebuilds").incr();
        self.telemetry
            .histogram("verifier.rebuild_us")
            .record(t0.elapsed().as_micros() as u64);
        report.metrics = self.telemetry.snapshot();
        Ok((report, check))
    }

    /// Register a policy (by device ids; see [`RealConfig::node`]).
    pub fn add_policy(&mut self, policy: Policy) -> PolicyId {
        self.checker.add_policy(&mut self.model, policy)
    }

    /// Registered policies with their current verdicts, in id order
    /// (`PolicyId(i)` is entry `i`). Lets callers that may hold a
    /// snapshot-restored verifier discover what is already registered
    /// instead of re-adding duplicates.
    pub fn policy_specs(&self) -> Vec<(Policy, bool)> {
        self.checker.policy_specs()
    }

    /// Convenience: "packets from `src` to `dst_prefix` must reach
    /// `dst`".
    pub fn require_reachability(
        &mut self,
        src: &str,
        dst: &str,
        dst_prefix: Prefix,
    ) -> Option<PolicyId> {
        let src = self.node(src)?;
        let dst = self.node(dst)?;
        Some(self.add_policy(Policy::Reachability {
            src,
            dst,
            class: PacketClass::DstPrefix(dst_prefix),
        }))
    }

    /// Re-evaluate all policies from scratch (e.g., after registering
    /// policies post-construction).
    pub fn recheck_policies(&mut self) -> rc_policy::CheckReport {
        self.checker.check_full(&mut self.model)
    }

    /// Device id for a hostname.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.registry.try_node(name)
    }

    /// Hostname for a device id.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.registry.node_name(id)
    }

    /// Current configurations.
    pub fn configs(&self) -> &BTreeMap<String, DeviceConfig> {
        &self.configs
    }

    /// Current complete FIB (per-ECMP-leg entries).
    pub fn fib(&self) -> BTreeSet<FibEntry> {
        self.engine.fib()
    }

    /// Current grouped FIB rule count (the "#Rules" denominator of
    /// Table 3).
    pub fn num_rules(&self) -> usize {
        self.model.num_rules()
    }

    /// ECs currently in the data plane model.
    pub fn num_ecs(&self) -> usize {
        self.model.num_ecs()
    }

    /// (src, dst) pairs with deliverable traffic (Table 3's "#Pairs"
    /// denominator).
    pub fn num_pairs(&self) -> usize {
        self.checker.num_pairs()
    }

    /// Whether any EC currently delivers traffic from `src` to `dst`.
    pub fn pair_reachable(&self, src: NodeId, dst: NodeId) -> bool {
        self.checker.pair_ecs(src, dst).is_some()
    }

    /// Whether a policy currently holds.
    pub fn is_satisfied(&self, id: PolicyId) -> bool {
        self.checker.is_satisfied(id)
    }

    /// Current input fact set (for external oracles).
    pub fn facts(&self) -> &BTreeSet<Fact> {
        &self.facts
    }

    /// Current lowering warnings (formatted, deduplicated).
    pub fn warnings(&self) -> &BTreeSet<String> {
        &self.warnings
    }

    /// Interface name for an interned id.
    pub fn iface_name(&self, id: rc_netcfg::types::IfaceId) -> &str {
        self.registry.iface_name(id)
    }

    /// The verifier's shared metric registry. Counters are cumulative
    /// since construction; gauges track current state.
    pub fn telemetry(&self) -> &rc_telemetry::Telemetry {
        &self.telemetry
    }

    /// Snapshot every registered metric across all three pipeline
    /// stages.
    pub fn metrics_snapshot(&self) -> rc_telemetry::MetricsSnapshot {
        self.telemetry.snapshot()
    }

    pub(crate) fn model(&self) -> &ApkModel {
        &self.model
    }

    pub(crate) fn checker(&self) -> &PolicyChecker {
        &self.checker
    }

    /// Grouped FIB rules currently installed (one per (device, prefix),
    /// ECMP folded into one logical rule).
    pub fn num_fib_rules(&self) -> usize {
        self.grouper.len()
    }

    /// Records currently retained in the dataflow engine's trace
    /// spines (base + recent layers) — the quantity compaction bounds.
    pub fn trace_records(&self) -> usize {
        self.engine.trace_records()
    }

    /// Compact the incremental engine's internal history (bounds memory
    /// over long change sequences; behaviour is unaffected). Also
    /// happens automatically — see [`RealConfig::set_auto_compact`].
    pub fn compact(&mut self) {
        self.engine.compact();
        self.changes_since_compact = 0;
    }

    /// Configure automatic history compaction: fold engine history
    /// after every `interval` changes, or never (`None`). The default
    /// is [`DEFAULT_AUTO_COMPACT`]. Ignored while an adaptive policy is
    /// installed (see [`RealConfig::set_adaptive_compact`]).
    pub fn set_auto_compact(&mut self, interval: Option<u32>) {
        self.auto_compact = interval;
    }

    /// Install (or with `None` remove) a threshold-driven compaction
    /// policy: after each change, engine history is folded only on
    /// operators whose recent trace layer exceeds the policy's ratio of
    /// their consolidated base — so sustained churn pays for compaction
    /// when lookups would degrade, not on a fixed schedule. While set,
    /// this replaces the count-based [`RealConfig::set_auto_compact`]
    /// sweep. Behaviour (FIBs, verdicts) is identical either way; the
    /// setting survives [`RealConfig::rebuild`].
    pub fn set_adaptive_compact(&mut self, policy: Option<rc_dataflow::CompactionPolicy>) {
        self.adaptive_compact = policy;
    }

    /// Enable/disable the EC model's dst-interval candidate index
    /// (enabled by default). Disabling reverts rule transfers and
    /// policy registration to the full O(#ECs) scan — results are
    /// identical either way; this exists for A/B ablation (the `table3`
    /// binary's `--full-scan`) and tests. The setting survives
    /// [`RealConfig::rebuild`].
    pub fn set_ec_index_enabled(&mut self, enabled: bool) {
        self.model_full_scan = !enabled;
        self.model.set_full_scan(!enabled);
    }

    /// Override the worker count for this verifier's parallel work —
    /// policy checking, the dataflow engine's sharded operators, and
    /// the model's EC scans (`None` falls back to the process-global
    /// knob — [`rc_par::set_threads`] / the `RC_THREADS` environment
    /// variable / available parallelism; `Some(1)` forces the exact
    /// serial paths). Results are byte-identical for any worker count.
    /// The setting survives [`RealConfig::rebuild`].
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
        self.checker.set_threads(threads);
        self.engine.set_threads(threads);
        self.model.set_threads(threads);
    }

    /// The per-verifier worker-count override, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The predicate backend this verifier was built with.
    pub fn backend(&self) -> rc_bdd::PredKind {
        self.backend
    }
}

/// Compute the full data plane from scratch with the custom-algorithm
/// baseline (the "Batfish" column of Table 2).
pub fn full_dataplane_baseline(
    configs: &BTreeMap<String, DeviceConfig>,
) -> Result<(std::time::Duration, usize), rc_routing::baseline::BaselineDivergence> {
    let mut reg = Registry::new();
    let lowered = lower(configs, &mut reg);
    let t = Instant::now();
    let dp = rc_routing::baseline::compute(&lowered.facts)?;
    Ok((t.elapsed(), dp.fib.len()))
}

/// Compute the full data plane from scratch with the general-purpose
/// incremental engine (the "RealConfig Full" column of Table 2).
pub fn full_dataplane_realconfig(
    configs: &BTreeMap<String, DeviceConfig>,
) -> Result<(std::time::Duration, usize), Error> {
    let mut reg = Registry::new();
    let lowered = lower(configs, &mut reg);
    let mut engine = RoutingEngine::new();
    let t = Instant::now();
    engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1)))?;
    Ok((t.elapsed(), engine.fib().len()))
}
