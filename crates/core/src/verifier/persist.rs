//! Durable warm state: checksummed snapshots, an append-only apply
//! journal, and the crash-recovery ladder.
//!
//! # Snapshot format
//!
//! A snapshot is an [`rc_store`] section container (magic, version,
//! per-section `tag + length + payload + CRC32`) holding five sections:
//!
//! | tag | section  | contents                                          |
//! |-----|----------|---------------------------------------------------|
//! | 1   | META     | update order, full-scan flag, auto-compact knob   |
//! | 2   | REGISTRY | interned node / interface names, in id order      |
//! | 3   | CONFIGS  | last-good configurations as canonical printed text|
//! | 4   | MODEL    | [`ApkModel::encode_state`] (includes the predicate store) |
//! | 5   | CHECKER  | [`PolicyChecker::encode_state`]                   |
//!
//! The registry is serialized by name *in id order* because interning
//! is append-only and history-dependent: rebuilding it verbatim keeps
//! every `NodeId` / `IfaceId` embedded in the model and checker
//! sections valid.
//!
//! # Journal
//!
//! Each committed apply appends one checksummed record — the
//! device-granularity config delta (upserted device texts + removed
//! names) — to `journal.rcj`, which names the snapshot sequence it
//! extends. Replay pushes each record through the normal incremental
//! [`RealConfig::apply_configs`] path, so a restored verifier is the
//! same machine as one that never crashed. If an append fails (disk
//! full, fsync error), journaling is disabled until the next snapshot
//! rather than leaving a gap: the durable state is always an exact
//! prefix of the applied changes.
//!
//! # Recovery ladder
//!
//! [`RealConfig::open`] never refuses to start:
//!
//! 1. newest snapshot + journal replay (torn tails tolerated);
//! 2. on any corruption, the previous retained snapshot;
//! 3. on any corruption there too, a full rebuild from the caller's
//!    fallback configurations.
//!
//! Which rung succeeded — and how many journal records were replayed
//! or discarded — comes back in the [`RestoreReport`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rc_netcfg::facts::{lower, Fact, Registry};
use rc_netcfg::parser::parse_config;
use rc_netcfg::printer::print_config;
use rc_netcfg::DeviceConfig;
use rc_store::{
    atomic_write, decode_snapshot, encode_snapshot, journal_path, list_snapshots,
    prune_snapshots, read_journal, snapshot_path, Journal, Reader, StoreError, Writer,
};

use super::{Error, RealConfig};
use rc_apkeep::{ApkModel, UpdateOrder};
use rc_policy::PolicyChecker;
use rc_routing::engine::RoutingEngine;

/// Section tags inside a snapshot container.
const SEC_META: u32 = 1;
const SEC_REGISTRY: u32 = 2;
const SEC_CONFIGS: u32 = 3;
const SEC_MODEL: u32 = 4;
const SEC_CHECKER: u32 = 5;

/// How many snapshots to retain on disk. Two gives the recovery ladder
/// its middle rung: if the newest snapshot is torn, the previous one is
/// still there.
const KEEP_SNAPSHOTS: usize = 2;

/// Where a restored verifier's state came from (the rung of the
/// recovery ladder that succeeded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreSource {
    /// The newest snapshot decoded cleanly (journal replay may still
    /// have discarded a torn tail — see
    /// [`RestoreReport::discarded_corrupt`]).
    Snapshot { seq: u64 },
    /// The newest snapshot was corrupt; the previous retained snapshot
    /// was used instead. Its journal (if any) belongs to the newer
    /// snapshot and is not replayed.
    PreviousSnapshot { seq: u64 },
    /// Every snapshot was corrupt or unreadable; the verifier was
    /// rebuilt in full from the fallback configurations. Degraded but
    /// running.
    Rebuilt,
    /// The state directory held no snapshots at all (first boot).
    ColdStart,
}

/// Outcome of [`RealConfig::open`]: which ladder rung produced the
/// verifier and what the journal replay saw.
#[derive(Clone, Debug)]
pub struct RestoreReport {
    /// The ladder rung that succeeded.
    pub source: RestoreSource,
    /// Journal records replayed through the incremental apply path.
    pub replayed: usize,
    /// Journal records (or whole artifacts) dropped as corrupt: torn
    /// journal tails, records for a different snapshot, records whose
    /// replay failed.
    pub discarded_corrupt: usize,
    /// Snapshots that failed to decode before one succeeded.
    pub snapshots_rejected: usize,
    /// Human-readable notes for each degradation encountered.
    pub notes: Vec<String>,
    /// Wall-clock time of the whole open, including any journal replay.
    pub elapsed: std::time::Duration,
}

/// Per-verifier persistence handle: the state directory, the snapshot
/// sequence the journal extends, and the journal itself (`None` when
/// journaling is disabled — before the first snapshot, or after an
/// append failure).
#[derive(Debug)]
pub(super) struct StoreState {
    dir: PathBuf,
    /// Sequence number of the newest snapshot written or restored.
    seq: u64,
    journal: Option<Journal>,
    /// Records appended to the current journal (durable changes since
    /// the last snapshot).
    appended: u64,
}

/// Encode one journal record: the device-granularity config delta from
/// `old` to `new` (changed/added devices as canonical printed text,
/// removed devices by name).
fn encode_delta(
    old: &BTreeMap<String, DeviceConfig>,
    new: &BTreeMap<String, DeviceConfig>,
) -> Vec<u8> {
    let upserts: Vec<(&String, String)> = new
        .iter()
        .filter(|(name, cfg)| old.get(*name) != Some(*cfg))
        .map(|(name, cfg)| (name, print_config(cfg)))
        .collect();
    let removes: Vec<&String> =
        old.keys().filter(|name| !new.contains_key(*name)).collect();
    let mut w = Writer::new();
    w.len_prefix(upserts.len());
    for (name, text) in &upserts {
        w.str(name);
        w.str(text);
    }
    w.len_prefix(removes.len());
    for name in &removes {
        w.str(name);
    }
    w.finish()
}

/// A decoded journal record: (upserted configs, removed device names).
type ConfigDelta = (Vec<(String, DeviceConfig)>, Vec<String>);

/// Decode a journal record back into (upserted configs, removed names).
/// Corrupt input — unparseable text, a hostname mismatch — is an error,
/// never a half-applied delta.
fn decode_delta(bytes: &[u8]) -> Result<ConfigDelta, String> {
    let mut r = Reader::new(bytes);
    let err = |e: rc_store::WireError| e.0;
    let n = r.len_prefix().map_err(err)?;
    let mut upserts = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str().map_err(err)?.to_string();
        let text = r.str().map_err(err)?;
        let cfg = parse_config(text)
            .map_err(|e| format!("journal config for {name:?} unparseable: {e}"))?;
        if cfg.hostname != name {
            return Err(format!(
                "journal record hostname mismatch: key {name:?} vs config {:?}",
                cfg.hostname
            ));
        }
        upserts.push((name, cfg));
    }
    let n = r.len_prefix().map_err(err)?;
    let mut removes = Vec::with_capacity(n);
    for _ in 0..n {
        removes.push(r.str().map_err(err)?.to_string());
    }
    r.done().map_err(err)?;
    Ok((upserts, removes))
}

impl RealConfig {
    /// Attach a state directory for durable warm state. Creates the
    /// directory if missing. Journaling starts at the next
    /// [`RealConfig::save_snapshot`] (a journal is only meaningful as
    /// an extension of a snapshot).
    pub fn attach_state_dir(&mut self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let seq = list_snapshots(dir)?.first().map(|(s, _)| *s).unwrap_or(0);
        self.store =
            Some(StoreState { dir: dir.to_path_buf(), seq, journal: None, appended: 0 });
        Ok(())
    }

    /// The attached state directory, if any.
    pub fn state_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(|s| s.dir.as_path())
    }

    /// Sequence number of the newest snapshot written or restored
    /// through this verifier (0 before any).
    pub fn snapshot_seq(&self) -> u64 {
        self.store.as_ref().map(|s| s.seq).unwrap_or(0)
    }

    /// Number of apply records made durable in the current journal
    /// since the last snapshot.
    pub fn journaled_changes(&self) -> u64 {
        self.store.as_ref().map(|s| s.appended).unwrap_or(0)
    }

    /// Whether committed applies are currently being journaled (a state
    /// directory is attached, a snapshot exists, and no append has
    /// failed since).
    pub fn journaling(&self) -> bool {
        self.store.as_ref().is_some_and(|s| s.journal.is_some())
    }

    /// Serialize the full verifier state into snapshot sections.
    fn encode_sections(&self) -> Vec<(u32, Vec<u8>)> {
        let mut meta = Writer::new();
        meta.u8(match self.update_order {
            UpdateOrder::InsertFirst => 0,
            UpdateOrder::DeleteFirst => 1,
            UpdateOrder::AsGiven => 2,
        });
        meta.u8(self.model_full_scan as u8);
        match self.auto_compact {
            Some(n) => {
                meta.u8(1);
                meta.u32(n);
            }
            None => meta.u8(0),
        }

        let mut reg = Writer::new();
        let (node_names, iface_names) = self.registry.export_names();
        reg.len_prefix(node_names.len());
        for n in &node_names {
            reg.str(n);
        }
        reg.len_prefix(iface_names.len());
        for n in &iface_names {
            reg.str(n);
        }

        let mut cfgs = Writer::new();
        cfgs.len_prefix(self.configs.len());
        for (name, cfg) in &self.configs {
            cfgs.str(name);
            cfgs.str(&print_config(cfg));
        }

        let mut model = Writer::new();
        self.model.encode_state(&mut model);
        let mut checker = Writer::new();
        self.checker.encode_state(&mut checker);

        vec![
            (SEC_META, meta.finish()),
            (SEC_REGISTRY, reg.finish()),
            (SEC_CONFIGS, cfgs.finish()),
            (SEC_MODEL, model.finish()),
            (SEC_CHECKER, checker.finish()),
        ]
    }

    /// Write a checksummed snapshot of the current state to the
    /// attached state directory (atomically: write-temp, fsync, rename,
    /// fsync dir), start a fresh journal extending it, and prune old
    /// snapshots down to the retention count. Returns the new snapshot
    /// sequence number.
    pub fn save_snapshot(&mut self) -> Result<u64, StoreError> {
        let (dir, seq) = match &self.store {
            Some(s) => (s.dir.clone(), s.seq + 1),
            None => {
                return Err(StoreError::Corrupt(
                    "no state directory attached (see attach_state_dir)".into(),
                ))
            }
        };
        let bytes = encode_snapshot(&self.encode_sections());
        let snap_bytes = bytes.len() as i64;
        atomic_write(&snapshot_path(&dir, seq), &bytes)?;

        // The snapshot is durable from here: even if starting the new
        // journal fails, restore finds `seq` intact (an old journal
        // naming an older seq is rejected by the seq cross-check).
        let journal = match Journal::create(&journal_path(&dir), seq) {
            Ok(j) => Some(j),
            Err(e) => {
                self.telemetry.counter("store.journal_open_failures").incr();
                self.warnings.insert(format!(
                    "persistence: journal create failed after snapshot {seq}: {e} \
                     (journaling disabled until next snapshot)"
                ));
                None
            }
        };
        if let Err(e) = prune_snapshots(&dir, KEEP_SNAPSHOTS) {
            // Retention is best-effort; stale snapshots are harmless.
            self.telemetry.counter("store.prune_failures").incr();
            let _ = e;
        }
        if let Some(s) = self.store.as_mut() {
            s.seq = seq;
            s.journal = journal;
            s.appended = 0;
        }
        self.telemetry.counter("store.snapshots_written").incr();
        self.telemetry.gauge("store.snapshot_bytes").set(snap_bytes);
        Ok(seq)
    }

    /// Compute the journal record for a transition the transaction is
    /// about to commit. `None` when journaling is off — the common
    /// (no persistence) case pays one `Option` check and nothing else.
    pub(super) fn journal_record_for(
        &self,
        new_configs: &BTreeMap<String, DeviceConfig>,
    ) -> Option<Vec<u8>> {
        self.store
            .as_ref()
            .and_then(|s| s.journal.as_ref())
            .map(|_| encode_delta(&self.configs, new_configs))
    }

    /// Append a committed change's record to the journal. On failure,
    /// journaling is disabled until the next snapshot — the journal on
    /// disk stays a checksummed exact prefix of the committed changes,
    /// with no gaps.
    pub(super) fn journal_append(&mut self, record: Vec<u8>) {
        let Some(store) = self.store.as_mut() else { return };
        let Some(journal) = store.journal.as_mut() else { return };
        match journal.append(&record) {
            Ok(()) => {
                store.appended += 1;
                self.telemetry.counter("store.journal_appends").incr();
            }
            Err(e) => {
                store.journal = None;
                self.telemetry.counter("store.journal_append_failures").incr();
                self.warnings.insert(format!(
                    "persistence: journal append failed: {e} \
                     (journaling disabled until next snapshot)"
                ));
            }
        }
    }

    /// After a wholesale rebuild committed configurations that never
    /// went through the journaled incremental path, the journal no
    /// longer extends to the current state. Re-base it on a fresh
    /// snapshot (best-effort: on failure, journaling stays off until
    /// the next explicit snapshot).
    pub(super) fn rebase_journal_after_rebuild(&mut self) {
        if self.store.is_none() {
            return;
        }
        if let Some(s) = self.store.as_mut() {
            // Whatever happens below, the old journal must not receive
            // further appends — its base no longer matches.
            s.journal = None;
        }
        if let Err(e) = self.save_snapshot() {
            self.telemetry.counter("store.snapshot_failures").incr();
            self.warnings.insert(format!(
                "persistence: snapshot after rebuild failed: {e} \
                 (journaling disabled until next snapshot)"
            ));
        }
    }

    /// Open a verifier from a state directory, walking the recovery
    /// ladder: newest snapshot + journal replay → previous snapshot →
    /// full rebuild from `fallback` configurations. Never refuses to
    /// start over recoverable corruption — the report says which rung
    /// ran and what was discarded. The only `Err` cases are the
    /// fallback build itself failing (e.g. the fallback configurations
    /// do not verify) or the state directory being uncreatable.
    pub fn open(
        state_dir: &Path,
        fallback: BTreeMap<String, DeviceConfig>,
    ) -> Result<(Self, RestoreReport), Error> {
        Self::open_opts(state_dir, fallback, false)
    }

    /// [`RealConfig::open`] with restore options. With
    /// `coalesce_replay`, the journal's records are folded into their
    /// net config delta and verified as **one** incremental apply
    /// instead of one per record — the restore-time analogue of
    /// [`RealConfig::apply_coalesced`], and the fast path when a crash
    /// interrupted a long change stream. The committed state reached is
    /// identical; only intermediate states are skipped.
    pub fn open_opts(
        state_dir: &Path,
        fallback: BTreeMap<String, DeviceConfig>,
        coalesce_replay: bool,
    ) -> Result<(Self, RestoreReport), Error> {
        let t0 = Instant::now();
        let mut report = RestoreReport {
            source: RestoreSource::ColdStart,
            replayed: 0,
            discarded_corrupt: 0,
            snapshots_rejected: 0,
            notes: Vec::new(),
            elapsed: std::time::Duration::ZERO,
        };

        let snaps = match list_snapshots(state_dir) {
            Ok(s) => s,
            Err(e) => {
                report.notes.push(format!("state dir unreadable: {e}"));
                Vec::new()
            }
        };

        for (rank, (seq, path)) in snaps.iter().take(KEEP_SNAPSHOTS).enumerate() {
            let mut rc = match Self::restore_from_file(path) {
                Ok(rc) => rc,
                Err(e) => {
                    report.snapshots_rejected += 1;
                    report.notes.push(format!("snapshot {seq} rejected: {e}"));
                    continue;
                }
            };
            let mut journal_clean = false;
            if rank == 0 {
                journal_clean =
                    rc.replay_journal(state_dir, *seq, coalesce_replay, &mut report);
                report.source = RestoreSource::Snapshot { seq: *seq };
            } else {
                report.source = RestoreSource::PreviousSnapshot { seq: *seq };
                report
                    .notes
                    .push("journal (if any) extends a newer snapshot; not replayed".into());
            }

            if let Err(e) = rc.attach_state_dir(state_dir) {
                report.notes.push(format!("state dir re-attach failed: {e}"));
            } else if journal_clean {
                // The journal on disk is exactly the replayed records:
                // keep extending it.
                let j = Journal::attach(&journal_path(state_dir));
                if let Some(s) = rc.store.as_mut() {
                    s.seq = *seq;
                    s.journal = Some(j);
                    s.appended = report.replayed as u64;
                }
            } else {
                // Torn tail, seq mismatch, or an older snapshot: the
                // journal does not match the restored state. Re-base on
                // a fresh snapshot.
                rc.rebase_journal_after_rebuild();
            }

            rc.finish_restore(&mut report, t0);
            return Ok((rc, report));
        }

        // Bottom rung: full rebuild from the fallback configurations.
        if !snaps.is_empty() {
            report.source = RestoreSource::Rebuilt;
            report
                .notes
                .push("all snapshots rejected; rebuilt from fallback configs".into());
        }
        let (mut rc, _full) = Self::new(fallback)?;
        if let Err(e) = rc.attach_state_dir(state_dir) {
            report.notes.push(format!("state dir attach failed: {e}"));
        } else {
            rc.rebase_journal_after_rebuild();
        }
        rc.finish_restore(&mut report, t0);
        Ok((rc, report))
    }

    /// Record restore telemetry on the (possibly restored) registry.
    fn finish_restore(&mut self, report: &mut RestoreReport, t0: Instant) {
        report.elapsed = t0.elapsed();
        self.telemetry.counter("store.restores").incr();
        if report.replayed > 0 {
            self.telemetry
                .counter("store.journal_replays")
                .add(report.replayed as u64);
        }
        if report.discarded_corrupt > 0 {
            self.telemetry
                .counter("store.corrupt_records_skipped")
                .add(report.discarded_corrupt as u64);
        }
        self.telemetry
            .histogram("store.restore_us")
            .record(report.elapsed.as_micros() as u64);
    }

    /// Decode one snapshot file into a fully wired verifier. Any
    /// defect — bad CRC, truncation, cross-reference out of bounds,
    /// facts that no longer lower — is an `Err`, never a verifier that
    /// miscomputes.
    fn restore_from_file(path: &Path) -> Result<Self, String> {
        let bytes = rc_store::read_file(path).map_err(|e| e.to_string())?;
        let sections = decode_snapshot(&bytes).map_err(|e| e.to_string())?;
        let section = |tag: u32| -> Result<&[u8], String> {
            sections
                .iter()
                .find(|(t, _)| *t == tag)
                .map(|(_, b)| b.as_slice())
                .ok_or_else(|| format!("snapshot missing section {tag}"))
        };
        let werr = |e: rc_store::WireError| e.0;
        let in_sec = |sec: &str| {
            let sec = sec.to_string();
            move |e: rc_store::WireError| format!("{sec}: {}", e.0)
        };

        // META.
        let mut r = Reader::new(section(SEC_META)?);
        let update_order = match r.u8().map_err(werr)? {
            0 => UpdateOrder::InsertFirst,
            1 => UpdateOrder::DeleteFirst,
            2 => UpdateOrder::AsGiven,
            t => return Err(format!("bad update-order tag {t}")),
        };
        let model_full_scan = r.u8().map_err(werr)? != 0;
        let auto_compact = match r.u8().map_err(werr)? {
            0 => None,
            1 => Some(r.u32().map_err(werr)?),
            t => return Err(format!("bad auto-compact tag {t}")),
        };
        r.done().map_err(werr)?;

        // REGISTRY: names in id order, so every id in the model /
        // checker sections resolves to the same name it had live.
        let mut r = Reader::new(section(SEC_REGISTRY)?);
        let n = r.len_prefix().map_err(werr)?;
        let mut node_names = Vec::with_capacity(n);
        for _ in 0..n {
            node_names.push(r.str().map_err(werr)?.to_string());
        }
        let n = r.len_prefix().map_err(werr)?;
        let mut iface_names = Vec::with_capacity(n);
        for _ in 0..n {
            iface_names.push(r.str().map_err(werr)?.to_string());
        }
        r.done().map_err(werr)?;
        let mut registry = Registry::from_names(node_names, iface_names)?;

        // CONFIGS: canonical printed text, re-parsed.
        let mut r = Reader::new(section(SEC_CONFIGS)?);
        let n = r.len_prefix().map_err(werr)?;
        let mut configs = BTreeMap::new();
        for _ in 0..n {
            let name = r.str().map_err(werr)?.to_string();
            let text = r.str().map_err(werr)?;
            let cfg = parse_config(text)
                .map_err(|e| format!("snapshot config {name:?} unparseable: {e}"))?;
            if cfg.hostname != name {
                return Err(format!(
                    "snapshot config hostname mismatch: key {name:?} vs {:?}",
                    cfg.hostname
                ));
            }
            if configs.insert(name, cfg).is_some() {
                return Err("snapshot config duplicated".into());
            }
        }
        r.done().map_err(werr)?;

        // MODEL and CHECKER: handle-for-handle state restore.
        let mut r = Reader::new(section(SEC_MODEL)?);
        let mut model = ApkModel::decode_state(&mut r).map_err(in_sec("model"))?;
        r.done().map_err(in_sec("model"))?;
        let mut r = Reader::new(section(SEC_CHECKER)?);
        let mut checker = PolicyChecker::decode_state(&mut r, model.pred_slots())
            .map_err(in_sec("checker"))?;
        r.done().map_err(in_sec("checker"))?;

        // Re-derive everything that is cheaper to recompute than to
        // store: lowering is deterministic and all names are already
        // interned, so facts and warnings come back exactly as they
        // were; the routing engine is rebuilt by replaying the full
        // fact set (the paper's dp-gen stage, minus model and check).
        let backend = model.backend();
        let lowered = lower(&configs, &mut registry);
        let warnings = lowered.warnings.iter().map(|w| w.to_string()).collect();

        let telemetry = rc_telemetry::Telemetry::new();
        let mut engine = RoutingEngine::new();
        engine.set_telemetry(telemetry.clone());
        engine
            .apply(lowered.facts.iter().map(|f| (f.clone(), 1)))
            .map_err(|e| format!("restored facts no longer evaluate: {e}"))?;

        let mut devices = std::collections::BTreeSet::new();
        for f in &lowered.facts {
            if let Fact::Device(n) = f {
                devices.insert(*n);
            }
        }

        // Prime the FIB grouper with the engine's full FIB so the next
        // incremental convert diffs against the right baseline, and
        // cross-check the restored model against the rebuilt FIB: the
        // rule count must line up or the snapshot and configs disagree.
        let mut grouper = crate::convert::FibGrouper::default();
        let updates = grouper.convert(engine.fib_delta());
        let (fins, _frem) = engine.filter_delta();
        let expected_rules =
            updates.iter().filter(|u| u.is_insert()).count() + fins.len();
        if model.num_rules() != expected_rules {
            return Err(format!(
                "snapshot model has {} rules but configs lower to {}",
                model.num_rules(),
                expected_rules
            ));
        }

        model.set_telemetry(&telemetry);
        model.set_full_scan(model_full_scan);
        checker.set_telemetry(&telemetry);

        Ok(RealConfig {
            configs,
            registry,
            facts: lowered.facts,
            warnings,
            engine,
            model,
            checker,
            grouper,
            devices,
            update_order,
            model_full_scan,
            backend,
            threads: None,
            auto_compact,
            changes_since_compact: 0,
            adaptive_compact: None,
            telemetry,
            poisoned: false,
            store: None,
        })
    }

    /// Replay the journal (if it extends `snapshot_seq`) through the
    /// incremental apply path. Returns whether the journal on disk is a
    /// clean exact record of what was replayed (and may therefore keep
    /// being appended to); any defect stops replay at the last good
    /// record and counts the rest as discarded.
    fn replay_journal(
        &mut self,
        dir: &Path,
        snapshot_seq: u64,
        coalesce: bool,
        report: &mut RestoreReport,
    ) -> bool {
        let path = journal_path(dir);
        if !path.exists() {
            report.notes.push("no journal found".into());
            return false;
        }
        let jr = match read_journal(&path) {
            Ok(jr) => jr,
            Err(e) => {
                report.discarded_corrupt += 1;
                report.notes.push(format!("journal unreadable: {e}"));
                return false;
            }
        };
        if jr.snapshot_seq != snapshot_seq {
            report.discarded_corrupt += jr.records.len().max(1);
            report.notes.push(format!(
                "journal extends snapshot {} but {} was restored; discarded",
                jr.snapshot_seq, snapshot_seq
            ));
            return false;
        }
        let mut clean = true;
        if jr.discarded > 0 {
            report.discarded_corrupt += jr.discarded;
            report.notes.push(format!("journal tail torn ({} discarded)", jr.discarded));
            clean = false;
        }
        let total = jr.records.len();
        if coalesce {
            // Fold every record's config delta into the net transition
            // and verify it as one incremental apply. Decode failures
            // truncate to the clean prefix, exactly as serial replay.
            let mut new_configs = self.configs.clone();
            let mut folded = 0usize;
            for (i, record) in jr.records.iter().enumerate() {
                match decode_delta(record) {
                    Ok((upserts, removes)) => {
                        for (name, cfg) in upserts {
                            new_configs.insert(name, cfg);
                        }
                        for name in &removes {
                            new_configs.remove(name);
                        }
                        folded += 1;
                    }
                    Err(e) => {
                        report.discarded_corrupt += total - i;
                        report.notes.push(format!("journal record {i} corrupt: {e}"));
                        clean = false;
                        break;
                    }
                }
            }
            if folded == 0 {
                return clean;
            }
            if let Err(e) = self.apply_configs(new_configs) {
                report.discarded_corrupt += folded;
                report
                    .notes
                    .push(format!("coalesced replay of {folded} records failed: {e}"));
                if self.poisoned {
                    let _ = self.rebuild();
                }
                return false;
            }
            report.replayed += folded;
            report.notes.push(format!("journal coalesced: {folded} records, one apply"));
            return clean;
        }
        for (i, record) in jr.records.into_iter().enumerate() {
            let (upserts, removes) = match decode_delta(&record) {
                Ok(d) => d,
                Err(e) => {
                    report.discarded_corrupt += total - i;
                    report.notes.push(format!("journal record {i} corrupt: {e}"));
                    return false;
                }
            };
            let mut new_configs = self.configs.clone();
            for (name, cfg) in upserts {
                new_configs.insert(name, cfg);
            }
            for name in &removes {
                new_configs.remove(name);
            }
            if let Err(e) = self.apply_configs(new_configs) {
                // The record was durable but no longer applies (e.g. a
                // bit-flip survived CRC — astronomically unlikely — or
                // the apply genuinely fails). Heal and stop here.
                report.discarded_corrupt += total - i;
                report.notes.push(format!("journal record {i} failed to apply: {e}"));
                if self.poisoned {
                    let _ = self.rebuild();
                }
                return false;
            }
            report.replayed += 1;
        }
        clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_netcfg::change::ChangeSet;
    use rc_netcfg::{gen, topology};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rc-core-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ring(n: u32) -> BTreeMap<String, DeviceConfig> {
        gen::build_configs(&topology::ring(n), gen::ProtocolChoice::Ospf)
    }

    /// Restored verifier must be observably identical to the live one.
    fn assert_same(live: &RealConfig, restored: &RealConfig) {
        assert_eq!(live.configs(), restored.configs());
        assert_eq!(live.facts(), restored.facts());
        assert_eq!(live.fib(), restored.fib());
        assert_eq!(live.num_rules(), restored.num_rules());
        assert_eq!(live.num_ecs(), restored.num_ecs());
        assert_eq!(live.num_pairs(), restored.num_pairs());
        assert_eq!(live.checker.verdicts(), restored.checker.verdicts());
        assert_eq!(
            live.checker.policy_specs().len(),
            restored.checker.policy_specs().len()
        );
    }

    #[test]
    fn open_on_empty_dir_is_a_cold_start() {
        let dir = temp_dir("cold");
        let (rc, report) = RealConfig::open(&dir, ring(4)).unwrap();
        assert_eq!(report.source, RestoreSource::ColdStart);
        assert_eq!(report.replayed, 0);
        assert!(rc.journaling(), "cold start should leave a snapshot + journal");
        assert_eq!(rc.snapshot_seq(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_restores_identically_and_replays_the_journal() {
        let dir = temp_dir("roundtrip");
        let (mut live, _) = RealConfig::new(ring(5)).unwrap();
        let p = live
            .require_reachability("r000", "r002", topology::host_prefix(2))
            .unwrap();
        live.recheck_policies();
        live.attach_state_dir(&dir).unwrap();
        live.save_snapshot().unwrap();

        // Two journaled changes after the snapshot.
        live.apply_change(&ChangeSet::link_failure("r001", "eth1")).unwrap();
        let mut up = ChangeSet::new();
        up.push(rc_netcfg::change::ChangeOp::EnableInterface {
            device: "r001".into(),
            iface: "eth1".into(),
        });
        live.apply_change(&up).unwrap();
        assert_eq!(live.journaled_changes(), 2);

        let (restored, report) = RealConfig::open(&dir, BTreeMap::new()).unwrap();
        assert_eq!(report.source, RestoreSource::Snapshot { seq: 1 });
        assert_eq!(report.replayed, 2);
        assert_eq!(report.discarded_corrupt, 0);
        assert_same(&live, &restored);
        assert!(restored.is_satisfied(p));
        assert!(restored.journaling());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = temp_dir("ladder");
        let (mut live, _) = RealConfig::new(ring(4)).unwrap();
        live.attach_state_dir(&dir).unwrap();
        live.save_snapshot().unwrap();
        let twin_fib = live.fib();
        live.apply_change(&ChangeSet::link_failure("r001", "eth1")).unwrap();
        live.save_snapshot().unwrap();

        // Flip a byte in the newest snapshot's body.
        let newest = snapshot_path(&dir, 2);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();

        let (restored, report) = RealConfig::open(&dir, BTreeMap::new()).unwrap();
        assert_eq!(report.source, RestoreSource::PreviousSnapshot { seq: 1 });
        assert_eq!(report.snapshots_rejected, 1);
        assert_eq!(restored.fib(), twin_fib);
        // Restore re-based on a fresh snapshot, so journaling is live.
        assert!(restored.journaling());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_snapshots_corrupt_rebuilds_from_fallback() {
        let dir = temp_dir("rebuilt");
        let (mut live, _) = RealConfig::new(ring(4)).unwrap();
        live.attach_state_dir(&dir).unwrap();
        live.save_snapshot().unwrap();
        live.apply_change(&ChangeSet::link_failure("r001", "eth1")).unwrap();
        live.save_snapshot().unwrap();
        for (_, path) in list_snapshots(&dir).unwrap() {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
        }
        let (restored, report) = RealConfig::open(&dir, ring(4)).unwrap();
        assert_eq!(report.source, RestoreSource::Rebuilt);
        assert_eq!(report.snapshots_rejected, 2);
        let (twin, _) = RealConfig::new(ring(4)).unwrap();
        assert_eq!(restored.fib(), twin.fib());
        assert!(restored.journaling());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_discarded_and_rebased() {
        let dir = temp_dir("torn-tail");
        let (mut live, _) = RealConfig::new(ring(5)).unwrap();
        live.attach_state_dir(&dir).unwrap();
        live.save_snapshot().unwrap();
        live.apply_change(&ChangeSet::link_failure("r001", "eth1")).unwrap();
        live.apply_change(&ChangeSet::link_failure("r003", "eth1")).unwrap();

        // Tear the last record: chop bytes off the journal tail.
        let jpath = journal_path(&dir);
        let bytes = std::fs::read(&jpath).unwrap();
        std::fs::write(&jpath, &bytes[..bytes.len() - 3]).unwrap();

        // Twin: only the first (durable) change.
        let (mut twin, _) = RealConfig::new(ring(5)).unwrap();
        twin.apply_change(&ChangeSet::link_failure("r001", "eth1")).unwrap();

        let (restored, report) = RealConfig::open(&dir, BTreeMap::new()).unwrap();
        assert_eq!(report.source, RestoreSource::Snapshot { seq: 1 });
        assert_eq!(report.replayed, 1);
        assert_eq!(report.discarded_corrupt, 1);
        assert_same(&twin, &restored);
        // Journal no longer matches state: re-based on snapshot 2.
        assert_eq!(restored.snapshot_seq(), 2);
        assert!(restored.journaling());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_requires_an_attached_state_dir() {
        let (mut rc, _) = RealConfig::new(ring(3)).unwrap();
        assert!(rc.save_snapshot().is_err());
        assert!(!rc.journaling());
        assert_eq!(rc.journaled_changes(), 0);
    }

    #[test]
    fn fault_free_runs_carry_no_store_metrics() {
        let (mut rc, _) = RealConfig::new(ring(4)).unwrap();
        rc.apply_change(&ChangeSet::link_failure("r001", "eth1")).unwrap();
        let snap = rc.metrics_snapshot();
        assert!(
            !snap.counters.keys().any(|k| k.starts_with("store.")),
            "no persistence in use, but store.* counters appeared"
        );
    }
}
