//! Ingest queue and adaptive batch coalescing: absorb a burst of
//! pending configuration changes and verify it as one transactional
//! apply.
//!
//! The paper's pitch is keeping verification *ahead of the arrival
//! rate* of changes. One-at-a-time application pays the full
//! three-stage pipeline per change; under a burst (a maintenance
//! window, a flapping link group) the queue deepens faster than the
//! pipeline drains it. Coalescing folds the pending burst into one
//! [`ChangeSet`] — superseded writes cancel, a down-then-up link pair
//! nets out entirely — and runs the pipeline once, so the cost of a
//! burst approaches the cost of its *net* effect.
//!
//! Three layers:
//!
//! - [`ChangeSet::coalesce`] (in `rc_netcfg`): the pure folding rule.
//! - [`RealConfig::apply_coalesced`]: fold + one transactional apply +
//!   exactly one journal record (the rc_store prefix contract sees a
//!   coalesced burst as a single committed change).
//! - [`RealConfig::apply_stream`]: a virtual-clock ingest loop driving
//!   [`ChangeQueue`] with depth- and age-based flush thresholds — the
//!   future daemon's main loop, and the measurement harness for the
//!   `throughput` benchmark today.
//!
//! Telemetry (`queue.*`, `coalesce.*`) is registered lazily inside
//! these paths only: a verifier that never coalesces carries none of
//! the keys, keeping committed gate baselines byte-identical.

use std::collections::VecDeque;
use std::time::Instant;

use rc_netcfg::change::ChangeSet;
use serde::Serialize;

use super::{Error, RealConfig};
use crate::report::ChangeReport;

/// When a pending burst is flushed into one coalesced apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Flush as soon as this many changes are pending.
    pub max_depth: usize,
    /// Flush when the oldest pending change has waited this long
    /// (microseconds of stream time).
    pub max_age_us: u64,
    /// Never fold more than this many changes into one apply (bounds
    /// worst-case batch latency).
    pub max_batch: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy { max_depth: 8, max_age_us: 2_000, max_batch: 256 }
    }
}

impl CoalescePolicy {
    /// The degenerate policy: every change is its own batch. Runs the
    /// same code path as real coalescing, which is what makes the A/B
    /// comparison in the `throughput` benchmark fair.
    pub fn one_at_a_time() -> Self {
        CoalescePolicy { max_depth: 1, max_age_us: 0, max_batch: 1 }
    }
}

/// FIFO of pending configuration changes, stamped with arrival time
/// (microseconds on the caller's clock — virtual in benchmarks).
#[derive(Debug, Default)]
pub struct ChangeQueue {
    pending: VecDeque<(u64, ChangeSet)>,
    max_depth_seen: usize,
}

impl ChangeQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a change that arrived at `arrival_us`.
    pub fn push(&mut self, arrival_us: u64, cs: ChangeSet) {
        self.pending.push_back((arrival_us, cs));
        self.max_depth_seen = self.max_depth_seen.max(self.pending.len());
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Deepest the queue has ever been.
    pub fn max_depth_seen(&self) -> usize {
        self.max_depth_seen
    }

    /// Arrival time of the oldest pending change.
    pub fn oldest_arrival(&self) -> Option<u64> {
        self.pending.front().map(|(t, _)| *t)
    }

    /// Whether the policy demands a flush at time `now_us`.
    pub fn due(&self, now_us: u64, policy: &CoalescePolicy) -> bool {
        if self.pending.len() >= policy.max_depth {
            return true;
        }
        match self.oldest_arrival() {
            Some(t) => now_us.saturating_sub(t) >= policy.max_age_us,
            None => false,
        }
    }

    /// Dequeue up to `max` pending changes, oldest first.
    pub fn drain(&mut self, max: usize) -> Vec<(u64, ChangeSet)> {
        let n = self.pending.len().min(max.max(1));
        self.pending.drain(..n).collect()
    }
}

/// What one [`RealConfig::apply_stream`] run did, with enough raw data
/// to compute sustained throughput and latency percentiles.
#[derive(Clone, Debug, Default, Serialize)]
pub struct StreamReport {
    /// Changes that arrived on the stream.
    pub arrivals: usize,
    /// Transactional applies performed (excluding net no-op batches).
    pub batches: usize,
    /// Batches that folded to a net no-op and skipped the pipeline.
    pub noop_batches: usize,
    /// Operations cancelled by last-writer-wins folding, total.
    pub cancelled_ops: usize,
    /// Largest number of changes folded into one apply.
    pub max_coalesced: usize,
    /// Deepest the ingest queue got.
    pub max_queue_depth: usize,
    /// Total pipeline wall time (microseconds actually spent applying).
    pub busy_us: u64,
    /// Stream time from first arrival to last completion.
    pub span_us: u64,
    /// Per-change latency: completion of the batch that carried it
    /// minus its arrival, microseconds.
    pub latencies_us: Vec<u64>,
}

impl StreamReport {
    /// Sustained throughput over the stream's span.
    pub fn changes_per_sec(&self) -> f64 {
        if self.span_us == 0 {
            return 0.0;
        }
        self.arrivals as f64 * 1_000_000.0 / self.span_us as f64
    }

    /// Latency percentile (`p` in 0..=100) over all changes.
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

impl RealConfig {
    /// Fold a burst of pending changes into one transactional apply.
    ///
    /// The burst is coalesced with [`ChangeSet::coalesce`]
    /// (last-writer-wins on set-type operations), applied to the
    /// current configurations, and verified through the normal
    /// [`RealConfig::apply_configs`] transaction — so the whole burst
    /// commits or rolls back atomically and produces **exactly one**
    /// checksummed journal record, keeping the rc_store journal a
    /// prefix of committed states at batch granularity.
    ///
    /// A burst whose folded effect leaves the configurations unchanged
    /// (a link group that went down and came back up) skips the
    /// pipeline entirely: nothing to verify, nothing to journal.
    ///
    /// The report's `coalesced_changes` / `cancelled_ops` fields carry
    /// the batch accounting; `coalesce.*` telemetry is registered on
    /// first use only.
    pub fn apply_coalesced(&mut self, burst: &[ChangeSet]) -> Result<ChangeReport, Error> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        let (folded, cancelled) = ChangeSet::coalesce(burst);
        let mut new_configs = self.configs.clone();
        if let Err(e) = folded.apply(&mut new_configs) {
            self.telemetry.counter("verifier.rollbacks").incr();
            return Err(Error::Change(e));
        }
        let tel = self.telemetry.clone();
        tel.counter("coalesce.batches").incr();
        tel.counter("coalesce.changes").add(burst.len() as u64);
        tel.histogram("coalesce.batch_size").record(burst.len() as u64);
        if cancelled > 0 {
            tel.counter("coalesce.cancelled_ops").add(cancelled as u64);
        }
        if new_configs == self.configs {
            // Net no-op: the burst cancelled itself out.
            tel.counter("coalesce.noop_batches").incr();
            let report = ChangeReport {
                coalesced_changes: burst.len(),
                cancelled_ops: cancelled,
                coalesced_noop: true,
                metrics: self.telemetry.snapshot(),
                ..Default::default()
            };
            return Ok(report);
        }
        let mut report = self.apply_configs(new_configs)?;
        report.coalesced_changes = burst.len();
        report.cancelled_ops = cancelled;
        Ok(report)
    }

    /// Drive a timed stream of changes through an ingest queue with
    /// adaptive batch coalescing, and measure sustained throughput.
    ///
    /// `arrivals` is `(arrival_us, change)` in nondecreasing arrival
    /// order on a *virtual* microsecond clock. The loop is a discrete
    /// event simulation: pending changes accumulate while an apply is
    /// in flight (virtual time advances by the apply's measured wall
    /// time), and the queue flushes when the policy's depth or age
    /// threshold trips — so a burst that arrives faster than the
    /// pipeline drains coalesces into progressively larger batches,
    /// exactly as a live daemon would behave. Per-change latency is
    /// completion of the carrying batch minus arrival.
    ///
    /// Errors abort the stream at the failing batch (the verifier
    /// keeps the last committed state, per the transaction contract).
    pub fn apply_stream(
        &mut self,
        arrivals: impl IntoIterator<Item = (u64, ChangeSet)>,
        policy: &CoalescePolicy,
    ) -> Result<StreamReport, Error> {
        let mut stream: Vec<(u64, ChangeSet)> = arrivals.into_iter().collect();
        stream.sort_by_key(|(t, _)| *t);
        let tel = self.telemetry.clone();
        let mut queue = ChangeQueue::new();
        let mut report = StreamReport { arrivals: stream.len(), ..Default::default() };
        let mut now_us: u64 = stream.first().map(|(t, _)| *t).unwrap_or(0);
        let start_us = now_us;
        let mut next = 0usize;

        while next < stream.len() || !queue.is_empty() {
            // Admit everything that has arrived by virtual `now`.
            while next < stream.len() && stream[next].0 <= now_us {
                let (t, cs) = stream[next].clone();
                queue.push(t, cs);
                next += 1;
                tel.counter("queue.enqueued").incr();
            }
            // Flush when the policy trips — or unconditionally once the
            // stream is exhausted (nothing left to wait for).
            let exhausted = next >= stream.len();
            if !queue.is_empty() && (exhausted || queue.due(now_us, policy)) {
                if queue.len() >= policy.max_depth {
                    tel.counter("queue.flush.depth").incr();
                } else if !exhausted {
                    tel.counter("queue.flush.age").incr();
                } else {
                    tel.counter("queue.flush.drain").incr();
                }
                tel.histogram("queue.depth").record(queue.len() as u64);
                let batch = queue.drain(policy.max_batch);
                let sets: Vec<ChangeSet> = batch.iter().map(|(_, cs)| cs.clone()).collect();
                let t = Instant::now();
                let applied = self.apply_coalesced(&sets)?;
                let elapsed_us = t.elapsed().as_micros() as u64;
                now_us += elapsed_us;
                report.busy_us += elapsed_us;
                if applied.coalesced_noop {
                    report.noop_batches += 1;
                } else {
                    report.batches += 1;
                }
                report.cancelled_ops += applied.cancelled_ops;
                report.max_coalesced = report.max_coalesced.max(sets.len());
                for (arrived, _) in &batch {
                    report.latencies_us.push(now_us.saturating_sub(*arrived));
                }
                continue;
            }
            // Idle: advance virtual time to the next event — the next
            // arrival or the oldest pending change's age deadline.
            let deadline = queue
                .oldest_arrival()
                .map(|t| t.saturating_add(policy.max_age_us));
            let next_arrival = (!exhausted).then(|| stream[next].0);
            match (deadline, next_arrival) {
                (Some(d), Some(a)) => now_us = now_us.max(d.min(a)),
                (Some(d), None) => now_us = now_us.max(d),
                (None, Some(a)) => now_us = now_us.max(a),
                (None, None) => break,
            }
        }
        report.max_queue_depth = queue.max_depth_seen();
        report.span_us = now_us.saturating_sub(start_us);
        Ok(report)
    }
}
