//! Verification reports: what each pipeline stage did and how long it
//! took. Serializable so benchmark harnesses can persist raw results.

use std::time::Duration;

use serde::Serialize;


/// Report of the initial, full verification.
#[derive(Clone, Debug, Default, Serialize)]
pub struct FullReport {
    /// Wall time of the full data plane generation.
    #[serde(with = "duration_micros")]
    pub dp_gen: Duration,
    /// Dataflow records processed (machine-independent work measure).
    pub dp_records: u64,
    /// FIB entries produced.
    pub fib_entries: usize,
    /// Data plane rules installed into the EC model.
    pub rules: usize,
    #[serde(with = "duration_micros")]
    pub model_update: Duration,
    /// ECs in the model after the build.
    pub ecs: usize,
    #[serde(with = "duration_micros")]
    pub policy_check: Duration,
    /// (src, dst) pairs with deliverable traffic.
    pub pairs: usize,
    /// Policies violated from the start (raw ids).
    pub violated: Vec<u32>,
    /// Lowering warnings, formatted.
    pub warnings: Vec<String>,
    /// Pipeline-wide telemetry at the end of the full verification
    /// (cumulative counters, current gauges, latency histograms).
    pub metrics: rc_telemetry::MetricsSnapshot,
}

/// Report of one incremental change verification — the paper's
/// pipeline, stage by stage (Figure 1), with the quantities Tables 2
/// and 3 report.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ChangeReport {
    /// Configuration lines inserted (across devices).
    pub lines_inserted: usize,
    /// Configuration lines deleted.
    pub lines_deleted: usize,
    /// Input facts changed.
    pub fact_changes: usize,

    /// Stage 1: incremental data plane generation.
    #[serde(with = "duration_micros")]
    pub dp_gen: Duration,
    pub dp_records: u64,
    /// FIB + filter rules inserted.
    pub rules_inserted: usize,
    /// FIB + filter rules removed.
    pub rules_removed: usize,

    /// Stage 2: incremental data plane model update.
    #[serde(with = "duration_micros")]
    pub model_update: Duration,
    /// EC move events including transients (order-sensitive churn).
    pub ec_moves: usize,
    /// EC splits performed, including splits whose child ended the
    /// batch on its pre-split action — churn, like `ec_moves`, not a
    /// measure of behaviour change.
    pub ec_splits: usize,
    /// ECs whose behaviour changed somewhere (net). This — not
    /// `ec_splits`/`ec_moves` — is what drives the incremental policy
    /// re-check.
    pub affected_ecs: usize,

    /// Stage 3: incremental policy checking.
    #[serde(with = "duration_micros")]
    pub policy_check: Duration,
    /// Pairs whose paths were modified (the paper's "#Pairs").
    pub affected_pairs: usize,
    /// Pairs whose deliverable-EC set changed (subset of the above).
    pub changed_pairs: usize,
    pub total_pairs: usize,
    pub policies_checked: usize,
    pub newly_violated: Vec<u32>,
    pub newly_satisfied: Vec<u32>,

    /// Number of pending changes this apply coalesced into one
    /// transaction (0 when the change came through the one-at-a-time
    /// path, see `RealConfig::apply_coalesced`).
    pub coalesced_changes: usize,
    /// Operations the coalescer cancelled as superseded writes
    /// (last-writer-wins folding of set-type operations).
    pub cancelled_ops: usize,
    /// True when a coalesced burst folded to a net no-op: the
    /// configurations were unchanged, so the pipeline (and the journal)
    /// were skipped entirely.
    pub coalesced_noop: bool,

    /// New lowering warnings introduced by this change.
    pub warnings: Vec<String>,
    /// True when the incremental path failed and this change was
    /// verified by the self-healing full-rebuild fallback instead
    /// (`RealConfig::apply_configs_or_rebuild`). The per-stage timings
    /// then measure the rebuild, not incremental work.
    pub recovered: bool,
    /// Pipeline-wide telemetry at the end of this change. Counters are
    /// cumulative since the verifier was built, gauges are current.
    pub metrics: rc_telemetry::MetricsSnapshot,
}

impl ChangeReport {
    /// Total verification time across all three stages.
    pub fn total(&self) -> Duration {
        self.dp_gen + self.model_update + self.policy_check
    }
}

mod duration_micros {
    use serde::Serializer;
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u128(d.as_micros())
    }
}
