//! **RealConfig** — incremental network configuration verification.
//!
//! A Rust reproduction of the HotNets '20 paper "Incremental Network
//! Configuration Verification": instead of re-verifying a network from
//! scratch after every configuration change, RealConfig chains three
//! incremental stages (paper Figure 1):
//!
//! 1. an **incremental data plane generator** — routing protocol
//!    semantics (OSPF, eBGP, statics, ACLs, redistribution) written
//!    once as a differential dataflow ([`rc_routing`] on
//!    [`rc_dataflow`]), turning configuration-fact deltas into FIB and
//!    filter rule deltas;
//! 2. an **incremental data plane model updater** — a batch-mode
//!    APKeep-style equivalence-class model ([`rc_apkeep`]) that turns
//!    rule deltas into affected-EC reports;
//! 3. an **incremental policy checker** ([`rc_policy`]) that re-checks
//!    only the policies registered on affected packets and reports
//!    newly violated and newly satisfied policies.
//!
//! # Quickstart
//!
//! ```
//! use rc_netcfg::{gen, topology, ChangeSet};
//! use realconfig::RealConfig;
//!
//! // A 4-node OSPF ring.
//! let configs = gen::build_configs(&topology::ring(4), gen::ProtocolChoice::Ospf);
//! let (mut rc, full) = RealConfig::new(configs).unwrap();
//! assert!(full.fib_entries > 0);
//!
//! // "Traffic from r000 must reach r002's subnet."
//! let policy = rc
//!     .require_reachability("r000", "r002", topology::host_prefix(2))
//!     .unwrap();
//! rc.recheck_policies();
//! assert!(rc.is_satisfied(policy));
//!
//! // Verify a link failure incrementally — sub-stage timings and
//! // affected counts come back in the report.
//! let report = rc.apply_change(&ChangeSet::link_failure("r001", "eth1")).unwrap();
//! assert!(report.rules_inserted + report.rules_removed > 0);
//! assert!(rc.is_satisfied(policy), "the ring reroutes around the failure");
//!
//! // A second failure cuts the remaining path to r002: the policy
//! // breaks, and the report says so.
//! let report = rc.apply_change(&ChangeSet::link_failure("r003", "eth0")).unwrap();
//! assert_eq!(report.newly_violated, vec![policy.0]);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod convert;
mod report;
mod trace;
mod verifier;

pub use report::{ChangeReport, FullReport};
pub use trace::{HopAction, PacketTrace, TraceHop};
pub use verifier::{
    full_dataplane_baseline, full_dataplane_realconfig, ChangeQueue, CoalescePolicy, Error,
    RealConfig, RestoreReport, RestoreSource, StreamReport, DEFAULT_AUTO_COMPACT,
};

// Compaction policy for `RealConfig::set_adaptive_compact`.
pub use rc_dataflow::CompactionPolicy;

// Packet type used by `RealConfig::trace_packet`.
pub use rc_bdd::pkt::Packet;

// FIB entry type returned by `RealConfig::fib`.
pub use rc_routing::route::FibEntry;

// Re-export the pieces a downstream user needs to drive the verifier.
// `set_threads`/`threads` are the process-global worker-count knob for
// the parallel policy-checking phase (per-verifier override:
// `RealConfig::set_threads`).
pub use rc_bdd::{default_backend, set_default_backend, PredKind};
pub use rc_par::{set_threads, threads};
pub use rc_apkeep::UpdateOrder;
pub use rc_telemetry::{MetricsSnapshot, Telemetry};
pub use rc_netcfg::change::{AclDir, ChangeOp, ChangeSet, RedistTarget};
pub use rc_netcfg::types::{IfaceId, Ip, NodeId, Port, Prefix, Proto};
pub use rc_policy::{PacketClass, Policy, PolicyId};
