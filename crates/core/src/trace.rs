//! Packet tracing: the debugging capability the paper highlights for
//! simulation-based verifiers (§4) — "dumping the full packet traces
//! (what rules they match, which path they take)".
//!
//! A trace injects one concrete packet at a device and follows it
//! through the current data plane model: at every hop it records the
//! matched FIB rule, any ACL verdicts, and the forwarding action, until
//! the packet is delivered, dropped, denied, or found to loop.

use std::collections::BTreeSet;

use rc_apkeep::{EcId, ElementKey, PortAction, RuleMatch};
use rc_bdd::pkt::Packet;
use rc_netcfg::facts::Dir;
use rc_netcfg::types::NodeId;

use crate::verifier::RealConfig;

/// What happened to the packet at one device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HopAction {
    /// Forwarded out these interface names toward these next devices.
    Forwarded { ifaces: Vec<String>, next: Vec<String> },
    /// Delivered to the attached network out these interfaces.
    Delivered { ifaces: Vec<String> },
    /// No route (or an explicit drop route).
    Dropped,
    /// Denied by an ACL (interface name, direction).
    Denied { iface: String, dir: Dir },
    /// The packet re-entered a device already on its path.
    Loop,
}

/// One step of a packet trace.
#[derive(Clone, Debug)]
pub struct TraceHop {
    pub device: String,
    /// The FIB rule the packet matched: `(prefix-length priority,
    /// match)`. `None` means no rule matched (default drop).
    pub fib_rule: Option<(u32, RuleMatch)>,
    pub action: HopAction,
}

/// A full packet trace. ECMP branches are all explored (each device
/// appears once even when several paths cross it).
#[derive(Clone, Debug)]
pub struct PacketTrace {
    pub packet: Packet,
    /// The equivalence class the packet belongs to.
    pub ec: EcId,
    pub start: String,
    pub hops: Vec<TraceHop>,
    /// Devices at which the packet is delivered off-network.
    pub delivered_at: Vec<String>,
    /// Whether any branch of the trace loops.
    pub loops: bool,
}

impl std::fmt::Display for PacketTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "trace dst={}.{}.{}.{} proto={} dport={} (EC {}) from {}:",
            self.packet.dst_ip >> 24,
            (self.packet.dst_ip >> 16) & 255,
            (self.packet.dst_ip >> 8) & 255,
            self.packet.dst_ip & 255,
            self.packet.proto,
            self.packet.dst_port,
            self.ec.0,
            self.start
        )?;
        for hop in &self.hops {
            let rule = match &hop.fib_rule {
                Some((_, RuleMatch::DstPrefix(p))) => format!("{p}"),
                Some((_, m)) => format!("{m:?}"),
                None => "no route".to_string(),
            };
            match &hop.action {
                HopAction::Forwarded { ifaces, next } => writeln!(
                    f,
                    "  {:<16} match {:<18} → forward via {} to {}",
                    hop.device,
                    rule,
                    ifaces.join(","),
                    next.join(",")
                )?,
                HopAction::Delivered { ifaces } => writeln!(
                    f,
                    "  {:<16} match {:<18} → DELIVERED via {}",
                    hop.device,
                    rule,
                    ifaces.join(",")
                )?,
                HopAction::Dropped => {
                    writeln!(f, "  {:<16} match {:<18} → DROPPED", hop.device, rule)?
                }
                HopAction::Denied { iface, dir } => writeln!(
                    f,
                    "  {:<16} ACL {} {:?} → DENIED",
                    hop.device, iface, dir
                )?,
                HopAction::Loop => {
                    writeln!(f, "  {:<16} → LOOP (device re-entered)", hop.device)?
                }
            }
        }
        Ok(())
    }
}

impl RealConfig {
    /// Trace a concrete packet injected at `src` through the current
    /// data plane. Returns `None` when the device is unknown.
    pub fn trace_packet(&self, src: &str, packet: Packet) -> Option<PacketTrace> {
        let start = self.node(src)?;
        let model = self.model();
        let ec = model.ec_of_packet(&packet);
        let graph = self.checker().ec_graph(model, ec);

        let mut trace = PacketTrace {
            packet,
            ec,
            start: src.to_string(),
            hops: Vec::new(),
            delivered_at: Vec::new(),
            loops: false,
        };

        // Walk the EC's forwarding graph from the start, visiting each
        // device once across all ECMP branches.
        let mut queue: Vec<NodeId> = vec![start];
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        while let Some(n) = queue.pop() {
            if !visited.insert(n) {
                continue;
            }
            let device = self.node_name(n).to_string();
            let fib_rule = model
                .matching_rule(ElementKey::Forward(n), &packet)
                .map(|(prio, m, _)| (prio, m));

            // Edges the ACLs removed at this node: show where the
            // packet (or one of its ECMP copies) gets denied.
            for (from, _out, at, dir) in &graph.blocked_edges {
                if *from != n {
                    continue;
                }
                trace.hops.push(TraceHop {
                    device: self.node_name(at.node).to_string(),
                    fib_rule: None,
                    action: HopAction::Denied {
                        iface: self.iface_name(at.iface).to_string(),
                        dir: *dir,
                    },
                });
            }

            let action = model.action(ElementKey::Forward(n), ec).cloned();
            match action {
                None | Some(PortAction::Drop) => {
                    trace.hops.push(TraceHop { device, fib_rule, action: HopAction::Dropped });
                }
                Some(PortAction::Deliver(ifaces)) => {
                    let names =
                        ifaces.iter().map(|i| self.iface_name(*i).to_string()).collect();
                    trace.delivered_at.push(device.clone());
                    trace.hops.push(TraceHop {
                        device,
                        fib_rule,
                        action: HopAction::Delivered { ifaces: names },
                    });
                }
                Some(PortAction::Forward(ifaces)) => {
                    let succs: Vec<NodeId> = graph
                        .succ
                        .get(&n)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    let iface_names: Vec<String> =
                        ifaces.iter().map(|i| self.iface_name(*i).to_string()).collect();
                    if succs.is_empty() && graph.delivers.contains(&n) {
                        // Host-facing forward: leaves the modeled network.
                        trace.delivered_at.push(device.clone());
                        trace.hops.push(TraceHop {
                            device,
                            fib_rule,
                            action: HopAction::Delivered { ifaces: iface_names },
                        });
                        continue;
                    }
                    let mut next_names = Vec::new();
                    for s in &succs {
                        next_names.push(self.node_name(*s).to_string());
                        if visited.contains(s) {
                            trace.loops = true;
                        } else {
                            queue.push(*s);
                        }
                    }
                    trace.hops.push(TraceHop {
                        device,
                        fib_rule,
                        action: HopAction::Forwarded { ifaces: iface_names, next: next_names },
                    });
                }
                Some(other) => unreachable!("filter action {other:?} on a FIB"),
            }
        }

        // A revisit during BFS is only a loop if the EC's analysis says
        // so (diamonds also revisit); defer to the SCC answer.
        if trace.loops {
            let analysis = rc_policy::analyze(&graph);
            trace.loops = analysis.looping.contains(&start);
        }
        Some(trace)
    }
}
