//! Deterministic fault injection for the RealConfig pipeline.
//!
//! The verifier's recovery machinery (transactional apply, poisoning,
//! the full-rebuild fallback — see `realconfig::RealConfig`) is only
//! trustworthy if every failure path can be exercised on demand. This
//! crate provides the substrate: a thread-local [`FaultPlan`] naming
//! *where* (a [`FaultPoint`] — one per pipeline stage boundary), *when*
//! (the Nth time that point is reached) and *how* (return an error, or
//! panic) a fault fires.
//!
//! The hooks are `#[cfg]`-free runtime checks compiled into the
//! production binaries: with no plan installed, [`fire`] is a
//! thread-local load and an `Option` test — far below the noise floor
//! of the stages it guards. Tests install a plan (ideally through the
//! RAII [`FaultGuard`]), drive the verifier, and get byte-for-byte
//! reproducible failures.
//!
//! Fault plans are strictly thread-local: concurrent verifiers on other
//! threads are never affected, and `cargo test`'s default parallelism
//! is safe.
//!
//! # Example
//!
//! ```
//! use rc_faults::{FaultPlan, FaultPoint};
//!
//! // Fail the second engine apply with an error, panic in the first
//! // policy check.
//! let _guard = FaultPlan::new()
//!     .error_on(FaultPoint::EngineApply, 2)
//!     .panic_on(FaultPoint::PolicyCheck, 1)
//!     .install();
//! assert!(!rc_faults::fire(FaultPoint::EngineApply)); // 1st: passes
//! assert!(rc_faults::fire(FaultPoint::EngineApply)); // 2nd: fires
//! assert!(!rc_faults::fire(FaultPoint::EngineApply)); // one-shot
//! ```

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An instrumented point in the verification pipeline. One per stage
/// boundary of the paper's three-stage pipeline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FaultPoint {
    /// Entry of `RoutingEngine::apply` (stage 1, incremental data plane
    /// generation). Fires *before* the engine ingests the fact delta,
    /// so an injected error models a divergence detected with the
    /// engine's own state still untouched.
    EngineApply,
    /// Entry of `ApkModel::apply_batch` (stage 2, incremental data
    /// plane model update). Stage 1 has already committed its delta
    /// when this fires.
    ApkBatch,
    /// Entry of `PolicyChecker::check_incremental` (stage 3,
    /// incremental policy checking). Stages 1 and 2 have committed.
    PolicyCheck,
    /// Inside `rc_store::atomic_write`: the destination is clobbered
    /// with a prefix of the new bytes and the write errors — the torn
    /// file a crashed *naive* writer would leave behind, which
    /// recovery must detect by checksum and survive.
    StoreTornWrite,
    /// Inside `rc_store::Journal::append`: only a prefix of the record
    /// reaches the file before the append errors, leaving a torn
    /// journal tail (the expected artifact of a crash mid-append).
    StorePartialAppend,
    /// Inside `rc_store::read_file`: one bit of the buffer is flipped
    /// after a successful read, modeling silent media corruption that
    /// only a checksum can catch.
    StoreBitFlipRead,
    /// Inside the `rc_store` write paths: the fsync fails (full disk,
    /// dying device) after the data was handed to the OS — the caller
    /// must treat the write as not durable.
    StoreFsyncFail,
}

impl FaultPoint {
    /// All instrumented points: the three pipeline stage boundaries in
    /// pipeline order, then the persistence I/O points.
    pub const ALL: [FaultPoint; 7] = [
        FaultPoint::EngineApply,
        FaultPoint::ApkBatch,
        FaultPoint::PolicyCheck,
        FaultPoint::StoreTornWrite,
        FaultPoint::StorePartialAppend,
        FaultPoint::StoreBitFlipRead,
        FaultPoint::StoreFsyncFail,
    ];

    /// The pipeline stage boundaries only (the points the in-memory
    /// chaos suites rotate through).
    pub const PIPELINE: [FaultPoint; 3] =
        [FaultPoint::EngineApply, FaultPoint::ApkBatch, FaultPoint::PolicyCheck];

    /// The persistence I/O points only (the points the crash-recovery
    /// chaos suites rotate through).
    pub const STORE: [FaultPoint; 4] = [
        FaultPoint::StoreTornWrite,
        FaultPoint::StorePartialAppend,
        FaultPoint::StoreBitFlipRead,
        FaultPoint::StoreFsyncFail,
    ];

    fn index(self) -> usize {
        match self {
            FaultPoint::EngineApply => 0,
            FaultPoint::ApkBatch => 1,
            FaultPoint::PolicyCheck => 2,
            FaultPoint::StoreTornWrite => 3,
            FaultPoint::StorePartialAppend => 4,
            FaultPoint::StoreBitFlipRead => 5,
            FaultPoint::StoreFsyncFail => 6,
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPoint::EngineApply => write!(f, "engine apply (stage 1)"),
            FaultPoint::ApkBatch => write!(f, "apkeep batch (stage 2)"),
            FaultPoint::PolicyCheck => write!(f, "policy check (stage 3)"),
            FaultPoint::StoreTornWrite => write!(f, "store torn write"),
            FaultPoint::StorePartialAppend => write!(f, "store partial journal append"),
            FaultPoint::StoreBitFlipRead => write!(f, "store bit flip on read"),
            FaultPoint::StoreFsyncFail => write!(f, "store fsync failure"),
        }
    }
}

/// How an injected fault manifests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultMode {
    /// [`fire`] returns `true`; the instrumented stage surfaces its
    /// error-channel failure (the routing engine returns a divergence
    /// error). At points with no error channel (stages 2 and 3 return
    /// plain reports), the stage escalates to a panic — the verifier's
    /// panic containment must handle it either way.
    Error,
    /// [`fire`] panics with a recognizable `"injected fault: …"`
    /// message.
    Panic,
}

/// Marker prefix of every injected panic message, so test panic hooks
/// can tell injected faults from genuine bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

#[derive(Clone, Debug)]
struct Spec {
    point: FaultPoint,
    nth: u64,
    mode: FaultMode,
    fired: bool,
}

/// A deterministic schedule of faults: each entry fires exactly once,
/// the Nth time its point is reached after [`FaultPlan::install`] (or
/// [`install`]). Counts are per-point and 1-based.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    specs: Vec<Spec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fire an error-mode fault the `nth` time `point` is reached.
    pub fn error_on(mut self, point: FaultPoint, nth: u64) -> Self {
        self.specs.push(Spec { point, nth, mode: FaultMode::Error, fired: false });
        self
    }

    /// Fire a panic the `nth` time `point` is reached.
    pub fn panic_on(mut self, point: FaultPoint, nth: u64) -> Self {
        self.specs.push(Spec { point, nth, mode: FaultMode::Panic, fired: false });
        self
    }

    /// Fire a fault of `mode` the `nth` time `point` is reached.
    pub fn fault_on(mut self, point: FaultPoint, nth: u64, mode: FaultMode) -> Self {
        self.specs.push(Spec { point, nth, mode, fired: false });
        self
    }

    /// Install this plan on the current thread, replacing any previous
    /// plan and resetting all hit counters. Returns an RAII guard that
    /// clears the plan when dropped.
    pub fn install(self) -> FaultGuard {
        install(self);
        FaultGuard { _private: () }
    }
}

/// Clears the thread's fault plan on drop.
#[must_use = "dropping the guard immediately clears the plan"]
pub struct FaultGuard {
    _private: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

struct Active {
    plan: FaultPlan,
    hits: [u64; FaultPoint::ALL.len()],
    injected: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// Install `plan` on the current thread (see [`FaultPlan::install`] for
/// the RAII variant). Resets hit and injection counters.
pub fn install(plan: FaultPlan) {
    ACTIVE.with(|a| {
        *a.borrow_mut() =
            Some(Active { plan, hits: [0; FaultPoint::ALL.len()], injected: 0 })
    });
}

/// Remove the current thread's fault plan, if any.
pub fn clear() {
    ACTIVE.with(|a| *a.borrow_mut() = None);
}

/// Whether a plan is installed on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Faults injected (fired) since the plan was installed.
pub fn injected_count() -> u64 {
    ACTIVE.with(|a| a.borrow().as_ref().map_or(0, |act| act.injected))
}

/// Times `point` has been reached since the plan was installed.
pub fn hit_count(point: FaultPoint) -> u64 {
    ACTIVE.with(|a| a.borrow().as_ref().map_or(0, |act| act.hits[point.index()]))
}

/// The pipeline hook. Instrumented stages call this at their entry:
/// returns `true` when an error-mode fault fires (the stage must
/// surface an error), panics for panic-mode faults, and returns `false`
/// — at the cost of one thread-local read — otherwise.
pub fn fire(point: FaultPoint) -> bool {
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        let Some(act) = borrow.as_mut() else { return false };
        let idx = point.index();
        act.hits[idx] += 1;
        let n = act.hits[idx];
        for spec in &mut act.plan.specs {
            if !spec.fired && spec.point == point && spec.nth == n {
                spec.fired = true;
                act.injected += 1;
                match spec.mode {
                    FaultMode::Error => return true,
                    FaultMode::Panic => {
                        // Release the borrow before unwinding so a
                        // catch_unwind-ed caller can keep using the
                        // thread-local.
                        drop(borrow);
                        panic!("{INJECTED_PANIC_PREFIX} panic at {point} (occurrence {n})");
                    }
                }
            }
        }
        false
    })
}

/// Process-global one-shot walk-panic point.
///
/// [`FaultPlan`]s are strictly thread-local, which is exactly wrong for
/// the one place the pipeline fans work out to pool workers: the policy
/// checker's per-EC forwarding walks. To prove a panic on a *non-main*
/// worker still poisons the verifier (instead of deadlocking or being
/// swallowed), tests arm this global point with a target EC id; the
/// first walk of that EC — on whichever thread the pool scheduled it —
/// panics with the [`INJECTED_PANIC_PREFIX`] marker, and the point
/// disarms itself atomically so the post-recovery rebuild walks clean.
///
/// `u64::MAX` means disarmed; EC ids are `u32`, so every real id fits,
/// and [`WALK_WILDCARD`] ("the next walk of *any* EC") fits in between.
static WALK_PANIC_TARGET: AtomicU64 = AtomicU64::new(u64::MAX);

const WALK_WILDCARD: u64 = u64::MAX - 1;

/// Arm the global walk-panic point for EC `ec` (one-shot; replaces any
/// previously armed target).
pub fn arm_walk_panic(ec: u32) {
    WALK_PANIC_TARGET.store(ec as u64, Ordering::SeqCst);
}

/// Arm the global walk-panic point for the next walk of *any* EC — for
/// callers that cannot predict which EC ids a change will touch.
pub fn arm_walk_panic_any() {
    WALK_PANIC_TARGET.store(WALK_WILDCARD, Ordering::SeqCst);
}

/// Disarm the global walk-panic point (idempotent; for test cleanup
/// when the armed EC was never walked).
pub fn disarm_walk_panic() {
    WALK_PANIC_TARGET.store(u64::MAX, Ordering::SeqCst);
}

/// The walk hook. The policy checker calls this at the top of every
/// per-EC forwarding walk, on whatever worker thread runs it. Disarmed
/// (the overwhelmingly common case) it is a single relaxed atomic load.
/// If armed for `ec`, exactly one caller wins the disarming
/// compare-exchange and panics with the injected-fault marker.
pub fn fire_walk(ec: u32) {
    let armed = WALK_PANIC_TARGET.load(Ordering::Relaxed);
    if armed != ec as u64 && armed != WALK_WILDCARD {
        return;
    }
    if WALK_PANIC_TARGET
        .compare_exchange(armed, u64::MAX, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        panic!("{INJECTED_PANIC_PREFIX} panic in forwarding walk of EC {ec}");
    }
}

/// A sharded pipeline stage whose pool tasks carry a global one-shot
/// panic point (the shard sibling of [`fire_walk`]'s).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardSite {
    /// A dataflow operator's per-shard step task (stage 1).
    Dataflow,
    /// An APKeep transfer's candidate-chunk intersection task (stage 2).
    ApkTransfer,
}

impl ShardSite {
    fn slot(self) -> &'static AtomicU64 {
        match self {
            ShardSite::Dataflow => &DATAFLOW_SHARD_PANIC,
            ShardSite::ApkTransfer => &APK_SHARD_PANIC,
        }
    }
}

/// Process-global one-shot shard-panic points, one per sharded stage.
/// Same rationale as [`WALK_PANIC_TARGET`]: thread-local plans cannot
/// reach pool workers, and the property under test is that a panic on
/// *any* shard task — dataflow operator shard or APKeep transfer chunk —
/// unwinds through the pool into the verifier's containment instead of
/// deadlocking a barrier. `u64::MAX` means disarmed; any other value is
/// "panic on the next shard task at this site".
static DATAFLOW_SHARD_PANIC: AtomicU64 = AtomicU64::new(u64::MAX);
static APK_SHARD_PANIC: AtomicU64 = AtomicU64::new(u64::MAX);

/// Arm the one-shot shard-panic point at `site`: the next shard task
/// that reaches [`fire_shard`] there panics, on whichever worker runs
/// it, then the point disarms itself.
pub fn arm_shard_panic(site: ShardSite) {
    site.slot().store(0, Ordering::SeqCst);
}

/// Disarm a shard-panic point (idempotent; for test cleanup when the
/// armed site was never reached).
pub fn disarm_shard_panic(site: ShardSite) {
    site.slot().store(u64::MAX, Ordering::SeqCst);
}

/// The shard hook. Sharded stages call this at the top of each pool
/// task, passing the shard (or chunk) index. Disarmed — the common case
/// — it is one relaxed atomic load; armed, exactly one task wins the
/// disarming compare-exchange and panics with the injected marker.
pub fn fire_shard(site: ShardSite, shard: usize) {
    let slot = site.slot();
    let armed = slot.load(Ordering::Relaxed);
    if armed == u64::MAX {
        return;
    }
    if slot.compare_exchange(armed, u64::MAX, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
        panic!("{INJECTED_PANIC_PREFIX} panic in {site:?} shard task {shard}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_never_fires() {
        clear();
        assert!(!fire(FaultPoint::EngineApply));
        assert!(!is_active());
        assert_eq!(injected_count(), 0);
    }

    #[test]
    fn error_fault_fires_once_on_the_nth_hit() {
        let _g = FaultPlan::new().error_on(FaultPoint::ApkBatch, 3).install();
        assert!(!fire(FaultPoint::ApkBatch));
        assert!(!fire(FaultPoint::ApkBatch));
        assert!(fire(FaultPoint::ApkBatch));
        assert!(!fire(FaultPoint::ApkBatch), "one-shot");
        assert_eq!(hit_count(FaultPoint::ApkBatch), 4);
        assert_eq!(injected_count(), 1);
    }

    #[test]
    fn points_count_independently() {
        let _g = FaultPlan::new()
            .error_on(FaultPoint::EngineApply, 1)
            .error_on(FaultPoint::PolicyCheck, 2)
            .install();
        assert!(fire(FaultPoint::EngineApply));
        assert!(!fire(FaultPoint::PolicyCheck));
        assert!(fire(FaultPoint::PolicyCheck));
    }

    #[test]
    fn panic_fault_panics_with_marker() {
        let _g = FaultPlan::new().panic_on(FaultPoint::PolicyCheck, 1).install();
        let err = std::panic::catch_unwind(|| fire(FaultPoint::PolicyCheck))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "got: {msg}");
        // The thread-local stays usable after the unwind.
        assert!(!fire(FaultPoint::PolicyCheck));
        assert_eq!(injected_count(), 1);
    }

    #[test]
    fn guard_clears_on_drop() {
        {
            let _g = FaultPlan::new().error_on(FaultPoint::EngineApply, 1).install();
            assert!(is_active());
        }
        assert!(!is_active());
        assert!(!fire(FaultPoint::EngineApply));
    }

    /// The walk point is process-global; serialize the tests that use
    /// it (the harness runs tests on parallel threads).
    static WALK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn walk_panic_is_targeted_and_one_shot() {
        let _l = WALK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_walk_panic();
        fire_walk(7); // disarmed: no-op
        arm_walk_panic(7);
        fire_walk(3); // wrong EC: no-op
        let err = std::panic::catch_unwind(|| fire_walk(7)).expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "got: {msg}");
        fire_walk(7); // self-disarmed: no-op
    }

    #[test]
    fn walk_panic_wildcard_hits_the_next_walk() {
        let _l = WALK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_walk_panic();
        arm_walk_panic_any();
        let err = std::panic::catch_unwind(|| fire_walk(42)).expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "got: {msg}");
        fire_walk(42); // one-shot
    }

    #[test]
    fn shard_panic_is_one_shot_per_site() {
        disarm_shard_panic(ShardSite::Dataflow);
        disarm_shard_panic(ShardSite::ApkTransfer);
        fire_shard(ShardSite::Dataflow, 0); // disarmed: no-op
        arm_shard_panic(ShardSite::Dataflow);
        fire_shard(ShardSite::ApkTransfer, 1); // other site: no-op
        let err = std::panic::catch_unwind(|| fire_shard(ShardSite::Dataflow, 3))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "got: {msg}");
        assert!(msg.contains("shard task 3"), "got: {msg}");
        fire_shard(ShardSite::Dataflow, 3); // self-disarmed: no-op
    }

    #[test]
    fn reinstall_resets_counters() {
        let _g = FaultPlan::new().error_on(FaultPoint::EngineApply, 2).install();
        assert!(!fire(FaultPoint::EngineApply));
        let _g = FaultPlan::new().error_on(FaultPoint::EngineApply, 2).install();
        assert!(!fire(FaultPoint::EngineApply), "counter restarted");
        assert!(fire(FaultPoint::EngineApply));
    }
}
