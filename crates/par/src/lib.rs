//! A dependency-free scoped work-stealing thread pool.
//!
//! Built on [`std::thread::scope`], so parallel closures may borrow
//! from the caller's stack — exactly what the policy checker needs to
//! fan read-only per-EC walks over an `EcView` snapshot without any
//! `'static` bound or reference counting.
//!
//! Design:
//!
//! * **Chunked, order-preserving map.** [`par_map_indexed`] splits the
//!   input into contiguous index ranges (several chunks per worker, so
//!   stealing has something to steal), runs `f(i, &items[i])` on pool
//!   workers, and reassembles the results **in input order** — callers
//!   observe exactly the serial output, independent of scheduling.
//! * **Per-worker deques.** Each worker owns a deque of chunk ranges,
//!   dealt contiguously for locality; it pops its own work from the
//!   front (ascending ranges) and steals from the *back* of the next
//!   busy neighbour (the range farthest from the victim's working set).
//! * **Panic propagation.** Each item runs under `catch_unwind`; the
//!   first observed panic poisons the pool (other workers drain and
//!   stop at the next item boundary) and the payload with the lowest
//!   item index is re-thrown on the caller's thread by
//!   [`std::panic::resume_unwind`]. To a `catch_unwind`-ing caller — the
//!   verifier's transactional apply — a worker panic is
//!   indistinguishable from a panic in serial code, so the PR 3
//!   poisoning contract composes unchanged.
//! * **Thread-count knob.** [`threads`] resolves, in order:
//!   [`set_threads`] (process-global override), the `RC_THREADS`
//!   environment variable (read once), and
//!   [`std::thread::available_parallelism`]. `1` takes an exact serial
//!   path: `f` runs on the caller's thread, in input order, with no
//!   pool machinery at all.
//!
//! Determinism: the *results* of a map are always deterministic (input
//! order, pure reassembly). The *stats* (steal counts, per-worker busy
//! time) are scheduling-dependent by nature and are exposed only as
//! telemetry, never folded into results.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aim for this many chunks per worker, so a worker that finishes early
/// has ranges left to steal without making chunks so small that deque
/// traffic dominates.
const CHUNKS_PER_WORKER: usize = 8;

/// Process-global thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// `RC_THREADS`, parsed once on first use.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Set the process-global worker count. `n = 1` forces the exact serial
/// path everywhere; `n = 0` clears the override, reverting to
/// `RC_THREADS` / available parallelism.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// The resolved worker count: [`set_threads`] override, else the
/// `RC_THREADS` environment variable (read once per process), else
/// [`std::thread::available_parallelism`], else 1.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let env = ENV_THREADS.get_or_init(|| {
        std::env::var("RC_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&n: &usize| n > 0)
    });
    if let Some(n) = *env {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Scheduling statistics of one [`par_map_indexed_in`] call — telemetry
/// material only (results never depend on them).
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Workers that actually ran (1 on the serial path).
    pub workers: usize,
    /// Chunk tasks executed.
    pub tasks: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Wall-clock each worker spent in its run loop, µs.
    pub busy_us: Vec<u64>,
}

/// `(lowest item index, panic payload)` of the first panic kept.
type PanicSlot = Mutex<Option<(usize, Box<dyn Any + Send>)>>;

/// Map `f` over `items` on the global worker count ([`threads`]),
/// returning results in input order. See [`par_map_indexed_in`].
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_in(threads(), items, f).0
}

/// Map `f` over `items` on `nthreads` workers, returning results in
/// input order plus the run's [`PoolStats`].
///
/// `nthreads <= 1` (or fewer than two items) is the exact serial path:
/// `f(0, ..), f(1, ..), …` on the caller's thread. Otherwise the
/// caller's thread participates as worker 0 and `nthreads − 1` scoped
/// threads are spawned for the duration of the call.
///
/// If any invocation of `f` panics, the panic with the lowest item
/// index among those observed is re-thrown on the caller's thread after
/// all workers have stopped (serial semantics pick the lowest index
/// deterministically; under stealing, later-indexed panics may win the
/// race when earlier items were never reached before the pool poisoned
/// itself).
pub fn par_map_indexed_in<T, R, F>(nthreads: usize, items: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_run(nthreads, items.len(), |i| f(i, &items[i]))
}

/// Map `f` over `items` with **exclusive** access to each element, on
/// `nthreads` workers, returning results in input order plus the run's
/// [`PoolStats`]. This is the mutable sibling of [`par_map_indexed_in`]
/// for per-worker state that must be updated in place — e.g. the
/// dataflow engine's per-shard operator traces.
///
/// Each index is visited exactly once (disjoint contiguous chunks,
/// handed out under a mutex), so handing worker `w` a `&mut items[i]`
/// aliases nothing — the `unsafe` below is the standard disjoint-slice
/// split, just expressed per index instead of per subslice. `T` only
/// needs `Send` (the element crosses to one worker), not `Sync`.
///
/// Serial path, ordering, and panic propagation are identical to
/// [`par_map_indexed_in`].
pub fn par_map_mut_in<T, R, F>(nthreads: usize, items: &mut [T], f: F) -> (Vec<R>, PoolStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    /// Raw base pointer that may cross threads. Sound to share because
    /// the runner visits every index at most once, so no two workers
    /// ever materialize `&mut` to the same element.
    struct SendPtr<T>(*mut T);
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    impl<T> SendPtr<T> {
        // A method (not field access) so closures capture the Sync
        // wrapper, not the raw pointer inside it.
        fn get(&self) -> *mut T {
            self.0
        }
    }

    let n = items.len();
    let base = SendPtr(items.as_mut_ptr());
    par_run(nthreads, n, |i| {
        debug_assert!(i < n);
        // SAFETY: `i < n` and `par_run` dispatches each index exactly
        // once across all workers, so this `&mut` is unaliased.
        let item = unsafe { &mut *base.get().add(i) };
        f(i, item)
    })
}

/// The shared pool body: run `run_item(i)` for every `i in 0..n` on
/// `nthreads` workers and reassemble results in index order. All of
/// the chunk dealing, stealing, panic poisoning, and stats collection
/// lives here; the public maps only differ in how they turn an index
/// into an item reference.
fn par_run<R, F>(nthreads: usize, n: usize, run_item: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if nthreads <= 1 || n < 2 {
        let t0 = Instant::now();
        let out: Vec<R> = (0..n).map(&run_item).collect();
        let stats = PoolStats {
            workers: 1,
            tasks: n as u64,
            steals: 0,
            busy_us: vec![t0.elapsed().as_micros() as u64],
        };
        return (out, stats);
    }

    let workers = nthreads.min(n);
    let chunk = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let tasks: Vec<(usize, usize)> =
        (0..n).step_by(chunk).map(|s| (s, (s + chunk).min(n))).collect();
    let num_tasks = tasks.len() as u64;

    // Deal contiguous runs of chunks to the workers' deques.
    let deques: Vec<Mutex<VecDeque<(usize, usize)>>> = {
        let per = tasks.len().div_ceil(workers);
        let mut dq: Vec<Mutex<VecDeque<(usize, usize)>>> = Vec::with_capacity(workers);
        for block in tasks.chunks(per) {
            dq.push(Mutex::new(block.iter().copied().collect()));
        }
        while dq.len() < workers {
            dq.push(Mutex::new(VecDeque::new()));
        }
        dq
    };

    let steals = AtomicU64::new(0);
    let poisoned = AtomicBool::new(false);
    let panic_slot: PanicSlot = Mutex::new(None);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

    let run_worker = |w: usize| {
        let t0 = Instant::now();
        let mut local: Vec<(usize, R)> = Vec::new();
        'run: while !poisoned.load(Ordering::Relaxed) {
            // Own work first (front: ascending index order, good
            // locality), then steal from the back of the next busy
            // neighbour.
            let mut task = lock_clean(&deques[w]).pop_front();
            if task.is_none() {
                for off in 1..workers {
                    let victim = (w + off) % workers;
                    if let Some(t) = lock_clean(&deques[victim]).pop_back() {
                        steals.fetch_add(1, Ordering::Relaxed);
                        task = Some(t);
                        break;
                    }
                }
            }
            let Some((start, end)) = task else { break };
            for i in start..end {
                if poisoned.load(Ordering::Relaxed) {
                    break 'run;
                }
                match catch_unwind(AssertUnwindSafe(|| run_item(i))) {
                    Ok(r) => local.push((i, r)),
                    Err(payload) => {
                        let mut slot = lock_clean(&panic_slot);
                        if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                            *slot = Some((i, payload));
                        }
                        poisoned.store(true, Ordering::Relaxed);
                        break 'run;
                    }
                }
            }
        }
        busy[w].store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        lock_clean(&results).append(&mut local);
    };

    std::thread::scope(|s| {
        let worker = &run_worker;
        for w in 1..workers {
            s.spawn(move || worker(w));
        }
        run_worker(0);
    });

    if let Some((_, payload)) = lock_clean(&panic_slot).take() {
        resume_unwind(payload);
    }

    // Reassemble in input order: scheduling order never leaks out.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in results.into_inner().unwrap_or_else(|e| e.into_inner()) {
        slots[i] = Some(r);
    }
    let out: Vec<R> =
        slots.into_iter().map(|o| o.expect("pool completed without all results")).collect();
    let stats = PoolStats {
        workers,
        tasks: num_tasks,
        steals: steals.load(Ordering::Relaxed),
        busy_us: busy.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
    };
    (out, stats)
}

/// Lock a mutex, ignoring poisoning: every critical section here is
/// panic-free (pure queue/slot manipulation), and `f`'s panics are
/// caught before they can unwind through a lock.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for nthreads in [1, 2, 4, 7] {
            let (out, stats) = par_map_indexed_in(nthreads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
            assert_eq!(stats.workers, if nthreads == 1 { 1 } else { nthreads });
            assert!(stats.tasks > 0);
        }
    }

    #[test]
    fn parallel_matches_serial_oracle() {
        let items: Vec<u32> = (0..513).rev().collect();
        let f = |i: usize, &x: &u32| (i as u32).wrapping_mul(31).wrapping_add(x);
        let serial: Vec<u32> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        let (par, _) = par_map_indexed_in(4, &items, f);
        assert_eq!(par, serial);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let (out, stats) = par_map_indexed_in(4, &empty, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 1, "nothing to parallelize");
        let (out, _) = par_map_indexed_in(4, &[7u8], |_, &x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<u32> = (0..100).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed_in(4, &items, |_, &x| {
                if x == 57 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .expect_err("panic must cross the pool");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom at 57"), "got: {msg}");
    }

    #[test]
    fn serial_path_panics_at_lowest_index() {
        let items: Vec<u32> = (0..100).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed_in(1, &items, |_, &x| {
                if x >= 30 {
                    panic!("first hit {x}");
                }
                x
            })
        }))
        .expect_err("panics");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("first hit 30"), "serial order: got {msg}");
    }

    #[test]
    fn all_items_run_exactly_once() {
        let hits: Vec<AtomicU32> = (0..317).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..317).collect();
        let (_, _) = par_map_indexed_in(4, &items, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn mut_map_updates_every_element_once() {
        for nthreads in [1, 2, 4] {
            let mut items: Vec<u64> = (0..733).collect();
            let (out, _) = par_map_mut_in(nthreads, &mut items, |i, x| {
                *x += 1;
                (i as u64) + *x
            });
            assert_eq!(items, (1..=733).collect::<Vec<u64>>());
            assert_eq!(out, (0..733).map(|i| 2 * i + 1).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn mut_map_panic_propagates_and_poisons() {
        let mut items: Vec<u32> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map_mut_in(4, &mut items, |_, x| {
                if *x == 13 {
                    panic!("mut boom {x}");
                }
                *x
            })
        }))
        .expect_err("panic must cross the pool");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("mut boom 13"), "got: {msg}");
    }

    #[test]
    fn knob_resolution_override_wins() {
        // Serial in tests by default (cargo test parallelism): only the
        // override branch is exercised deterministically.
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(1);
        assert_eq!(threads(), 1);
        set_threads(0); // clear: falls back to env / hardware
        assert!(threads() >= 1);
    }
}
