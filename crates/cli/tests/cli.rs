//! End-to-end tests of the `realconfig` binary: verify, diff, trace,
//! exit codes, and error reporting.

use std::path::PathBuf;
use std::process::{Command, Output};

const R1: &str = "\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.252
 ip ospf cost 1
interface eth1
 ip address 10.0.1.1 255.255.255.252
 ip ospf cost 1
interface host0
 ip address 172.16.1.1 255.255.255.0
router ospf 1
 network 10.0.0.0/8 area 0
 network 172.16.0.0/12 area 0
";

const R2: &str = "\
hostname r2
interface eth0
 ip address 10.0.0.2 255.255.255.252
 ip ospf cost 1
interface eth1
 ip address 10.0.2.1 255.255.255.252
 ip ospf cost 1
router ospf 1
 network 10.0.0.0/8 area 0
 network 172.16.0.0/12 area 0
";

const R3: &str = "\
hostname r3
interface eth0
 ip address 10.0.1.2 255.255.255.252
 ip ospf cost 1
interface eth1
 ip address 10.0.2.2 255.255.255.252
 ip ospf cost 1
interface host0
 ip address 172.16.3.1 255.255.255.0
router ospf 1
 network 10.0.0.0/8 area 0
 network 172.16.0.0/12 area 0
";

struct TempNet {
    dir: PathBuf,
}

impl TempNet {
    fn new(tag: &str, configs: &[(&str, &str)]) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "realconfig-cli-test-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in configs {
            std::fs::write(dir.join(format!("{name}.cfg")), text).unwrap();
        }
        TempNet { dir }
    }

    fn path(&self) -> &str {
        self.dir.to_str().unwrap()
    }
}

impl Drop for TempNet {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_realconfig")).args(args).output().expect("binary runs")
}

#[test]
fn verify_reports_and_succeeds() {
    let net = TempNet::new("verify", &[("r1", R1), ("r2", R2), ("r3", R3)]);
    let out = run(&["verify", net.path(), "--policy", "reach:r1:r3:172.16.3.0/24"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("3 devices verified"));
    assert!(stdout.contains("SATISFIED"));
}

#[test]
fn verify_violated_policy_fails_exit_code() {
    let net = TempNet::new("violated", &[("r1", R1), ("r2", R2), ("r3", R3)]);
    // Isolation r1→r3 is violated (traffic flows): exit code 1.
    let out = run(&["verify", net.path(), "--policy", "isolate:r1:r3:172.16.3.0/24"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("VIOLATED"));
}

#[test]
fn diff_reports_incremental_stages() {
    let old = TempNet::new("diff-old", &[("r1", R1), ("r2", R2), ("r3", R3)]);
    let shut = R1.replace(
        "interface eth1\n ip address 10.0.1.1 255.255.255.252\n ip ospf cost 1",
        "interface eth1\n ip address 10.0.1.1 255.255.255.252\n ip ospf cost 1\n shutdown",
    );
    let new = TempNet::new("diff-new", &[("r1", &shut), ("r2", R2), ("r3", R3)]);
    let out = run(&[
        "diff",
        old.path(),
        new.path(),
        "--policy",
        "reach:r1:r3:172.16.3.0/24",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("config lines +1/−0"), "{stdout}");
    assert!(stdout.contains("stage 1"), "{stdout}");
    assert!(stdout.contains("SATISFIED"), "the ring reroutes: {stdout}");
}

#[test]
fn diff_json_is_machine_readable() {
    let old = TempNet::new("json-old", &[("r1", R1), ("r2", R2), ("r3", R3)]);
    let cheap = R1.replace("ip ospf cost 1", "ip ospf cost 7");
    let new = TempNet::new("json-new", &[("r1", &cheap), ("r2", R2), ("r3", R3)]);
    let out = run(&["diff", old.path(), new.path(), "--json"]);
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON report");
    assert!(v["fact_changes"].as_u64().unwrap() > 0);
}

#[test]
fn trace_shows_path() {
    let net = TempNet::new("trace", &[("r1", R1), ("r2", R2), ("r3", R3)]);
    let out = run(&["trace", net.path(), "--from", "r1", "--dst", "172.16.3.9"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("DELIVERED"), "{stdout}");
    assert!(stdout.contains("r3"), "{stdout}");
}

#[test]
fn trace_undelivered_fails() {
    let net = TempNet::new("trace-miss", &[("r1", R1), ("r2", R2), ("r3", R3)]);
    let out = run(&["trace", net.path(), "--from", "r1", "--dst", "8.8.8.8"]);
    assert_eq!(out.status.code(), Some(1), "undelivered packets exit 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("DROPPED"));
}

#[test]
fn bad_config_reports_file_and_line() {
    let net = TempNet::new("bad", &[("r1", "hostname r1\nfrobnicate\n")]);
    let out = run(&["verify", net.path()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("r1.cfg"), "{stderr}");
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn empty_dir_is_an_error() {
    let net = TempNet::new("empty", &[]);
    let out = run(&["verify", net.path()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_on_no_args() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
