//! `realconfig` — command-line incremental network configuration
//! verifier.
//!
//! ```text
//! realconfig verify <dir> [--policy reach:SRC:DST:PREFIX]... [--threads N] [--backend bdd|atoms] [--metrics FILE] [--state-dir DIR] [--coalesce]
//! realconfig diff <old-dir> <new-dir> [--policy ...]... [--json] [--recover] [--threads N] [--backend bdd|atoms] [--metrics FILE]
//! realconfig trace <dir> --from DEV --dst A.B.C.D [--proto N] [--dport N] [--backend bdd|atoms]
//! realconfig snapshot <dir> --state-dir DIR [--policy ...]... [--threads N] [--backend bdd|atoms]
//! realconfig restore <dir> --state-dir DIR
//! ```
//!
//! A configuration directory holds one `<hostname>.cfg` per device.
//! `verify` runs a full verification; `diff` verifies the transition
//! from the old directory's configurations to the new directory's
//! incrementally, reporting per-stage timings, affected counts, and
//! policy verdict changes; `trace` follows one packet through the
//! current data plane. `--metrics FILE` dumps the pipeline-wide
//! telemetry snapshot (per-operator dataflow work, EC model state,
//! policy checker latencies) as JSON after the run — on failure, the
//! snapshot-so-far is still written, for post-mortem inspection.
//!
//! `--threads N` sets the worker count of the parallel policy-checking
//! phase (default: the `RC_THREADS` environment variable, then the
//! machine's available parallelism; `1` forces the serial path).
//! Reports are byte-identical for any worker count.
//!
//! `--backend bdd|atoms` selects the predicate backend of the EC model
//! (default: the `RC_BACKEND` environment variable, then BDDs). The
//! `atoms` backend stores predicates as destination-IP interval sets
//! (Delta-net style) — faster on pure dst-prefix routing workloads, but
//! it cannot encode ACL matches on other header fields; configurations
//! that need 5-tuple semantics must use `bdd`. Verdicts and reports are
//! identical between backends on workloads both support.
//!
//! `diff --recover` verifies the change with the self-healing path
//! ([`RealConfig::apply_configs_or_rebuild`]): if the incremental
//! pipeline fails mid-change, the new configurations are verified by a
//! full rebuild instead and the report is flagged `recovered`.
//!
//! `--state-dir DIR` makes verifier state durable: `verify` restarts
//! warm from the newest checksummed snapshot (+ apply-journal replay)
//! when one exists, and writes a fresh snapshot after a cold build;
//! `snapshot` builds from configs and persists without further checks;
//! `restore` exercises the recovery ladder alone and reports which rung
//! ran. Corrupt state never prevents startup — the ladder falls back to
//! the previous snapshot and then to a full rebuild from the configs.
//!
//! `verify --coalesce` (needs `--state-dir`) folds the journal's
//! records into their net configuration delta and replays them as one
//! incremental apply instead of one per record — the fast restart after
//! a crash mid-burst. The committed state reached is identical; only
//! intermediate states are skipped.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | verified, all policies satisfied |
//! | 1 | verified, at least one policy violated |
//! | 2 | usage, I/O or configuration parse error |
//! | 3 | control plane divergence |
//! | 4 | internal pipeline failure (contained panic / poisoned verifier) |
//! | 5 | durable state unrecoverable; verifier rebuilt from configs (degraded, running) |

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

use rc_netcfg::parser::parse_config;
use rc_netcfg::DeviceConfig;
use realconfig::{PacketClass, Packet, Policy, Prefix, RealConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("verify") => cmd_verify(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("restore") => cmd_restore(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  realconfig verify <dir> [--policy reach:SRC:DST:PREFIX]... [--threads N] [--backend bdd|atoms] [--state-dir DIR] [--coalesce]\n  \
                 realconfig diff <old-dir> <new-dir> [--policy ...]... [--json] [--recover] [--threads N] [--backend bdd|atoms]\n  \
                 realconfig trace <dir> --from DEV --dst A.B.C.D [--proto N] [--dport N] [--backend bdd|atoms]\n  \
                 realconfig snapshot <dir> --state-dir DIR [--policy ...]... [--threads N] [--backend bdd|atoms]\n  \
                 realconfig restore <dir> --state-dir DIR"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(violated) if violated => ExitCode::FAILURE,
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error[{}]: {}", e.kind.label(), e.msg);
            ExitCode::from(e.kind.exit_code())
        }
    }
}

/// What went wrong, mapped to the documented exit codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ErrorKind {
    /// Bad arguments, unreadable files, configuration parse errors.
    Parse,
    /// The control plane failed to converge on the given configurations.
    Divergence,
    /// A pipeline stage failed internally (contained panic, poisoned
    /// verifier).
    Internal,
    /// Durable state was unrecoverable; the verifier was rebuilt from
    /// configurations and is running, but warm state was lost.
    Degraded,
}

impl ErrorKind {
    fn label(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Divergence => "divergence",
            ErrorKind::Internal => "internal",
            ErrorKind::Degraded => "degraded",
        }
    }

    fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Parse => 2,
            ErrorKind::Divergence => 3,
            ErrorKind::Internal => 4,
            ErrorKind::Degraded => 5,
        }
    }
}

/// A CLI failure: a kind (for the exit code) plus a message for stderr.
#[derive(Debug)]
struct CliError {
    kind: ErrorKind,
    msg: String,
}

impl CliError {
    fn parse(msg: impl Into<String>) -> Self {
        CliError { kind: ErrorKind::Parse, msg: msg.into() }
    }
}

impl From<realconfig::Error> for CliError {
    fn from(e: realconfig::Error) -> Self {
        let kind = match &e {
            realconfig::Error::Parse(_) | realconfig::Error::Change(_) => ErrorKind::Parse,
            realconfig::Error::Divergence(_) => ErrorKind::Divergence,
            realconfig::Error::Internal(_) | realconfig::Error::Poisoned => ErrorKind::Internal,
        };
        CliError { kind, msg: e.to_string() }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::parse(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::parse(msg)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::parse(e.to_string())
    }
}

impl From<std::num::ParseIntError> for CliError {
    fn from(e: std::num::ParseIntError) -> Self {
        CliError::parse(e.to_string())
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError { kind: ErrorKind::Internal, msg: format!("cannot serialize report: {e}") }
    }
}

/// Load every `*.cfg` in a directory.
fn load_dir(dir: &str) -> Result<BTreeMap<String, DeviceConfig>, CliError> {
    let mut configs = BTreeMap::new();
    let mut entries: Vec<_> = std::fs::read_dir(Path::new(dir))
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("cfg") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let cfg = parse_config(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if cfg.hostname.is_empty() {
            return Err(format!("{}: missing hostname", path.display()).into());
        }
        configs.insert(cfg.hostname.clone(), cfg);
    }
    if configs.is_empty() {
        return Err(format!("{dir}: no .cfg files found").into());
    }
    Ok(configs)
}

/// A parsed `--policy` flag: (label, src, dst, prefix, is_reach).
type PolicySpec = (String, String, String, Prefix, bool);

/// Parse repeated `--policy reach:SRC:DST:PREFIX` /
/// `--policy isolate:SRC:DST:PREFIX` flags.
fn parse_policies(args: &[String]) -> Result<Vec<PolicySpec>, CliError> {
    let mut policies = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--policy" {
            let spec = args.get(i + 1).ok_or("--policy needs an argument")?;
            let parts: Vec<&str> = spec.split(':').collect();
            match parts.as_slice() {
                [kind @ ("reach" | "isolate"), src, dst, prefix] => {
                    let p: Prefix =
                        prefix.parse().map_err(|_| format!("bad prefix in {spec:?}"))?;
                    policies.push((
                        kind.to_string(),
                        src.to_string(),
                        dst.to_string(),
                        p,
                        *kind == "reach",
                    ));
                }
                _ => return Err(format!("bad policy spec {spec:?}").into()),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(policies)
}

fn register_policies(
    rc: &mut RealConfig,
    specs: &[PolicySpec],
) -> Result<Vec<(String, realconfig::PolicyId)>, CliError> {
    let mut out = Vec::new();
    // A snapshot-restored verifier already carries its registered
    // policies; re-requesting one of those must reuse the existing
    // registration instead of duplicating it.
    let existing: Vec<Policy> =
        rc.policy_specs().into_iter().map(|(p, _)| p).collect();
    for (kind, src, dst, prefix, is_reach) in specs {
        let s = rc.node(src).ok_or_else(|| format!("unknown device {src:?}"))?;
        let d = rc.node(dst).ok_or_else(|| format!("unknown device {dst:?}"))?;
        let class = PacketClass::DstPrefix(*prefix);
        let policy = if *is_reach {
            Policy::Reachability { src: s, dst: d, class }
        } else {
            Policy::Isolation { src: s, dst: d, class }
        };
        let id = match existing.iter().position(|p| *p == policy) {
            Some(i) => realconfig::PolicyId(i as u32),
            None => rc.add_policy(policy),
        };
        out.push((format!("{kind}:{src}:{dst}:{prefix}"), id));
    }
    rc.recheck_policies();
    Ok(out)
}

/// Parse an optional `--threads N` flag and, when present, install it
/// as the process-global worker-count knob (so the construction-time
/// full check parallelizes too, not just later passes).
fn apply_threads_flag(args: &[String]) -> Result<(), CliError> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(());
    };
    let n: usize = args.get(i + 1).ok_or("--threads needs a worker count")?.parse()?;
    if n == 0 {
        return Err("--threads must be at least 1".into());
    }
    realconfig::set_threads(n);
    Ok(())
}

/// Parse an optional `--backend bdd|atoms` flag and, when present,
/// install it as the process-global predicate-backend default (so the
/// verifier built right after picks it up). Without the flag the
/// `RC_BACKEND` environment variable applies, then BDDs.
fn apply_backend_flag(args: &[String]) -> Result<(), CliError> {
    let Some(i) = args.iter().position(|a| a == "--backend") else {
        return Ok(());
    };
    let name = args.get(i + 1).ok_or("--backend needs a value: \"bdd\" or \"atoms\"")?;
    let kind: realconfig::PredKind = name.parse().map_err(CliError::from)?;
    realconfig::set_default_backend(Some(kind));
    Ok(())
}

/// Parse an optional `--metrics <path>` flag.
fn parse_metrics_path(args: &[String]) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == "--metrics") {
        Some(i) => {
            let path = args.get(i + 1).ok_or("--metrics needs a file path")?;
            Ok(Some(path.clone()))
        }
        None => Ok(None),
    }
}

/// Parse an optional `--state-dir <dir>` flag.
fn parse_state_dir(args: &[String]) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == "--state-dir") {
        Some(i) => {
            let dir = args.get(i + 1).ok_or("--state-dir needs a directory")?;
            Ok(Some(dir.clone()))
        }
        None => Ok(None),
    }
}

/// One-line summary of a restore outcome for operators.
fn describe_restore(report: &realconfig::RestoreReport) -> String {
    let source = match report.source {
        realconfig::RestoreSource::Snapshot { seq } => format!("snapshot {seq}"),
        realconfig::RestoreSource::PreviousSnapshot { seq } => {
            format!("previous snapshot {seq} (newest was corrupt)")
        }
        realconfig::RestoreSource::Rebuilt => "full rebuild (all snapshots corrupt)".into(),
        realconfig::RestoreSource::ColdStart => "cold start (no snapshots)".into(),
    };
    format!(
        "restored from {source} in {:?}: {} journal records replayed, {} discarded",
        report.elapsed, report.replayed, report.discarded_corrupt
    )
}

/// Write the verifier's telemetry snapshot as pretty JSON. Atomic
/// (write-temp, fsync, rename): a crash or panic mid-dump never leaves
/// a truncated file where a previous good snapshot used to be.
fn dump_metrics(rc: &RealConfig, path: &str) -> Result<(), CliError> {
    let json = serde_json::to_string_pretty(&rc.metrics_snapshot())?;
    rc_store::atomic_write(Path::new(path), json.as_bytes())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(())
}

/// Best-effort metrics dump on a failure path: never masks the original
/// error, reports its own problems to stderr only.
fn dump_metrics_on_failure(rc: &RealConfig, path: Option<&str>) {
    if let Some(path) = path {
        match dump_metrics(rc, path) {
            Ok(()) => eprintln!("metrics-so-far written to {path}"),
            Err(e) => eprintln!("warning: could not write metrics to {path}: {}", e.msg),
        }
    }
}

fn cmd_verify(args: &[String]) -> Result<bool, CliError> {
    let dir = args.first().ok_or("verify needs a config directory")?;
    apply_threads_flag(args)?;
    apply_backend_flag(args)?;
    let state_dir = parse_state_dir(args)?;
    let coalesce = args.iter().any(|a| a == "--coalesce");
    if coalesce && state_dir.is_none() {
        return Err("--coalesce needs --state-dir DIR (it coalesces journal replay)".into());
    }
    let configs = load_dir(dir)?;
    let n = configs.len();
    let mut rc = match &state_dir {
        Some(sd) => {
            let (mut rc, restore) = RealConfig::open_opts(Path::new(sd), configs.clone(), coalesce)?;
            println!("{n} devices verified ({}).", describe_restore(&restore));
            for note in &restore.notes {
                println!("  restore note: {note}");
            }
            if rc.configs() != &configs {
                // The directory moved on since the snapshot: verify the
                // drift incrementally on top of the warm state.
                let report = rc.apply_configs_or_rebuild(configs)?;
                println!(
                    "  configs drifted since snapshot: +{}/−{} lines verified in {:?}",
                    report.lines_inserted,
                    report.lines_deleted,
                    report.total()
                );
            }
            rc
        }
        None => {
            let (rc, report) = RealConfig::new(configs)?;
            println!("{n} devices verified.");
            println!("  data plane generation : {:?} ({} FIB entries)", report.dp_gen, report.fib_entries);
            println!("  model update          : {:?} ({} ECs, {} rules)", report.model_update, report.ecs, report.rules);
            println!("  policy check          : {:?} ({} reachable pairs)", report.policy_check, report.pairs);
            for w in &report.warnings {
                println!("  warning: {w}");
            }
            rc
        }
    };
    let policies = register_policies(&mut rc, &parse_policies(args)?)?;
    if state_dir.is_some() {
        // Persist the post-policy state so the next start is warm.
        let seq = rc.save_snapshot().map_err(|e| format!("cannot save snapshot: {e}"))?;
        println!("  snapshot {seq} written to {}", state_dir.as_deref().unwrap_or("?"));
    }
    let mut violated = false;
    for (name, id) in &policies {
        let ok = rc.is_satisfied(*id);
        violated |= !ok;
        println!("  policy {name}: {}", if ok { "SATISFIED" } else { "VIOLATED" });
    }
    if let Some(path) = parse_metrics_path(args)? {
        dump_metrics(&rc, &path)?;
        println!("  metrics written to {path}");
    }
    Ok(violated)
}

fn cmd_diff(args: &[String]) -> Result<bool, CliError> {
    let old_dir = args.first().ok_or("diff needs <old-dir> <new-dir>")?;
    let new_dir = args.get(1).ok_or("diff needs <old-dir> <new-dir>")?;
    let json = args.iter().any(|a| a == "--json");
    let recover = args.iter().any(|a| a == "--recover");
    apply_threads_flag(args)?;
    apply_backend_flag(args)?;
    let metrics_path = parse_metrics_path(args)?;
    let old = load_dir(old_dir)?;
    let new = load_dir(new_dir)?;

    let (mut rc, _) = match RealConfig::new(old) {
        Ok(built) => built,
        Err(e) => {
            return Err(CliError { msg: format!("old configs do not verify: {e}"), ..e.into() })
        }
    };
    let policies = register_policies(&mut rc, &parse_policies(args)?)?;

    let applied = if recover {
        rc.apply_configs_or_rebuild(new)
    } else {
        rc.apply_configs(new)
    };
    let report = match applied {
        Ok(report) => report,
        Err(e) => {
            dump_metrics_on_failure(&rc, metrics_path.as_deref());
            return Err(CliError { msg: format!("change verification failed: {e}"), ..e.into() });
        }
    };
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!(
            "config lines +{}/−{}  →  {} fact changes",
            report.lines_inserted, report.lines_deleted, report.fact_changes
        );
        if report.recovered {
            println!("incremental path FAILED; verified by full rebuild (self-healing)");
        }
        println!(
            "stage 1 (dp gen)      : {:?}, rules +{}/−{}",
            report.dp_gen, report.rules_inserted, report.rules_removed
        );
        println!(
            "stage 2 (model update): {:?}, {} affected ECs ({} moves, {} splits)",
            report.model_update, report.affected_ecs, report.ec_moves, report.ec_splits
        );
        println!(
            "stage 3 (policy check): {:?}, {}/{} pairs affected",
            report.policy_check, report.affected_pairs, report.total_pairs
        );
        println!("total incremental verification: {:?}", report.total());
        for w in &report.warnings {
            println!("warning: {w}");
        }
    }
    let mut violated = false;
    for (name, id) in &policies {
        let ok = rc.is_satisfied(*id);
        violated |= !ok;
        let newly = if report.newly_violated.contains(&id.0) {
            "  (NEWLY violated by this change)"
        } else if report.newly_satisfied.contains(&id.0) {
            "  (newly satisfied by this change)"
        } else {
            ""
        };
        println!("policy {name}: {}{newly}", if ok { "SATISFIED" } else { "VIOLATED" });
    }
    if let Some(path) = &metrics_path {
        dump_metrics(&rc, path)?;
        if !json {
            println!("metrics written to {path}");
        }
    }
    Ok(violated)
}

fn cmd_trace(args: &[String]) -> Result<bool, CliError> {
    let dir = args.first().ok_or("trace needs a config directory")?;
    apply_backend_flag(args)?;
    let mut from = None;
    let mut dst = None;
    let mut proto = 6u8;
    let mut dport = 0u16;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--from" => {
                from = Some(args.get(i + 1).ok_or("--from needs a device")?.clone());
                i += 2;
            }
            "--dst" => {
                dst = Some(args.get(i + 1).ok_or("--dst needs an address")?.clone());
                i += 2;
            }
            "--proto" => {
                proto = args.get(i + 1).ok_or("--proto needs a number")?.parse()?;
                i += 2;
            }
            "--dport" => {
                dport = args.get(i + 1).ok_or("--dport needs a number")?.parse()?;
                i += 2;
            }
            "--backend" => {
                // Validated and installed globally by apply_backend_flag
                // below; just step over the value here.
                i += 2;
            }
            other => return Err(format!("unknown trace argument {other:?}").into()),
        }
    }
    let from = from.ok_or("trace needs --from DEV")?;
    let dst: rc_netcfg::Ip =
        dst.ok_or("trace needs --dst A.B.C.D")?.parse().map_err(|e| format!("{e}"))?;

    let configs = load_dir(dir)?;
    let (rc, _) = RealConfig::new(configs)?;
    let packet = Packet { dst_ip: dst.0, proto, dst_port: dport, ..Default::default() };
    let trace =
        rc.trace_packet(&from, packet).ok_or_else(|| format!("unknown device {from:?}"))?;
    print!("{trace}");
    if trace.loops {
        println!("warning: the packet can LOOP");
    }
    Ok(trace.delivered_at.is_empty())
}

/// Build from configs and persist a snapshot — the explicit way to
/// seed a state directory (e.g. from CI, before a maintenance window).
fn cmd_snapshot(args: &[String]) -> Result<bool, CliError> {
    let dir = args.first().ok_or("snapshot needs a config directory")?;
    let state_dir =
        parse_state_dir(args)?.ok_or("snapshot needs --state-dir DIR")?;
    apply_threads_flag(args)?;
    apply_backend_flag(args)?;
    let configs = load_dir(dir)?;
    let n = configs.len();
    let (mut rc, _) = RealConfig::new(configs)?;
    register_policies(&mut rc, &parse_policies(args)?)?;
    rc.attach_state_dir(Path::new(&state_dir))
        .map_err(|e| format!("cannot use state dir {state_dir}: {e}"))?;
    let seq = rc.save_snapshot().map_err(|e| format!("cannot save snapshot: {e}"))?;
    println!(
        "{n} devices verified; snapshot {seq} written to {state_dir} ({} policies registered)",
        rc.policy_specs().len()
    );
    Ok(false)
}

/// Exercise the recovery ladder and report which rung ran. Exit code 5
/// signals "state was unrecoverable, verifier rebuilt from configs" —
/// running, but the warm state was lost.
fn cmd_restore(args: &[String]) -> Result<bool, CliError> {
    let dir = args.first().ok_or("restore needs a config directory (rebuild fallback)")?;
    let state_dir =
        parse_state_dir(args)?.ok_or("restore needs --state-dir DIR")?;
    let configs = load_dir(dir)?;
    let (rc, report) = RealConfig::open(Path::new(&state_dir), configs)?;
    println!("{}", describe_restore(&report));
    for note in &report.notes {
        println!("  note: {note}");
    }
    println!(
        "  state: {} devices, {} FIB rules, {} ECs, {} policies",
        rc.configs().len(),
        rc.num_fib_rules(),
        rc.num_ecs(),
        rc.policy_specs().len()
    );
    if report.source == realconfig::RestoreSource::Rebuilt {
        return Err(CliError {
            kind: ErrorKind::Degraded,
            msg: "durable state unrecoverable; rebuilt from configurations".into(),
        });
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_failure_model() {
        assert_eq!(ErrorKind::Parse.exit_code(), 2);
        assert_eq!(ErrorKind::Divergence.exit_code(), 3);
        assert_eq!(ErrorKind::Internal.exit_code(), 4);
        assert_eq!(ErrorKind::Degraded.exit_code(), 5);
    }

    #[test]
    fn verifier_errors_map_to_documented_exit_codes() {
        let e: CliError = realconfig::Error::Internal("boom".into()).into();
        assert_eq!(e.kind, ErrorKind::Internal);
        let e: CliError = realconfig::Error::Poisoned.into();
        assert_eq!(e.kind, ErrorKind::Internal);
        let e: CliError = realconfig::Error::Divergence(
            rc_dataflow::EvalError::Divergence { iterations: 1 },
        )
        .into();
        assert_eq!(e.kind, ErrorKind::Divergence);
        let e: CliError = "bad flag".into();
        assert_eq!(e.kind, ErrorKind::Parse);
    }
}
