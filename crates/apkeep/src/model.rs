//! The equivalence-class data plane model (a batch-mode APKeep).
//!
//! The model maintains one global partition of the packet header space
//! into equivalence classes (ECs). Every *element* — a device's
//! forwarding table, or an ACL binding — assigns each EC to exactly one
//! logical *port* (an action). A rule insertion or deletion transfers a
//! predicate's worth of packets between ports, splitting any EC that
//! straddles the transferred predicate; the split is global, so the
//! partition stays consistent across all elements.
//!
//! Batch mode (the paper's extension): a whole set of rule updates is
//! applied under a chosen order, and the model reports the net set of
//! affected ECs with their old and new actions — the input to the
//! incremental policy checker.
//!
//! Candidate narrowing (Delta-net-style): every EC keeps the interval
//! cover of the destination-IP projection of its predicate in a sorted
//! interval map ([`DstIndex`]), and every element keeps a `port → ECs`
//! inverted index, so a rule transfer probes only ECs whose dst
//! intervals intersect the rule's — not the whole partition — and skips
//! candidates already on the target port without any BDD work. See
//! DESIGN.md § "EC indexing".
//!
//! Precondition: an element never *persistently* holds two rules of
//! equal priority whose matches overlap but whose actions differ — a
//! FIB has one route per prefix (ECMP is one logical port), an ACL has
//! unique sequence numbers. Transient duplicates mid-batch (a rule
//! replacement applied insert-first) are fine.

use rc_bdd::{PredKind, Predicate, Preds, Ref};
use rc_netcfg::types::Prefix;

use crate::types::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Maximum intervals stored per EC (and computed per query) in the dst
/// index before falling back to the projection's `[min, max]` hull —
/// still sound, just coarser. Prefix-shaped predicates need 1 interval
/// and their complements 2; only heavily port/proto-fragmented
/// predicates hit the cap.
const INTERVAL_CAP: usize = 16;

struct StoredRule {
    priority: u32,
    rule_match: RuleMatch,
    pred: Ref,
    port: usize,
}

struct Element {
    key: ElementKey,
    /// Sorted by priority descending (ties by match/action for
    /// determinism).
    rules: Vec<StoredRule>,
    /// Port actions; index is the port id within this element.
    ports: Vec<PortAction>,
    port_index: HashMap<PortAction, usize>,
    /// Which port each EC is assigned to, indexed by EC id (EC ids are
    /// dense: splits append, merge compaction renumbers).
    port_of_ec: Vec<usize>,
    /// Inverted index: the ECs currently assigned to each port.
    ecs_on_port: Vec<BTreeSet<u32>>,
    default_port: usize,
}

impl Element {
    fn new(key: ElementKey, num_ecs: usize) -> Self {
        let default_action = match key {
            ElementKey::Forward(_) => PortAction::Drop,
            ElementKey::Filter(..) => PortAction::Permit,
        };
        let mut e = Element {
            key,
            rules: Vec::new(),
            ports: Vec::new(),
            port_index: HashMap::new(),
            port_of_ec: Vec::new(),
            ecs_on_port: Vec::new(),
            default_port: 0,
        };
        e.default_port = e.port_id(default_action);
        e.port_of_ec = vec![e.default_port; num_ecs];
        e.ecs_on_port[e.default_port].extend(0..num_ecs as u32);
        e
    }

    fn port_id(&mut self, action: PortAction) -> usize {
        if let Some(&id) = self.port_index.get(&action) {
            return id;
        }
        let id = self.ports.len();
        self.ports.push(action.clone());
        self.port_index.insert(action, id);
        self.ecs_on_port.push(BTreeSet::new());
        id
    }

    /// Reassign `ec` to `to`, maintaining the inverted index. Returns
    /// the previous port.
    fn assign(&mut self, ec: u32, to: usize) -> usize {
        let from = std::mem::replace(&mut self.port_of_ec[ec as usize], to);
        if from != to {
            self.ecs_on_port[from].remove(&ec);
            self.ecs_on_port[to].insert(ec);
        }
        from
    }

    /// Register a split child on its parent's port. Returns that port.
    fn add_split_child(&mut self, parent: u32, child: u32) -> usize {
        debug_assert_eq!(child as usize, self.port_of_ec.len());
        let port = self.port_of_ec[parent as usize];
        self.port_of_ec.push(port);
        self.ecs_on_port[port].insert(child);
        port
    }
}

/// A read-only snapshot view of the model's EC→port tables, detached
/// from the BDD manager and every mutating structure.
///
/// Per-EC reachability walks only ever ask "what does element E do to
/// EC e?" — a pure table lookup. Borrowing that lookup surface
/// separately from [`ApkModel`] lets the policy checker fan walks
/// across a thread pool (`EcView` is `Sync`: all fields are shared
/// references to plain data) while the model's `&mut` surface (BDD
/// ops, batch application) stays serialized between passes.
///
/// Invariants inherited from the model at snapshot time and unchanged
/// for the view's lifetime (the borrow prevents any mutation):
/// EC ids are dense in `0..num_ecs`, every element's `port_of_ec` has
/// exactly `num_ecs` entries, and `ecs_on_port` inverts it.
pub struct EcView<'a> {
    num_ecs: usize,
    element_index: &'a HashMap<ElementKey, usize>,
    elements: Vec<ElemView<'a>>,
}

/// One element's lookup tables, borrowed.
struct ElemView<'a> {
    /// Port id → action (FIB groups: one logical port per ECMP action).
    ports: &'a [PortAction],
    /// EC id → port id.
    port_of_ec: &'a [usize],
    /// Inverted index: port id → ECs currently on it.
    ecs_on_port: &'a [BTreeSet<u32>],
}

impl<'a> EcView<'a> {
    /// Number of live ECs at snapshot time.
    pub fn num_ecs(&self) -> usize {
        self.num_ecs
    }

    /// All live EC ids, ascending.
    pub fn ecs(&self) -> impl Iterator<Item = EcId> + 'a {
        (0..self.num_ecs as u32).map(EcId)
    }

    /// The action an element applies to an EC (`None`: the element does
    /// not exist — default behaviour). Mirrors [`ApkModel::action`].
    pub fn action(&self, key: ElementKey, ec: EcId) -> Option<&'a PortAction> {
        let e = &self.elements[*self.element_index.get(&key)?];
        Some(&e.ports[e.port_of_ec[ec.0 as usize]])
    }

    /// The ECs an element currently maps to the given action, if the
    /// element has such a port (inverted-index passthrough).
    pub fn ecs_with_action(&self, key: ElementKey, action: &PortAction) -> Option<&'a BTreeSet<u32>> {
        let e = &self.elements[*self.element_index.get(&key)?];
        let port = e.ports.iter().position(|p| p == action)?;
        Some(&e.ecs_on_port[port])
    }
}

/// Sorted interval map over the ECs' destination-IP covers.
///
/// Two mirrored views of the same interval set answer an intersection
/// query `[qlo, qhi]` in output-sensitive time, with integer
/// comparisons only:
///
/// * `by_lo` — every cover interval as `(lo, hi, ec)`, sorted: a range
///   scan yields the intervals *starting inside* the query window;
/// * `stabs` — an atom map `boundary → ECs covering [boundary, next)`:
///   one predecessor lookup yields the intervals *covering `qlo`*
///   (started before the window, reach into it).
///
/// Together those are exactly the intervals intersecting the query.
/// Atom boundaries are created as interval endpoints appear and never
/// removed (covers churn on the same prefix endpoints, so boundaries
/// saturate quickly); merge compaction rebuilds from scratch.
struct DstIndex {
    by_lo: BTreeSet<(u32, u32, u32)>,
    stabs: BTreeMap<u32, Vec<u32>>,
    /// Per-EC interval cover (mirror, for removal and invariants).
    covers: Vec<Vec<(u32, u32)>>,
}

impl DstIndex {
    /// An index over the initial single full-space EC.
    fn new_full_space() -> Self {
        let mut ix = DstIndex {
            by_lo: BTreeSet::new(),
            stabs: BTreeMap::from([(0u32, Vec::new())]),
            covers: Vec::new(),
        };
        ix.push_ec(vec![(0, u32::MAX)]);
        ix
    }

    /// The dst cover of `pred`: exact intervals when small, else the
    /// projection hull. Both variants over-approximate-or-equal the
    /// projection, which is all the index needs — covers feed candidate
    /// generation only, never pruning (see [`DstIndex::candidates`]).
    fn cover_of(preds: &Preds, pred: Ref) -> Vec<(u32, u32)> {
        preds.pkt_dst_cover(pred, INTERVAL_CAP).into_intervals()
    }

    /// Ensure an atom starts exactly at `at` (splitting the atom that
    /// covers it).
    fn ensure_boundary(&mut self, at: u32) {
        if self.stabs.contains_key(&at) {
            return;
        }
        let inherited =
            self.stabs.range(..at).next_back().map(|(_, v)| v.clone()).unwrap_or_default();
        self.stabs.insert(at, inherited);
    }

    fn add_interval(&mut self, lo: u32, hi: u32, ec: u32) {
        self.by_lo.insert((lo, hi, ec));
        self.ensure_boundary(lo);
        if hi < u32::MAX {
            self.ensure_boundary(hi + 1);
        }
        for (_, list) in self.stabs.range_mut(lo..=hi) {
            if let Err(p) = list.binary_search(&ec) {
                list.insert(p, ec);
            }
        }
    }

    fn remove_interval(&mut self, lo: u32, hi: u32, ec: u32) {
        self.by_lo.remove(&(lo, hi, ec));
        for (_, list) in self.stabs.range_mut(lo..=hi) {
            if let Ok(p) = list.binary_search(&ec) {
                list.remove(p);
            }
        }
    }

    /// Append a new EC (id = current count) with `cover`.
    fn push_ec(&mut self, cover: Vec<(u32, u32)>) {
        let ec = self.covers.len() as u32;
        for &(lo, hi) in &cover {
            self.add_interval(lo, hi, ec);
        }
        self.covers.push(cover);
    }

    /// Replace `ec`'s cover (after its predicate shrank in a split).
    fn set_cover(&mut self, ec: u32, cover: Vec<(u32, u32)>) {
        let old = std::mem::take(&mut self.covers[ec as usize]);
        for (lo, hi) in old {
            self.remove_interval(lo, hi, ec);
        }
        for &(lo, hi) in &cover {
            self.add_interval(lo, hi, ec);
        }
        self.covers[ec as usize] = cover;
    }

    /// Rebuild from scratch (after merge compaction renumbers ECs).
    fn rebuild(&mut self, covers: Vec<Vec<(u32, u32)>>) {
        self.by_lo.clear();
        self.stabs = BTreeMap::from([(0u32, Vec::new())]);
        self.covers.clear();
        for cover in covers {
            self.push_ec(cover);
        }
    }

    /// ECs whose cover intersects any interval of `query` — a superset
    /// of the ECs whose predicate intersects the queried one (covers
    /// over-approximate), ascending and deduplicated.
    fn candidates(&self, query: &[(u32, u32)]) -> Vec<u32> {
        let mut out = Vec::new();
        for &(qlo, qhi) in query {
            // Intervals starting inside the query window.
            for &(_, _, ec) in self.by_lo.range((qlo, 0, 0)..=(qhi, u32::MAX, u32::MAX)) {
                out.push(ec);
            }
            // Intervals covering qlo: started before the window and
            // reach into it.
            if let Some((_, list)) = self.stabs.range(..=qlo).next_back() {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The data plane model. Owns the predicate store and the global EC
/// table.
pub struct ApkModel {
    preds: Preds,
    /// `ec_preds[i]` is the predicate of EC `i`. Never empty, never
    /// overlapping; their union is the full space.
    ec_preds: Vec<Ref>,
    /// Dst-interval index over `ec_preds`, maintained on split/merge.
    dst_index: DstIndex,
    /// Test support: bypass the index and probe every EC (the oracle
    /// the property tests compare against). The index is still
    /// maintained, so the flag can be toggled at any time.
    full_scan: bool,
    elements: Vec<Element>,
    element_index: HashMap<ElementKey, usize>,
    telemetry: Option<ApkTelemetry>,
    /// Worker-count override for the parallel EC scans; `0` means
    /// "unset, use the process default" ([`rc_par::threads`]).
    threads: usize,
}

/// Minimum candidate-scan length before the parallel paths engage;
/// below this the pool dispatch costs more than the scan.
const PAR_SCAN_MIN: usize = 32;

/// Candidates per block in the block-wise parallel transfer: each block
/// is prefiltered in parallel against the immutable store, then applied
/// serially, so the serial early-exit (`remaining` drained) is checked
/// at least every `TRANSFER_BLOCK` candidates.
const TRANSFER_BLOCK: usize = 256;

/// Cached metric handles (name lookups happen once, at attach time).
/// The index counters register lazily, on first indexed query, so
/// snapshots from runs that never exercise the index carry no
/// `apkeep.index_*` keys.
struct ApkTelemetry {
    registry: rc_telemetry::Telemetry,
    ecs: rc_telemetry::Gauge,
    elements: rc_telemetry::Gauge,
    rules: rc_telemetry::Gauge,
    rules_applied: rc_telemetry::Counter,
    ec_moves: rc_telemetry::Counter,
    ec_splits: rc_telemetry::Counter,
    ec_merges: rc_telemetry::Counter,
    affected_ecs: rc_telemetry::Counter,
    batch_rules: rc_telemetry::Histogram,
    index_probes: std::sync::OnceLock<rc_telemetry::Counter>,
    index_skipped: std::sync::OnceLock<rc_telemetry::Counter>,
    index_fallbacks: std::sync::OnceLock<rc_telemetry::Counter>,
    bdd_apply_hits: std::sync::OnceLock<rc_telemetry::Counter>,
    bdd_apply_misses: std::sync::OnceLock<rc_telemetry::Counter>,
    /// Totals already mirrored into the registry (the BDD keeps
    /// cumulative counts; telemetry adds deltas).
    bdd_hits_seen: u64,
    bdd_misses_seen: u64,
}

impl ApkTelemetry {
    fn new(registry: &rc_telemetry::Telemetry) -> Self {
        ApkTelemetry {
            registry: registry.clone(),
            ecs: registry.gauge("apkeep.ecs"),
            elements: registry.gauge("apkeep.elements"),
            rules: registry.gauge("apkeep.rules"),
            rules_applied: registry.counter("apkeep.rules_applied"),
            ec_moves: registry.counter("apkeep.ec_moves"),
            ec_splits: registry.counter("apkeep.ec_splits"),
            ec_merges: registry.counter("apkeep.ec_merges"),
            affected_ecs: registry.counter("apkeep.affected_ecs"),
            batch_rules: registry.histogram("apkeep.batch_rules"),
            index_probes: std::sync::OnceLock::new(),
            index_skipped: std::sync::OnceLock::new(),
            index_fallbacks: std::sync::OnceLock::new(),
            bdd_apply_hits: std::sync::OnceLock::new(),
            bdd_apply_misses: std::sync::OnceLock::new(),
            bdd_hits_seen: 0,
            bdd_misses_seen: 0,
        }
    }

    /// Candidates that went on to a predicate intersection.
    ///
    /// The lazy counters live in `OnceLock`s (not `Option`s) so first
    /// registration works through `&self` — the counters themselves are
    /// interior-mutable registry handles, and read paths like
    /// [`ApkModel::ecs_intersecting`] must not need `&mut` just to
    /// count.
    fn index_probes(&self) -> &rc_telemetry::Counter {
        self.index_probes.get_or_init(|| self.registry.counter("apkeep.index_probes"))
    }

    /// ECs excluded without any predicate work (outside the queried dst
    /// intervals, or already on the transfer's target port).
    fn index_skipped(&self) -> &rc_telemetry::Counter {
        self.index_skipped.get_or_init(|| self.registry.counter("apkeep.index_skipped"))
    }

    /// Queries whose dst cover was the full address space (e.g. an ACL
    /// with an unconstrained dst), degrading to a full scan.
    fn index_fallbacks(&self) -> &rc_telemetry::Counter {
        self.index_fallbacks.get_or_init(|| self.registry.counter("apkeep.index_fallbacks"))
    }

    /// BDD binary-op memo cache hits (lazily registered on first sync
    /// that saw BDD work).
    fn bdd_apply_hits(&self) -> &rc_telemetry::Counter {
        self.bdd_apply_hits.get_or_init(|| self.registry.counter("bdd.apply_hits"))
    }

    /// BDD binary-op memo cache misses.
    fn bdd_apply_misses(&self) -> &rc_telemetry::Counter {
        self.bdd_apply_misses.get_or_init(|| self.registry.counter("bdd.apply_misses"))
    }
}

impl Default for ApkModel {
    fn default() -> Self {
        Self::new()
    }
}

impl ApkModel {
    /// A fresh model on the process-default predicate backend
    /// ([`rc_bdd::default_backend`]): one EC covering the whole header
    /// space, no elements.
    pub fn new() -> Self {
        Self::with_backend(rc_bdd::default_backend())
    }

    /// A fresh model on an explicit predicate backend. `PredKind::Atoms`
    /// is only valid for dst-prefix-only workloads: compiling any other
    /// match field panics (see [`rc_bdd::Atoms`]).
    pub fn with_backend(kind: PredKind) -> Self {
        ApkModel {
            preds: Preds::new(kind),
            ec_preds: vec![Ref::TRUE],
            dst_index: DstIndex::new_full_space(),
            full_scan: false,
            elements: Vec::new(),
            element_index: HashMap::new(),
            telemetry: None,
            threads: 0,
        }
    }

    /// Which predicate backend this model runs on.
    pub fn backend(&self) -> PredKind {
        self.preds.kind()
    }

    /// Attach a telemetry registry. Every batch records the transfer
    /// size (`apkeep.batch_rules`, `apkeep.rules_applied`), EC churn
    /// (`apkeep.ec_moves`/`ec_splits`/`ec_merges`), net affected ECs,
    /// and the post-batch EC/element/rule totals as gauges. Indexed
    /// queries additionally record `apkeep.index_probes` /
    /// `index_skipped` / `index_fallbacks` (registered lazily, on first
    /// indexed query).
    pub fn set_telemetry(&mut self, registry: &rc_telemetry::Telemetry) {
        self.telemetry = Some(ApkTelemetry::new(registry));
    }

    /// Disable (or re-enable) the dst-interval candidate index,
    /// reverting queries to the full O(#ECs) scan. The index is still
    /// maintained while disabled. Test/ablation support: both paths
    /// must produce byte-identical results.
    pub fn set_full_scan(&mut self, full_scan: bool) {
        self.full_scan = full_scan;
    }

    /// Override the worker count for the parallel EC scans (`None`
    /// reverts to the process default, [`rc_par::threads`]). At any
    /// worker count the scans produce byte-identical results, splits
    /// and counters; `<= 1` is the exact serial path.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads.unwrap_or(0);
    }

    fn worker_threads(&self) -> usize {
        match self.threads {
            0 => rc_par::threads(),
            n => n,
        }
    }

    /// Number of live ECs.
    pub fn num_ecs(&self) -> usize {
        self.ec_preds.len()
    }

    /// Number of elements (devices' FIBs + ACL bindings seen so far).
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Total rules across all elements.
    pub fn num_rules(&self) -> usize {
        self.elements.iter().map(|e| e.rules.len()).sum()
    }

    /// The predicate of an EC.
    pub fn ec_pred(&self, ec: EcId) -> Ref {
        self.ec_preds[ec.0 as usize]
    }

    /// All live EC ids.
    pub fn ecs(&self) -> impl Iterator<Item = EcId> + '_ {
        (0..self.ec_preds.len() as u32).map(EcId)
    }

    /// The predicate store (for witness extraction and custom
    /// predicates). Callers use the [`rc_bdd::Predicate`] trait surface;
    /// `Ref`s obtained here belong to this model's store only.
    pub fn preds(&mut self) -> &mut Preds {
        &mut self.preds
    }

    /// Snapshot the EC→port lookup surface for read-only concurrent
    /// walks (see [`EcView`]). The view borrows the model immutably, so
    /// no batch or BDD operation can run while it is alive.
    pub fn ec_view(&self) -> EcView<'_> {
        EcView {
            num_ecs: self.ec_preds.len(),
            element_index: &self.element_index,
            elements: self
                .elements
                .iter()
                .map(|e| ElemView {
                    ports: &e.ports,
                    port_of_ec: &e.port_of_ec,
                    ecs_on_port: &e.ecs_on_port,
                })
                .collect(),
        }
    }

    /// Mirror the predicate store's op-cache hit/miss totals into the
    /// attached telemetry registry as `bdd.apply_hits` /
    /// `bdd.apply_misses` (registered lazily, on the first sync that
    /// observes BDD work — the atoms backend has no op cache and thus
    /// registers nothing). Called at natural sync points — batch end
    /// and the end of each policy checking pass — so the counters lag
    /// live BDD activity by at most one pipeline stage.
    pub fn sync_bdd_telemetry(&mut self) {
        let (hits, misses) = self.preds.apply_cache_stats();
        if let Some(tel) = &mut self.telemetry {
            let dh = hits - tel.bdd_hits_seen;
            let dm = misses - tel.bdd_misses_seen;
            if dh > 0 {
                tel.bdd_apply_hits().add(dh);
                tel.bdd_hits_seen = hits;
            }
            if dm > 0 {
                tel.bdd_apply_misses().add(dm);
                tel.bdd_misses_seen = misses;
            }
        }
    }

    /// The action an element applies to an EC. `None` when the element
    /// does not exist (meaning: default behaviour — drop for FIBs,
    /// permit for filters).
    pub fn action(&self, key: ElementKey, ec: EcId) -> Option<&PortAction> {
        let e = &self.elements[*self.element_index.get(&key)?];
        Some(&e.ports[e.port_of_ec[ec.0 as usize]])
    }

    /// The rule a concrete packet matches at an element, in first-match
    /// table order: `(priority, match, action)`. `None` when the packet
    /// falls through to the element's default action (or the element
    /// does not exist).
    pub fn matching_rule(
        &self,
        key: ElementKey,
        pkt: &rc_bdd::pkt::Packet,
    ) -> Option<(u32, RuleMatch, PortAction)> {
        let e = &self.elements[*self.element_index.get(&key)?];
        for r in &e.rules {
            if self.preds.pkt_eval(r.pred, pkt) {
                return Some((r.priority, r.rule_match, e.ports[r.port].clone()));
            }
        }
        None
    }

    /// The EC containing a concrete packet.
    pub fn ec_of_packet(&self, pkt: &rc_bdd::pkt::Packet) -> EcId {
        for (i, &p) in self.ec_preds.iter().enumerate() {
            if self.preds.pkt_eval(p, pkt) {
                return EcId(i as u32);
            }
        }
        unreachable!("ECs partition the full space")
    }

    /// Candidate ECs for `pred` from the dst-interval index: a superset
    /// of the ECs intersecting `pred`, ascending. `None` means "probe
    /// everything" — the index is disabled, or `pred`'s dst cover is
    /// the whole address space so the index cannot narrow anything.
    fn candidate_ecs(&self, pred: Ref) -> Option<Vec<u32>> {
        if self.full_scan {
            return None;
        }
        let query = DstIndex::cover_of(&self.preds, pred);
        if query == [(0, u32::MAX)] {
            if let Some(tel) = &self.telemetry {
                tel.index_fallbacks().incr();
            }
            return None;
        }
        let cands = self.dst_index.candidates(&query);
        #[cfg(debug_assertions)]
        self.cross_check_candidates(pred, &cands);
        Some(cands)
    }

    /// Debug-build cross-check: the indexed candidate set must contain
    /// every EC the full scan would find intersecting `pred`.
    #[cfg(debug_assertions)]
    fn cross_check_candidates(&self, pred: Ref, candidates: &[u32]) {
        for i in 0..self.ec_preds.len() {
            if self.preds.intersects(self.ec_preds[i], pred) {
                debug_assert!(
                    candidates.binary_search(&(i as u32)).is_ok(),
                    "dst index dropped intersecting EC {i}"
                );
            }
        }
    }

    /// ECs whose predicate intersects `pred`.
    ///
    /// Read-only: the intersection test is the store's non-interning
    /// [`Predicate::intersects`] and the telemetry counters are
    /// interior-mutable handles, so the method shares `&self` with e.g.
    /// a live [`EcView`] instead of demanding an exclusive borrow.
    pub fn ecs_intersecting(&self, pred: Ref) -> Vec<EcId> {
        if pred.is_false() {
            return Vec::new();
        }
        let num_ecs = self.ec_preds.len();
        let candidates = self.candidate_ecs(pred);
        let indexed = candidates.is_some();
        let scan = candidates.unwrap_or_else(|| (0..num_ecs as u32).collect());
        let nthreads = self.worker_threads();
        let mut out = Vec::new();
        if nthreads > 1 && scan.len() >= PAR_SCAN_MIN {
            // Pure read-only filter; results reassemble in scan order,
            // so the output is identical to the serial loop's.
            let preds = &self.preds;
            let ec_preds = &self.ec_preds;
            let (hits, _stats) = rc_par::par_map_indexed_in(nthreads, &scan, |_, &i| {
                preds.intersects(ec_preds[i as usize], pred)
            });
            out.extend(scan.iter().zip(hits).filter_map(|(&i, hit)| hit.then_some(EcId(i))));
        } else {
            for &i in &scan {
                if self.preds.intersects(self.ec_preds[i as usize], pred) {
                    out.push(EcId(i));
                }
            }
        }
        if let Some(tel) = &self.telemetry {
            if indexed {
                tel.index_probes().add(scan.len() as u64);
                tel.index_skipped().add((num_ecs - scan.len()) as u64);
            }
        }
        out
    }

    fn compile(&mut self, m: RuleMatch) -> Ref {
        use rc_bdd::pkt::Field;
        let prefix_pred = |preds: &mut Preds, f: Field, p: Prefix| {
            preds.pkt_prefix(f, p.addr().0, p.len() as u32)
        };
        match m {
            RuleMatch::DstPrefix(p) => prefix_pred(&mut self.preds, Field::DstIp, p),
            // Non-dst constraints are only encodable on the BDD backend;
            // on atoms the store panics with a pointer at `--backend bdd`
            // rather than silently widening the match.
            RuleMatch::Acl { proto, src, dst, dst_ports } => {
                let mut acc = prefix_pred(&mut self.preds, Field::SrcIp, src);
                let d = prefix_pred(&mut self.preds, Field::DstIp, dst);
                acc = self.preds.and(acc, d);
                if let Some(pr) = proto {
                    let p = self.preds.pkt_value(Field::Proto, pr as u32);
                    acc = self.preds.and(acc, p);
                }
                if let Some((lo, hi)) = dst_ports {
                    let r = self.preds.pkt_range(Field::DstPort, lo as u32, hi as u32);
                    acc = self.preds.and(acc, r);
                }
                acc
            }
        }
    }

    fn element_id(&mut self, key: ElementKey) -> usize {
        if let Some(&i) = self.element_index.get(&key) {
            return i;
        }
        let i = self.elements.len();
        self.elements.push(Element::new(key, self.ec_preds.len()));
        self.element_index.insert(key, i);
        i
    }

    /// Apply one batch of rule updates under `order`, returning the
    /// batch summary with net affected ECs.
    ///
    /// Fault injection: `apply_batch` has no error channel, so an
    /// error-mode `rc_faults` fault at this point escalates to a panic
    /// (the verifier's panic containment converts it into an internal
    /// error either way).
    pub fn apply_batch(&mut self, mut updates: Vec<RuleUpdate>, order: UpdateOrder) -> BatchSummary {
        if rc_faults::fire(rc_faults::FaultPoint::ApkBatch) {
            panic!(
                "{} error at apkeep batch escalated to panic (no error channel)",
                rc_faults::INJECTED_PANIC_PREFIX
            );
        }
        match order {
            UpdateOrder::InsertFirst => {
                updates.sort_by_key(|u| !u.is_insert());
            }
            UpdateOrder::DeleteFirst => {
                updates.sort_by_key(|u| u.is_insert());
            }
            UpdateOrder::AsGiven => {}
        }
        let mut tx = Batch::default();
        for u in updates {
            match u {
                RuleUpdate::Insert(r) => self.insert_rule(r, &mut tx),
                RuleUpdate::Remove(r) => self.remove_rule(r, &mut tx),
            }
            tx.rules += 1;
        }
        self.finish_batch(tx)
    }

    fn insert_rule(&mut self, rule: ModelRule, tx: &mut Batch) {
        let pred = self.compile(rule.rule_match);
        let eid = self.element_id(rule.element);
        let port;
        let hit;
        {
            let elem = &mut self.elements[eid];
            port = elem.port_id(rule.action.clone());
            // Packets this rule newly captures: its match minus
            // higher-priority coverage.
            let higher: Vec<Ref> = elem
                .rules
                .iter()
                .filter(|r| r.priority > rule.priority)
                .map(|r| r.pred)
                .collect();
            let mut h = pred;
            for hp in higher {
                h = self.preds.diff(h, hp);
                if h.is_false() {
                    break;
                }
            }
            hit = h;
            let elem = &mut self.elements[eid];
            let stored =
                StoredRule { priority: rule.priority, rule_match: rule.rule_match, pred, port };
            let pos = match elem.rules.binary_search_by(|r| {
                (std::cmp::Reverse(r.priority), r.rule_match, &elem.ports[r.port])
                    .cmp(&(std::cmp::Reverse(rule.priority), rule.rule_match, &rule.action))
            }) {
                // Identical rule already stored (same priority, match
                // and action): inserting it again is a no-op — its
                // packets are already on its port. Storing a second
                // copy would leave a phantom rule behind after one
                // matching Remove.
                Ok(_) => return,
                Err(p) => p,
            };
            elem.rules.insert(pos, stored);
        }
        self.transfer(eid, hit, port, tx);
    }

    fn remove_rule(&mut self, rule: ModelRule, tx: &mut Batch) {
        let pred = self.compile(rule.rule_match);
        let eid = self.element_id(rule.element);
        // Locate and remove the stored rule.
        let (hit, redistribution) = {
            let elem = &mut self.elements[eid];
            let pos = elem
                .rules
                .iter()
                .position(|r| {
                    r.priority == rule.priority
                        && r.pred == pred
                        && elem.ports[r.port] == rule.action
                })
                .unwrap_or_else(|| {
                    panic!("removing a rule that is not in the model: {rule:?}")
                });
            elem.rules.remove(pos);
            // What the rule was actually covering.
            let higher: Vec<Ref> = elem
                .rules
                .iter()
                .filter(|r| r.priority > rule.priority)
                .map(|r| r.pred)
                .collect();
            let mut h = pred;
            for hp in higher {
                h = self.preds.diff(h, hp);
                if h.is_false() {
                    break;
                }
            }
            // Where those packets fall now: the remaining rules at
            // lower (or equal) priority, in table order, then default.
            let lower: Vec<(Ref, usize)> = elem
                .rules
                .iter()
                .filter(|r| r.priority <= rule.priority)
                .map(|r| (r.pred, r.port))
                .collect();
            (h, lower)
        };
        let mut rest = hit;
        let mut moves: Vec<(Ref, usize)> = Vec::new();
        for (rpred, rport) in redistribution {
            if rest.is_false() {
                break;
            }
            let take = self.preds.and(rest, rpred);
            if !take.is_false() {
                moves.push((take, rport));
                rest = self.preds.diff(rest, take);
            }
        }
        if !rest.is_false() {
            let dp = self.elements[eid].default_port;
            moves.push((rest, dp));
        }
        for (p, port) in moves {
            self.transfer(eid, p, port, tx);
        }
    }

    /// Move all packets of `pred` to `to_port` on element `eid`,
    /// splitting straddling ECs.
    ///
    /// Probes only the index's candidate ECs (ascending, so split
    /// child ids are identical to a full scan's), and skips candidates
    /// already assigned to the target port without touching the BDD —
    /// such ECs can neither split nor move. Both shortcuts are
    /// output-invariant: ECs are disjoint, so each EC's intersection
    /// with the un-transferred remainder equals its intersection with
    /// `pred` regardless of which other ECs were probed first.
    ///
    /// With more than one worker and a long enough scan, candidates are
    /// processed block-wise: each block is prefiltered in parallel with
    /// the store's read-only `intersects(ec, pred)` (valid against the
    /// full `pred` — for an unprocessed candidate `ec ∩ remaining`
    /// equals `ec ∩ pred` by EC disjointness), then applied serially in
    /// ascending EC order. Splits, moves, child ids, probe/skip counts
    /// and the early exit are therefore byte-identical to the serial
    /// scan at any worker count.
    fn transfer(&mut self, eid: usize, pred: Ref, to_port: usize, tx: &mut Batch) {
        if pred.is_false() {
            return;
        }
        let num_ecs = self.ec_preds.len();
        let candidates = self.candidate_ecs(pred);
        let indexed = candidates.is_some();
        let scan = candidates.unwrap_or_else(|| (0..num_ecs as u32).collect());
        // Track the part of `pred` not yet accounted for: once every
        // packet of the predicate has been located on an off-target
        // candidate, the scan can stop early — the common case is a
        // prefix covering exactly one EC.
        let mut remaining = pred;
        let mut probes = 0u64;
        let mut skips = if indexed { (num_ecs - scan.len()) as u64 } else { 0 };
        let nthreads = self.worker_threads();
        if nthreads > 1 && scan.len() >= PAR_SCAN_MIN {
            'blocks: for (bi, block) in scan.chunks(TRANSFER_BLOCK).enumerate() {
                if remaining.is_false() {
                    break;
                }
                // Parallel, read-only prefilter. The store is borrowed
                // shared here; all mutation happens in the serial apply
                // loop below, so block predicates are stable (earlier
                // candidates' splits only rewrite their own entry and
                // append children past the scan).
                let preds = &self.preds;
                let ec_preds = &self.ec_preds;
                let port_of_ec = &self.elements[eid].port_of_ec;
                let (hits, _stats) = rc_par::par_map_indexed_in(nthreads, block, |j, &idx| {
                    rc_faults::fire_shard(
                        rc_faults::ShardSite::ApkTransfer,
                        bi * TRANSFER_BLOCK + j,
                    );
                    port_of_ec[idx as usize] != to_port
                        && preds.intersects(ec_preds[idx as usize], pred)
                });
                // Serial apply, ascending: identical decisions and
                // counters to the serial loop. A prefilter miss proves
                // the intersection is empty, so the `and` is skipped —
                // an empty result interns nothing, so the store is
                // left exactly as the serial scan leaves it.
                for (&idx, hit) in block.iter().zip(hits) {
                    if remaining.is_false() {
                        break 'blocks;
                    }
                    if self.elements[eid].port_of_ec[idx as usize] == to_port {
                        skips += 1;
                        continue;
                    }
                    probes += 1;
                    if !hit {
                        continue;
                    }
                    let ec_pred = self.ec_preds[idx as usize];
                    let inter = self.preds.and(ec_pred, remaining);
                    if inter.is_false() {
                        continue;
                    }
                    remaining = self.preds.diff(remaining, inter);
                    let moving = if inter == ec_pred { idx } else { self.split(idx, inter, tx) };
                    self.move_ec(eid, moving, to_port, tx);
                }
            }
        } else {
            for &idx in &scan {
                if remaining.is_false() {
                    break;
                }
                if self.elements[eid].port_of_ec[idx as usize] == to_port {
                    skips += 1;
                    continue;
                }
                let ec_pred = self.ec_preds[idx as usize];
                probes += 1;
                let inter = self.preds.and(ec_pred, remaining);
                if inter.is_false() {
                    continue;
                }
                remaining = self.preds.diff(remaining, inter);
                let moving = if inter == ec_pred { idx } else { self.split(idx, inter, tx) };
                self.move_ec(eid, moving, to_port, tx);
            }
        }
        if let Some(tel) = &mut self.telemetry {
            tel.index_probes().add(probes);
            tel.index_skipped().add(skips);
        }
    }

    /// Split EC `parent`: carve out `inter` (strictly smaller than the
    /// parent's predicate) into a new EC placed on the same port as the
    /// parent in every element. Returns the new EC id.
    fn split(&mut self, parent: u32, inter: Ref, tx: &mut Batch) -> u32 {
        let child = self.ec_preds.len() as u32;
        let remainder = self.preds.diff(self.ec_preds[parent as usize], inter);
        debug_assert!(!remainder.is_false(), "split with nothing left in the parent");
        self.ec_preds[parent as usize] = remainder;
        self.ec_preds.push(inter);
        // Index maintenance: the parent's dst projection shrank (or
        // stayed — recompute either way), the child's is new.
        let parent_cover = DstIndex::cover_of(&self.preds, remainder);
        self.dst_index.set_cover(parent, parent_cover);
        let child_cover = DstIndex::cover_of(&self.preds, inter);
        self.dst_index.push_ec(child_cover);
        for (eidx, elem) in self.elements.iter_mut().enumerate() {
            let port = elem.add_split_child(parent, child);
            // The child's pre-batch action is whatever the parent's
            // was (the parent may itself have moved already).
            if let Some(action) = tx.baseline.get(&(parent, eidx)) {
                tx.baseline.insert((child, eidx), action.clone());
            } else {
                tx.baseline.insert((child, eidx), elem.ports[port].clone());
            }
        }
        tx.splits.push((EcId(parent), EcId(child)));
        child
    }

    fn move_ec(&mut self, eid: usize, ec: u32, to_port: usize, tx: &mut Batch) {
        let elem = &mut self.elements[eid];
        let from = elem.assign(ec, to_port);
        debug_assert_ne!(from, to_port);
        tx.baseline.entry((ec, eid)).or_insert_with(|| elem.ports[from].clone());
        tx.moves += 1;
    }

    fn finish_batch(&mut self, tx: Batch) -> BatchSummary {
        let mut affected = Vec::new();
        for ((ec, eidx), old) in &tx.baseline {
            let elem = &self.elements[*eidx];
            let now = &elem.ports[elem.port_of_ec[*ec as usize]];
            if now != old {
                affected.push(AffectedEc {
                    ec: EcId(*ec),
                    element: elem.key,
                    old: old.clone(),
                    new: now.clone(),
                });
            }
        }
        affected.sort_by_key(|a| (a.ec, a.element));
        if let Some(tel) = &self.telemetry {
            tel.rules_applied.add(tx.rules as u64);
            tel.batch_rules.record(tx.rules as u64);
            tel.ec_moves.add(tx.moves as u64);
            tel.ec_splits.add(tx.splits.len() as u64);
            tel.affected_ecs.add(affected.len() as u64);
            tel.ecs.set(self.ec_preds.len() as i64);
            tel.elements.set(self.elements.len() as i64);
            tel.rules.set(self.num_rules() as i64);
        }
        self.sync_bdd_telemetry();
        BatchSummary {
            affected,
            ec_moves: tx.moves,
            ec_splits: tx.splits.len(),
            splits: tx.splits,
            rules_applied: tx.rules,
        }
    }

    /// Merge ECs that receive identical treatment at every element
    /// (APKeep's minimality maintenance) and compact the EC table.
    ///
    /// Compaction renumbers **every** EC, not just merged ones. The
    /// report carries the `(survivor, absorbed)` pairs in
    /// pre-compaction ids *and* the full old→new remap; callers keeping
    /// EC-keyed state must re-key it through
    /// [`MergeReport::new_id`]/`remap`.
    pub fn merge_equivalent(&mut self) -> MergeReport {
        let num_ecs = self.ec_preds.len();
        // Group by signature — the port assignment vector across
        // elements — walking each element's inverted index once
        // instead of probing per (EC, element).
        let mut sig_of: Vec<Vec<usize>> = vec![Vec::with_capacity(self.elements.len()); num_ecs];
        for elem in &self.elements {
            for (port, ecs) in elem.ecs_on_port.iter().enumerate() {
                for &ec in ecs {
                    sig_of[ec as usize].push(port);
                }
            }
        }
        let mut groups: HashMap<Vec<usize>, Vec<u32>> = HashMap::new();
        for (ec, sig) in sig_of.into_iter().enumerate() {
            groups.entry(sig).or_default().push(ec as u32);
        }
        let mut merges = Vec::new();
        // survivor_of[ec]: the pre-compaction id carrying ec's packets.
        let mut survivor_of: Vec<u32> = (0..num_ecs as u32).collect();
        for (_, mut group) in groups {
            group.sort_unstable();
            let survivor = group[0];
            for &ec in &group[1..] {
                let merged =
                    self.preds.or(self.ec_preds[survivor as usize], self.ec_preds[ec as usize]);
                self.ec_preds[survivor as usize] = merged;
                merges.push((EcId(survivor), EcId(ec)));
                survivor_of[ec as usize] = survivor;
            }
        }
        // HashMap group order is unstable; report deterministically.
        merges.sort_unstable();
        // Compact: survivors keep their relative order under new ids.
        let mut new_id: Vec<u32> = vec![u32::MAX; num_ecs];
        let mut new_preds = Vec::new();
        for ec in 0..num_ecs {
            if survivor_of[ec] == ec as u32 {
                new_id[ec] = new_preds.len() as u32;
                new_preds.push(self.ec_preds[ec]);
            }
        }
        let remap: Vec<EcId> =
            (0..num_ecs).map(|ec| EcId(new_id[survivor_of[ec] as usize])).collect();
        if !merges.is_empty() {
            self.ec_preds = new_preds;
            for elem in &mut self.elements {
                let old_ports = std::mem::take(&mut elem.port_of_ec);
                elem.port_of_ec = vec![0; self.ec_preds.len()];
                for s in &mut elem.ecs_on_port {
                    s.clear();
                }
                for (old, port) in old_ports.into_iter().enumerate() {
                    if survivor_of[old] == old as u32 {
                        let new = new_id[old] as usize;
                        elem.port_of_ec[new] = port;
                        elem.ecs_on_port[port].insert(new as u32);
                    }
                }
            }
            // Survivor predicates grew and every id moved: rebuild the
            // dst index outright.
            let covers: Vec<Vec<(u32, u32)>> =
                self.ec_preds.iter().map(|&p| DstIndex::cover_of(&self.preds, p)).collect();
            self.dst_index.rebuild(covers);
        }
        if let Some(tel) = &self.telemetry {
            tel.ec_merges.add(merges.len() as u64);
            tel.ecs.set(self.ec_preds.len() as i64);
        }
        MergeReport { merges, remap }
    }

    /// Verify internal invariants (test support): EC predicates are
    /// nonempty, pairwise disjoint, cover the space; every element's
    /// inverted port index partitions the ECs consistently with its
    /// rule table; and the dst index mirrors each EC's projection
    /// cover.
    pub fn check_invariants(&mut self) {
        let mut union = Ref::FALSE;
        for i in 0..self.ec_preds.len() {
            let p = self.ec_preds[i];
            assert!(!p.is_false(), "EC {i} is empty");
            assert!(self.preds.and(union, p).is_false(), "EC {i} overlaps earlier ECs");
            union = self.preds.or(union, p);
        }
        assert!(union.is_true(), "ECs do not cover the space");

        for eidx in 0..self.elements.len() {
            let (rules, default, num_ports, assignments, inverted) = {
                let e = &self.elements[eidx];
                assert_eq!(
                    e.port_of_ec.len(),
                    self.ec_preds.len(),
                    "element {eidx} EC table out of sync"
                );
                (
                    e.rules.iter().map(|r| (r.pred, r.port)).collect::<Vec<_>>(),
                    e.default_port,
                    e.ports.len(),
                    e.port_of_ec.clone(),
                    e.ecs_on_port.clone(),
                )
            };
            // First-match evaluation of the table over the whole space:
            // the predicate each port should carry.
            let mut port_pred = vec![Ref::FALSE; num_ports];
            let mut remaining = Ref::TRUE;
            for &(rp, rport) in &rules {
                let covered = self.preds.and(remaining, rp);
                port_pred[rport] = self.preds.or(port_pred[rport], covered);
                remaining = self.preds.diff(remaining, rp);
            }
            port_pred[default] = self.preds.or(port_pred[default], remaining);

            // Walk the inverted index: every EC appears on exactly one
            // port, consistent with `port_of_ec`, and lies entirely
            // within that port's predicate (it may straddle individual
            // rules as long as the resulting behaviour is uniform).
            let mut seen = 0usize;
            for (port, ecs) in inverted.iter().enumerate() {
                for &ec in ecs {
                    assert_eq!(
                        assignments[ec as usize], port,
                        "inverted index disagrees with port_of_ec at element {eidx}, EC {ec}"
                    );
                    let ec_pred = self.ec_preds[ec as usize];
                    assert!(
                        self.preds.subset(ec_pred, port_pred[port]),
                        "EC {ec} on wrong port at element {eidx}"
                    );
                    seen += 1;
                }
            }
            assert_eq!(seen, self.ec_preds.len(), "inverted index misses ECs at element {eidx}");
        }

        // The dst index mirrors each EC's current projection cover.
        assert_eq!(self.dst_index.covers.len(), self.ec_preds.len(), "dst index out of sync");
        for ec in 0..self.ec_preds.len() {
            let expect = DstIndex::cover_of(&self.preds, self.ec_preds[ec]);
            assert_eq!(
                self.dst_index.covers[ec], expect,
                "stale dst cover for EC {ec}"
            );
            for &(lo, hi) in &expect {
                assert!(
                    self.dst_index.by_lo.contains(&(lo, hi, ec as u32)),
                    "dst interval map misses ({lo}, {hi}) of EC {ec}"
                );
            }
        }
    }
}

/// In-flight batch bookkeeping.
#[derive(Default)]
struct Batch {
    /// Pre-batch action per (EC, element index), captured lazily before
    /// the first move (and copied to split children).
    baseline: HashMap<(u32, usize), PortAction>,
    moves: usize,
    splits: Vec<(EcId, EcId)>,
    rules: usize,
}

// ---------------------------------------------------------------------
// Durable-state serialization.
//
// A snapshot carries the predicate store wholesale (arena indices
// preserved — see `Preds::encode_state`), the EC partition, and every
// element's rule table and port assignment. The dst-interval index,
// the per-element inverted indexes, and the hash-consing tables are
// all derivable and rebuilt on decode; telemetry and the thread
// override are runtime attachments the restoring caller re-applies.

fn wire_err<T>(msg: impl Into<String>) -> Result<T, rc_store::WireError> {
    Err(rc_store::WireError(msg.into()))
}

fn encode_prefix(w: &mut rc_store::Writer, p: Prefix) {
    w.u32(p.addr().0);
    w.u8(p.len());
}

fn decode_prefix(r: &mut rc_store::Reader<'_>) -> Result<Prefix, rc_store::WireError> {
    let addr = r.u32()?;
    let len = r.u8()?;
    if len > 32 {
        return wire_err(format!("prefix length {len} > 32"));
    }
    Ok(Prefix::new(rc_netcfg::types::Ip(addr), len))
}

fn encode_iface_list(w: &mut rc_store::Writer, ifaces: &[rc_netcfg::types::IfaceId]) {
    w.len_prefix(ifaces.len());
    for i in ifaces {
        w.u32(i.0);
    }
}

fn decode_iface_list(
    r: &mut rc_store::Reader<'_>,
) -> Result<Vec<rc_netcfg::types::IfaceId>, rc_store::WireError> {
    let n = r.len_prefix()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(rc_netcfg::types::IfaceId(r.u32()?));
    }
    Ok(out)
}

fn encode_port_action(w: &mut rc_store::Writer, a: &PortAction) {
    match a {
        PortAction::Forward(ifaces) => {
            w.u8(0);
            encode_iface_list(w, ifaces);
        }
        PortAction::Deliver(ifaces) => {
            w.u8(1);
            encode_iface_list(w, ifaces);
        }
        PortAction::Drop => w.u8(2),
        PortAction::Permit => w.u8(3),
        PortAction::Deny => w.u8(4),
    }
}

fn decode_port_action(
    r: &mut rc_store::Reader<'_>,
) -> Result<PortAction, rc_store::WireError> {
    match r.u8()? {
        0 => Ok(PortAction::Forward(decode_iface_list(r)?)),
        1 => Ok(PortAction::Deliver(decode_iface_list(r)?)),
        2 => Ok(PortAction::Drop),
        3 => Ok(PortAction::Permit),
        4 => Ok(PortAction::Deny),
        t => wire_err(format!("unknown port action tag {t}")),
    }
}

fn encode_rule_match(w: &mut rc_store::Writer, m: &RuleMatch) {
    match m {
        RuleMatch::DstPrefix(p) => {
            w.u8(0);
            encode_prefix(w, *p);
        }
        RuleMatch::Acl { proto, src, dst, dst_ports } => {
            w.u8(1);
            match proto {
                Some(p) => {
                    w.u8(1);
                    w.u8(*p);
                }
                None => w.u8(0),
            }
            encode_prefix(w, *src);
            encode_prefix(w, *dst);
            match dst_ports {
                Some((lo, hi)) => {
                    w.u8(1);
                    w.u16(*lo);
                    w.u16(*hi);
                }
                None => w.u8(0),
            }
        }
    }
}

fn decode_rule_match(r: &mut rc_store::Reader<'_>) -> Result<RuleMatch, rc_store::WireError> {
    match r.u8()? {
        0 => Ok(RuleMatch::DstPrefix(decode_prefix(r)?)),
        1 => {
            let proto = match r.u8()? {
                0 => None,
                1 => Some(r.u8()?),
                t => return wire_err(format!("bad proto option tag {t}")),
            };
            let src = decode_prefix(r)?;
            let dst = decode_prefix(r)?;
            let dst_ports = match r.u8()? {
                0 => None,
                1 => Some((r.u16()?, r.u16()?)),
                t => return wire_err(format!("bad dst_ports option tag {t}")),
            };
            Ok(RuleMatch::Acl { proto, src, dst, dst_ports })
        }
        t => wire_err(format!("unknown rule match tag {t}")),
    }
}

fn encode_element_key(w: &mut rc_store::Writer, k: ElementKey) {
    match k {
        ElementKey::Forward(n) => {
            w.u8(0);
            w.u32(n.0);
        }
        ElementKey::Filter(n, i, dir) => {
            w.u8(1);
            w.u32(n.0);
            w.u32(i.0);
            w.u8(match dir {
                rc_netcfg::facts::Dir::In => 0,
                rc_netcfg::facts::Dir::Out => 1,
            });
        }
    }
}

fn decode_element_key(r: &mut rc_store::Reader<'_>) -> Result<ElementKey, rc_store::WireError> {
    match r.u8()? {
        0 => Ok(ElementKey::Forward(rc_netcfg::types::NodeId(r.u32()?))),
        1 => {
            let n = rc_netcfg::types::NodeId(r.u32()?);
            let i = rc_netcfg::types::IfaceId(r.u32()?);
            let dir = match r.u8()? {
                0 => rc_netcfg::facts::Dir::In,
                1 => rc_netcfg::facts::Dir::Out,
                t => return wire_err(format!("bad direction tag {t}")),
            };
            Ok(ElementKey::Filter(n, i, dir))
        }
        t => wire_err(format!("unknown element key tag {t}")),
    }
}

impl ApkModel {
    /// Number of slots in the predicate store; any [`Ref`] handed out
    /// by this model indexes below it. Snapshot restore passes this to
    /// [`rc_policy`]'s decoder so checker-held handles can be
    /// bounds-checked against the store they will be used with.
    pub fn pred_slots(&self) -> u32 {
        self.preds.node_count() as u32
    }

    /// Serialize the full model — predicate store, EC partition, and
    /// every element — for a durable snapshot.
    pub fn encode_state(&self, w: &mut rc_store::Writer) {
        self.preds.encode_state(w);
        w.u8(self.full_scan as u8);
        w.len_prefix(self.ec_preds.len());
        for p in &self.ec_preds {
            w.u32(p.index());
        }
        w.len_prefix(self.elements.len());
        for e in &self.elements {
            encode_element_key(w, e.key);
            w.u64(e.default_port as u64);
            w.len_prefix(e.ports.len());
            for p in &e.ports {
                encode_port_action(w, p);
            }
            w.len_prefix(e.rules.len());
            for rule in &e.rules {
                w.u32(rule.priority);
                encode_rule_match(w, &rule.rule_match);
                w.u32(rule.pred.index());
                w.u64(rule.port as u64);
            }
            w.len_prefix(e.port_of_ec.len());
            for &port in &e.port_of_ec {
                w.u64(port as u64);
            }
        }
    }

    /// Rebuild a model from [`ApkModel::encode_state`] bytes. All
    /// derived structures — the dst-interval candidate index, each
    /// element's inverted `port → ECs` index and port-interning table,
    /// the element lookup map — are recomputed; every cross-reference
    /// (predicate handles, port ids, EC counts) is bounds-checked so
    /// corrupt input is an error, never a model that miscomputes.
    /// Telemetry and the worker-count override are not restored; the
    /// caller re-attaches them.
    pub fn decode_state(r: &mut rc_store::Reader<'_>) -> Result<ApkModel, rc_store::WireError> {
        let preds = Preds::decode_state(r)?;
        let pred_slots = preds.node_count() as u32;
        let full_scan = r.u8()? != 0;

        let n_ecs = r.len_prefix()?;
        if n_ecs == 0 {
            return wire_err("model has no ECs");
        }
        let mut ec_preds = Vec::with_capacity(n_ecs);
        for i in 0..n_ecs {
            let idx = r.u32()?;
            if idx >= pred_slots || idx == Ref::FALSE.index() {
                return wire_err(format!("EC {i} has invalid predicate handle {idx}"));
            }
            ec_preds.push(Ref::from_index(idx));
        }

        let n_elements = r.len_prefix()?;
        let mut elements = Vec::with_capacity(n_elements);
        let mut element_index = HashMap::with_capacity(n_elements);
        for eidx in 0..n_elements {
            let key = decode_element_key(r)?;
            let default_port = r.u64()? as usize;
            let n_ports = r.len_prefix()?;
            let mut ports = Vec::with_capacity(n_ports);
            let mut port_index = HashMap::with_capacity(n_ports);
            for pid in 0..n_ports {
                let action = decode_port_action(r)?;
                if port_index.insert(action.clone(), pid).is_some() {
                    return wire_err(format!("element {eidx} interns a port twice"));
                }
                ports.push(action);
            }
            if default_port >= ports.len() {
                return wire_err(format!("element {eidx} default port out of range"));
            }
            let n_rules = r.len_prefix()?;
            let mut rules = Vec::with_capacity(n_rules);
            for ridx in 0..n_rules {
                let priority = r.u32()?;
                let rule_match = decode_rule_match(r)?;
                let pred = r.u32()?;
                let port = r.u64()? as usize;
                if pred >= pred_slots {
                    return wire_err(format!(
                        "element {eidx} rule {ridx} has invalid predicate handle {pred}"
                    ));
                }
                if port >= ports.len() {
                    return wire_err(format!("element {eidx} rule {ridx} port out of range"));
                }
                rules.push(StoredRule {
                    priority,
                    rule_match,
                    pred: Ref::from_index(pred),
                    port,
                });
            }
            let n_assign = r.len_prefix()?;
            if n_assign != n_ecs {
                return wire_err(format!(
                    "element {eidx} EC table holds {n_assign} entries for {n_ecs} ECs"
                ));
            }
            let mut port_of_ec = Vec::with_capacity(n_assign);
            let mut ecs_on_port = vec![BTreeSet::new(); ports.len()];
            for ec in 0..n_assign {
                let port = r.u64()? as usize;
                if port >= ports.len() {
                    return wire_err(format!("element {eidx} assigns EC {ec} out of range"));
                }
                ecs_on_port[port].insert(ec as u32);
                port_of_ec.push(port);
            }
            if element_index.insert(key, eidx).is_some() {
                return wire_err(format!("duplicate element key {key:?}"));
            }
            elements.push(Element {
                key,
                rules,
                ports,
                port_index,
                port_of_ec,
                ecs_on_port,
                default_port,
            });
        }

        let mut dst_index = DstIndex::new_full_space();
        let covers = ec_preds.iter().map(|&p| DstIndex::cover_of(&preds, p)).collect();
        dst_index.rebuild(covers);

        Ok(ApkModel {
            preds,
            ec_preds,
            dst_index,
            full_scan,
            elements,
            element_index,
            telemetry: None,
            threads: 0,
        })
    }
}
