//! The equivalence-class data plane model (a batch-mode APKeep).
//!
//! The model maintains one global partition of the packet header space
//! into equivalence classes (ECs). Every *element* — a device's
//! forwarding table, or an ACL binding — assigns each EC to exactly one
//! logical *port* (an action). A rule insertion or deletion transfers a
//! predicate's worth of packets between ports, splitting any EC that
//! straddles the transferred predicate; the split is global, so the
//! partition stays consistent across all elements.
//!
//! Batch mode (the paper's extension): a whole set of rule updates is
//! applied under a chosen order, and the model reports the net set of
//! affected ECs with their old and new actions — the input to the
//! incremental policy checker.
//!
//! Precondition: an element never *persistently* holds two rules of
//! equal priority whose matches overlap but whose actions differ — a
//! FIB has one route per prefix (ECMP is one logical port), an ACL has
//! unique sequence numbers. Transient duplicates mid-batch (a rule
//! replacement applied insert-first) are fine.

use rc_bdd::{Bdd, Ref};
use rc_netcfg::types::Prefix;

use crate::types::*;
use std::collections::HashMap;

struct StoredRule {
    priority: u32,
    rule_match: RuleMatch,
    pred: Ref,
    port: usize,
}

struct Element {
    key: ElementKey,
    /// Sorted by priority descending (ties by match/action for
    /// determinism).
    rules: Vec<StoredRule>,
    /// Port actions; index is the port id within this element.
    ports: Vec<PortAction>,
    port_index: HashMap<PortAction, usize>,
    /// Which port each EC is assigned to. Every live EC has an entry.
    port_of_ec: HashMap<u32, usize>,
    default_port: usize,
}

impl Element {
    fn new(key: ElementKey, live_ecs: impl Iterator<Item = u32>) -> Self {
        let default_action = match key {
            ElementKey::Forward(_) => PortAction::Drop,
            ElementKey::Filter(..) => PortAction::Permit,
        };
        let mut e = Element {
            key,
            rules: Vec::new(),
            ports: Vec::new(),
            port_index: HashMap::new(),
            port_of_ec: HashMap::new(),
            default_port: 0,
        };
        e.default_port = e.port_id(default_action);
        for ec in live_ecs {
            e.port_of_ec.insert(ec, e.default_port);
        }
        e
    }

    fn port_id(&mut self, action: PortAction) -> usize {
        if let Some(&id) = self.port_index.get(&action) {
            return id;
        }
        let id = self.ports.len();
        self.ports.push(action.clone());
        self.port_index.insert(action, id);
        id
    }
}

/// The data plane model. Owns the BDD manager and the global EC table.
pub struct ApkModel {
    bdd: Bdd,
    /// `ec_preds[i]` is the predicate of EC `i`. Never empty, never
    /// overlapping; their union is the full space.
    ec_preds: Vec<Ref>,
    elements: Vec<Element>,
    element_index: HashMap<ElementKey, usize>,
    telemetry: Option<ApkTelemetry>,
}

/// Cached metric handles (name lookups happen once, at attach time).
struct ApkTelemetry {
    ecs: rc_telemetry::Gauge,
    elements: rc_telemetry::Gauge,
    rules: rc_telemetry::Gauge,
    rules_applied: rc_telemetry::Counter,
    ec_moves: rc_telemetry::Counter,
    ec_splits: rc_telemetry::Counter,
    ec_merges: rc_telemetry::Counter,
    affected_ecs: rc_telemetry::Counter,
    batch_rules: rc_telemetry::Histogram,
}

impl ApkTelemetry {
    fn new(registry: &rc_telemetry::Telemetry) -> Self {
        ApkTelemetry {
            ecs: registry.gauge("apkeep.ecs"),
            elements: registry.gauge("apkeep.elements"),
            rules: registry.gauge("apkeep.rules"),
            rules_applied: registry.counter("apkeep.rules_applied"),
            ec_moves: registry.counter("apkeep.ec_moves"),
            ec_splits: registry.counter("apkeep.ec_splits"),
            ec_merges: registry.counter("apkeep.ec_merges"),
            affected_ecs: registry.counter("apkeep.affected_ecs"),
            batch_rules: registry.histogram("apkeep.batch_rules"),
        }
    }
}

impl Default for ApkModel {
    fn default() -> Self {
        Self::new()
    }
}

impl ApkModel {
    /// A fresh model: one EC covering the whole header space, no
    /// elements.
    pub fn new() -> Self {
        ApkModel {
            bdd: Bdd::new(),
            ec_preds: vec![Ref::TRUE],
            elements: Vec::new(),
            element_index: HashMap::new(),
            telemetry: None,
        }
    }

    /// Attach a telemetry registry. Every batch records the transfer
    /// size (`apkeep.batch_rules`, `apkeep.rules_applied`), EC churn
    /// (`apkeep.ec_moves`/`ec_splits`/`ec_merges`), net affected ECs,
    /// and the post-batch EC/element/rule totals as gauges.
    pub fn set_telemetry(&mut self, registry: &rc_telemetry::Telemetry) {
        self.telemetry = Some(ApkTelemetry::new(registry));
    }

    /// Number of live ECs.
    pub fn num_ecs(&self) -> usize {
        self.ec_preds.len()
    }

    /// Number of elements (devices' FIBs + ACL bindings seen so far).
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Total rules across all elements.
    pub fn num_rules(&self) -> usize {
        self.elements.iter().map(|e| e.rules.len()).sum()
    }

    /// The predicate of an EC.
    pub fn ec_pred(&self, ec: EcId) -> Ref {
        self.ec_preds[ec.0 as usize]
    }

    /// All live EC ids.
    pub fn ecs(&self) -> impl Iterator<Item = EcId> + '_ {
        (0..self.ec_preds.len() as u32).map(EcId)
    }

    /// The BDD manager (for witness extraction and custom predicates).
    pub fn bdd(&mut self) -> &mut Bdd {
        &mut self.bdd
    }

    /// The action an element applies to an EC. `None` when the element
    /// does not exist (meaning: default behaviour — drop for FIBs,
    /// permit for filters).
    pub fn action(&self, key: ElementKey, ec: EcId) -> Option<&PortAction> {
        let e = &self.elements[*self.element_index.get(&key)?];
        Some(&e.ports[*e.port_of_ec.get(&ec.0).expect("live EC in every element")])
    }

    /// The rule a concrete packet matches at an element, in first-match
    /// table order: `(priority, match, action)`. `None` when the packet
    /// falls through to the element's default action (or the element
    /// does not exist).
    pub fn matching_rule(
        &self,
        key: ElementKey,
        pkt: &rc_bdd::pkt::Packet,
    ) -> Option<(u32, RuleMatch, PortAction)> {
        let e = &self.elements[*self.element_index.get(&key)?];
        for r in &e.rules {
            if self.bdd.pkt_eval(r.pred, pkt) {
                return Some((r.priority, r.rule_match, e.ports[r.port].clone()));
            }
        }
        None
    }

    /// The EC containing a concrete packet.
    pub fn ec_of_packet(&self, pkt: &rc_bdd::pkt::Packet) -> EcId {
        for (i, &p) in self.ec_preds.iter().enumerate() {
            if self.bdd.pkt_eval(p, pkt) {
                return EcId(i as u32);
            }
        }
        unreachable!("ECs partition the full space")
    }

    /// ECs whose predicate intersects `pred`.
    pub fn ecs_intersecting(&mut self, pred: Ref) -> Vec<EcId> {
        let mut out = Vec::new();
        for i in 0..self.ec_preds.len() {
            if !self.bdd.and(self.ec_preds[i], pred).is_false() {
                out.push(EcId(i as u32));
            }
        }
        out
    }

    fn compile(&mut self, m: RuleMatch) -> Ref {
        use rc_bdd::pkt::Field;
        let prefix_pred = |bdd: &mut Bdd, f: Field, p: Prefix| {
            bdd.pkt_prefix(f, p.addr().0, p.len() as u32)
        };
        match m {
            RuleMatch::DstPrefix(p) => prefix_pred(&mut self.bdd, Field::DstIp, p),
            RuleMatch::Acl { proto, src, dst, dst_ports } => {
                let mut acc = prefix_pred(&mut self.bdd, Field::SrcIp, src);
                let d = prefix_pred(&mut self.bdd, Field::DstIp, dst);
                acc = self.bdd.and(acc, d);
                if let Some(pr) = proto {
                    let p = self.bdd.pkt_value(Field::Proto, pr as u32);
                    acc = self.bdd.and(acc, p);
                }
                if let Some((lo, hi)) = dst_ports {
                    let r = self.bdd.pkt_range(Field::DstPort, lo as u32, hi as u32);
                    acc = self.bdd.and(acc, r);
                }
                acc
            }
        }
    }

    fn element_id(&mut self, key: ElementKey) -> usize {
        if let Some(&i) = self.element_index.get(&key) {
            return i;
        }
        let i = self.elements.len();
        self.elements.push(Element::new(key, 0..self.ec_preds.len() as u32));
        self.element_index.insert(key, i);
        i
    }

    /// Apply one batch of rule updates under `order`, returning the
    /// batch summary with net affected ECs.
    ///
    /// Fault injection: `apply_batch` has no error channel, so an
    /// error-mode `rc_faults` fault at this point escalates to a panic
    /// (the verifier's panic containment converts it into an internal
    /// error either way).
    pub fn apply_batch(&mut self, mut updates: Vec<RuleUpdate>, order: UpdateOrder) -> BatchSummary {
        if rc_faults::fire(rc_faults::FaultPoint::ApkBatch) {
            panic!(
                "{} error at apkeep batch escalated to panic (no error channel)",
                rc_faults::INJECTED_PANIC_PREFIX
            );
        }
        match order {
            UpdateOrder::InsertFirst => {
                updates.sort_by_key(|u| !u.is_insert());
            }
            UpdateOrder::DeleteFirst => {
                updates.sort_by_key(|u| u.is_insert());
            }
            UpdateOrder::AsGiven => {}
        }
        let mut tx = Batch::default();
        for u in updates {
            match u {
                RuleUpdate::Insert(r) => self.insert_rule(r, &mut tx),
                RuleUpdate::Remove(r) => self.remove_rule(r, &mut tx),
            }
            tx.rules += 1;
        }
        self.finish_batch(tx)
    }

    fn insert_rule(&mut self, rule: ModelRule, tx: &mut Batch) {
        let pred = self.compile(rule.rule_match);
        let eid = self.element_id(rule.element);
        let port;
        let hit;
        {
            let elem = &mut self.elements[eid];
            port = elem.port_id(rule.action.clone());
            // Packets this rule newly captures: its match minus
            // higher-priority coverage.
            let higher: Vec<Ref> = elem
                .rules
                .iter()
                .filter(|r| r.priority > rule.priority)
                .map(|r| r.pred)
                .collect();
            let mut h = pred;
            for hp in higher {
                h = self.bdd.diff(h, hp);
                if h.is_false() {
                    break;
                }
            }
            hit = h;
            let elem = &mut self.elements[eid];
            let stored =
                StoredRule { priority: rule.priority, rule_match: rule.rule_match, pred, port };
            let pos = elem
                .rules
                .binary_search_by(|r| {
                    (std::cmp::Reverse(r.priority), r.rule_match, &elem.ports[r.port])
                        .cmp(&(std::cmp::Reverse(rule.priority), rule.rule_match, &rule.action))
                })
                .unwrap_or_else(|p| p);
            elem.rules.insert(pos, stored);
        }
        self.transfer(eid, hit, port, tx);
    }

    fn remove_rule(&mut self, rule: ModelRule, tx: &mut Batch) {
        let pred = self.compile(rule.rule_match);
        let eid = self.element_id(rule.element);
        // Locate and remove the stored rule.
        let (hit, redistribution) = {
            let elem = &mut self.elements[eid];
            let pos = elem
                .rules
                .iter()
                .position(|r| {
                    r.priority == rule.priority
                        && r.pred == pred
                        && elem.ports[r.port] == rule.action
                })
                .unwrap_or_else(|| {
                    panic!("removing a rule that is not in the model: {rule:?}")
                });
            elem.rules.remove(pos);
            // What the rule was actually covering.
            let higher: Vec<Ref> = elem
                .rules
                .iter()
                .filter(|r| r.priority > rule.priority)
                .map(|r| r.pred)
                .collect();
            let mut h = pred;
            for hp in higher {
                h = self.bdd.diff(h, hp);
                if h.is_false() {
                    break;
                }
            }
            // Where those packets fall now: the remaining rules at
            // lower (or equal) priority, in table order, then default.
            let lower: Vec<(Ref, usize)> = elem
                .rules
                .iter()
                .filter(|r| r.priority <= rule.priority)
                .map(|r| (r.pred, r.port))
                .collect();
            (h, lower)
        };
        let mut rest = hit;
        let mut moves: Vec<(Ref, usize)> = Vec::new();
        for (rpred, rport) in redistribution {
            if rest.is_false() {
                break;
            }
            let take = self.bdd.and(rest, rpred);
            if !take.is_false() {
                moves.push((take, rport));
                rest = self.bdd.diff(rest, take);
            }
        }
        if !rest.is_false() {
            let dp = self.elements[eid].default_port;
            moves.push((rest, dp));
        }
        for (p, port) in moves {
            self.transfer(eid, p, port, tx);
        }
    }

    /// Move all packets of `pred` to `to_port` on element `eid`,
    /// splitting straddling ECs.
    fn transfer(&mut self, eid: usize, pred: Ref, to_port: usize, tx: &mut Batch) {
        if pred.is_false() {
            return;
        }
        // Track the part of `pred` not yet accounted for: once every
        // packet of the predicate has been located (moved or already at
        // the target), the scan can stop early — the common case is a
        // prefix covering exactly one EC.
        let mut remaining = pred;
        let num_ecs = self.ec_preds.len();
        for idx in 0..num_ecs {
            if remaining.is_false() {
                break;
            }
            let ec_pred = self.ec_preds[idx];
            let inter = self.bdd.and(ec_pred, remaining);
            if inter.is_false() {
                continue;
            }
            remaining = self.bdd.diff(remaining, inter);
            let cur = *self.elements[eid].port_of_ec.get(&(idx as u32)).expect("live EC");
            if cur == to_port {
                continue;
            }
            let moving = if inter == ec_pred {
                idx as u32
            } else {
                self.split(idx as u32, inter, tx)
            };
            self.move_ec(eid, moving, to_port, tx);
        }
    }

    /// Split EC `parent`: carve out `inter` (strictly smaller than the
    /// parent's predicate) into a new EC placed on the same port as the
    /// parent in every element. Returns the new EC id.
    fn split(&mut self, parent: u32, inter: Ref, tx: &mut Batch) -> u32 {
        let child = self.ec_preds.len() as u32;
        let remainder = self.bdd.diff(self.ec_preds[parent as usize], inter);
        debug_assert!(!remainder.is_false(), "split with nothing left in the parent");
        self.ec_preds[parent as usize] = remainder;
        self.ec_preds.push(inter);
        for (eidx, elem) in self.elements.iter_mut().enumerate() {
            let port = *elem.port_of_ec.get(&parent).expect("live EC");
            elem.port_of_ec.insert(child, port);
            // The child's pre-batch action is whatever the parent's
            // was (the parent may itself have moved already).
            if let Some(action) = tx.baseline.get(&(parent, eidx)) {
                tx.baseline.insert((child, eidx), action.clone());
            } else {
                tx.baseline.insert((child, eidx), elem.ports[port].clone());
            }
        }
        tx.splits.push((EcId(parent), EcId(child)));
        child
    }

    fn move_ec(&mut self, eid: usize, ec: u32, to_port: usize, tx: &mut Batch) {
        let elem = &mut self.elements[eid];
        let from = elem.port_of_ec.insert(ec, to_port).expect("live EC");
        debug_assert_ne!(from, to_port);
        tx.baseline.entry((ec, eid)).or_insert_with(|| elem.ports[from].clone());
        tx.moves += 1;
    }

    fn finish_batch(&mut self, tx: Batch) -> BatchSummary {
        let mut affected = Vec::new();
        for ((ec, eidx), old) in &tx.baseline {
            let elem = &self.elements[*eidx];
            let now = &elem.ports[*elem.port_of_ec.get(ec).expect("live EC")];
            if now != old {
                affected.push(AffectedEc {
                    ec: EcId(*ec),
                    element: elem.key,
                    old: old.clone(),
                    new: now.clone(),
                });
            }
        }
        affected.sort_by_key(|a| (a.ec, a.element));
        if let Some(tel) = &self.telemetry {
            tel.rules_applied.add(tx.rules as u64);
            tel.batch_rules.record(tx.rules as u64);
            tel.ec_moves.add(tx.moves as u64);
            tel.ec_splits.add(tx.splits.len() as u64);
            tel.affected_ecs.add(affected.len() as u64);
            tel.ecs.set(self.ec_preds.len() as i64);
            tel.elements.set(self.elements.len() as i64);
            tel.rules.set(self.num_rules() as i64);
        }
        BatchSummary {
            affected,
            ec_moves: tx.moves,
            ec_splits: tx.splits.len(),
            splits: tx.splits,
            rules_applied: tx.rules,
        }
    }

    /// Merge ECs that receive identical treatment at every element
    /// (APKeep's minimality maintenance). Returns `(survivor,
    /// absorbed)` pairs. Note: merged ids disappear — callers keeping
    /// EC-keyed state must process the merge list.
    pub fn merge_equivalent(&mut self) -> Vec<(EcId, EcId)> {
        // Signature: the port assignment vector across elements.
        let mut groups: HashMap<Vec<usize>, Vec<u32>> = HashMap::new();
        for ec in 0..self.ec_preds.len() as u32 {
            let sig: Vec<usize> =
                self.elements.iter().map(|e| *e.port_of_ec.get(&ec).expect("live EC")).collect();
            groups.entry(sig).or_default().push(ec);
        }
        let mut merges = Vec::new();
        let mut dead: Vec<u32> = Vec::new();
        for (_, mut group) in groups {
            group.sort_unstable();
            let survivor = group[0];
            for &ec in &group[1..] {
                let merged = self.bdd.or(self.ec_preds[survivor as usize], self.ec_preds[ec as usize]);
                self.ec_preds[survivor as usize] = merged;
                merges.push((EcId(survivor), EcId(ec)));
                dead.push(ec);
            }
        }
        // Compact the EC table: remove dead ids (descending swap-remove
        // would renumber; instead rebuild preserving survivor ids by
        // shifting — we renumber and report nothing further since this
        // is an explicit maintenance call).
        if !dead.is_empty() {
            dead.sort_unstable();
            let mut remap: HashMap<u32, u32> = HashMap::new();
            let mut new_preds = Vec::with_capacity(self.ec_preds.len() - dead.len());
            for ec in 0..self.ec_preds.len() as u32 {
                if dead.binary_search(&ec).is_err() {
                    remap.insert(ec, new_preds.len() as u32);
                    new_preds.push(self.ec_preds[ec as usize]);
                }
            }
            self.ec_preds = new_preds;
            for elem in &mut self.elements {
                let mut new_map = HashMap::with_capacity(remap.len());
                for (&old, &new) in &remap {
                    let port = *elem.port_of_ec.get(&old).expect("live EC");
                    new_map.insert(new, port);
                }
                elem.port_of_ec = new_map;
            }
            // Report merges in terms of pre-compaction ids; callers are
            // told ids are renumbered (documented) and should rebuild.
        }
        if let Some(tel) = &self.telemetry {
            tel.ec_merges.add(merges.len() as u64);
            tel.ecs.set(self.ec_preds.len() as i64);
        }
        merges
    }

    /// Verify internal invariants (test support): EC predicates are
    /// nonempty, pairwise disjoint, cover the space, and every element
    /// assigns every EC to exactly one port consistent with its rule
    /// table.
    pub fn check_invariants(&mut self) {
        let mut union = Ref::FALSE;
        for i in 0..self.ec_preds.len() {
            let p = self.ec_preds[i];
            assert!(!p.is_false(), "EC {i} is empty");
            assert!(self.bdd.and(union, p).is_false(), "EC {i} overlaps earlier ECs");
            union = self.bdd.or(union, p);
        }
        assert!(union.is_true(), "ECs do not cover the space");

        for eidx in 0..self.elements.len() {
            let (rules, default, num_ports, assignments) = {
                let e = &self.elements[eidx];
                (
                    e.rules.iter().map(|r| (r.pred, r.port)).collect::<Vec<_>>(),
                    e.default_port,
                    e.ports.len(),
                    e.port_of_ec.clone(),
                )
            };
            // First-match evaluation of the table over the whole space:
            // the predicate each port should carry.
            let mut port_pred = vec![Ref::FALSE; num_ports];
            let mut remaining = Ref::TRUE;
            for &(rp, rport) in &rules {
                let covered = self.bdd.and(remaining, rp);
                port_pred[rport] = self.bdd.or(port_pred[rport], covered);
                remaining = self.bdd.diff(remaining, rp);
            }
            port_pred[default] = self.bdd.or(port_pred[default], remaining);

            for ec in 0..self.ec_preds.len() {
                let ec_pred = self.ec_preds[ec];
                let port = *assignments
                    .get(&(ec as u32))
                    .unwrap_or_else(|| panic!("EC {ec} missing from element {eidx}"));
                // The EC must lie entirely within its port's predicate
                // (it may straddle individual rules as long as the
                // resulting behaviour is uniform).
                assert!(
                    self.bdd.subset(ec_pred, port_pred[port]),
                    "EC {ec} on wrong port at element {eidx}"
                );
            }
        }
    }
}

/// In-flight batch bookkeeping.
#[derive(Default)]
struct Batch {
    /// Pre-batch action per (EC, element index), captured lazily before
    /// the first move (and copied to split children).
    baseline: HashMap<(u32, usize), PortAction>,
    moves: usize,
    splits: Vec<(EcId, EcId)>,
    rules: usize,
}
