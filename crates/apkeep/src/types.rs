//! Value types of the equivalence-class data plane model.

use rc_netcfg::facts::Dir;
use rc_netcfg::types::{IfaceId, NodeId, Prefix};

/// An equivalence class of packets: all packets in one EC receive the
/// same treatment at every element of the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EcId(pub u32);

/// Identifies one match-action element of the data plane model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ElementKey {
    /// A device's forwarding table (longest prefix match on dst IP).
    Forward(NodeId),
    /// An ACL bound to an interface in a direction (first match wins).
    Filter(NodeId, IfaceId, Dir),
}

/// The action of a logical port. ECMP groups are a single logical port
/// whose action carries the sorted set of output interfaces, per the
/// paper's "logical ports encode a specific forwarding action".
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PortAction {
    /// Forward out of these interfaces (sorted, nonempty).
    Forward(Vec<IfaceId>),
    /// Deliver onto the connected subnets of these interfaces
    /// (connected routes — the packet terminates at this device).
    Deliver(Vec<IfaceId>),
    /// Discard.
    Drop,
    /// Filter element: pass the packet on.
    Permit,
    /// Filter element: discard the packet.
    Deny,
}

impl PortAction {
    /// Build a (canonical, sorted) ECMP forward action.
    pub fn forward(mut ifaces: Vec<IfaceId>) -> Self {
        assert!(!ifaces.is_empty(), "empty ECMP group");
        ifaces.sort_unstable();
        ifaces.dedup();
        PortAction::Forward(ifaces)
    }

    /// Build a (canonical, sorted) local-delivery action.
    pub fn deliver(mut ifaces: Vec<IfaceId>) -> Self {
        assert!(!ifaces.is_empty(), "empty delivery group");
        ifaces.sort_unstable();
        ifaces.dedup();
        PortAction::Deliver(ifaces)
    }
}

/// What a rule matches. Compiled to a BDD inside the model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RuleMatch {
    /// Destination-prefix match (FIB rules).
    DstPrefix(Prefix),
    /// Five-tuple-ish ACL match.
    Acl { proto: Option<u8>, src: Prefix, dst: Prefix, dst_ports: Option<(u16, u16)> },
}

/// A rule of the data plane model.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ModelRule {
    pub element: ElementKey,
    /// Higher wins. FIB rules use the prefix length; ACL rules use
    /// `u32::MAX − seq`.
    pub priority: u32,
    pub rule_match: RuleMatch,
    pub action: PortAction,
}

/// One data plane rule change.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RuleUpdate {
    Insert(ModelRule),
    Remove(ModelRule),
}

impl RuleUpdate {
    pub fn rule(&self) -> &ModelRule {
        match self {
            RuleUpdate::Insert(r) | RuleUpdate::Remove(r) => r,
        }
    }

    pub fn is_insert(&self) -> bool {
        matches!(self, RuleUpdate::Insert(_))
    }
}

/// Order in which a batch of rule updates is applied (paper Table 3:
/// the order materially changes EC churn and update time).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdateOrder {
    /// Apply all insertions, then all deletions (`+,-` in the paper).
    InsertFirst,
    /// Apply all deletions, then all insertions (`-,+` in the paper).
    DeleteFirst,
    /// Apply in the order given.
    AsGiven,
}

impl UpdateOrder {
    /// Short display label matching the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            UpdateOrder::InsertFirst => "+,-",
            UpdateOrder::DeleteFirst => "-,+",
            UpdateOrder::AsGiven => "as-given",
        }
    }

    /// Parse a CLI/bench spelling of an order. Accepts the paper's
    /// `+,-` / `-,+` notation and the word forms.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "+,-" | "insert-first" => Some(UpdateOrder::InsertFirst),
            "-,+" | "delete-first" => Some(UpdateOrder::DeleteFirst),
            "as-given" => Some(UpdateOrder::AsGiven),
            _ => None,
        }
    }
}

/// An EC whose treatment changed somewhere during a batch: net change
/// from the pre-batch port action to the post-batch one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AffectedEc {
    pub ec: EcId,
    pub element: ElementKey,
    pub old: PortAction,
    pub new: PortAction,
}

/// Summary of one batch application.
///
/// Split-vs-affected distinction: `ec_splits`/`ec_moves`/`splits` are
/// *churn* measures — they count every event during the batch,
/// including splits whose child EC ends the batch on its pre-split
/// action and moves that are later undone (e.g. a rule inserted and
/// removed within one batch). Only `affected` — the net set — feeds
/// incremental policy re-checking; a batch can split ECs and still
/// report `affected` empty, in which case no policy work is required
/// beyond registering the new EC ids from `splits`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BatchSummary {
    /// Net port changes per (EC, element), excluding transients that
    /// returned to their original port.
    pub affected: Vec<AffectedEc>,
    /// EC move *events*, including transient moves (this is the "#ECs"
    /// churn measure that differs between update orders in Table 3).
    pub ec_moves: usize,
    /// Number of EC splits performed, including splits whose child ends
    /// the batch with an unchanged action (see the struct docs).
    pub ec_splits: usize,
    /// `(parent, child)` pairs for every split, in order.
    pub splits: Vec<(EcId, EcId)>,
    /// Rule updates applied.
    pub rules_applied: usize,
}

/// Result of [`merge_equivalent`](crate::ApkModel::merge_equivalent):
/// which ECs merged, and how every pre-merge id maps into the
/// compacted table.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MergeReport {
    /// `(survivor, absorbed)` pairs in **pre-compaction** ids, sorted.
    pub merges: Vec<(EcId, EcId)>,
    /// Old id → post-compaction id for every pre-merge EC (its length is
    /// the pre-merge EC count). An absorbed EC maps to its survivor's
    /// new id, so EC-keyed caller state can be re-keyed directly without
    /// consulting `merges`. Compaction renumbers even unmerged ECs —
    /// always re-key through this table after a merge.
    pub remap: Vec<EcId>,
}

impl MergeReport {
    /// The post-compaction id now carrying `old`'s packets.
    pub fn new_id(&self, old: EcId) -> EcId {
        self.remap[old.0 as usize]
    }
}
