//! A batch-mode, equivalence-class data plane model — the paper's
//! "incremental data plane model updater", built in the style of APKeep
//! (NSDI '20) and extended with the batch mode RealConfig needs.
//!
//! Given a batch of rule insertions/deletions (produced from the FIB
//! and filter deltas of the incremental data plane generator), the
//! model updates a global partition of the packet space into
//! equivalence classes (ECs) and reports which ECs changed behaviour,
//! with their old and new port actions. The order in which a batch is
//! applied ([`UpdateOrder`]) changes EC churn, reproducing the paper's
//! Table 3 ordering effect: deletion-first routes packets through the
//! drop port before they reach their new port.
//!
//! ```
//! use rc_apkeep::{ApkModel, ElementKey, ModelRule, PortAction, RuleMatch, RuleUpdate, UpdateOrder};
//! use rc_netcfg::types::{IfaceId, NodeId};
//!
//! let mut model = ApkModel::new();
//! let rule = ModelRule {
//!     element: ElementKey::Forward(NodeId(0)),
//!     priority: 24,
//!     rule_match: RuleMatch::DstPrefix("10.1.1.0/24".parse().unwrap()),
//!     action: PortAction::forward(vec![IfaceId(3)]),
//! };
//! let summary = model.apply_batch(vec![RuleUpdate::Insert(rule)], UpdateOrder::InsertFirst);
//! // The /24 was carved out of the initial full-space EC and now
//! // forwards; the rest of the space still drops.
//! assert_eq!(model.num_ecs(), 2);
//! assert_eq!(summary.affected.len(), 1);
//! assert_eq!(summary.affected[0].new, PortAction::forward(vec![IfaceId(3)]));
//! ```

mod model;
mod types;

pub use model::{ApkModel, EcView};
pub use types::{
    AffectedEc, BatchSummary, EcId, ElementKey, MergeReport, ModelRule, PortAction, RuleMatch,
    RuleUpdate, UpdateOrder,
};
