//! Property tests: after any sequence of random rule batches, the EC
//! model's invariants hold and its packet-level behaviour matches a
//! naive first-match evaluation of the rule tables.
//!
//! The checkable bodies live in `common/mod.rs`, shared with
//! `regressions.rs` which pins the counterexamples recorded in
//! `props.proptest-regressions`.

mod common;

use common::{check_model_matches_naive, check_order_independent, AbstractRule};
use proptest::prelude::*;

fn arb_rules() -> impl Strategy<Value = Vec<AbstractRule>> {
    prop::collection::vec(
        (0u32..3, 0u8..3, 8u8..=16, 0u32..4, any::<bool>()).prop_map(
            |(device, base, len, iface, acl)| AbstractRule { device, base, len, iface, acl },
        ),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn model_matches_naive_evaluation(
        seq in arb_rules(),
        order_bits in any::<u64>(),
        probes in prop::collection::vec((0u8..4, any::<u8>(), any::<bool>()), 8),
    ) {
        check_model_matches_naive(&seq, order_bits, &probes);
    }

    /// Update order never changes the final model, only churn.
    #[test]
    fn final_state_is_order_independent(seq in arb_rules()) {
        check_order_independent(&seq);
    }
}
