//! Property tests: after any sequence of random rule batches, the EC
//! model's invariants hold and its packet-level behaviour matches a
//! naive first-match evaluation of the rule tables.

use proptest::prelude::*;
use rc_apkeep::*;
use rc_bdd::pkt::Packet;
use rc_netcfg::facts::Dir;
use rc_netcfg::types::{IfaceId, Ip, NodeId, Prefix};
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
struct AbstractRule {
    device: u32,
    /// Prefix built from a small alphabet so overlaps actually happen.
    base: u8,
    len: u8,
    iface: u32,
    acl: bool,
}

fn rule_of(a: &AbstractRule) -> ModelRule {
    // Prefixes like 10.B.0.0/len with len in 8..=16 out of two base
    // octets — guarantees nesting and disjointness cases.
    //
    // The action is a function of the match: devices never hold two
    // same-priority rules with identical matches and different actions
    // (a FIB has one route per prefix, an ACL unique sequence numbers),
    // and the model's semantics are only defined without such
    // ambiguity.
    let prefix = Prefix::new(Ip::new(10, a.base, 0, 0), a.len);
    // Derive from the *canonical* prefix: short masks strip the base
    // octet, and the action must be a function of what the rule
    // actually matches.
    let iface = (a.device + (prefix.addr().0 >> 16) + a.len as u32) % 4;
    let a = AbstractRule { iface, ..a.clone() };
    if a.acl {
        ModelRule {
            element: ElementKey::Filter(NodeId(a.device), IfaceId(0), Dir::In),
            priority: u32::MAX - (a.len as u32 * 10 + a.iface),
            rule_match: RuleMatch::Acl {
                proto: if a.iface % 2 == 0 { Some(6) } else { None },
                src: Prefix::DEFAULT,
                dst: prefix,
                dst_ports: None,
            },
            action: if a.iface % 3 == 0 { PortAction::Deny } else { PortAction::Permit },
        }
    } else {
        ModelRule {
            element: ElementKey::Forward(NodeId(a.device)),
            priority: a.len as u32,
            rule_match: RuleMatch::DstPrefix(prefix),
            action: PortAction::forward(vec![IfaceId(a.iface)]),
        }
    }
}

fn arb_rules() -> impl Strategy<Value = Vec<AbstractRule>> {
    prop::collection::vec(
        (0u32..3, 0u8..3, 8u8..=16, 0u32..4, any::<bool>()).prop_map(
            |(device, base, len, iface, acl)| AbstractRule { device, base, len, iface, acl },
        ),
        1..20,
    )
}

/// Naive oracle: evaluate a packet against the live rule set of one
/// element (highest priority first; deterministic tie-break mirrors the
/// model's table order).
fn naive_action(rules: &BTreeSet<ModelRule>, key: ElementKey, pkt: &Packet) -> PortAction {
    let mut bdd = rc_bdd::Bdd::new();
    let mut matching: Vec<&ModelRule> = rules.iter().filter(|r| r.element == key).collect();
    // Model table order: priority desc, then match, then action.
    matching.sort_by(|a, b| {
        (std::cmp::Reverse(a.priority), a.rule_match, &a.action)
            .cmp(&(std::cmp::Reverse(b.priority), b.rule_match, &b.action))
    });
    for r in matching {
        let pred = match r.rule_match {
            RuleMatch::DstPrefix(p) => {
                bdd.pkt_prefix(rc_bdd::pkt::Field::DstIp, p.addr().0, p.len() as u32)
            }
            RuleMatch::Acl { proto, src, dst, dst_ports } => {
                let mut acc = bdd.pkt_prefix(rc_bdd::pkt::Field::SrcIp, src.addr().0, src.len() as u32);
                let d = bdd.pkt_prefix(rc_bdd::pkt::Field::DstIp, dst.addr().0, dst.len() as u32);
                acc = bdd.and(acc, d);
                if let Some(pr) = proto {
                    let p = bdd.pkt_value(rc_bdd::pkt::Field::Proto, pr as u32);
                    acc = bdd.and(acc, p);
                }
                if let Some((lo, hi)) = dst_ports {
                    let rng = bdd.pkt_range(rc_bdd::pkt::Field::DstPort, lo as u32, hi as u32);
                    acc = bdd.and(acc, rng);
                }
                acc
            }
        };
        if bdd.pkt_eval(pred, pkt) {
            return r.action.clone();
        }
    }
    match key {
        ElementKey::Forward(_) => PortAction::Drop,
        ElementKey::Filter(..) => PortAction::Permit,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn model_matches_naive_evaluation(
        seq in arb_rules(),
        order_bits in any::<u64>(),
        probes in prop::collection::vec((0u8..4, any::<u8>(), any::<bool>()), 8),
    ) {
        let mut model = ApkModel::new();
        let mut live: BTreeSet<ModelRule> = BTreeSet::new();

        // Apply rules in batches of up to 3, toggling insert/remove and
        // alternating update order.
        for (i, chunk) in seq.chunks(3).enumerate() {
            let mut batch = Vec::new();
            let mut touched: BTreeSet<ModelRule> = BTreeSet::new();
            for a in chunk {
                let r = rule_of(a);
                // Batches derive from set deltas: the same rule never
                // appears as both insert and remove in one batch.
                if !touched.insert(r.clone()) {
                    continue;
                }
                if live.contains(&r) {
                    live.remove(&r);
                    batch.push(RuleUpdate::Remove(r));
                } else {
                    live.insert(r.clone());
                    batch.push(RuleUpdate::Insert(r));
                }
            }
            let order = match (order_bits >> (2 * i)) & 3 {
                0 => UpdateOrder::InsertFirst,
                1 => UpdateOrder::DeleteFirst,
                _ => UpdateOrder::AsGiven,
            };
            model.apply_batch(batch, order);
            model.check_invariants();
        }

        // Probe packets across the interesting space.
        let elements: BTreeSet<ElementKey> = live.iter().map(|r| r.element).collect();
        for (b, low, tcp) in probes {
            let pkt = Packet {
                dst_ip: u32::from_be_bytes([10, b, low, 1]),
                proto: if tcp { 6 } else { 17 },
                ..Default::default()
            };
            let ec = model.ec_of_packet(&pkt);
            for &key in &elements {
                let got = model.action(key, ec).cloned().unwrap_or(match key {
                    ElementKey::Forward(_) => PortAction::Drop,
                    ElementKey::Filter(..) => PortAction::Permit,
                });
                let want = naive_action(&live, key, &pkt);
                prop_assert_eq!(got, want, "mismatch at {:?} for {:?}", key, pkt);
            }
        }
    }

    /// Update order never changes the final model, only churn.
    #[test]
    fn final_state_is_order_independent(seq in arb_rules()) {
        let batch: Vec<RuleUpdate> =
            seq.iter().map(|a| RuleUpdate::Insert(rule_of(a))).collect::<BTreeSet<_>>()
                .into_iter().collect();
        let probe_pkts: Vec<Packet> = (0..6)
            .map(|i| Packet { dst_ip: u32::from_be_bytes([10, i, 128, 1]), proto: 6, ..Default::default() })
            .collect();
        let elements: BTreeSet<ElementKey> = batch.iter().map(|u| u.rule().element).collect();

        let mut results = Vec::new();
        for order in [UpdateOrder::InsertFirst, UpdateOrder::DeleteFirst, UpdateOrder::AsGiven] {
            let mut m = ApkModel::new();
            m.apply_batch(batch.clone(), order);
            m.check_invariants();
            let obs: Vec<PortAction> = probe_pkts
                .iter()
                .flat_map(|pkt| {
                    let ec = m.ec_of_packet(pkt);
                    elements.iter().map(move |&k| (k, ec)).collect::<Vec<_>>()
                })
                .map(|(k, ec)| m.action(k, ec).cloned().unwrap())
                .collect();
            results.push(obs);
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[0], &results[2]);
    }
}
