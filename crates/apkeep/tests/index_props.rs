//! Property tests of the dst-interval EC index: across random rule
//! batches (with interleaved split/merge/index maintenance), the
//! indexed model must produce byte-identical `BatchSummary` and
//! `MergeReport` output to a full-scan oracle model, agree on
//! `ecs_intersecting`, and keep `check_invariants` green — which
//! verifies the interval map and the per-element inverted port index
//! against the ground-truth EC table.
//!
//! The shared body lives in `common/mod.rs` next to the behavioural
//! oracle used by `props.rs`.

mod common;

use common::{check_indexed_matches_full_scan, AbstractRule};
use proptest::prelude::*;

fn arb_rules() -> impl Strategy<Value = Vec<AbstractRule>> {
    prop::collection::vec(
        (0u32..3, 0u8..3, 8u8..=16, 0u32..4, any::<bool>()).prop_map(
            |(device, base, len, iface, acl)| AbstractRule { device, base, len, iface, acl },
        ),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_model_matches_full_scan_oracle(
        seq in arb_rules(),
        order_bits in any::<u64>(),
    ) {
        check_indexed_matches_full_scan(&seq, order_bits);
    }
}
