//! Pinned counterexamples from `props.proptest-regressions`.
//!
//! The `cc <seed>` lines in that file encode upstream-proptest RNG
//! seeds which only replay under the original generator; the
//! "shrinks to" comments, however, give the exact shrunk inputs. Each
//! test here replays one of those inputs through the same property
//! body as `props.rs`, so the historical failure modes stay covered
//! deterministically regardless of the RNG backing the random suite.

mod common;

use common::{check_model_matches_naive, check_order_independent, AbstractRule};

/// `cc 384f6ea2…`: a single ACL rule. Historically the filter element
/// was created with an EC table that disagreed with the naive oracle's
/// default-permit behaviour under the three update orders.
#[test]
fn single_acl_rule_is_order_independent() {
    let seq = [AbstractRule { device: 0, base: 0, len: 8, iface: 1, acl: true }];
    check_order_independent(&seq);
}

/// `cc 0042fba4…`: two same-length forwarding prefixes on one device
/// whose canonical prefixes collide (base 0 vs base 1 under /12).
/// Exercises same-priority tie-breaking in the rule table.
#[test]
fn colliding_canonical_prefixes_are_order_independent() {
    let seq = [
        AbstractRule { device: 1, base: 0, len: 12, iface: 0, acl: false },
        AbstractRule { device: 1, base: 1, len: 12, iface: 0, acl: false },
    ];
    check_order_independent(&seq);
}

/// `cc cdf4a204…`: a rule re-inserted after removal across batches with
/// a mixed insert/delete order schedule. Exercises EC split/merge when
/// the same rule toggles in and out of the live set.
#[test]
fn rule_reinsertion_across_batches_matches_naive() {
    let seq = [
        AbstractRule { device: 0, base: 0, len: 8, iface: 0, acl: false },
        AbstractRule { device: 0, base: 0, len: 11, iface: 0, acl: false },
        AbstractRule { device: 0, base: 0, len: 8, iface: 0, acl: false },
        AbstractRule { device: 0, base: 0, len: 8, iface: 0, acl: false },
        AbstractRule { device: 0, base: 0, len: 8, iface: 0, acl: false },
    ];
    let order_bits = 14005871327503184529u64;
    let probes = [(0u8, 0u8, false); 8];
    check_model_matches_naive(&seq, order_bits, &probes);
}
