//! Differential property tests between the two predicate backends:
//! on dst-prefix-only workloads, the Delta-net interval-atom store and
//! the BDD manager must be observationally indistinguishable — same
//! batch summaries, merge reports, EC partitions, actions and
//! intersection answers over random rule/link churn.
//!
//! Alongside the random suite, this file pins the two interval-algebra
//! shapes most likely to diverge (split exactly at an interval
//! boundary, adjacent intervals the atom store coalesces but a BDD
//! keeps apart) and the >`INTERVAL_CAP` hull-fallback path of the dst
//! index.

mod common;

use common::{check_backends_agree, coalesce, AbstractRule};
use proptest::prelude::*;
use rc_apkeep::*;
use rc_bdd::{PredKind, Predicate};
use rc_netcfg::types::{IfaceId, Ip, NodeId, Prefix};

fn arb_dst_rules() -> impl Strategy<Value = Vec<AbstractRule>> {
    prop::collection::vec(
        (0u32..3, 0u8..3, 8u8..=16, 0u32..4).prop_map(|(device, base, len, iface)| {
            AbstractRule { device, base, len, iface, acl: false }
        }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random dst-prefix churn: atoms and BDD backends agree on every
    /// observable, batch by batch.
    #[test]
    fn backends_agree_on_dst_prefix_churn(
        seq in arb_dst_rules(),
        order_bits in any::<u64>(),
    ) {
        check_backends_agree(&seq, order_bits);
    }
}

/// Pinned: a more-specific insert whose interval ends exactly at the
/// boundary of the covering prefix's interval. 10.1.0.0/16 splits
/// 10.0.0.0/8 at [10.1.0.0, 10.1.255.255] — the split's upper edge is
/// an interval endpoint in the atom store; removing the /8 afterwards
/// merges across that same boundary.
#[test]
fn pinned_split_at_interval_boundary() {
    let seq = [
        AbstractRule { device: 0, base: 1, len: 8, iface: 0, acl: false },
        AbstractRule { device: 0, base: 1, len: 16, iface: 1, acl: false },
        AbstractRule { device: 1, base: 1, len: 16, iface: 2, acl: false },
        // Toggle semantics of check_backends_agree: repeating the /8
        // rule removes it, forcing the merge back across the boundary.
        AbstractRule { device: 0, base: 1, len: 8, iface: 0, acl: false },
    ];
    for order_bits in [0u64, 0b01_01_01, 0b10_10_10] {
        check_backends_agree(&seq, order_bits);
    }
}

/// Pinned: two prefixes whose intervals are adjacent (10.0.0.0/16 ends
/// at 10.0.255.255; 10.1.0.0/16 starts at 10.1.0.0). When one EC comes
/// to cover both, the atom store canonicalizes them into a single
/// interval while the BDD keeps two subtrees — covers must still
/// compare equal, and subsequent splits must land identically.
#[test]
fn pinned_adjacent_interval_merge() {
    let seq = [
        AbstractRule { device: 0, base: 0, len: 16, iface: 1, acl: false },
        AbstractRule { device: 0, base: 1, len: 16, iface: 1, acl: false },
        // A second device splits the merged region from outside.
        AbstractRule { device: 1, base: 0, len: 15, iface: 2, acl: false },
        AbstractRule { device: 1, base: 1, len: 16, iface: 3, acl: false },
    ];
    for order_bits in [0u64, 0b01_01_01, 0b10_10_10] {
        check_backends_agree(&seq, order_bits);
    }
}

fn wide_rule(octet: u8, iface: u32) -> ModelRule {
    ModelRule {
        element: ElementKey::Forward(NodeId(0)),
        priority: 16,
        rule_match: RuleMatch::DstPrefix(Prefix::new(Ip::new(10, octet, 0, 0), 16)),
        action: PortAction::forward(vec![IfaceId(iface)]),
    }
}

/// Regression for the dst-index hull fallback: an EC whose predicate
/// spans more than `INTERVAL_CAP` (16) disjoint, non-adjacent
/// intervals. Extraction bails past the cap and the index stores the
/// [min, max] hull instead — a sound over-approximation (candidates
/// are exactly filtered afterwards), never a pruning basis. The
/// indexed model must stay byte-identical to the full-scan oracle
/// through the hull regime, including on probes that fall in the
/// hull's gaps.
#[test]
fn hull_fallback_past_interval_cap() {
    let mut indexed = ApkModel::new();
    let mut oracle = ApkModel::new();
    oracle.set_full_scan(true);

    // 17 disjoint non-adjacent /16s (even second octets), same action:
    // merge_equivalent folds them into one EC with 17 intervals.
    let batch: Vec<RuleUpdate> =
        (0u8..17).map(|i| RuleUpdate::Insert(wide_rule(2 * i, 1))).collect();
    let s_i = indexed.apply_batch(batch.clone(), UpdateOrder::InsertFirst);
    let s_o = oracle.apply_batch(batch, UpdateOrder::InsertFirst);
    assert_eq!(s_i, s_o);
    let m_i = indexed.merge_equivalent();
    let m_o = oracle.merge_equivalent();
    assert_eq!(m_i, m_o);
    assert_eq!(indexed.num_ecs(), 2, "17 same-action prefixes + the default EC");
    indexed.check_invariants();
    oracle.check_invariants();

    // The merged EC really is past the cap: its exact cover has 17
    // intervals (the complement EC has 18 — both exceed the cap).
    let ec_preds: Vec<rc_bdd::Ref> = {
        let ecs: Vec<EcId> = indexed.ecs().collect();
        ecs.iter().map(|&ec| indexed.ec_pred(ec)).collect()
    };
    let pred = *ec_preds
        .iter()
        .find(|&&p| {
            coalesce(indexed.preds().pkt_dst_cover(p, usize::MAX).into_intervals()).len() == 17
        })
        .expect("one EC covers the 17 disjoint prefixes");
    let exact = coalesce(indexed.preds().pkt_dst_cover(pred, usize::MAX).into_intervals());
    assert_eq!(exact.len(), 17);
    match indexed.preds().pkt_dst_cover(pred, 16) {
        rc_bdd::Cover::Hull(lo, hi) => {
            // The hull encloses every exact interval.
            assert!(exact.iter().all(|&(a, b)| lo <= a && b <= hi));
        }
        rc_bdd::Cover::Exact(v) => panic!("expected hull past the cap, got exact {v:?}"),
    }

    // Churn through the hull regime: split inside one of the covered
    // /16s, insert into a gap, then remove — summaries stay identical.
    let churn: Vec<(Vec<RuleUpdate>, UpdateOrder)> = vec![
        (
            vec![RuleUpdate::Insert(ModelRule {
                element: ElementKey::Forward(NodeId(0)),
                priority: 24,
                rule_match: RuleMatch::DstPrefix(Prefix::new(Ip::new(10, 4, 128, 0), 24)),
                action: PortAction::forward(vec![IfaceId(2)]),
            })],
            UpdateOrder::InsertFirst,
        ),
        // A gap octet (odd): candidates from the hull must be exactly
        // filtered, not split.
        (
            vec![RuleUpdate::Insert(wide_rule(5, 3))],
            UpdateOrder::DeleteFirst,
        ),
        (
            vec![RuleUpdate::Remove(wide_rule(8, 1))],
            UpdateOrder::InsertFirst,
        ),
    ];
    for (batch, order) in churn {
        let s_i = indexed.apply_batch(batch.clone(), order);
        let s_o = oracle.apply_batch(batch, order);
        assert_eq!(s_i, s_o, "indexed and full-scan diverge in the hull regime");
        indexed.check_invariants();
        oracle.check_invariants();
    }

    // Intersection answers agree on in-gap, in-cover and out-of-hull
    // probes.
    for octet in [0u8, 1, 4, 5, 8, 31, 40, 200] {
        let q_i = indexed.preds().pkt_prefix(rc_bdd::pkt::Field::DstIp, u32::from_be_bytes([10, octet, 0, 0]), 16);
        let q_o = oracle.preds().pkt_prefix(rc_bdd::pkt::Field::DstIp, u32::from_be_bytes([10, octet, 0, 0]), 16);
        assert_eq!(indexed.ecs_intersecting(q_i), oracle.ecs_intersecting(q_o), "octet {octet}");
    }
}

/// The hull regime behaves identically under the atoms backend (whose
/// covers are always exact, so it never takes the hull path): both
/// backends, both index modes, one truth.
#[test]
fn hull_workload_agrees_across_backends() {
    let mut with_bdd = ApkModel::with_backend(PredKind::Bdd);
    let mut with_atoms = ApkModel::with_backend(PredKind::Atoms);
    let batch: Vec<RuleUpdate> =
        (0u8..17).map(|i| RuleUpdate::Insert(wide_rule(2 * i, 1))).collect();
    let s_b = with_bdd.apply_batch(batch.clone(), UpdateOrder::InsertFirst);
    let s_a = with_atoms.apply_batch(batch, UpdateOrder::InsertFirst);
    assert_eq!(s_b, s_a);
    assert_eq!(with_bdd.merge_equivalent(), with_atoms.merge_equivalent());
    with_bdd.check_invariants();
    with_atoms.check_invariants();
    let ecs: Vec<EcId> = with_bdd.ecs().collect();
    assert_eq!(ecs, with_atoms.ecs().collect::<Vec<_>>());
    for &ec in &ecs {
        let p_b = with_bdd.ec_pred(ec);
        let p_a = with_atoms.ec_pred(ec);
        assert_eq!(
            coalesce(with_bdd.preds().pkt_dst_cover(p_b, usize::MAX).into_intervals()),
            coalesce(with_atoms.preds().pkt_dst_cover(p_a, usize::MAX).into_intervals()),
        );
    }
}
