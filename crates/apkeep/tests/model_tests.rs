//! Behavioural tests of the EC data plane model, including the paper's
//! update-order effect (Table 3).

use rc_apkeep::*;
use rc_netcfg::facts::Dir;
use rc_netcfg::types::{IfaceId, NodeId, Prefix};

fn fwd(node: u32, prefix: &str, iface: u32) -> ModelRule {
    let p: Prefix = prefix.parse().unwrap();
    ModelRule {
        element: ElementKey::Forward(NodeId(node)),
        priority: p.len() as u32,
        rule_match: RuleMatch::DstPrefix(p),
        action: PortAction::forward(vec![IfaceId(iface)]),
    }
}

#[test]
fn insert_then_remove_returns_to_drop() {
    let mut m = ApkModel::new();
    let r = fwd(0, "10.0.0.0/8", 1);
    m.apply_batch(vec![RuleUpdate::Insert(r.clone())], UpdateOrder::AsGiven);
    m.check_invariants();
    assert_eq!(m.num_ecs(), 2);

    let s = m.apply_batch(vec![RuleUpdate::Remove(r)], UpdateOrder::AsGiven);
    m.check_invariants();
    assert_eq!(s.affected.len(), 1);
    assert_eq!(s.affected[0].old, PortAction::forward(vec![IfaceId(1)]));
    assert_eq!(s.affected[0].new, PortAction::Drop);
    // The EC table never shrinks without an explicit merge.
    assert_eq!(m.num_ecs(), 2);
}

#[test]
fn longest_prefix_match_wins() {
    let mut m = ApkModel::new();
    m.apply_batch(
        vec![
            RuleUpdate::Insert(fwd(0, "10.0.0.0/8", 1)),
            RuleUpdate::Insert(fwd(0, "10.1.0.0/16", 2)),
        ],
        UpdateOrder::AsGiven,
    );
    m.check_invariants();
    // Three ECs: inside /16, /8 minus /16, everything else.
    assert_eq!(m.num_ecs(), 3);
    let pkt_16 = rc_bdd::pkt::Packet { dst_ip: 0x0A010203, ..Default::default() };
    let pkt_8 = rc_bdd::pkt::Packet { dst_ip: 0x0A800001, ..Default::default() };
    let pkt_out = rc_bdd::pkt::Packet { dst_ip: 0x0B000001, ..Default::default() };
    let k = ElementKey::Forward(NodeId(0));
    assert_eq!(
        m.action(k, m.ec_of_packet(&pkt_16)),
        Some(&PortAction::forward(vec![IfaceId(2)]))
    );
    assert_eq!(
        m.action(k, m.ec_of_packet(&pkt_8)),
        Some(&PortAction::forward(vec![IfaceId(1)]))
    );
    assert_eq!(m.action(k, m.ec_of_packet(&pkt_out)), Some(&PortAction::Drop));
}

#[test]
fn update_order_changes_churn_but_not_result() {
    // The paper's Table 3 mechanism: replacing a rule insert-first
    // moves affected ECs once (old → new port); delete-first moves
    // them twice (old → drop → new).
    let build = || {
        let mut m = ApkModel::new();
        m.apply_batch(vec![RuleUpdate::Insert(fwd(0, "10.1.0.0/16", 1))], UpdateOrder::AsGiven);
        m
    };
    let batch = vec![
        RuleUpdate::Remove(fwd(0, "10.1.0.0/16", 1)),
        RuleUpdate::Insert(fwd(0, "10.1.0.0/16", 2)),
    ];

    let mut m_ins = build();
    let s_ins = m_ins.apply_batch(batch.clone(), UpdateOrder::InsertFirst);
    m_ins.check_invariants();

    let mut m_del = build();
    let s_del = m_del.apply_batch(batch, UpdateOrder::DeleteFirst);
    m_del.check_invariants();

    // Same net effect...
    assert_eq!(s_ins.affected, s_del.affected);
    assert_eq!(s_ins.affected.len(), 1);
    assert_eq!(s_ins.affected[0].new, PortAction::forward(vec![IfaceId(2)]));
    // ...but deletion-first does twice the EC moves.
    assert_eq!(s_ins.ec_moves, 1);
    assert_eq!(s_del.ec_moves, 2);
}

#[test]
fn acl_element_splits_ecs() {
    let mut m = ApkModel::new();
    // Forwarding carves out a /24.
    m.apply_batch(vec![RuleUpdate::Insert(fwd(0, "10.1.1.0/24", 1))], UpdateOrder::AsGiven);
    assert_eq!(m.num_ecs(), 2);
    // An ACL denying HTTP to half of that /24 splits the EC.
    let acl = ModelRule {
        element: ElementKey::Filter(NodeId(0), IfaceId(1), Dir::Out),
        priority: u32::MAX - 10,
        rule_match: RuleMatch::Acl {
            proto: Some(6),
            src: Prefix::DEFAULT,
            dst: "10.1.1.0/25".parse().unwrap(),
            dst_ports: Some((80, 80)),
        },
        action: PortAction::Deny,
    };
    let s = m.apply_batch(vec![RuleUpdate::Insert(acl)], UpdateOrder::AsGiven);
    m.check_invariants();
    assert_eq!(s.ec_splits, 1, "the HTTP/10.1.1.0/25 slice must split off");
    assert_eq!(m.num_ecs(), 3);
    // The new EC is denied at the filter but still forwards at the FIB.
    let denied = s
        .affected
        .iter()
        .find(|a| a.new == PortAction::Deny)
        .expect("a denied EC");
    assert_eq!(
        m.action(ElementKey::Forward(NodeId(0)), denied.ec),
        Some(&PortAction::forward(vec![IfaceId(1)]))
    );
}

#[test]
fn acl_first_match_by_seq() {
    let mut m = ApkModel::new();
    let key = ElementKey::Filter(NodeId(0), IfaceId(0), Dir::In);
    let entry = |seq: u32, permit: bool, dst: &str| ModelRule {
        element: key,
        priority: u32::MAX - seq,
        rule_match: RuleMatch::Acl {
            proto: None,
            src: Prefix::DEFAULT,
            dst: dst.parse().unwrap(),
            dst_ports: None,
        },
        action: if permit { PortAction::Permit } else { PortAction::Deny },
    };
    // seq 10: deny 10.0.0.0/8; seq 20: permit 10.1.0.0/16 (shadowed);
    // implicit deny-all at the lowest priority.
    m.apply_batch(
        vec![
            RuleUpdate::Insert(entry(10, false, "10.0.0.0/8")),
            RuleUpdate::Insert(entry(20, true, "10.1.0.0/16")),
            RuleUpdate::Insert(entry(u32::MAX, false, "0.0.0.0/0")),
        ],
        UpdateOrder::AsGiven,
    );
    m.check_invariants();
    let pkt = rc_bdd::pkt::Packet { dst_ip: 0x0A010001, ..Default::default() };
    // Shadowed permit: the seq-10 deny wins.
    assert_eq!(m.action(key, m.ec_of_packet(&pkt)), Some(&PortAction::Deny));
}

#[test]
fn ecmp_groups_are_single_ports() {
    let mut m = ApkModel::new();
    let p: Prefix = "10.2.0.0/16".parse().unwrap();
    let rule = ModelRule {
        element: ElementKey::Forward(NodeId(0)),
        priority: 16,
        rule_match: RuleMatch::DstPrefix(p),
        action: PortAction::forward(vec![IfaceId(5), IfaceId(3), IfaceId(5)]),
    };
    let s = m.apply_batch(vec![RuleUpdate::Insert(rule)], UpdateOrder::AsGiven);
    // Canonicalized: sorted, deduped.
    assert_eq!(s.affected[0].new, PortAction::Forward(vec![IfaceId(3), IfaceId(5)]));
}

#[test]
fn merge_equivalent_restores_minimality() {
    let mut m = ApkModel::new();
    let r = fwd(0, "10.0.0.0/8", 1);
    m.apply_batch(vec![RuleUpdate::Insert(r.clone())], UpdateOrder::AsGiven);
    m.apply_batch(vec![RuleUpdate::Remove(r)], UpdateOrder::AsGiven);
    // Two ECs with identical all-drop behaviour.
    assert_eq!(m.num_ecs(), 2);
    let report = m.merge_equivalent();
    assert_eq!(report.merges.len(), 1);
    assert_eq!(m.num_ecs(), 1);
    m.check_invariants();
}

#[test]
fn duplicate_insert_is_idempotent() {
    // Regression: inserting a rule identical to a stored one used to
    // double-store it, so one Remove left a phantom copy behind.
    let mut m = ApkModel::new();
    let r = fwd(0, "10.3.0.0/16", 1);
    m.apply_batch(vec![RuleUpdate::Insert(r.clone())], UpdateOrder::AsGiven);
    assert_eq!(m.num_rules(), 1);
    m.apply_batch(vec![RuleUpdate::Insert(r.clone())], UpdateOrder::AsGiven);
    m.check_invariants();
    assert_eq!(m.num_rules(), 1, "identical re-insert must not double-store");

    let s = m.apply_batch(vec![RuleUpdate::Remove(r)], UpdateOrder::AsGiven);
    m.check_invariants();
    assert_eq!(m.num_rules(), 0, "one remove must clear the rule");
    // And the packets actually fall back to the default action.
    assert_eq!(s.affected.len(), 1);
    assert_eq!(s.affected[0].new, PortAction::Drop);
    let pkt = rc_bdd::pkt::Packet { dst_ip: 0x0A030001, ..Default::default() };
    let k = ElementKey::Forward(NodeId(0));
    assert_eq!(m.action(k, m.ec_of_packet(&pkt)), Some(&PortAction::Drop));
}

#[test]
fn merge_report_remap_tracks_renumbering() {
    // Regression: merge pairs alone are not enough to re-key EC state —
    // compaction renumbers even unmerged ECs. The remap must map every
    // pre-merge id to the live id now carrying its packets.
    let mut m = ApkModel::new();
    // Three ECs: the /16 (forwards), the /8 remainder (forwards
    // elsewhere), everything else (drops).
    m.apply_batch(
        vec![
            RuleUpdate::Insert(fwd(0, "10.0.0.0/8", 1)),
            RuleUpdate::Insert(fwd(0, "10.1.0.0/16", 2)),
        ],
        UpdateOrder::AsGiven,
    );
    // Drop the /16 rule: its EC joins the /8 remainder behaviourally.
    m.apply_batch(vec![RuleUpdate::Remove(fwd(0, "10.1.0.0/16", 2))], UpdateOrder::AsGiven);
    assert_eq!(m.num_ecs(), 3);
    let pkt_in_16 = rc_bdd::pkt::Packet { dst_ip: 0x0A010203, ..Default::default() };
    let pkt_in_8 = rc_bdd::pkt::Packet { dst_ip: 0x0A800001, ..Default::default() };
    let old_16 = m.ec_of_packet(&pkt_in_16);
    let old_8 = m.ec_of_packet(&pkt_in_8);
    assert_ne!(old_16, old_8);

    let report = m.merge_equivalent();
    m.check_invariants();
    assert_eq!(report.merges.len(), 1);
    assert_eq!(report.remap.len(), 3);
    assert_eq!(m.num_ecs(), 2);
    // Querying through the remap lands on the EC that carries each old
    // id's packets now.
    assert_eq!(report.new_id(old_16), m.ec_of_packet(&pkt_in_16));
    assert_eq!(report.new_id(old_8), m.ec_of_packet(&pkt_in_8));
    assert_eq!(report.new_id(old_16), report.new_id(old_8), "merged ids share a survivor");
    // Every remapped id is live.
    for old in 0..3u32 {
        assert!((report.new_id(EcId(old)).0 as usize) < m.num_ecs());
    }
    let k = ElementKey::Forward(NodeId(0));
    assert_eq!(
        m.action(k, report.new_id(old_16)),
        Some(&PortAction::forward(vec![IfaceId(1)]))
    );
}

#[test]
fn split_without_net_change_reports_no_affected() {
    // A batch that inserts and removes an ACL slice splits an EC, but
    // the child ends the batch on its pre-split action: ec_splits
    // counts churn, affected (the net set driving policy re-checks)
    // stays empty.
    let mut m = ApkModel::new();
    m.apply_batch(vec![RuleUpdate::Insert(fwd(0, "10.1.1.0/24", 1))], UpdateOrder::AsGiven);
    let acl = ModelRule {
        element: ElementKey::Filter(NodeId(0), IfaceId(1), Dir::Out),
        priority: u32::MAX - 10,
        rule_match: RuleMatch::Acl {
            proto: Some(6),
            src: Prefix::DEFAULT,
            dst: "10.1.1.0/25".parse().unwrap(),
            dst_ports: Some((80, 80)),
        },
        action: PortAction::Deny,
    };
    let s = m.apply_batch(
        vec![RuleUpdate::Insert(acl.clone()), RuleUpdate::Remove(acl)],
        UpdateOrder::InsertFirst,
    );
    m.check_invariants();
    assert!(s.ec_splits >= 1, "the ACL slice must split an EC");
    assert!(!s.splits.is_empty());
    assert!(
        s.affected.is_empty(),
        "no net behaviour change, nothing to re-check: {:?}",
        s.affected
    );
}

#[test]
fn multi_device_split_is_global() {
    let mut m = ApkModel::new();
    m.apply_batch(
        vec![
            RuleUpdate::Insert(fwd(0, "10.0.0.0/8", 1)),
            RuleUpdate::Insert(fwd(1, "10.1.0.0/16", 2)),
        ],
        UpdateOrder::AsGiven,
    );
    m.check_invariants();
    // The /16 split on device 1 must also be reflected at device 0:
    // both slices of the /8 still forward to iface 1 there.
    assert_eq!(m.num_ecs(), 3);
    let pkt = rc_bdd::pkt::Packet { dst_ip: 0x0A010001, ..Default::default() };
    let ec = m.ec_of_packet(&pkt);
    assert_eq!(
        m.action(ElementKey::Forward(NodeId(0)), ec),
        Some(&PortAction::forward(vec![IfaceId(1)]))
    );
    assert_eq!(
        m.action(ElementKey::Forward(NodeId(1)), ec),
        Some(&PortAction::forward(vec![IfaceId(2)]))
    );
}

#[test]
fn transient_move_that_returns_is_not_affected() {
    // Remove and re-insert the identical rule in one delete-first
    // batch: the EC moves to drop and back, so net affected is empty
    // but churn is visible.
    let mut m = ApkModel::new();
    let r = fwd(0, "10.0.0.0/8", 1);
    m.apply_batch(vec![RuleUpdate::Insert(r.clone())], UpdateOrder::AsGiven);
    let s = m.apply_batch(
        vec![RuleUpdate::Remove(r.clone()), RuleUpdate::Insert(r)],
        UpdateOrder::DeleteFirst,
    );
    m.check_invariants();
    assert!(s.affected.is_empty(), "net behaviour unchanged: {:?}", s.affected);
    assert_eq!(s.ec_moves, 2, "but the EC transited through the drop port");
}

#[test]
#[should_panic(expected = "not in the model")]
fn removing_unknown_rule_panics() {
    let mut m = ApkModel::new();
    m.apply_batch(vec![RuleUpdate::Remove(fwd(0, "10.0.0.0/8", 1))], UpdateOrder::AsGiven);
}
