//! Shared harness for the apkeep property tests and their pinned
//! regression counterexamples: abstract rule encoding, the naive
//! first-match oracle, and the two checkable properties as plain
//! functions so `props.rs` (random inputs) and `regressions.rs`
//! (counterexamples from props.proptest-regressions) exercise the
//! exact same code path.
#![allow(dead_code)]

use rc_apkeep::*;
use rc_bdd::pkt::Packet;
use rc_bdd::Predicate;
use rc_netcfg::facts::Dir;
use rc_netcfg::types::{IfaceId, Ip, NodeId, Prefix};
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
pub struct AbstractRule {
    pub device: u32,
    /// Prefix built from a small alphabet so overlaps actually happen.
    pub base: u8,
    pub len: u8,
    pub iface: u32,
    pub acl: bool,
}

pub fn rule_of(a: &AbstractRule) -> ModelRule {
    // Prefixes like 10.B.0.0/len with len in 8..=16 out of two base
    // octets — guarantees nesting and disjointness cases.
    //
    // The action is a function of the match: devices never hold two
    // same-priority rules with identical matches and different actions
    // (a FIB has one route per prefix, an ACL unique sequence numbers),
    // and the model's semantics are only defined without such
    // ambiguity.
    let prefix = Prefix::new(Ip::new(10, a.base, 0, 0), a.len);
    // Derive from the *canonical* prefix: short masks strip the base
    // octet, and the action must be a function of what the rule
    // actually matches.
    let iface = (a.device + (prefix.addr().0 >> 16) + a.len as u32) % 4;
    let a = AbstractRule { iface, ..a.clone() };
    if a.acl {
        ModelRule {
            element: ElementKey::Filter(NodeId(a.device), IfaceId(0), Dir::In),
            priority: u32::MAX - (a.len as u32 * 10 + a.iface),
            rule_match: RuleMatch::Acl {
                proto: if a.iface.is_multiple_of(2) { Some(6) } else { None },
                src: Prefix::DEFAULT,
                dst: prefix,
                dst_ports: None,
            },
            action: if a.iface.is_multiple_of(3) { PortAction::Deny } else { PortAction::Permit },
        }
    } else {
        ModelRule {
            element: ElementKey::Forward(NodeId(a.device)),
            priority: a.len as u32,
            rule_match: RuleMatch::DstPrefix(prefix),
            action: PortAction::forward(vec![IfaceId(a.iface)]),
        }
    }
}

/// Naive oracle: evaluate a packet against the live rule set of one
/// element (highest priority first; deterministic tie-break mirrors the
/// model's table order).
pub fn naive_action(rules: &BTreeSet<ModelRule>, key: ElementKey, pkt: &Packet) -> PortAction {
    let mut bdd = rc_bdd::Bdd::new();
    let mut matching: Vec<&ModelRule> = rules.iter().filter(|r| r.element == key).collect();
    // Model table order: priority desc, then match, then action.
    matching.sort_by(|a, b| {
        (std::cmp::Reverse(a.priority), a.rule_match, &a.action)
            .cmp(&(std::cmp::Reverse(b.priority), b.rule_match, &b.action))
    });
    for r in matching {
        let pred = match r.rule_match {
            RuleMatch::DstPrefix(p) => {
                bdd.pkt_prefix(rc_bdd::pkt::Field::DstIp, p.addr().0, p.len() as u32)
            }
            RuleMatch::Acl { proto, src, dst, dst_ports } => {
                let mut acc = bdd.pkt_prefix(rc_bdd::pkt::Field::SrcIp, src.addr().0, src.len() as u32);
                let d = bdd.pkt_prefix(rc_bdd::pkt::Field::DstIp, dst.addr().0, dst.len() as u32);
                acc = bdd.and(acc, d);
                if let Some(pr) = proto {
                    let p = bdd.pkt_value(rc_bdd::pkt::Field::Proto, pr as u32);
                    acc = bdd.and(acc, p);
                }
                if let Some((lo, hi)) = dst_ports {
                    let rng = bdd.pkt_range(rc_bdd::pkt::Field::DstPort, lo as u32, hi as u32);
                    acc = bdd.and(acc, rng);
                }
                acc
            }
        };
        if bdd.pkt_eval(pred, pkt) {
            return r.action.clone();
        }
    }
    match key {
        ElementKey::Forward(_) => PortAction::Drop,
        ElementKey::Filter(..) => PortAction::Permit,
    }
}

/// Property body: apply `seq` in batches of up to 3 (insert/remove
/// toggling, order selected by `order_bits`), then check the model's
/// packet-level behaviour against the naive oracle on `probes`.
pub fn check_model_matches_naive(seq: &[AbstractRule], order_bits: u64, probes: &[(u8, u8, bool)]) {
    let mut model = ApkModel::new();
    let mut live: BTreeSet<ModelRule> = BTreeSet::new();

    // Apply rules in batches of up to 3, toggling insert/remove and
    // alternating update order.
    for (i, chunk) in seq.chunks(3).enumerate() {
        let mut batch = Vec::new();
        let mut touched: BTreeSet<ModelRule> = BTreeSet::new();
        for a in chunk {
            let r = rule_of(a);
            // Batches derive from set deltas: the same rule never
            // appears as both insert and remove in one batch.
            if !touched.insert(r.clone()) {
                continue;
            }
            if live.contains(&r) {
                live.remove(&r);
                batch.push(RuleUpdate::Remove(r));
            } else {
                live.insert(r.clone());
                batch.push(RuleUpdate::Insert(r));
            }
        }
        let order = match (order_bits >> (2 * i)) & 3 {
            0 => UpdateOrder::InsertFirst,
            1 => UpdateOrder::DeleteFirst,
            _ => UpdateOrder::AsGiven,
        };
        model.apply_batch(batch, order);
        model.check_invariants();
    }

    // Probe packets across the interesting space.
    let elements: BTreeSet<ElementKey> = live.iter().map(|r| r.element).collect();
    for &(b, low, tcp) in probes {
        let pkt = Packet {
            dst_ip: u32::from_be_bytes([10, b, low, 1]),
            proto: if tcp { 6 } else { 17 },
            ..Default::default()
        };
        let ec = model.ec_of_packet(&pkt);
        for &key in &elements {
            let got = model.action(key, ec).cloned().unwrap_or(match key {
                ElementKey::Forward(_) => PortAction::Drop,
                ElementKey::Filter(..) => PortAction::Permit,
            });
            let want = naive_action(&live, key, &pkt);
            assert_eq!(got, want, "mismatch at {:?} for {:?}", key, pkt);
        }
    }
}

/// Property body: the indexed model must be observationally identical
/// to a full-scan oracle — byte-identical `BatchSummary` per batch,
/// identical `MergeReport`s under interleaved merges, identical
/// `ecs_intersecting` answers, and invariants (including dst-index /
/// inverted-index sync) holding throughout.
///
/// EC ids line up because both models probe candidates in ascending id
/// order, so splits allocate identical child ids.
pub fn check_indexed_matches_full_scan(seq: &[AbstractRule], order_bits: u64) {
    let mut indexed = ApkModel::new();
    let mut oracle = ApkModel::new();
    oracle.set_full_scan(true);
    let mut live: BTreeSet<ModelRule> = BTreeSet::new();

    for (i, chunk) in seq.chunks(3).enumerate() {
        let mut batch = Vec::new();
        let mut touched: BTreeSet<ModelRule> = BTreeSet::new();
        for a in chunk {
            let r = rule_of(a);
            if !touched.insert(r.clone()) {
                continue;
            }
            if live.contains(&r) {
                live.remove(&r);
                batch.push(RuleUpdate::Remove(r));
            } else {
                live.insert(r.clone());
                batch.push(RuleUpdate::Insert(r));
            }
        }
        let order = match (order_bits >> (2 * i)) & 3 {
            0 => UpdateOrder::InsertFirst,
            1 => UpdateOrder::DeleteFirst,
            _ => UpdateOrder::AsGiven,
        };
        let s_indexed = indexed.apply_batch(batch.clone(), order);
        let s_oracle = oracle.apply_batch(batch, order);
        assert_eq!(s_indexed, s_oracle, "indexed and full-scan summaries diverge at batch {i}");
        assert_eq!(indexed.num_ecs(), oracle.num_ecs());

        // Interleave minimality maintenance: merges renumber every EC
        // and force a dst-index rebuild in the indexed model.
        if i % 3 == 2 {
            let m_indexed = indexed.merge_equivalent();
            let m_oracle = oracle.merge_equivalent();
            assert_eq!(m_indexed, m_oracle, "merge reports diverge at batch {i}");
            indexed.check_invariants();
            oracle.check_invariants();
        }
    }
    indexed.check_invariants();
    oracle.check_invariants();

    // The candidate-narrowed intersection query agrees with the full
    // scan on prefixes across the generated space (nested, disjoint,
    // and absent ones).
    for base in 0u8..4 {
        for len in [8u32, 12, 16, 24] {
            let p = Prefix::new(Ip::new(10, base, 0, 0), len as u8);
            let pi = indexed.preds().pkt_prefix(rc_bdd::pkt::Field::DstIp, p.addr().0, len);
            let po = oracle.preds().pkt_prefix(rc_bdd::pkt::Field::DstIp, p.addr().0, len);
            assert_eq!(
                indexed.ecs_intersecting(pi),
                oracle.ecs_intersecting(po),
                "ecs_intersecting diverges on {p:?}"
            );
        }
    }
}

/// Coalesce sorted disjoint intervals that touch, so covers extracted
/// from the two predicate backends compare canonically (the BDD walk
/// may legally report `[a,b],[b+1,c]` where the atom store keeps one
/// merged interval).
pub fn coalesce(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(v.len());
    for (lo, hi) in v {
        match out.last_mut() {
            Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Property body: the Delta-net interval-atom backend must be
/// observationally identical to the BDD backend on a dst-prefix-only
/// workload — byte-identical `BatchSummary` per batch, identical
/// `MergeReport`s under interleaved merges, identical EC partitions
/// (compared as canonical dst-interval covers), identical per-EC
/// actions, and identical `ecs_intersecting` answers — with invariants
/// holding throughout on both sides.
///
/// EC ids line up for the same reason as in
/// [`check_indexed_matches_full_scan`]: split/merge decisions depend
/// only on predicate *semantics*, which the backends share on this
/// workload, and candidates are probed in ascending id order.
pub fn check_backends_agree(seq: &[AbstractRule], order_bits: u64) {
    let mut with_bdd = ApkModel::with_backend(rc_bdd::PredKind::Bdd);
    let mut with_atoms = ApkModel::with_backend(rc_bdd::PredKind::Atoms);
    assert_eq!(with_atoms.backend(), rc_bdd::PredKind::Atoms);
    let mut live: BTreeSet<ModelRule> = BTreeSet::new();

    for (i, chunk) in seq.chunks(3).enumerate() {
        let mut batch = Vec::new();
        let mut touched: BTreeSet<ModelRule> = BTreeSet::new();
        for a in chunk {
            // The atoms backend encodes destination-IP matches only:
            // force the FIB (non-ACL) shape of every abstract rule.
            let r = rule_of(&AbstractRule { acl: false, ..a.clone() });
            if !touched.insert(r.clone()) {
                continue;
            }
            if live.contains(&r) {
                live.remove(&r);
                batch.push(RuleUpdate::Remove(r));
            } else {
                live.insert(r.clone());
                batch.push(RuleUpdate::Insert(r));
            }
        }
        let order = match (order_bits >> (2 * i)) & 3 {
            0 => UpdateOrder::InsertFirst,
            1 => UpdateOrder::DeleteFirst,
            _ => UpdateOrder::AsGiven,
        };
        let s_bdd = with_bdd.apply_batch(batch.clone(), order);
        let s_atoms = with_atoms.apply_batch(batch, order);
        assert_eq!(s_bdd, s_atoms, "backend summaries diverge at batch {i}");
        assert_eq!(with_bdd.num_ecs(), with_atoms.num_ecs());

        if i % 3 == 2 {
            let m_bdd = with_bdd.merge_equivalent();
            let m_atoms = with_atoms.merge_equivalent();
            assert_eq!(m_bdd, m_atoms, "merge reports diverge at batch {i}");
        }
        with_bdd.check_invariants();
        with_atoms.check_invariants();
    }

    // Identical EC partitions: same ids, and per id the same packet
    // set, compared as canonical dst-interval covers (a cap of
    // usize::MAX makes the BDD cover exact too).
    let ecs: Vec<EcId> = with_bdd.ecs().collect();
    assert_eq!(ecs, with_atoms.ecs().collect::<Vec<_>>());
    for &ec in &ecs {
        let p_bdd = with_bdd.ec_pred(ec);
        let p_atoms = with_atoms.ec_pred(ec);
        let c_bdd =
            coalesce(with_bdd.preds().pkt_dst_cover(p_bdd, usize::MAX).into_intervals());
        let c_atoms =
            coalesce(with_atoms.preds().pkt_dst_cover(p_atoms, usize::MAX).into_intervals());
        assert_eq!(c_bdd, c_atoms, "EC {ec:?} covers diverge");
    }

    // Identical actions per (element, EC).
    let elements: BTreeSet<ElementKey> = live.iter().map(|r| r.element).collect();
    for &key in &elements {
        for &ec in &ecs {
            assert_eq!(with_bdd.action(key, ec), with_atoms.action(key, ec));
        }
    }

    // Identical candidate-narrowed intersection answers across the
    // generated prefix space.
    for base in 0u8..4 {
        for len in [8u32, 12, 16, 24] {
            let p = Prefix::new(Ip::new(10, base, 0, 0), len as u8);
            let q_bdd = with_bdd.preds().pkt_prefix(rc_bdd::pkt::Field::DstIp, p.addr().0, len);
            let q_atoms =
                with_atoms.preds().pkt_prefix(rc_bdd::pkt::Field::DstIp, p.addr().0, len);
            assert_eq!(
                with_bdd.ecs_intersecting(q_bdd),
                with_atoms.ecs_intersecting(q_atoms),
                "ecs_intersecting diverges on {p:?}"
            );
        }
    }
}

/// Property body: inserting the deduplicated `seq` under each of the
/// three update orders must yield identical observable behaviour.
pub fn check_order_independent(seq: &[AbstractRule]) {
    let batch: Vec<RuleUpdate> =
        seq.iter().map(|a| RuleUpdate::Insert(rule_of(a))).collect::<BTreeSet<_>>()
            .into_iter().collect();
    let probe_pkts: Vec<Packet> = (0..6)
        .map(|i| Packet { dst_ip: u32::from_be_bytes([10, i, 128, 1]), proto: 6, ..Default::default() })
        .collect();
    let elements: BTreeSet<ElementKey> = batch.iter().map(|u| u.rule().element).collect();

    let mut results = Vec::new();
    for order in [UpdateOrder::InsertFirst, UpdateOrder::DeleteFirst, UpdateOrder::AsGiven] {
        let mut m = ApkModel::new();
        m.apply_batch(batch.clone(), order);
        m.check_invariants();
        let obs: Vec<PortAction> = probe_pkts
            .iter()
            .flat_map(|pkt| {
                let ec = m.ec_of_packet(pkt);
                elements.iter().map(move |&k| (k, ec)).collect::<Vec<_>>()
            })
            .map(|(k, ec)| m.action(k, ec).cloned().unwrap())
            .collect();
        results.push(obs);
    }
    assert_eq!(&results[0], &results[1]);
    assert_eq!(&results[0], &results[2]);
}
