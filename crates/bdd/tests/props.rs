//! Property-based tests: BDD operations must agree with a naive
//! truth-table model over a small variable universe, and the packet
//! encoders must agree with direct arithmetic on sampled packets.

use proptest::prelude::*;
use rc_bdd::pkt::{Field, Packet, TOTAL_VARS};
use rc_bdd::{Bdd, Ref};

/// A tiny boolean-expression AST we can evaluate both ways.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

const NVARS: u32 = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_expr(e: &Expr, assignment: u32) -> bool {
    match e {
        Expr::Var(v) => (assignment >> v) & 1 == 1,
        Expr::Not(a) => !eval_expr(a, assignment),
        Expr::And(a, b) => eval_expr(a, assignment) && eval_expr(b, assignment),
        Expr::Or(a, b) => eval_expr(a, assignment) || eval_expr(b, assignment),
        Expr::Xor(a, b) => eval_expr(a, assignment) ^ eval_expr(b, assignment),
    }
}

fn build_bdd(b: &mut Bdd, e: &Expr) -> Ref {
    match e {
        Expr::Var(v) => b.var(*v),
        Expr::Not(a) => {
            let x = build_bdd(b, a);
            b.not(x)
        }
        Expr::And(x, y) => {
            let (x, y) = (build_bdd(b, x), build_bdd(b, y));
            b.and(x, y)
        }
        Expr::Or(x, y) => {
            let (x, y) = (build_bdd(b, x), build_bdd(b, y));
            b.or(x, y)
        }
        Expr::Xor(x, y) => {
            let (x, y) = (build_bdd(b, x), build_bdd(b, y));
            b.xor(x, y)
        }
    }
}

proptest! {
    /// BDD evaluation agrees with the AST on every assignment, and
    /// sat_count equals the truth-table count (canonicity smoke test).
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut b = Bdd::new();
        let f = build_bdd(&mut b, &e);
        let mut count = 0u32;
        for assignment in 0..(1u32 << NVARS) {
            let expect = eval_expr(&e, assignment);
            let got = b.eval(f, |v| (assignment >> v) & 1 == 1);
            prop_assert_eq!(got, expect);
            count += expect as u32;
        }
        prop_assert_eq!(b.sat_count(f, NVARS), count as f64);
    }

    /// Two semantically equal expressions hash-cons to the same Ref.
    #[test]
    fn canonicity(e in arb_expr()) {
        let mut b = Bdd::new();
        let f = build_bdd(&mut b, &e);
        // ¬¬e and e ∨ e and e ∧ true must all be the identical node.
        let nf = b.not(f);
        prop_assert_eq!(b.not(nf), f);
        prop_assert_eq!(b.or(f, f), f);
        prop_assert_eq!(b.and(f, Ref::TRUE), f);
        // De Morgan.
        let g = build_bdd(&mut b, &e);
        let fg = b.and(f, g);
        let n_fg = b.not(fg);
        let (nf2, ng) = (b.not(f), b.not(g));
        let or_n = b.or(nf2, ng);
        prop_assert_eq!(n_fg, or_n);
    }

    /// Existential quantification = disjunction of restrictions.
    #[test]
    fn exists_is_or_of_restricts(e in arb_expr(), v in 0..NVARS) {
        let mut b = Bdd::new();
        let f = build_bdd(&mut b, &e);
        let ex = b.exists(f, &[v]);
        let r0 = b.restrict(f, v, false);
        let r1 = b.restrict(f, v, true);
        let or = b.or(r0, r1);
        prop_assert_eq!(ex, or);
    }

    /// Prefix encoding agrees with integer arithmetic.
    #[test]
    fn prefix_encoding(value: u32, len in 0u32..=32, dst: u32) {
        let mut b = Bdd::new();
        let p = b.pkt_prefix(Field::DstIp, value, len);
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        let expect = (dst & mask) == (value & mask);
        let pkt = Packet { dst_ip: dst, ..Default::default() };
        prop_assert_eq!(b.pkt_eval(p, &pkt), expect);
    }

    /// Range encoding agrees with integer comparison and counts exactly.
    #[test]
    fn range_encoding(a: u16, c: u16, sample: u16) {
        let (lo, hi) = (a.min(c), a.max(c));
        let mut b = Bdd::new();
        let p = b.pkt_range(Field::DstPort, lo as u32, hi as u32);
        let pkt = Packet { dst_port: sample, ..Default::default() };
        prop_assert_eq!(b.pkt_eval(p, &pkt), sample >= lo && sample <= hi);
        let expect = (hi as f64 - lo as f64 + 1.0) * 2f64.powi((TOTAL_VARS - 16) as i32);
        prop_assert_eq!(b.sat_count(p, TOTAL_VARS), expect);
    }

    /// A witness extracted from a satisfiable predicate satisfies it.
    #[test]
    fn witness_satisfies(value: u32, len in 0u32..=32, port: u16) {
        let mut b = Bdd::new();
        let pfx = b.pkt_prefix(Field::DstIp, value, len);
        let pt = b.pkt_value(Field::DstPort, port as u32);
        let pred = b.and(pfx, pt);
        let w = b.pkt_witness(pred).unwrap();
        prop_assert!(b.pkt_eval(pred, &w));
    }
}
