//! Pluggable predicate backends.
//!
//! The pipeline touches predicates through a small algebra — boolean
//! ops, packet-field encoders, evaluation, witnesses, and dst-interval
//! projection — captured here as the [`Predicate`] trait. Two stores
//! implement it:
//!
//! * [`Bdd`] — full 5-tuple semantics; the default and the only choice
//!   for workloads with ACLs or per-port/proto policies;
//! * [`Atoms`] — Delta-net-style dst-IP interval sets; faster on the
//!   dst-prefix-only workloads that dominate the fat-tree benches, but
//!   panics on any non-dst constraint rather than approximating it.
//!
//! [`Preds`] enum-dispatches between them so models hold one concrete
//! type, and [`default_backend`] is the process-wide selector: set
//! programmatically via [`set_default_backend`], via the `RC_BACKEND`
//! environment variable, or per-run via the CLI's `--backend` flag.
//! Both stores hand out hash-consed [`Ref`] handles with the same
//! terminal slots, so `Ref::is_false`/`is_true`, handle equality, and
//! `Ref`-keyed maps behave identically across backends.

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::atoms::Atoms;
use crate::manager::Bdd;
use crate::node::Ref;
use crate::pkt::{Cover, Field, Packet};

/// Which predicate store to use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PredKind {
    /// Hash-consed ROBDDs over the full 104-variable packet space.
    #[default]
    Bdd,
    /// Dst-IP interval atoms (dst-prefix-only workloads).
    Atoms,
}

impl PredKind {
    /// Stable lowercase name, as accepted by `--backend`/`RC_BACKEND`.
    pub fn label(self) -> &'static str {
        match self {
            PredKind::Bdd => "bdd",
            PredKind::Atoms => "atoms",
        }
    }
}

impl std::fmt::Display for PredKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for PredKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "bdd" => Ok(PredKind::Bdd),
            "atoms" => Ok(PredKind::Atoms),
            other => Err(format!("unknown predicate backend {other:?} (expected \"bdd\" or \"atoms\")")),
        }
    }
}

/// Programmatic override: 0 = unset, 1 = bdd, 2 = atoms.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);
/// `RC_BACKEND`, parsed once per process (unparsable values ignored).
static ENV_KIND: OnceLock<Option<PredKind>> = OnceLock::new();

/// Set (or with `None` clear) the process-wide default backend used by
/// models constructed without an explicit kind. Takes precedence over
/// `RC_BACKEND`. Existing models are unaffected.
pub fn set_default_backend(kind: Option<PredKind>) {
    let v = match kind {
        None => 0,
        Some(PredKind::Bdd) => 1,
        Some(PredKind::Atoms) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The process-wide default backend: the [`set_default_backend`]
/// override if set, else `RC_BACKEND` (read once), else BDD.
pub fn default_backend() -> PredKind {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => return PredKind::Bdd,
        2 => return PredKind::Atoms,
        _ => {}
    }
    let env = ENV_KIND.get_or_init(|| std::env::var("RC_BACKEND").ok().and_then(|s| s.parse().ok()));
    env.unwrap_or_default()
}

/// The predicate-store operations the RealConfig pipeline uses.
///
/// Implementations hash-cons, so semantic equality is [`Ref`] equality
/// and `Ref` works directly as a map key; `is_false`/`is_true` need no
/// store access. Mutating methods may intern new predicates; `&self`
/// methods are read-only and usable from shared snapshots.
pub trait Predicate {
    /// Conjunction (packet-set intersection).
    fn and(&mut self, a: Ref, b: Ref) -> Ref;
    /// Disjunction (packet-set union).
    fn or(&mut self, a: Ref, b: Ref) -> Ref;
    /// Negation (header-space complement).
    fn not(&mut self, a: Ref) -> Ref;
    /// Set difference `a ∧ ¬b`.
    fn diff(&mut self, a: Ref, b: Ref) -> Ref;
    /// Whether `a ∧ b` is satisfiable, without interning anything.
    fn intersects(&self, a: Ref, b: Ref) -> bool;
    /// Prefix match on `field` (`len == 0` matches all).
    fn pkt_prefix(&mut self, field: Field, value: u32, len: u32) -> Ref;
    /// Exact-value match on `field`.
    fn pkt_value(&mut self, field: Field, value: u32) -> Ref;
    /// Inclusive range match on `field`.
    fn pkt_range(&mut self, field: Field, lo: u32, hi: u32) -> Ref;
    /// Evaluate a predicate on a concrete packet.
    fn pkt_eval(&self, pred: Ref, pkt: &Packet) -> bool;
    /// One satisfying packet, if any.
    fn pkt_witness(&self, pred: Ref) -> Option<Packet>;
    /// The dst-IP projection as a [`Cover`] of at most `cap` exact
    /// intervals (hull past that — see `Cover` for the soundness rule).
    fn pkt_dst_cover(&self, pred: Ref, cap: usize) -> Cover;
    /// Store size (BDD nodes / interned interval sets).
    fn node_count(&self) -> usize;
    /// Cumulative op-cache `(hits, misses)`; `(0, 0)` for stores
    /// without an op cache.
    fn apply_cache_stats(&self) -> (u64, u64);

    /// Whether `a ⊆ b` as packet sets.
    fn subset(&mut self, a: Ref, b: Ref) -> bool {
        self.diff(a, b).is_false()
    }

    /// Conjunction of a sequence (true for the empty sequence).
    fn and_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref
    where
        Self: Sized,
    {
        items.into_iter().fold(Ref::TRUE, |acc, x| self.and(acc, x))
    }

    /// Disjunction of a sequence (false for the empty sequence).
    fn or_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref
    where
        Self: Sized,
    {
        items.into_iter().fold(Ref::FALSE, |acc, x| self.or(acc, x))
    }
}

impl Predicate for Bdd {
    fn and(&mut self, a: Ref, b: Ref) -> Ref {
        Bdd::and(self, a, b)
    }
    fn or(&mut self, a: Ref, b: Ref) -> Ref {
        Bdd::or(self, a, b)
    }
    fn not(&mut self, a: Ref) -> Ref {
        Bdd::not(self, a)
    }
    fn diff(&mut self, a: Ref, b: Ref) -> Ref {
        Bdd::diff(self, a, b)
    }
    fn intersects(&self, a: Ref, b: Ref) -> bool {
        Bdd::intersects(self, a, b)
    }
    fn pkt_prefix(&mut self, field: Field, value: u32, len: u32) -> Ref {
        Bdd::pkt_prefix(self, field, value, len)
    }
    fn pkt_value(&mut self, field: Field, value: u32) -> Ref {
        Bdd::pkt_value(self, field, value)
    }
    fn pkt_range(&mut self, field: Field, lo: u32, hi: u32) -> Ref {
        Bdd::pkt_range(self, field, lo, hi)
    }
    fn pkt_eval(&self, pred: Ref, pkt: &Packet) -> bool {
        Bdd::pkt_eval(self, pred, pkt)
    }
    fn pkt_witness(&self, pred: Ref) -> Option<Packet> {
        Bdd::pkt_witness(self, pred)
    }
    fn pkt_dst_cover(&self, pred: Ref, cap: usize) -> Cover {
        Bdd::pkt_dst_cover(self, pred, cap)
    }
    fn node_count(&self) -> usize {
        Bdd::node_count(self)
    }
    fn apply_cache_stats(&self) -> (u64, u64) {
        Bdd::apply_cache_stats(self)
    }
}

impl Predicate for Atoms {
    fn and(&mut self, a: Ref, b: Ref) -> Ref {
        Atoms::and(self, a, b)
    }
    fn or(&mut self, a: Ref, b: Ref) -> Ref {
        Atoms::or(self, a, b)
    }
    fn not(&mut self, a: Ref) -> Ref {
        Atoms::not(self, a)
    }
    fn diff(&mut self, a: Ref, b: Ref) -> Ref {
        Atoms::diff(self, a, b)
    }
    fn intersects(&self, a: Ref, b: Ref) -> bool {
        Atoms::intersects(self, a, b)
    }
    fn pkt_prefix(&mut self, field: Field, value: u32, len: u32) -> Ref {
        Atoms::pkt_prefix(self, field, value, len)
    }
    fn pkt_value(&mut self, field: Field, value: u32) -> Ref {
        Atoms::pkt_value(self, field, value)
    }
    fn pkt_range(&mut self, field: Field, lo: u32, hi: u32) -> Ref {
        Atoms::pkt_range(self, field, lo, hi)
    }
    fn pkt_eval(&self, pred: Ref, pkt: &Packet) -> bool {
        Atoms::pkt_eval(self, pred, pkt)
    }
    fn pkt_witness(&self, pred: Ref) -> Option<Packet> {
        Atoms::pkt_witness(self, pred)
    }
    fn pkt_dst_cover(&self, pred: Ref, cap: usize) -> Cover {
        Atoms::pkt_dst_cover(self, pred, cap)
    }
    fn node_count(&self) -> usize {
        Atoms::node_count(self)
    }
    fn apply_cache_stats(&self) -> (u64, u64) {
        Atoms::apply_cache_stats(self)
    }
}

/// A predicate store of either backend, dispatched per call.
///
/// One model owns one `Preds`; as with a single `Bdd`, `Ref`s from
/// different stores must never be mixed.
pub enum Preds {
    Bdd(Bdd),
    Atoms(Atoms),
}

/// Parallel readers (e.g. APKeep's sharded transfer prefilter) share a
/// `&Preds` across pool workers and call the non-interning read methods
/// ([`Predicate::intersects`], [`Predicate::eval`]). Neither store has
/// interior mutability, so both are `Sync` automatically — this pins
/// that property at compile time so a future `Cell`/`RefCell` cache in
/// a store is caught here, not as a heisenbug in the pool.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Preds>();
    assert_send_sync::<Ref>();
};

impl Preds {
    /// Create an empty store of the given kind.
    pub fn new(kind: PredKind) -> Self {
        match kind {
            PredKind::Bdd => Preds::Bdd(Bdd::new()),
            PredKind::Atoms => Preds::Atoms(Atoms::new()),
        }
    }

    /// Which backend this store is.
    pub fn kind(&self) -> PredKind {
        match self {
            Preds::Bdd(_) => PredKind::Bdd,
            Preds::Atoms(_) => PredKind::Atoms,
        }
    }

    /// Serialize the store (backend tag + full arena, indices
    /// preserved) for a durable snapshot.
    pub fn encode_state(&self, w: &mut rc_store::Writer) {
        match self {
            Preds::Bdd(b) => {
                w.u8(0);
                b.encode_state(w);
            }
            Preds::Atoms(a) => {
                w.u8(1);
                a.encode_state(w);
            }
        }
    }

    /// Rebuild a store from [`Preds::encode_state`] bytes; every
    /// previously exported [`Ref`] index is valid against the result.
    pub fn decode_state(r: &mut rc_store::Reader<'_>) -> Result<Preds, rc_store::WireError> {
        match r.u8()? {
            0 => Ok(Preds::Bdd(Bdd::decode_state(r)?)),
            1 => Ok(Preds::Atoms(Atoms::decode_state(r)?)),
            k => Err(rc_store::WireError(format!("unknown predicate backend tag {k}"))),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $store:ident, $e:expr) => {
        match $self {
            Preds::Bdd($store) => $e,
            Preds::Atoms($store) => $e,
        }
    };
}

impl Predicate for Preds {
    fn and(&mut self, a: Ref, b: Ref) -> Ref {
        dispatch!(self, s, s.and(a, b))
    }
    fn or(&mut self, a: Ref, b: Ref) -> Ref {
        dispatch!(self, s, s.or(a, b))
    }
    fn not(&mut self, a: Ref) -> Ref {
        dispatch!(self, s, s.not(a))
    }
    fn diff(&mut self, a: Ref, b: Ref) -> Ref {
        dispatch!(self, s, s.diff(a, b))
    }
    fn intersects(&self, a: Ref, b: Ref) -> bool {
        dispatch!(self, s, s.intersects(a, b))
    }
    fn pkt_prefix(&mut self, field: Field, value: u32, len: u32) -> Ref {
        dispatch!(self, s, s.pkt_prefix(field, value, len))
    }
    fn pkt_value(&mut self, field: Field, value: u32) -> Ref {
        dispatch!(self, s, s.pkt_value(field, value))
    }
    fn pkt_range(&mut self, field: Field, lo: u32, hi: u32) -> Ref {
        dispatch!(self, s, s.pkt_range(field, lo, hi))
    }
    fn pkt_eval(&self, pred: Ref, pkt: &Packet) -> bool {
        dispatch!(self, s, s.pkt_eval(pred, pkt))
    }
    fn pkt_witness(&self, pred: Ref) -> Option<Packet> {
        dispatch!(self, s, s.pkt_witness(pred))
    }
    fn pkt_dst_cover(&self, pred: Ref, cap: usize) -> Cover {
        dispatch!(self, s, s.pkt_dst_cover(pred, cap))
    }
    fn node_count(&self) -> usize {
        dispatch!(self, s, s.node_count())
    }
    fn apply_cache_stats(&self) -> (u64, u64) {
        dispatch!(self, s, s.apply_cache_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_kind_parses_and_displays() {
        assert_eq!("bdd".parse::<PredKind>(), Ok(PredKind::Bdd));
        assert_eq!("atoms".parse::<PredKind>(), Ok(PredKind::Atoms));
        assert!("ddnf".parse::<PredKind>().is_err());
        assert_eq!(PredKind::Atoms.to_string(), "atoms");
        assert_eq!(PredKind::default(), PredKind::Bdd);
    }

    #[test]
    fn override_knob_wins_and_clears() {
        // Note: other tests in this binary must not race on the knob;
        // this is the only test that sets it, and it restores the
        // unset state before finishing.
        set_default_backend(Some(PredKind::Atoms));
        assert_eq!(default_backend(), PredKind::Atoms);
        set_default_backend(Some(PredKind::Bdd));
        assert_eq!(default_backend(), PredKind::Bdd);
        set_default_backend(None);
    }

    #[test]
    fn preds_dispatches_identically_for_dst_prefix_algebra() {
        let check = |mut p: Preds| {
            let a = p.pkt_prefix(Field::DstIp, 0x0A000000, 8);
            let b = p.pkt_prefix(Field::DstIp, 0x0A000000, 9);
            assert!(p.subset(b, a));
            assert!(p.intersects(a, b));
            let d = p.diff(a, b);
            let u = p.or(d, b);
            assert_eq!(u, a);
            let n = p.not(a);
            assert!(!p.intersects(n, a));
            let o = p.or(n, a);
            assert!(o.is_true());
            assert_eq!(
                p.pkt_dst_cover(a, 16),
                Cover::Exact(vec![(0x0A000000, 0x0AFFFFFF)])
            );
            let w = p.pkt_witness(b).expect("satisfiable");
            assert!(p.pkt_eval(b, &w));
            assert!(p.pkt_eval(a, &w));
        };
        check(Preds::new(PredKind::Bdd));
        check(Preds::new(PredKind::Atoms));
        assert_eq!(Preds::new(PredKind::Atoms).kind(), PredKind::Atoms);
    }

    #[test]
    fn state_round_trips_with_identical_refs_for_both_backends() {
        for kind in [PredKind::Bdd, PredKind::Atoms] {
            let mut p = Preds::new(kind);
            let a = p.pkt_prefix(Field::DstIp, 0x0A000000, 8);
            let b = p.pkt_prefix(Field::DstIp, 0x0A400000, 10);
            let d = p.diff(a, b);
            let n = p.not(d);

            let mut w = rc_store::Writer::new();
            p.encode_state(&mut w);
            let bytes = w.finish();
            let mut r = rc_store::Reader::new(&bytes);
            let mut q = Preds::decode_state(&mut r).expect("decodes");
            r.done().expect("fully consumed");

            assert_eq!(q.kind(), kind);
            assert_eq!(q.node_count(), p.node_count(), "{kind}: arena size changed");
            // Handles survive verbatim: re-deriving the same predicates
            // in the decoded store interns nothing new and returns the
            // same Refs, and the algebra still agrees.
            assert_eq!(q.pkt_prefix(Field::DstIp, 0x0A000000, 8), a, "{kind}");
            assert_eq!(q.diff(a, b), d, "{kind}");
            assert_eq!(q.not(d), n, "{kind}");
            assert_eq!(q.node_count(), p.node_count(), "{kind}: decode lost interning");
            assert!(!q.intersects(d, b), "{kind}");

            // Corrupt payloads are rejected, never mis-decoded.
            for cut in [0, bytes.len() / 2, bytes.len().saturating_sub(1)] {
                let mut rr = rc_store::Reader::new(&bytes[..cut]);
                assert!(
                    Preds::decode_state(&mut rr).is_err() || cut == bytes.len(),
                    "{kind}: truncation to {cut} accepted"
                );
            }
        }
    }
}
