//! Delta-net-style interval-atom predicate store.
//!
//! The fat-tree benchmarks that dominate RealConfig's evaluation branch
//! exclusively on the destination IP: every FIB rule is a dst prefix,
//! and every equivalence class is a union of dst-address ranges. For
//! those workloads a BDD is overkill — Delta-net (see PAPERS.md) showed
//! that representing packet space as disjoint `(lo, hi)` address
//! intervals makes EC transfer cost proportional to the intervals
//! touched, with no graph algebra at all.
//!
//! [`Atoms`] is that representation behind the same [`Ref`] handle
//! discipline as the BDD manager: predicates are canonical interval
//! sets (sorted, disjoint, non-adjacent, inclusive) interned in a
//! hash-consing table, so semantic equality is `Ref` equality and
//! `Ref::FALSE`/`Ref::TRUE` keep their fixed slots (the empty set and
//! the full address space). Set algebra is linear merge walks over the
//! interval lists.
//!
//! The store is **dst-only by design**: encoding a constraint on any
//! other header field panics with a pointer at the BDD backend, rather
//! than silently widening the predicate. Workloads with 5-tuple ACLs
//! must select `--backend bdd`.

use std::collections::HashMap;

use crate::node::Ref;
use crate::pkt::{Cover, Field, Packet};

/// A canonical interval set: sorted ascending, pairwise disjoint and
/// non-adjacent, every `lo <= hi`, bounds inclusive.
type IntervalSet = Vec<(u32, u32)>;

fn is_canonical(set: &[(u32, u32)]) -> bool {
    set.iter().all(|&(lo, hi)| lo <= hi)
        && set.windows(2).all(|w| (w[0].1 as u64) + 1 < w[1].0 as u64)
}

/// Union of two canonical sets, coalescing overlapping and adjacent
/// intervals.
fn union(a: &[(u32, u32)], b: &[(u32, u32)]) -> IntervalSet {
    let mut out: IntervalSet = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i].0 <= b[j].0) {
            let x = a[i];
            i += 1;
            x
        } else {
            let x = b[j];
            j += 1;
            x
        };
        match out.last_mut() {
            // `saturating_add` keeps an interval ending at u32::MAX
            // absorbing everything after it.
            Some(last) if next.0 <= last.1.saturating_add(1) => last.1 = last.1.max(next.1),
            _ => out.push(next),
        }
    }
    out
}

/// Intersection of two canonical sets. Canonical inputs yield a
/// canonical output (sub-intervals of non-adjacent intervals cannot
/// become adjacent without an input boundary being adjacent).
fn intersect(a: &[(u32, u32)], b: &[(u32, u32)]) -> IntervalSet {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo <= hi {
            out.push((lo, hi));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Complement of a canonical set over the full address space.
fn complement(a: &[(u32, u32)]) -> IntervalSet {
    let mut out = Vec::new();
    let mut next = 0u32;
    for &(lo, hi) in a {
        if lo > next {
            out.push((next, lo - 1));
        }
        if hi == u32::MAX {
            return out;
        }
        next = hi + 1;
    }
    out.push((next, u32::MAX));
    out
}

/// Whether two canonical sets share any address.
fn overlaps(a: &[(u32, u32)], b: &[(u32, u32)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0.max(b[j].0) <= a[i].1.min(b[j].1) {
            return true;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

#[cold]
fn unsupported(field: Field) -> ! {
    panic!(
        "atoms backend supports destination-IP matches only; cannot encode a {field:?} \
         constraint — select the BDD backend (--backend bdd / RC_BACKEND=bdd) for \
         5-tuple ACL semantics"
    )
}

/// A hash-consed store of dst-IP interval-set predicates.
///
/// Handles are [`Ref`]s with the same terminal convention as the BDD
/// manager — slot 0 is the empty set, slot 1 the full address space —
/// so `Ref::is_false`/`is_true` and `Ref`-keyed maps work unchanged.
/// Like BDD `Ref`s, handles from different stores must not be mixed.
pub struct Atoms {
    /// Interval set of each interned predicate, indexed by `Ref`.
    sets: Vec<IntervalSet>,
    /// Hash-consing table: canonical set -> existing handle.
    unique: HashMap<IntervalSet, Ref>,
}

impl Default for Atoms {
    fn default() -> Self {
        Self::new()
    }
}

impl Atoms {
    /// Create a store containing only the two terminals.
    pub fn new() -> Self {
        Atoms { sets: vec![Vec::new(), vec![(0, u32::MAX)]], unique: HashMap::new() }
    }

    /// The canonical interval set denoted by `r`.
    pub fn set(&self, r: Ref) -> &[(u32, u32)] {
        &self.sets[r.index() as usize]
    }

    /// Number of interned predicates (including the two terminals) —
    /// the store-size analogue of the BDD node count.
    pub fn node_count(&self) -> usize {
        self.sets.len()
    }

    /// Atoms has no op cache: algebra is a single merge walk, so there
    /// is nothing to hit or miss. Always `(0, 0)`.
    pub fn apply_cache_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Serialize the interned interval sets for a durable snapshot.
    /// Slot order (and therefore every [`Ref`]) is preserved exactly.
    pub fn encode_state(&self, w: &mut rc_store::Writer) {
        w.len_prefix(self.sets.len() - 2);
        for set in &self.sets[2..] {
            w.len_prefix(set.len());
            for &(lo, hi) in set {
                w.u32(lo);
                w.u32(hi);
            }
        }
    }

    /// Rebuild a store from [`Atoms::encode_state`] bytes, re-deriving
    /// the hash-consing table and validating canonical form (sorted,
    /// disjoint, non-adjacent, neither terminal's set) so corrupt
    /// input is an error, never a store that miscomputes.
    pub fn decode_state(r: &mut rc_store::Reader<'_>) -> Result<Atoms, rc_store::WireError> {
        let count = r.len_prefix()?;
        let mut atoms = Atoms::new();
        atoms.sets.reserve(count);
        atoms.unique.reserve(count);
        for i in 0..count {
            let n = r.len_prefix()?;
            let mut set: IntervalSet = Vec::with_capacity(n);
            for _ in 0..n {
                let (lo, hi) = (r.u32()?, r.u32()?);
                set.push((lo, hi));
            }
            let slot = (i + 2) as u32;
            if set.is_empty() || set == [(0, u32::MAX)] || !is_canonical(&set) {
                return Err(rc_store::WireError(format!(
                    "non-canonical interval set at slot {slot}"
                )));
            }
            if atoms.unique.insert(set.clone(), Ref::from_index(slot)).is_some() {
                return Err(rc_store::WireError(format!("duplicate interval set at slot {slot}")));
            }
            atoms.sets.push(set);
        }
        Ok(atoms)
    }

    fn intern(&mut self, set: IntervalSet) -> Ref {
        debug_assert!(is_canonical(&set), "non-canonical interval set {set:?}");
        if set.is_empty() {
            return Ref::FALSE;
        }
        if set.len() == 1 && set[0] == (0, u32::MAX) {
            return Ref::TRUE;
        }
        if let Some(&r) = self.unique.get(&set) {
            return r;
        }
        let r = Ref(self.sets.len() as u32);
        self.unique.insert(set.clone(), r);
        self.sets.push(set);
        r
    }

    /// Conjunction (address-set intersection).
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        if a.is_false() || b.is_false() {
            return Ref::FALSE;
        }
        if a.is_true() {
            return b;
        }
        if b.is_true() || a == b {
            return a;
        }
        let s = intersect(self.set(a), self.set(b));
        self.intern(s)
    }

    /// Disjunction (address-set union).
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        if a.is_true() || b.is_true() {
            return Ref::TRUE;
        }
        if a.is_false() || a == b {
            return b;
        }
        if b.is_false() {
            return a;
        }
        let s = union(self.set(a), self.set(b));
        self.intern(s)
    }

    /// Negation (address-space complement).
    pub fn not(&mut self, a: Ref) -> Ref {
        if a.is_false() {
            return Ref::TRUE;
        }
        if a.is_true() {
            return Ref::FALSE;
        }
        let s = complement(self.set(a));
        self.intern(s)
    }

    /// Set difference `a ∧ ¬b`.
    pub fn diff(&mut self, a: Ref, b: Ref) -> Ref {
        if a.is_false() || b.is_true() || a == b {
            return Ref::FALSE;
        }
        if b.is_false() {
            return a;
        }
        let s = intersect(self.set(a), &complement(self.set(b)));
        self.intern(s)
    }

    /// Whether `a ∧ b` is satisfiable, without interning anything.
    pub fn intersects(&self, a: Ref, b: Ref) -> bool {
        if a.is_false() || b.is_false() {
            return false;
        }
        if a.is_true() || b.is_true() || a == b {
            return true;
        }
        overlaps(self.set(a), self.set(b))
    }

    /// Prefix match on `field`. `len == 0` matches all (any field);
    /// otherwise only [`Field::DstIp`] is encodable.
    pub fn pkt_prefix(&mut self, field: Field, value: u32, len: u32) -> Ref {
        assert!(len <= field.width(), "prefix length {len} exceeds field width");
        if len == 0 {
            return Ref::TRUE;
        }
        if field != Field::DstIp {
            unsupported(field);
        }
        let lo = value & (u32::MAX << (32 - len));
        let hi = if len == 32 { lo } else { lo | (u32::MAX >> len) };
        self.intern(vec![(lo, hi)])
    }

    /// Exact-value match on `field` (dst-only).
    pub fn pkt_value(&mut self, field: Field, value: u32) -> Ref {
        if field != Field::DstIp {
            unsupported(field);
        }
        self.intern(vec![(value, value)])
    }

    /// Inclusive range match on `field`. A full-width range is `TRUE`
    /// for any field; a proper range is dst-only.
    pub fn pkt_range(&mut self, field: Field, lo: u32, hi: u32) -> Ref {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let width = field.width();
        let field_max = if width == 32 { u32::MAX } else { (1 << width) - 1 };
        assert!(hi <= field_max, "range bound exceeds field width");
        if lo == 0 && hi == field_max {
            return Ref::TRUE;
        }
        if field != Field::DstIp {
            unsupported(field);
        }
        self.intern(vec![(lo, hi)])
    }

    /// Evaluate a predicate on a concrete packet. Atoms predicates only
    /// constrain the destination IP, so only `pkt.dst_ip` is read.
    pub fn pkt_eval(&self, pred: Ref, pkt: &Packet) -> bool {
        let set = self.set(pred);
        let idx = set.partition_point(|&(lo, _)| lo <= pkt.dst_ip);
        idx > 0 && pkt.dst_ip <= set[idx - 1].1
    }

    /// One packet satisfying `pred`, if any: the lowest covered dst
    /// address, all other fields zero.
    pub fn pkt_witness(&self, pred: Ref) -> Option<Packet> {
        let &(lo, _) = self.set(pred).first()?;
        Some(Packet { dst_ip: lo, ..Packet::default() })
    }

    /// Bounds `(min, max)` of the dst projection; `None` iff empty.
    pub fn pkt_dst_bounds(&self, pred: Ref) -> Option<(u32, u32)> {
        let set = self.set(pred);
        Some((set.first()?.0, set.last()?.1))
    }

    /// The dst projection of `pred`. Atoms *is* the interval
    /// representation, so the cover is always exact regardless of `cap`
    /// — there is no materialisation cost to bound.
    pub fn pkt_dst_cover(&self, pred: Ref, _cap: usize) -> Cover {
        Cover::Exact(self.set(pred).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Membership oracle: is `addr` covered by `r`?
    fn covers(a: &Atoms, r: Ref, addr: u32) -> bool {
        a.pkt_eval(r, &Packet { dst_ip: addr, ..Packet::default() })
    }

    #[test]
    fn terminals_keep_their_slots() {
        let a = Atoms::new();
        assert_eq!(a.set(Ref::FALSE), &[] as &[(u32, u32)]);
        assert_eq!(a.set(Ref::TRUE), &[(0, u32::MAX)]);
        assert_eq!(a.node_count(), 2);
    }

    #[test]
    fn hash_consing_gives_semantic_equality() {
        let mut a = Atoms::new();
        // Two adjacent /9s reassemble into exactly the /8.
        let lo = a.pkt_prefix(Field::DstIp, 0x0A000000, 9);
        let hi = a.pkt_prefix(Field::DstIp, 0x0A800000, 9);
        let u = a.or(lo, hi);
        let p8 = a.pkt_prefix(Field::DstIp, 0x0A000000, 8);
        assert_eq!(u, p8);
        assert_eq!(a.set(u), &[(0x0A000000, 0x0AFFFFFF)]);
    }

    #[test]
    fn boolean_laws_hold() {
        let mut a = Atoms::new();
        let x = a.pkt_prefix(Field::DstIp, 0x0A000000, 8);
        let y = a.pkt_prefix(Field::DstIp, 0x0A400000, 10);
        let nx = a.not(x);
        assert_eq!(a.and(x, nx), Ref::FALSE);
        assert_eq!(a.or(x, nx), Ref::TRUE);
        assert_eq!(a.not(nx), x);
        // y ⊂ x: absorption and difference.
        assert_eq!(a.or(x, y), x);
        assert_eq!(a.and(x, y), y);
        let d = a.diff(x, y);
        let re = a.or(d, y);
        assert_eq!(re, x);
        assert_eq!(a.diff(y, x), Ref::FALSE);
    }

    #[test]
    fn ops_match_membership_oracle() {
        let mut a = Atoms::new();
        let p = a.pkt_prefix(Field::DstIp, 0x0A000000, 8);
        let q = a.pkt_range(Field::DstIp, 0x09FFFFF0, 0x0A00000F);
        let and = a.and(p, q);
        let or = a.or(p, q);
        let diff = a.diff(p, q);
        let not_p = a.not(p);
        let probes = [
            0u32,
            0x09FFFFEF,
            0x09FFFFF0,
            0x09FFFFFF,
            0x0A000000,
            0x0A00000F,
            0x0A000010,
            0x0AFFFFFF,
            0x0B000000,
            u32::MAX,
        ];
        for addr in probes {
            let (inp, inq) = (covers(&a, p, addr), covers(&a, q, addr));
            assert_eq!(covers(&a, and, addr), inp && inq, "and at {addr:#x}");
            assert_eq!(covers(&a, or, addr), inp || inq, "or at {addr:#x}");
            assert_eq!(covers(&a, diff, addr), inp && !inq, "diff at {addr:#x}");
            assert_eq!(covers(&a, not_p, addr), !inp, "not at {addr:#x}");
        }
        assert!(a.intersects(p, q));
    }

    #[test]
    fn complement_handles_space_edges() {
        let mut a = Atoms::new();
        let low = a.pkt_range(Field::DstIp, 0, 9);
        let high = a.pkt_range(Field::DstIp, u32::MAX - 9, u32::MAX);
        let nl = a.not(low);
        let nh = a.not(high);
        assert_eq!(a.set(nl), &[(10, u32::MAX)]);
        assert_eq!(a.set(nh), &[(0, u32::MAX - 10)]);
        let both = a.or(low, high);
        let middle = a.not(both);
        assert_eq!(a.set(middle), &[(10, u32::MAX - 10)]);
        assert_eq!(a.not(middle), both);
    }

    #[test]
    fn intersects_matches_and_and_interns_nothing() {
        let mut a = Atoms::new();
        let p = a.pkt_prefix(Field::DstIp, 0x0A000000, 8);
        let q = a.pkt_prefix(Field::DstIp, 0x0B000000, 8);
        let r = a.pkt_range(Field::DstIp, 0x0AFFFFFF, 0x0B000000);
        let before = a.node_count();
        assert!(!a.intersects(p, q));
        assert!(a.intersects(p, r));
        assert!(a.intersects(q, r));
        assert!(a.intersects(p, Ref::TRUE));
        assert!(!a.intersects(p, Ref::FALSE));
        assert_eq!(a.node_count(), before);
    }

    #[test]
    fn witness_and_bounds_and_cover() {
        let mut a = Atoms::new();
        let p1 = a.pkt_prefix(Field::DstIp, 0x0A000000, 8);
        let p2 = a.pkt_prefix(Field::DstIp, 0xC0A80000, 16);
        let u = a.or(p1, p2);
        let w = a.pkt_witness(u).expect("satisfiable");
        assert!(a.pkt_eval(u, &w));
        assert_eq!(w.dst_ip, 0x0A000000);
        assert!(a.pkt_witness(Ref::FALSE).is_none());
        assert_eq!(a.pkt_dst_bounds(u), Some((0x0A000000, 0xC0A8FFFF)));
        assert_eq!(
            a.pkt_dst_cover(u, 1),
            Cover::Exact(vec![(0x0A000000, 0x0AFFFFFF), (0xC0A80000, 0xC0A8FFFF)])
        );
    }

    #[test]
    fn full_width_ranges_and_zero_prefixes_are_true_for_any_field() {
        let mut a = Atoms::new();
        assert_eq!(a.pkt_prefix(Field::SrcIp, 0x0A000000, 0), Ref::TRUE);
        assert_eq!(a.pkt_range(Field::SrcPort, 0, 65535), Ref::TRUE);
        assert_eq!(a.pkt_range(Field::Proto, 0, 255), Ref::TRUE);
        assert_eq!(a.pkt_prefix(Field::DstIp, 0xFFFFFFFF, 32), a.pkt_value(Field::DstIp, u32::MAX));
    }

    #[test]
    #[should_panic(expected = "atoms backend supports destination-IP matches only")]
    fn src_prefix_panics() {
        let mut a = Atoms::new();
        let _ = a.pkt_prefix(Field::SrcIp, 0x0A000000, 8);
    }

    #[test]
    #[should_panic(expected = "atoms backend supports destination-IP matches only")]
    fn proto_value_panics() {
        let mut a = Atoms::new();
        let _ = a.pkt_value(Field::Proto, 6);
    }

    #[test]
    #[should_panic(expected = "atoms backend supports destination-IP matches only")]
    fn dst_port_range_panics() {
        let mut a = Atoms::new();
        let _ = a.pkt_range(Field::DstPort, 1000, 1099);
    }
}
