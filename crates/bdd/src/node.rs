//! BDD node representation.

/// A BDD variable index. Smaller indices are tested closer to the root.
pub type Var = u32;

/// A reference to a BDD node.
///
/// `Ref` is a plain index into the manager's arena; the two terminal
/// nodes occupy fixed slots so that `Ref::FALSE` and `Ref::TRUE` are
/// constants. Because the manager hash-conses nodes, two predicates are
/// semantically equal iff their `Ref`s are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The constant-false predicate (empty packet set).
    pub const FALSE: Ref = Ref(0);
    /// The constant-true predicate (full header space).
    pub const TRUE: Ref = Ref(1);

    /// Whether this reference is one of the two terminals.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// Whether this is the constant-false terminal.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Ref::FALSE
    }

    /// Whether this is the constant-true terminal.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Ref::TRUE
    }

    /// The raw arena index, exposed for use as a map key by callers that
    /// want dense indexing.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuild a handle from an index previously exported with
    /// [`Ref::index`]. Only meaningful against the same store the index
    /// came from (or a faithfully restored copy of it — the durable
    /// snapshot path preserves arena indices exactly); state decoders
    /// must bounds-check the index against the restored store.
    #[inline]
    pub fn from_index(i: u32) -> Ref {
        Ref(i)
    }
}

impl std::fmt::Debug for Ref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Ref::FALSE => write!(f, "⊥"),
            Ref::TRUE => write!(f, "⊤"),
            Ref(i) => write!(f, "n{i}"),
        }
    }
}

/// An internal decision node: tests `var`, continuing to `lo` when the
/// variable is 0 and `hi` when it is 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Node {
    pub var: Var,
    pub lo: Ref,
    pub hi: Ref,
}

/// Sentinel variable index used for terminal slots; orders after every
/// real variable so `min` on variables does the right thing.
pub(crate) const TERMINAL_VAR: Var = Var::MAX;
