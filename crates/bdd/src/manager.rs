//! The hash-consing BDD manager and its core operations.

use std::collections::HashMap;

use crate::node::{Node, Ref, Var, TERMINAL_VAR};

/// Binary boolean operations routed through the memoized `apply`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
    Xor,
    /// Set difference, `a ∧ ¬b`.
    Diff,
}

impl Op {
    /// Evaluate the operation on terminals, or short-circuit when one
    /// operand alone determines the result. Returns `None` when
    /// recursion is required.
    #[inline]
    fn shortcut(self, a: Ref, b: Ref) -> Option<Ref> {
        match self {
            Op::And => {
                if a.is_false() || b.is_false() {
                    Some(Ref::FALSE)
                } else if a.is_true() {
                    Some(b)
                } else if b.is_true() || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Or => {
                if a.is_true() || b.is_true() {
                    Some(Ref::TRUE)
                } else if a.is_false() {
                    Some(b)
                } else if b.is_false() || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Xor => {
                if a == b {
                    Some(Ref::FALSE)
                } else if a.is_false() {
                    Some(b)
                } else if b.is_false() {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Diff => {
                if a.is_false() || b.is_true() || a == b {
                    Some(Ref::FALSE)
                } else if b.is_false() {
                    Some(a)
                } else {
                    None
                }
            }
        }
    }

    /// Whether the operation is commutative, letting the cache normalize
    /// operand order.
    #[inline]
    fn commutative(self) -> bool {
        !matches!(self, Op::Diff)
    }
}

/// A hash-consed ROBDD manager.
///
/// All predicates created by one manager share its arena; `Ref`s from
/// different managers must never be mixed (this is not statically
/// checked — the manager is always owned by a single model).
pub struct Bdd {
    nodes: Vec<Node>,
    /// Hash-consing table: (var, lo, hi) -> existing node.
    unique: HashMap<Node, Ref>,
    apply_cache: HashMap<(Op, Ref, Ref), Ref>,
    not_cache: HashMap<Ref, Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    /// Op-cache lookups that found a memoized result.
    apply_hits: u64,
    /// Op-cache lookups that missed and recursed (terminal shortcuts
    /// are counted in neither bucket — they never consult the cache).
    apply_misses: u64,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    /// Create an empty manager containing only the two terminals.
    pub fn new() -> Self {
        let terminal = |v| Node { var: TERMINAL_VAR, lo: Ref(v), hi: Ref(v) };
        Bdd {
            nodes: vec![terminal(0), terminal(1)],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            ite_cache: HashMap::new(),
            apply_hits: 0,
            apply_misses: 0,
        }
    }

    /// Cumulative `(hits, misses)` of the binary-op memo cache — the
    /// baseline signal for BDD performance work. A hit returns without
    /// touching nodes; a miss pays the Shannon-expansion recursion.
    pub fn apply_cache_stats(&self) -> (u64, u64) {
        (self.apply_hits, self.apply_misses)
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub(crate) fn node(&self, r: Ref) -> Node {
        self.nodes[r.0 as usize]
    }

    /// Variable tested at the root of `r`, `TERMINAL_VAR` for terminals.
    #[inline]
    pub(crate) fn var_of(&self, r: Ref) -> Var {
        self.nodes[r.0 as usize].var
    }

    /// Make (or find) the node `(var, lo, hi)`, applying the reduction
    /// rule `lo == hi ⇒ lo`.
    fn mk(&mut self, var: Var, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.var_of(lo) && var < self.var_of(hi), "variable order violated");
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// The predicate "variable `v` is 1".
    pub fn var(&mut self, v: Var) -> Ref {
        self.mk(v, Ref::FALSE, Ref::TRUE)
    }

    /// The predicate "variable `v` is 0".
    pub fn nvar(&mut self, v: Var) -> Ref {
        self.mk(v, Ref::TRUE, Ref::FALSE)
    }

    /// Constant predicate for a boolean.
    pub fn constant(&mut self, b: bool) -> Ref {
        if b {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    fn apply(&mut self, op: Op, a: Ref, b: Ref) -> Ref {
        if let Some(r) = op.shortcut(a, b) {
            return r;
        }
        let key = if op.commutative() && b < a { (op, b, a) } else { (op, a, b) };
        if let Some(&r) = self.apply_cache.get(&key) {
            self.apply_hits += 1;
            return r;
        }
        self.apply_misses += 1;
        let (va, vb) = (self.var_of(a), self.var_of(b));
        let v = va.min(vb);
        let (a_lo, a_hi) = if va == v {
            let n = self.node(a);
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (b_lo, b_hi) = if vb == v {
            let n = self.node(b);
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a_lo, b_lo);
        let hi = self.apply(op, a_hi, b_hi);
        let r = self.mk(v, lo, hi);
        self.apply_cache.insert(key, r);
        r
    }

    /// Conjunction (packet-set intersection).
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        self.apply(Op::And, a, b)
    }

    /// Whether `a ∧ b` is satisfiable — i.e. the packet sets overlap.
    ///
    /// Unlike `and(a, b).is_false()`, this never allocates nodes or
    /// touches the op caches, so it works from `&self` and is usable in
    /// shared read paths. It short-circuits on the first satisfying
    /// branch and memoizes only *disjoint* pairs (a satisfying branch
    /// ends the walk, so positive results never need the memo).
    pub fn intersects(&self, a: Ref, b: Ref) -> bool {
        let mut disjoint = std::collections::HashSet::new();
        self.intersects_rec(a, b, &mut disjoint)
    }

    fn intersects_rec(
        &self,
        a: Ref,
        b: Ref,
        disjoint: &mut std::collections::HashSet<(Ref, Ref)>,
    ) -> bool {
        if a.is_false() || b.is_false() {
            return false;
        }
        if a.is_true() || b.is_true() || a == b {
            return true;
        }
        // Conjunction is commutative: normalize the memo key.
        let key = if b < a { (b, a) } else { (a, b) };
        if disjoint.contains(&key) {
            return false;
        }
        let (va, vb) = (self.var_of(a), self.var_of(b));
        let v = va.min(vb);
        let (a_lo, a_hi) = if va == v {
            let n = self.node(a);
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (b_lo, b_hi) = if vb == v {
            let n = self.node(b);
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        if self.intersects_rec(a_lo, b_lo, disjoint) || self.intersects_rec(a_hi, b_hi, disjoint) {
            return true;
        }
        disjoint.insert(key);
        false
    }

    /// Disjunction (packet-set union).
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or (symmetric difference).
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        self.apply(Op::Xor, a, b)
    }

    /// Set difference `a ∧ ¬b`.
    pub fn diff(&mut self, a: Ref, b: Ref) -> Ref {
        self.apply(Op::Diff, a, b)
    }

    /// Implication `¬a ∨ b`.
    pub fn implies(&mut self, a: Ref, b: Ref) -> Ref {
        let d = self.diff(a, b);
        self.not(d)
    }

    /// Negation (header-space complement).
    pub fn not(&mut self, a: Ref) -> Ref {
        if a.is_false() {
            return Ref::TRUE;
        }
        if a.is_true() {
            return Ref::FALSE;
        }
        if let Some(&r) = self.not_cache.get(&a) {
            return r;
        }
        let n = self.node(a);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(a, r);
        self.not_cache.insert(r, a);
        r
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let split = |bdd: &Bdd, x: Ref| -> (Ref, Ref) {
            if bdd.var_of(x) == v {
                let n = bdd.node(x);
                (n.lo, n.hi)
            } else {
                (x, x)
            }
        };
        let (f_lo, f_hi) = split(self, f);
        let (g_lo, g_hi) = split(self, g);
        let (h_lo, h_hi) = split(self, h);
        let lo = self.ite(f_lo, g_lo, h_lo);
        let hi = self.ite(f_hi, g_hi, h_hi);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Existential quantification over the (sorted or unsorted) set of
    /// variables `vars`.
    pub fn exists(&mut self, a: Ref, vars: &[Var]) -> Ref {
        if vars.is_empty() || a.is_terminal() {
            return a;
        }
        let mut memo = HashMap::new();
        self.exists_rec(a, vars, &mut memo)
    }

    fn exists_rec(&mut self, a: Ref, vars: &[Var], memo: &mut HashMap<Ref, Ref>) -> Ref {
        if a.is_terminal() {
            return a;
        }
        if let Some(&r) = memo.get(&a) {
            return r;
        }
        let n = self.node(a);
        let lo = self.exists_rec(n.lo, vars, memo);
        let hi = self.exists_rec(n.hi, vars, memo);
        let r = if vars.contains(&n.var) { self.or(lo, hi) } else { self.mk(n.var, lo, hi) };
        memo.insert(a, r);
        r
    }

    /// Universal quantification over `vars`.
    pub fn forall(&mut self, a: Ref, vars: &[Var]) -> Ref {
        let na = self.not(a);
        let e = self.exists(na, vars);
        self.not(e)
    }

    /// Restrict: substitute constant `value` for variable `v`.
    pub fn restrict(&mut self, a: Ref, v: Var, value: bool) -> Ref {
        let mut memo = HashMap::new();
        self.restrict_rec(a, v, value, &mut memo)
    }

    fn restrict_rec(&mut self, a: Ref, v: Var, value: bool, memo: &mut HashMap<Ref, Ref>) -> Ref {
        if a.is_terminal() || self.var_of(a) > v {
            return a;
        }
        if let Some(&r) = memo.get(&a) {
            return r;
        }
        let n = self.node(a);
        let r = if n.var == v {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict_rec(n.lo, v, value, memo);
            let hi = self.restrict_rec(n.hi, v, value, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(a, r);
        r
    }

    /// Conjunction of a sequence of predicates (true for the empty
    /// sequence).
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        items.into_iter().fold(Ref::TRUE, |acc, x| self.and(acc, x))
    }

    /// Disjunction of a sequence of predicates (false for the empty
    /// sequence).
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        items.into_iter().fold(Ref::FALSE, |acc, x| self.or(acc, x))
    }

    /// Serialize the node arena for a durable snapshot. Arena indices
    /// are preserved exactly, so [`Ref`]s held by other serialized
    /// state (EC predicates, rule predicates, policy predicates)
    /// remain valid against the decoded manager. Op caches and their
    /// hit counters are transient and not serialized.
    pub fn encode_state(&self, w: &mut rc_store::Writer) {
        w.len_prefix(self.nodes.len() - 2);
        for n in &self.nodes[2..] {
            w.u32(n.var);
            w.u32(n.lo.index());
            w.u32(n.hi.index());
        }
    }

    /// Rebuild a manager from [`Bdd::encode_state`] bytes, re-deriving
    /// the hash-consing table and validating every structural
    /// invariant (children precede parents, reduction `lo != hi`,
    /// variable order strictly increasing toward the terminals, no
    /// duplicate nodes) so corrupt input is an error, never a manager
    /// that miscomputes.
    pub fn decode_state(r: &mut rc_store::Reader<'_>) -> Result<Bdd, rc_store::WireError> {
        let count = r.len_prefix()?;
        let mut bdd = Bdd::new();
        bdd.nodes.reserve(count);
        bdd.unique.reserve(count);
        for i in 0..count {
            let var = r.u32()?;
            let (lo, hi) = (r.u32()?, r.u32()?);
            let idx = (i + 2) as u32;
            let ordered = |child: u32| var < bdd.nodes[child as usize].var;
            if var == TERMINAL_VAR || lo >= idx || hi >= idx || lo == hi {
                return Err(rc_store::WireError(format!("invalid BDD node at slot {idx}")));
            }
            if !ordered(lo) || !ordered(hi) {
                return Err(rc_store::WireError(format!(
                    "variable order violated at BDD slot {idx}"
                )));
            }
            let node = Node { var, lo: Ref::from_index(lo), hi: Ref::from_index(hi) };
            if bdd.unique.insert(node, Ref::from_index(idx)).is_some() {
                return Err(rc_store::WireError(format!("duplicate BDD node at slot {idx}")));
            }
            bdd.nodes.push(node);
        }
        Ok(bdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let mut b = Bdd::new();
        assert!(Ref::TRUE.is_true());
        assert!(Ref::FALSE.is_false());
        assert_eq!(b.constant(true), Ref::TRUE);
        assert_eq!(b.constant(false), Ref::FALSE);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut b = Bdd::new();
        let x = b.var(3);
        let y = b.var(3);
        assert_eq!(x, y);
        assert_eq!(b.node_count(), 3);
    }

    #[test]
    fn basic_laws() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let nx = b.not(x);
        assert_eq!(b.and(x, nx), Ref::FALSE);
        assert_eq!(b.or(x, nx), Ref::TRUE);
        assert_eq!(b.not(nx), x);
        let xy = b.and(x, y);
        let yx = b.and(y, x);
        assert_eq!(xy, yx);
        // Absorption.
        let o = b.or(x, xy);
        assert_eq!(o, x);
    }

    #[test]
    fn xor_and_diff() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let lhs = b.xor(x, y);
        let d1 = b.diff(x, y);
        let d2 = b.diff(y, x);
        let rhs = b.or(d1, d2);
        assert_eq!(lhs, rhs);
        assert_eq!(b.xor(x, x), Ref::FALSE);
        assert_eq!(b.diff(x, Ref::FALSE), x);
    }

    #[test]
    fn ite_matches_expansion() {
        let mut b = Bdd::new();
        let f = b.var(0);
        let g = b.var(1);
        let h = b.var(2);
        let ite = b.ite(f, g, h);
        let fg = b.and(f, g);
        let nf = b.not(f);
        let nfh = b.and(nf, h);
        let expect = b.or(fg, nfh);
        assert_eq!(ite, expect);
    }

    #[test]
    fn quantification() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let xy = b.and(x, y);
        // ∃x. x∧y == y
        assert_eq!(b.exists(xy, &[0]), y);
        // ∀x. x∧y == false
        assert_eq!(b.forall(xy, &[0]), Ref::FALSE);
        let xoy = b.or(x, y);
        // ∀x. x∨y == y
        assert_eq!(b.forall(xoy, &[0]), y);
    }

    #[test]
    fn restrict_substitutes() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let xy = b.and(x, y);
        assert_eq!(b.restrict(xy, 0, true), y);
        assert_eq!(b.restrict(xy, 0, false), Ref::FALSE);
        assert_eq!(b.restrict(xy, 5, true), xy);
    }

    #[test]
    fn variable_order_is_respected() {
        let mut b = Bdd::new();
        // Build with vars out of creation order; root must be var 1.
        let hi = b.var(7);
        let lo = b.var(1);
        let f = b.or(lo, hi);
        assert_eq!(b.var_of(f), 1);
    }

    #[test]
    fn intersects_agrees_with_and_without_mutating() {
        let mut b = Bdd::new();
        let mut preds = vec![Ref::FALSE, Ref::TRUE];
        for v in 0..6 {
            let x = b.var(v);
            let nx = b.not(x);
            preds.push(x);
            preds.push(nx);
        }
        for i in 0..4 {
            let x = b.var(i);
            let y = b.var(i + 2);
            let a = b.and(x, y);
            let o = b.or(x, y);
            let d = b.diff(x, y);
            preds.extend([a, o, d]);
        }
        let nodes_before = b.node_count();
        let stats_before = b.apply_cache_stats();
        let mut expected = Vec::new();
        for &p in &preds {
            for &q in &preds {
                expected.push(b.intersects(p, q));
            }
        }
        // Read-only: no nodes allocated, no cache traffic.
        assert_eq!(b.node_count(), nodes_before);
        assert_eq!(b.apply_cache_stats(), stats_before);
        // Agrees with the mutating conjunction test on every pair.
        let n = preds.len();
        for i in 0..n {
            for j in 0..n {
                let (p, q) = (preds[i], preds[j]);
                assert_eq!(expected[i * n + j], !b.and(p, q).is_false(), "pair {p:?} ∧ {q:?}");
            }
        }
    }

    #[test]
    fn apply_cache_stats_count_hits_and_misses() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        assert_eq!(b.apply_cache_stats(), (0, 0), "fresh manager");
        // Terminal shortcuts never consult the cache.
        let _ = b.and(x, Ref::TRUE);
        assert_eq!(b.apply_cache_stats(), (0, 0));
        // First non-trivial op: misses only.
        let _ = b.and(x, y);
        let (h1, m1) = b.apply_cache_stats();
        assert_eq!(h1, 0);
        assert!(m1 > 0);
        // Same op again: one top-level hit, no new misses.
        let _ = b.and(x, y);
        assert_eq!(b.apply_cache_stats(), (1, m1));
        // Commutative normalization: the swapped operands hit too.
        let _ = b.and(y, x);
        assert_eq!(b.apply_cache_stats(), (2, m1));
    }
}
