//! Packet-header variable layout and encoders.
//!
//! RealConfig reasons about packets with five header fields. Each field
//! occupies a contiguous block of BDD variables, most significant bit
//! first. The destination IP gets the lowest variable indices because
//! forwarding state (FIBs) branches almost exclusively on it — keeping it
//! near the root keeps FIB predicates small.

use crate::manager::Bdd;
use crate::node::{Ref, Var};

/// A packet header field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Field {
    DstIp,
    SrcIp,
    Proto,
    SrcPort,
    DstPort,
}

impl Field {
    /// Width of the field in bits.
    pub fn width(self) -> u32 {
        match self {
            Field::DstIp | Field::SrcIp => 32,
            Field::Proto => 8,
            Field::SrcPort | Field::DstPort => 16,
        }
    }

    /// First BDD variable of the field's block.
    pub fn offset(self) -> Var {
        match self {
            Field::DstIp => 0,
            Field::SrcIp => 32,
            Field::Proto => 64,
            Field::SrcPort => 72,
            Field::DstPort => 88,
        }
    }
}

/// Total number of BDD variables in the packet header space.
pub const TOTAL_VARS: u32 = 104;

/// The destination-IP projection of a predicate.
///
/// An address is *covered* when some satisfying packet carries it. The
/// two variants make the exact/approximate distinction explicit at the
/// type level: an [`Exact`](Cover::Exact) cover may be used both to find
/// candidates and to prune, while a [`Hull`](Cover::Hull) is an
/// over-approximation and is sound **only** for candidate generation —
/// an address inside the hull may still be uncovered, so a hull must
/// never be used to rule anything out.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cover {
    /// The exact projection: sorted, disjoint, non-adjacent inclusive
    /// intervals. Empty iff the predicate is unsatisfiable.
    Exact(Vec<(u32, u32)>),
    /// The `[min, max]` hull of the projection, emitted when the exact
    /// cover would exceed the caller's interval cap.
    Hull(u32, u32),
}

impl Cover {
    /// Whether this cover is exact (usable for pruning).
    pub fn is_exact(&self) -> bool {
        matches!(self, Cover::Exact(_))
    }

    /// The cover as an interval list. For a hull this is the single
    /// `[min, max]` interval — an over-approximation of the projection.
    pub fn into_intervals(self) -> Vec<(u32, u32)> {
        match self {
            Cover::Exact(iv) => iv,
            Cover::Hull(lo, hi) => vec![(lo, hi)],
        }
    }
}

/// A concrete packet, used to evaluate predicates and produce witnesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Packet {
    pub dst_ip: u32,
    pub src_ip: u32,
    pub proto: u8,
    pub src_port: u16,
    pub dst_port: u16,
}

impl Packet {
    /// Value of BDD variable `v` for this packet.
    pub fn bit(&self, v: Var) -> bool {
        let field_bit = |value: u64, width: u32, idx: u32| -> bool {
            // idx 0 is the MSB.
            (value >> (width - 1 - idx)) & 1 == 1
        };
        match v {
            0..=31 => field_bit(self.dst_ip as u64, 32, v),
            32..=63 => field_bit(self.src_ip as u64, 32, v - 32),
            64..=71 => field_bit(self.proto as u64, 8, v - 64),
            72..=87 => field_bit(self.src_port as u64, 16, v - 72),
            88..=103 => field_bit(self.dst_port as u64, 16, v - 88),
            _ => panic!("packet bit {v} out of range"),
        }
    }
}

impl Bdd {
    /// Predicate matching packets whose `field` equals `value` on its top
    /// `len` bits (an IP-prefix-style match). `len == 0` matches all.
    pub fn pkt_prefix(&mut self, field: Field, value: u32, len: u32) -> Ref {
        assert!(len <= field.width(), "prefix length {len} exceeds field width");
        let off = field.offset();
        let width = field.width();
        // Build bottom-up so variable order is respected cheaply.
        let mut acc = Ref::TRUE;
        for i in (0..len).rev() {
            let bit = (value >> (width - 1 - i)) & 1 == 1;
            let v = off + i;
            let lit = if bit { self.var(v) } else { self.nvar(v) };
            acc = self.and(lit, acc);
        }
        acc
    }

    /// Predicate matching packets whose `field` equals `value` exactly.
    pub fn pkt_value(&mut self, field: Field, value: u32) -> Ref {
        self.pkt_prefix(field, value, field.width())
    }

    /// Predicate matching packets with `lo <= field <= hi` (inclusive).
    pub fn pkt_range(&mut self, field: Field, lo: u32, hi: u32) -> Ref {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let width = field.width();
        if width < 32 {
            assert!(hi < (1 << width), "range bound exceeds field width");
        }
        let geq = self.bound(field, lo, true);
        let leq = self.bound(field, hi, false);
        self.and(geq, leq)
    }

    /// `x >= value` when `lower`, else `x <= value`, over the field bits.
    fn bound(&mut self, field: Field, value: u32, lower: bool) -> Ref {
        let off = field.offset();
        let width = field.width();
        // Walk from LSB to MSB building the comparison bottom-up.
        let mut acc = Ref::TRUE;
        for i in (0..width).rev() {
            let bit = (value >> (width - 1 - i)) & 1 == 1;
            let v = off + i;
            let x = self.var(v);
            acc = match (lower, bit) {
                // x >= v, v-bit 1: need x-bit 1 and rest >= ; x-bit 0 fails.
                (true, true) => self.and(x, acc),
                // x >= v, v-bit 0: x-bit 1 always wins; x-bit 0 recurses.
                (true, false) => self.ite(x, Ref::TRUE, acc),
                // x <= v, v-bit 1: x-bit 0 always wins; x-bit 1 recurses.
                (false, true) => self.ite(x, acc, Ref::TRUE),
                // x <= v, v-bit 0: need x-bit 0 and rest <=.
                (false, false) => {
                    let nx = self.not(x);
                    self.and(nx, acc)
                }
            };
        }
        acc
    }

    /// Evaluate a predicate on a concrete packet.
    pub fn pkt_eval(&self, pred: Ref, pkt: &Packet) -> bool {
        self.eval(pred, |v| pkt.bit(v))
    }

    /// Bounds `(min, max)` of the destination-IP projection of `pred` —
    /// the smallest and largest dst addresses carried by some satisfying
    /// packet. `None` iff `pred` is unsatisfiable.
    ///
    /// Exact, in one walk per bound: the dst-ip block occupies the
    /// topmost BDD variables, so below the first non-dst variable every
    /// non-FALSE subtree accepts *some* completion, and within the dst
    /// block the extreme is found greedily (prefer the hi/lo branch, fall
    /// back to the sibling when it is FALSE; skipped variables are free
    /// and take the extreme value).
    pub fn pkt_dst_bounds(&self, pred: Ref) -> Option<(u32, u32)> {
        if pred.is_false() {
            return None;
        }
        let dst_width = Field::DstIp.width();
        let extreme = |prefer_hi: bool| -> u32 {
            // Free (untested) bits default to the extreme value.
            let mut value = if prefer_hi { u32::MAX } else { 0 };
            let mut r = pred;
            while !r.is_true() && self.var_of(r) < dst_width {
                let n = self.node(r);
                let v = self.var_of(r);
                let bit = 1u32 << (31 - v);
                let (preferred, fallback) = if prefer_hi { (n.hi, n.lo) } else { (n.lo, n.hi) };
                if !preferred.is_false() {
                    r = preferred;
                } else {
                    // Forced onto the non-preferred branch: flip the bit.
                    if prefer_hi {
                        value &= !bit;
                    } else {
                        value |= bit;
                    }
                    r = fallback;
                }
            }
            value
        };
        Some((extreme(false), extreme(true)))
    }

    /// The destination-IP projection of `pred` as a sorted list of
    /// disjoint, non-adjacent inclusive intervals `[lo, hi]`: a dst
    /// address is covered iff some packet carrying it satisfies `pred`.
    /// Returns `None` (caller falls back to [`Self::pkt_dst_bounds`])
    /// when the exact cover needs more than `cap` intervals — bounded
    /// work: the walk aborts after `cap + 1` emissions.
    pub fn pkt_dst_intervals(&self, pred: Ref, cap: usize) -> Option<Vec<(u32, u32)>> {
        let mut out = Vec::new();
        if self.dst_intervals_rec(pred, 0, 0, cap, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Emit the dst intervals of `r` restricted to the `2^(32-depth)`
    /// block of addresses starting at `base`. Returns false once `out`
    /// would exceed `cap`.
    fn dst_intervals_rec(
        &self,
        r: Ref,
        depth: u32,
        base: u32,
        cap: usize,
        out: &mut Vec<(u32, u32)>,
    ) -> bool {
        if r.is_false() {
            return true;
        }
        // TRUE, a non-dst subtree, or an exhausted dst block: the whole
        // address block projects true (any non-FALSE subtree is
        // satisfiable in a reduced BDD).
        if depth >= 32 || r.is_true() || self.var_of(r) >= Field::DstIp.width() {
            let hi = if depth >= 32 { base } else { base | (u32::MAX >> depth) };
            return Self::push_interval(out, base, hi, cap);
        }
        let bit = 1u32 << (31 - depth);
        if self.var_of(r) == depth {
            let n = self.node(r);
            self.dst_intervals_rec(n.lo, depth + 1, base, cap, out)
                && self.dst_intervals_rec(n.hi, depth + 1, base | bit, cap, out)
        } else {
            // Bit `depth` is free here: the projection repeats in both
            // halves of the block.
            self.dst_intervals_rec(r, depth + 1, base, cap, out)
                && self.dst_intervals_rec(r, depth + 1, base | bit, cap, out)
        }
    }

    /// Append `[lo, hi]`, merging with the previous interval when
    /// adjacent (emission order is strictly ascending). False when the
    /// result would exceed `cap` intervals.
    fn push_interval(out: &mut Vec<(u32, u32)>, lo: u32, hi: u32, cap: usize) -> bool {
        if let Some(last) = out.last_mut() {
            debug_assert!(last.1 < lo);
            if last.1 == lo - 1 {
                last.1 = hi;
                return true;
            }
        }
        out.push((lo, hi));
        out.len() <= cap
    }

    /// The destination-IP projection of `pred` as a [`Cover`]: the exact
    /// interval list when it fits in `cap` intervals, otherwise the
    /// `[min, max]` hull. Unlike [`Self::pkt_dst_intervals`], the
    /// approximation is explicit in the return type, so callers cannot
    /// mistake a hull for an exact cover.
    pub fn pkt_dst_cover(&self, pred: Ref, cap: usize) -> Cover {
        if pred.is_false() {
            return Cover::Exact(Vec::new());
        }
        match self.pkt_dst_intervals(pred, cap) {
            Some(iv) => Cover::Exact(iv),
            None => {
                // pred is satisfiable, so bounds exist.
                let (lo, hi) = match self.pkt_dst_bounds(pred) {
                    Some(b) => b,
                    None => unreachable!("satisfiable predicate has dst bounds"),
                };
                Cover::Hull(lo, hi)
            }
        }
    }

    /// Produce one packet satisfying `pred`, if any. Free bits are zero.
    pub fn pkt_witness(&self, pred: Ref) -> Option<Packet> {
        let cube = self.pick_cube(pred)?;
        let mut pkt = Packet::default();
        for (v, bit) in cube {
            if !bit {
                continue;
            }
            let set = |value: &mut u32, width: u32, idx: u32| *value |= 1 << (width - 1 - idx);
            match v {
                0..=31 => set(&mut pkt.dst_ip, 32, v),
                32..=63 => set(&mut pkt.src_ip, 32, v - 32),
                64..=71 => {
                    let mut p = pkt.proto as u32;
                    set(&mut p, 8, v - 64);
                    pkt.proto = p as u8;
                }
                72..=87 => {
                    let mut p = pkt.src_port as u32;
                    set(&mut p, 16, v - 72);
                    pkt.src_port = p as u16;
                }
                88..=103 => {
                    let mut p = pkt.dst_port as u32;
                    set(&mut p, 16, v - 88);
                    pkt.dst_port = p as u16;
                }
                _ => unreachable!("witness bit out of packet range"),
            }
        }
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_expected_packets() {
        let mut b = Bdd::new();
        // 10.0.0.0/8
        let p = b.pkt_prefix(Field::DstIp, 0x0A000000, 8);
        assert!(b.pkt_eval(p, &Packet { dst_ip: 0x0A123456, ..Default::default() }));
        assert!(!b.pkt_eval(p, &Packet { dst_ip: 0x0B000000, ..Default::default() }));
        // sat count: dst 24 free bits, all other 72 bits free.
        assert_eq!(b.sat_count(p, TOTAL_VARS), 2f64.powi(96));
    }

    #[test]
    fn zero_length_prefix_is_true() {
        let mut b = Bdd::new();
        assert_eq!(b.pkt_prefix(Field::DstIp, 0, 0), Ref::TRUE);
    }

    #[test]
    fn exact_value() {
        let mut b = Bdd::new();
        let p = b.pkt_value(Field::Proto, 6);
        assert!(b.pkt_eval(p, &Packet { proto: 6, ..Default::default() }));
        assert!(!b.pkt_eval(p, &Packet { proto: 17, ..Default::default() }));
        assert_eq!(b.sat_count(p, TOTAL_VARS), 2f64.powi(96));
    }

    #[test]
    fn range_counts() {
        let mut b = Bdd::new();
        // 100 values in [1000, 1099].
        let p = b.pkt_range(Field::DstPort, 1000, 1099);
        assert_eq!(b.sat_count(p, TOTAL_VARS), 100.0 * 2f64.powi(88));
        assert!(b.pkt_eval(p, &Packet { dst_port: 1050, ..Default::default() }));
        assert!(!b.pkt_eval(p, &Packet { dst_port: 1100, ..Default::default() }));
        assert!(!b.pkt_eval(p, &Packet { dst_port: 999, ..Default::default() }));
    }

    #[test]
    fn full_range_is_true() {
        let mut b = Bdd::new();
        assert_eq!(b.pkt_range(Field::SrcPort, 0, 65535), Ref::TRUE);
    }

    #[test]
    fn single_value_range_equals_value() {
        let mut b = Bdd::new();
        let r = b.pkt_range(Field::DstPort, 80, 80);
        let v = b.pkt_value(Field::DstPort, 80);
        assert_eq!(r, v);
    }

    #[test]
    fn witness_round_trips() {
        let mut b = Bdd::new();
        let pfx = b.pkt_prefix(Field::DstIp, 0xC0A80000, 16); // 192.168/16
        let tcp = b.pkt_value(Field::Proto, 6);
        let http = b.pkt_value(Field::DstPort, 80);
        let t = b.and(pfx, tcp);
        let pred = b.and(t, http);
        let w = b.pkt_witness(pred).unwrap();
        assert!(b.pkt_eval(pred, &w));
        assert_eq!(w.proto, 6);
        assert_eq!(w.dst_port, 80);
        assert_eq!(w.dst_ip >> 16, 0xC0A8);
    }

    #[test]
    fn dst_bounds_of_prefix() {
        let mut b = Bdd::new();
        let p = b.pkt_prefix(Field::DstIp, 0x0A000000, 8); // 10/8
        assert_eq!(b.pkt_dst_bounds(p), Some((0x0A000000, 0x0AFFFFFF)));
        assert_eq!(b.pkt_dst_bounds(Ref::TRUE), Some((0, u32::MAX)));
        assert_eq!(b.pkt_dst_bounds(Ref::FALSE), None);
        // Non-dst constraints leave the dst projection full.
        let tcp = b.pkt_value(Field::Proto, 6);
        assert_eq!(b.pkt_dst_bounds(tcp), Some((0, u32::MAX)));
    }

    #[test]
    fn dst_bounds_of_union_and_complement() {
        let mut b = Bdd::new();
        let p1 = b.pkt_prefix(Field::DstIp, 0x0A000000, 8); // 10/8
        let p2 = b.pkt_prefix(Field::DstIp, 0xC0A80000, 16); // 192.168/16
        let u = b.or(p1, p2);
        assert_eq!(b.pkt_dst_bounds(u), Some((0x0A000000, 0xC0A8FFFF)));
        // Complement of 10/8 still spans the full address range.
        let n = b.not(p1);
        assert_eq!(b.pkt_dst_bounds(n), Some((0, u32::MAX)));
    }

    #[test]
    fn dst_intervals_exact_covers() {
        let mut b = Bdd::new();
        let p = b.pkt_prefix(Field::DstIp, 0x0A000000, 8);
        assert_eq!(b.pkt_dst_intervals(p, 4), Some(vec![(0x0A000000, 0x0AFFFFFF)]));
        // The complement is exactly two intervals (below and above 10/8)
        // even though its hull is the whole space.
        let n = b.not(p);
        assert_eq!(
            b.pkt_dst_intervals(n, 4),
            Some(vec![(0, 0x09FFFFFF), (0x0B000000, u32::MAX)])
        );
        // A union of two disjoint prefixes gives two intervals.
        let p2 = b.pkt_prefix(Field::DstIp, 0xC0A80000, 16);
        let u = b.or(p, p2);
        assert_eq!(
            b.pkt_dst_intervals(u, 4),
            Some(vec![(0x0A000000, 0x0AFFFFFF), (0xC0A80000, 0xC0A8FFFF)])
        );
        assert_eq!(b.pkt_dst_intervals(Ref::FALSE, 4), Some(vec![]));
        assert_eq!(b.pkt_dst_intervals(Ref::TRUE, 4), Some(vec![(0, u32::MAX)]));
    }

    #[test]
    fn dst_intervals_merge_adjacent() {
        let mut b = Bdd::new();
        // Two adjacent /9s reassemble into the /8.
        let lo = b.pkt_prefix(Field::DstIp, 0x0A000000, 9);
        let hi = b.pkt_prefix(Field::DstIp, 0x0A800000, 9);
        let u = b.or(lo, hi);
        assert_eq!(b.pkt_dst_intervals(u, 4), Some(vec![(0x0A000000, 0x0AFFFFFF)]));
    }

    #[test]
    fn dst_intervals_cap_falls_back() {
        let mut b = Bdd::new();
        // dst odd (last bit set): 2^31 singleton intervals — must bail
        // at the cap instead of materialising them.
        let odd = b.var(31);
        assert_eq!(b.pkt_dst_intervals(odd, 16), None);
        assert_eq!(b.pkt_dst_bounds(odd), Some((1, u32::MAX)));
    }

    #[test]
    fn dst_intervals_ignore_non_dst_constraints() {
        let mut b = Bdd::new();
        let pfx = b.pkt_prefix(Field::DstIp, 0xC0A80000, 16);
        let tcp = b.pkt_value(Field::Proto, 6);
        let both = b.and(pfx, tcp);
        assert_eq!(b.pkt_dst_intervals(both, 4), Some(vec![(0xC0A80000, 0xC0A8FFFF)]));
        // A range straddling octets stays one interval.
        let r = b.pkt_range(Field::DstIp, 5000, 123456);
        assert_eq!(b.pkt_dst_intervals(r, 8), Some(vec![(5000, 123456)]));
        assert_eq!(b.pkt_dst_bounds(r), Some((5000, 123456)));
    }

    #[test]
    fn dst_cover_exact_within_cap() {
        let mut b = Bdd::new();
        let p = b.pkt_prefix(Field::DstIp, 0x0A000000, 8);
        assert_eq!(b.pkt_dst_cover(p, 4), Cover::Exact(vec![(0x0A000000, 0x0AFFFFFF)]));
        assert_eq!(b.pkt_dst_cover(Ref::FALSE, 4), Cover::Exact(vec![]));
        assert_eq!(b.pkt_dst_cover(Ref::TRUE, 4), Cover::Exact(vec![(0, u32::MAX)]));
        assert!(b.pkt_dst_cover(p, 4).is_exact());
    }

    #[test]
    fn dst_cover_hull_past_cap() {
        let mut b = Bdd::new();
        // dst odd: 2^31 singleton intervals — cover degrades to a hull,
        // and the type says so.
        let odd = b.var(31);
        let c = b.pkt_dst_cover(odd, 16);
        assert_eq!(c, Cover::Hull(1, u32::MAX));
        assert!(!c.is_exact());
        assert_eq!(c.into_intervals(), vec![(1, u32::MAX)]);
    }

    #[test]
    fn dst_cover_hull_contains_every_exact_interval() {
        let mut b = Bdd::new();
        // 20 disjoint, non-adjacent /24s: exact cover needs 20 intervals.
        let preds: Vec<Ref> =
            (0u32..20).map(|i| b.pkt_prefix(Field::DstIp, 0x0A000000 + ((i * 2) << 8), 24)).collect();
        let u = b.or_all(preds);
        let exact = b.pkt_dst_intervals(u, 64).expect("20 intervals fit in 64");
        assert_eq!(exact.len(), 20);
        // With the production cap the cover is a hull, and the hull
        // encloses every exact interval (over-approximation, sound for
        // candidate generation only).
        match b.pkt_dst_cover(u, 16) {
            Cover::Hull(lo, hi) => {
                for &(ilo, ihi) in &exact {
                    assert!(lo <= ilo && ihi <= hi);
                }
            }
            Cover::Exact(_) => panic!("20 intervals must not fit a cap of 16"),
        }
    }

    #[test]
    fn prefixes_partition() {
        let mut b = Bdd::new();
        let p0 = b.pkt_prefix(Field::DstIp, 0x00000000, 1);
        let p1 = b.pkt_prefix(Field::DstIp, 0x80000000, 1);
        assert!(b.disjoint(p0, p1));
        assert_eq!(b.or(p0, p1), Ref::TRUE);
    }
}
