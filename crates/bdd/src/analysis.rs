//! Analysis operations on BDDs: satisfying-assignment counting, support
//! computation, evaluation, and witness extraction.

use std::collections::HashMap;

use crate::manager::Bdd;
use crate::node::{Ref, Var};

/// `c * 2^by`, saturating at `u128::MAX`. The 104-variable packet space
/// fits a `u128` exactly, so saturation only triggers past 128 variables.
#[inline]
fn shl_sat(c: u128, by: u32) -> u128 {
    if c == 0 {
        0
    } else if by > c.leading_zeros() {
        u128::MAX
    } else {
        c << by
    }
}

impl Bdd {
    /// Number of satisfying assignments over a space of `num_vars`
    /// variables (variables `0..num_vars`), as `f64` for callers that
    /// want a ratio or a log. The count is computed exactly in `u128`
    /// ([`Self::sat_count_u128`]) and converted at the end, so the only
    /// imprecision is the final rounding to 53 bits of mantissa — counts
    /// near `2^104` no longer drift per-node and equality comparisons on
    /// exactly representable counts are stable.
    ///
    /// Every variable appearing in `a` must be `< num_vars`.
    pub fn sat_count(&self, a: Ref, num_vars: u32) -> f64 {
        self.sat_count_u128(a, num_vars) as f64
    }

    /// Exact number of satisfying assignments over `num_vars` variables,
    /// saturating at `u128::MAX`. The full 5-tuple packet space has
    /// `2^104` assignments, well inside `u128`, so every packet-space
    /// count is exact; saturation only applies to `num_vars > 128`.
    ///
    /// Every variable appearing in `a` must be `< num_vars`.
    pub fn sat_count_u128(&self, a: Ref, num_vars: u32) -> u128 {
        let mut memo: HashMap<Ref, u128> = HashMap::new();
        // count(r) = satisfying assignments over vars var_of(r)..num_vars,
        // then scale by the gap above the root.
        let c = self.sat_count_rec(a, num_vars, &mut memo);
        let root_var = if a.is_terminal() { num_vars } else { self.var_of(a) };
        shl_sat(c, root_var)
    }

    fn sat_count_rec(&self, a: Ref, num_vars: u32, memo: &mut HashMap<Ref, u128>) -> u128 {
        if a.is_false() {
            return 0;
        }
        if a.is_true() {
            return 1;
        }
        if let Some(&c) = memo.get(&a) {
            return c;
        }
        let n = self.node(a);
        debug_assert!(n.var < num_vars, "sat_count: variable {} out of range {num_vars}", n.var);
        let gap = |child: Ref| -> u32 {
            let cv = if child.is_terminal() { num_vars } else { self.var_of(child) };
            cv - n.var - 1
        };
        let lo = shl_sat(self.sat_count_rec(n.lo, num_vars, memo), gap(n.lo));
        let hi = shl_sat(self.sat_count_rec(n.hi, num_vars, memo), gap(n.hi));
        let c = lo.saturating_add(hi);
        memo.insert(a, c);
        c
    }

    /// The set of variables appearing in `a`, sorted ascending.
    pub fn support(&self, a: Ref) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![a];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Evaluate `a` under a total assignment: `assignment(v)` gives the
    /// value of variable `v`.
    pub fn eval<F: Fn(Var) -> bool>(&self, a: Ref, assignment: F) -> bool {
        let mut r = a;
        while !r.is_terminal() {
            let n = self.node(r);
            r = if assignment(n.var) { n.hi } else { n.lo };
        }
        r.is_true()
    }

    /// Extract one satisfying assignment as `(var, value)` pairs for the
    /// variables along the chosen path (unmentioned variables are free).
    /// Returns `None` iff `a` is unsatisfiable.
    pub fn pick_cube(&self, a: Ref) -> Option<Vec<(Var, bool)>> {
        if a.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut r = a;
        while !r.is_terminal() {
            let n = self.node(r);
            // Prefer the hi branch when it is satisfiable, else take lo.
            if !n.hi.is_false() {
                cube.push((n.var, true));
                r = n.hi;
            } else {
                cube.push((n.var, false));
                r = n.lo;
            }
        }
        debug_assert!(r.is_true());
        Some(cube)
    }

    /// Whether `a` and `b` denote disjoint packet sets.
    pub fn disjoint(&mut self, a: Ref, b: Ref) -> bool {
        self.and(a, b).is_false()
    }

    /// Whether `a ⊆ b` as packet sets.
    pub fn subset(&mut self, a: Ref, b: Ref) -> bool {
        self.diff(a, b).is_false()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_count_simple() {
        let mut b = Bdd::new();
        let x = b.var(0);
        assert_eq!(b.sat_count(x, 1), 1.0);
        assert_eq!(b.sat_count(x, 4), 8.0);
        assert_eq!(b.sat_count(Ref::TRUE, 10), 1024.0);
        assert_eq!(b.sat_count(Ref::FALSE, 10), 0.0);
        let y = b.var(3);
        let xy = b.and(x, y);
        assert_eq!(b.sat_count(xy, 4), 4.0);
        let xoy = b.or(x, y);
        assert_eq!(b.sat_count(xoy, 4), 12.0);
    }

    #[test]
    fn sat_count_exact_at_high_var_counts() {
        let mut b = Bdd::new();
        // The predicate excluding exactly one fully specified 104-bit
        // packet: count is 2^104 - 1, which f64 cannot represent (the
        // old f64 accumulation silently rounded node-by-node).
        let lits: Vec<Ref> = (0..104).map(|v| b.var(v)).collect();
        let cube = b.and_all(lits);
        let almost_full = b.not(cube);
        assert_eq!(b.sat_count_u128(cube, 104), 1);
        assert_eq!(b.sat_count_u128(almost_full, 104), (1u128 << 104) - 1);
        assert_eq!(b.sat_count_u128(Ref::TRUE, 104), 1u128 << 104);
        // The f64 view rounds 2^104 - 1 up to 2^104 — documented, stable
        // rounding at the boundary rather than drift inside the sum.
        assert_eq!(b.sat_count(almost_full, 104), 2f64.powi(104));
        assert_eq!(b.sat_count(cube, 104), 1.0);
    }

    #[test]
    fn sat_count_saturates_past_u128() {
        let mut b = Bdd::new();
        // 2^128 does not fit: saturates instead of wrapping to zero.
        assert_eq!(b.sat_count_u128(Ref::TRUE, 128), u128::MAX);
        let x = b.var(0);
        assert_eq!(b.sat_count_u128(x, 129), u128::MAX);
        assert_eq!(b.sat_count_u128(Ref::FALSE, 200), 0);
        // Just inside the representable range: exact.
        assert_eq!(b.sat_count_u128(x, 128), 1u128 << 127);
    }

    #[test]
    fn support_lists_vars() {
        let mut b = Bdd::new();
        let x = b.var(2);
        let y = b.var(5);
        let f = b.xor(x, y);
        assert_eq!(b.support(f), vec![2, 5]);
        assert!(b.support(Ref::TRUE).is_empty());
    }

    #[test]
    fn eval_follows_assignment() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        assert!(b.eval(f, |_| true));
        assert!(!b.eval(f, |v| v == 0));
    }

    #[test]
    fn pick_cube_satisfies() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let ny = b.nvar(1);
        let f = b.and(x, ny);
        let cube = b.pick_cube(f).unwrap();
        let assignment: std::collections::HashMap<_, _> = cube.into_iter().collect();
        assert!(b.eval(f, |v| *assignment.get(&v).unwrap_or(&false)));
        assert!(b.pick_cube(Ref::FALSE).is_none());
    }

    #[test]
    fn subset_and_disjoint() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let xy = b.and(x, y);
        assert!(b.subset(xy, x));
        assert!(!b.subset(x, xy));
        let nx = b.not(x);
        assert!(b.disjoint(x, nx));
        assert!(!b.disjoint(x, y));
    }
}
