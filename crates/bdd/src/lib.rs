//! Reduced ordered binary decision diagrams (ROBDDs) for packet-space
//! predicates.
//!
//! This crate is the predicate substrate for the APKeep-style data plane
//! model used by RealConfig: every match condition (an IP prefix, an ACL
//! clause, a port range) is compiled to a BDD, and equivalence classes of
//! packets are BDDs that partition the header space.
//!
//! The implementation is a classic hash-consed ROBDD manager:
//!
//! * nodes are stored in an arena and deduplicated, so semantic equality
//!   is pointer ([`Ref`]) equality;
//! * binary operations go through a memoized `apply`, negation and
//!   if-then-else have their own caches;
//! * variables are `u32` indices; the variable with the smallest index is
//!   tested closest to the root.
//!
//! There is no garbage collection: RealConfig's workloads allocate a few
//! hundred thousand nodes at most, and the manager is dropped wholesale
//! with the model. This keeps `Ref` a `Copy` integer and the hot paths
//! free of reference counting.
//!
//! The BDD manager is one of two predicate stores behind the
//! [`Predicate`] trait; the [`atoms`] module provides a Delta-net-style
//! dst-IP interval backend for dst-prefix-only workloads, and [`Preds`]
//! enum-dispatches between them (selected by [`PredKind`] /
//! `RC_BACKEND` / `--backend`).
//!
//! # Example
//!
//! ```
//! use rc_bdd::Bdd;
//!
//! let mut bdd = Bdd::new();
//! let a = bdd.var(0);
//! let b = bdd.var(1);
//! let ab = bdd.and(a, b);
//! let not_ab = bdd.not(ab);
//! let de_morgan = {
//!     let na = bdd.not(a);
//!     let nb = bdd.not(b);
//!     bdd.or(na, nb)
//! };
//! assert_eq!(not_ab, de_morgan);
//! assert_eq!(bdd.sat_count(ab, 2), 1.0);
//! ```

mod analysis;
pub mod atoms;
mod backend;
mod manager;
mod node;
pub mod pkt;

pub use atoms::Atoms;
pub use backend::{default_backend, set_default_backend, PredKind, Predicate, Preds};
pub use manager::Bdd;
pub use node::{Node, Ref, Var};
pub use pkt::Cover;
