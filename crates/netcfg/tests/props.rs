//! Property tests for the configuration substrate: parser/printer
//! round trips on arbitrary configurations, line-diff laws, and
//! lowering determinism.

use proptest::prelude::*;
use rc_netcfg::ast::*;
use rc_netcfg::facts::{fact_delta, lower, Registry};
use rc_netcfg::linediff::diff_lines;
use rc_netcfg::parser::parse_config;
use rc_netcfg::printer::print_config;
use rc_netcfg::types::{Ip, Prefix};
use std::collections::BTreeMap;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ip(a), l))
}

fn arb_iface() -> impl Strategy<Value = InterfaceConfig> {
    (
        0u32..4,
        prop::option::of((any::<u32>(), 1u8..=30)),
        prop::option::of(1u32..200),
        any::<bool>(),
        prop::option::of(Just("ACL-A".to_string())),
        prop::option::of(Just("ACL-B".to_string())),
    )
        .prop_map(|(n, addr, cost, shutdown, acl_in, acl_out)| InterfaceConfig {
            name: format!("eth{n}"),
            // Interface addresses must be a *host* inside the prefix:
            // the printer emits the address as-is, so ensure nonzero
            // host bits survive canonicalization by just storing what
            // we generate.
            address: addr.map(|(a, l)| (Ip(a), l)),
            ospf_cost: cost,
            shutdown,
            acl_in,
            acl_out,
        })
}

fn arb_route_map_entry() -> impl Strategy<Value = RouteMapEntry> {
    (
        1u32..100,
        any::<bool>(),
        prop::option::of(arb_prefix()),
        prop::option::of(0u32..500),
        prop::option::of(0u32..500),
    )
        .prop_map(|(seq, permit, match_prefix, lp, metric)| RouteMapEntry {
            seq,
            action: if permit { RouteMapAction::Permit } else { RouteMapAction::Deny },
            match_prefix,
            set_local_pref: lp,
            set_metric: metric,
        })
}

fn arb_acl_entry() -> impl Strategy<Value = AclEntry> {
    (
        1u32..100,
        any::<bool>(),
        prop::option::of(prop_oneof![Just(1u8), Just(6), Just(17), Just(89)]),
        arb_prefix(),
        arb_prefix(),
        prop::option::of((any::<u16>(), any::<u16>())),
    )
        .prop_map(|(seq, permit, proto, src, dst, ports)| AclEntry {
            seq,
            action: if permit { AclAction::Permit } else { AclAction::Deny },
            // Port matches require TCP/UDP.
            proto: if ports.is_some() { Some(6) } else { proto },
            src,
            dst,
            dst_ports: ports.map(|(a, b)| (a.min(b), a.max(b))),
        })
}

prop_compose! {
    fn arb_config()(
        ifaces in prop::collection::vec(arb_iface(), 0..4),
        ospf in prop::option::of((1u32..10, prop::collection::vec(arb_prefix(), 0..3))),
        rip in prop::option::of(prop::collection::vec(arb_prefix(), 0..3)),
        bgp in prop::option::of((1u32..70000, prop::collection::vec(arb_prefix(), 0..3))),
        statics in prop::collection::vec((arb_prefix(), prop_oneof![
            Just(NextHop::Drop),
            any::<u32>().prop_map(|a| NextHop::Address(Ip(a))),
            (0u32..4).prop_map(|i| NextHop::Interface(format!("eth{i}"))),
        ]), 0..3),
        rm_entries in prop::collection::vec(arb_route_map_entry(), 0..4),
        acl_entries in prop::collection::vec(arb_acl_entry(), 0..4),
    ) -> DeviceConfig {
        let mut cfg = DeviceConfig::new("dev1");
        // Unique interface names.
        let mut seen = std::collections::BTreeSet::new();
        for i in ifaces {
            if seen.insert(i.name.clone()) {
                cfg.interfaces.push(i);
            }
        }
        if let Some((pid, networks)) = ospf {
            cfg.ospf = Some(OspfConfig { process_id: pid, networks, redistribute: vec![] });
        }
        if let Some(networks) = rip {
            cfg.rip = Some(RipConfig { networks, redistribute: vec![] });
        }
        if let Some((asn, networks)) = bgp {
            cfg.bgp = Some(BgpConfig { asn, networks, neighbors: vec![], redistribute: vec![] });
        }
        cfg.static_routes =
            statics.into_iter().map(|(prefix, next_hop)| StaticRoute { prefix, next_hop }).collect();
        let mut seen = std::collections::BTreeSet::new();
        let mut entries: Vec<RouteMapEntry> = Vec::new();
        for e in rm_entries {
            if seen.insert(e.seq) {
                entries.push(e);
            }
        }
        entries.sort_by_key(|e| e.seq);
        if !entries.is_empty() {
            cfg.route_maps.push(RouteMap { name: "RM".into(), entries });
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut entries: Vec<AclEntry> = Vec::new();
        for e in acl_entries {
            if seen.insert(e.seq) {
                entries.push(e);
            }
        }
        entries.sort_by_key(|e| e.seq);
        if !entries.is_empty() {
            cfg.acls.push(Acl { name: "ACL-A".into(), entries });
        }
        cfg
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on ASTs.
    #[test]
    fn round_trip(cfg in arb_config()) {
        let text = print_config(&cfg);
        let reparsed = parse_config(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- text ---\n{text}"));
        prop_assert_eq!(reparsed, cfg);
    }

    /// The diff of a config against itself is empty; against a changed
    /// config it is non-empty and bounded by the total line count.
    #[test]
    fn diff_laws(a in arb_config(), b in arb_config()) {
        let ta = print_config(&a);
        let tb = print_config(&b);
        prop_assert!(diff_lines(&ta, &ta).is_empty());
        let d = diff_lines(&ta, &tb);
        let meaningful = |s: &str| s.lines().filter(|l| !l.trim().is_empty() && l.trim() != "!").count();
        prop_assert!(d.len() <= meaningful(&ta) + meaningful(&tb));
        if ta != tb {
            // Different canonical texts must show up in the diff.
            prop_assert!(!d.is_empty() || meaningful(&ta) == meaningful(&tb));
        }
    }

    /// Lowering is deterministic and registry interning is stable.
    #[test]
    fn lowering_deterministic(cfg in arb_config()) {
        let mut configs = BTreeMap::new();
        configs.insert(cfg.hostname.clone(), cfg);
        let mut reg1 = Registry::new();
        let a = lower(&configs, &mut reg1);
        let mut reg2 = Registry::new();
        let b = lower(&configs, &mut reg2);
        prop_assert_eq!(&a.facts, &b.facts);
        prop_assert!(fact_delta(&a.facts, &b.facts).is_empty());
        // Lowering twice through the same registry is also stable.
        let c = lower(&configs, &mut reg1);
        prop_assert_eq!(&a.facts, &c.facts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics — any input yields Ok or a positioned
    /// error.
    #[test]
    fn parser_never_panics_on_noise(text in "\\PC{0,200}") {
        let _ = parse_config(&text);
    }

    /// Config-shaped line soup: fragments of real statements glued in
    /// random order must also parse or fail cleanly, and any
    /// successfully parsed config must round-trip.
    #[test]
    fn parser_never_panics_on_config_soup(
        lines in prop::collection::vec(prop_oneof![
            Just("hostname r1".to_string()),
            Just("interface eth0".to_string()),
            Just(" ip address 10.0.0.1 255.255.255.252".to_string()),
            Just(" ip address 10.0.0.1".to_string()),
            Just(" ip ospf cost 5".to_string()),
            Just(" shutdown".to_string()),
            Just("router ospf 1".to_string()),
            Just("router rip".to_string()),
            Just("router bgp 65000".to_string()),
            Just(" network 10.0.0.0/8 area 0".to_string()),
            Just(" network 10.0.0.0/8".to_string()),
            Just(" network 10.0.0.0/40".to_string()),
            Just(" neighbor 10.0.0.2 remote-as 65001".to_string()),
            Just(" neighbor 10.0.0.2 route-map X in".to_string()),
            Just("ip route 1.0.0.0/8 null0".to_string()),
            Just("route-map X permit 10".to_string()),
            Just(" set local-preference 150".to_string()),
            Just(" match ip address prefix 10.0.0.0/8".to_string()),
            Just("ip access-list extended A".to_string()),
            Just(" 10 permit tcp any any eq 80".to_string()),
            Just(" 10 permit tcp any any eq 99999".to_string()),
            Just("!".to_string()),
        ], 0..20),
    ) {
        let text = lines.join("\n");
        if let Ok(cfg) = parse_config(&text) {
            let printed = print_config(&cfg);
            let reparsed = parse_config(&printed)
                .unwrap_or_else(|e| panic!("canonical text must reparse: {e}\n{printed}"));
            prop_assert_eq!(reparsed, cfg);
        }
    }
}
