//! Core network value types: addresses, prefixes, and identifiers.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address as a host-order `u32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip(pub u32);

impl Ip {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error parsing an address or prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ip {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(AddrParseError(s.to_string()));
        }
        let mut v = 0u32;
        for p in parts {
            let octet: u32 = p.parse().map_err(|_| AddrParseError(s.to_string()))?;
            if octet > 255 {
                return Err(AddrParseError(s.to_string()));
            }
            v = (v << 8) | octet;
        }
        Ok(Ip(v))
    }
}

/// An IPv4 prefix in CIDR form. The address is stored canonicalized
/// (host bits zeroed), so equal prefixes compare equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// Construct a prefix, zeroing host bits.
    pub fn new(addr: Ip, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix { addr: addr.0 & Self::mask_of(len), len }
    }

    /// The all-addresses prefix `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    fn mask_of(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    pub fn addr(self) -> Ip {
        Ip(self.addr)
    }

    /// Prefix length in bits (a length of 0 is the default route, not
    /// an "empty" prefix — hence no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// The network mask as an address.
    pub fn mask(self) -> Ip {
        Ip(Self::mask_of(self.len))
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains_ip(self, ip: Ip) -> bool {
        (ip.0 & Self::mask_of(self.len)) == self.addr
    }

    /// Whether `other` is a subset of (or equal to) this prefix.
    pub fn contains(self, other: Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask_of(self.len)) == self.addr
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(self, other: Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The `i`-th host address within the prefix.
    pub fn host(self, i: u32) -> Ip {
        debug_assert!(self.len == 32 || i < (1u32 << (32 - self.len)));
        Ip(self.addr | i)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ip(self.addr), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| AddrParseError(s.to_string()))?;
        let addr: Ip = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| AddrParseError(s.to_string()))?;
        if len > 32 {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

/// Convert a dotted netmask (e.g. `255.255.255.252`) to a prefix
/// length, if it is a valid contiguous mask.
pub fn mask_to_len(mask: Ip) -> Option<u8> {
    let m = mask.0;
    let len = m.leading_ones() as u8;
    if m == Prefix::mask_of_pub(len) {
        Some(len)
    } else {
        None
    }
}

impl Prefix {
    fn mask_of_pub(len: u8) -> u32 {
        Self::mask_of(len)
    }
}

/// A device identifier, dense per network model (assigned in hostname
/// order by the lowering pass).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A globally interned interface identifier (see
/// [`crate::facts::Interner`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IfaceId(pub u32);

impl fmt::Debug for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A (device, interface) port — the endpoint of a link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Port {
    pub node: NodeId,
    pub iface: IfaceId,
}

/// Routing protocol discriminator, ordered by typical administrative
/// distance (connected < static < OSPF < BGP — eBGP's 20 is modeled
/// after OSPF per the common "prefer IGP for internal" simplification
/// used by the paper's fat-tree setups, where protocols never mix for
/// the same prefix unless redistributed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Proto {
    Connected,
    Static,
    Ospf,
    Rip,
    Bgp,
}

impl Proto {
    /// Administrative distance used when merging RIBs into the FIB.
    pub fn admin_distance(self) -> u8 {
        match self {
            Proto::Connected => 0,
            Proto::Static => 1,
            Proto::Ospf => 110,
            Proto::Rip => 120,
            Proto::Bgp => 200,
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Proto::Connected => "connected",
            Proto::Static => "static",
            Proto::Ospf => "ospf",
            Proto::Rip => "rip",
            Proto::Bgp => "bgp",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_round_trip() {
        let ip: Ip = "10.1.2.3".parse().unwrap();
        assert_eq!(ip, Ip::new(10, 1, 2, 3));
        assert_eq!(ip.to_string(), "10.1.2.3");
        assert!("10.1.2".parse::<Ip>().is_err());
        assert!("10.1.2.256".parse::<Ip>().is_err());
        assert!("10.1.2.x".parse::<Ip>().is_err());
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Prefix::new(Ip::new(10, 1, 2, 3), 24);
        assert_eq!(p.to_string(), "10.1.2.0/24");
        assert_eq!(p, "10.1.2.0/24".parse().unwrap());
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let q: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains(q));
        assert!(!q.contains(p));
        assert!(p.overlaps(q));
        assert!(p.contains_ip("10.255.255.255".parse().unwrap()));
        assert!(!p.contains_ip("11.0.0.0".parse().unwrap()));
        assert!(Prefix::DEFAULT.contains(p));
    }

    #[test]
    fn disjoint_prefixes_do_not_overlap() {
        let p: Prefix = "10.0.0.0/9".parse().unwrap();
        let q: Prefix = "10.128.0.0/9".parse().unwrap();
        assert!(!p.overlaps(q));
    }

    #[test]
    fn mask_conversion() {
        assert_eq!(mask_to_len("255.255.255.252".parse().unwrap()), Some(30));
        assert_eq!(mask_to_len("255.255.255.255".parse().unwrap()), Some(32));
        assert_eq!(mask_to_len("0.0.0.0".parse().unwrap()), Some(0));
        assert_eq!(mask_to_len("255.0.255.0".parse().unwrap()), None);
    }

    #[test]
    fn zero_length_prefix() {
        let p = Prefix::DEFAULT;
        assert!(p.contains_ip(Ip::new(255, 1, 2, 3)));
        assert_eq!(p.to_string(), "0.0.0.0/0");
    }

    #[test]
    fn host_addressing() {
        let p: Prefix = "10.0.0.4/30".parse().unwrap();
        assert_eq!(p.host(1).to_string(), "10.0.0.5");
        assert_eq!(p.host(2).to_string(), "10.0.0.6");
    }

    #[test]
    fn proto_admin_distance_ordering() {
        assert!(Proto::Connected.admin_distance() < Proto::Static.admin_distance());
        assert!(Proto::Static.admin_distance() < Proto::Ospf.admin_distance());
        assert!(Proto::Ospf.admin_distance() < Proto::Rip.admin_distance());
        assert!(Proto::Rip.admin_distance() < Proto::Bgp.admin_distance());
    }
}
