//! Configuration generators: topology + protocol choice → concrete
//! per-device configurations, mirroring the paper's evaluation setup.
//!
//! * **OSPF**: one process per device, all link and host subnets in
//!   area 0, every link interface with an explicit `ip ospf cost 1`
//!   (so the LC change is a one-line modification).
//! * **BGP**: one private AS per device, an eBGP session on every link,
//!   every session with a per-interface import route-map setting
//!   `local-preference 100` (so the LP change is a one-line
//!   modification), host prefixes originated via `network` statements.

use std::collections::BTreeMap;

use crate::ast::*;
use crate::topology::Topology;
use crate::types::{Ip, Prefix};

/// Which routing protocol the generated network runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolChoice {
    Ospf,
    Rip,
    Bgp,
}

/// The subnet assigned to the `i`-th physical link: /30s carved out of
/// `10.0.0.0/8`.
pub fn link_subnet(i: u32) -> Prefix {
    assert!(i < (1 << 22), "link index {i} exhausts the 10/8 space");
    Prefix::new(Ip(0x0A00_0000 | (i << 2)), 30)
}

/// The private AS number of device index `i`.
pub fn device_asn(i: u32) -> u32 {
    64512 + i
}

/// Name of the import route-map generated for a given interface.
pub fn import_map_name(iface: &str) -> String {
    format!("RM-IN-{iface}")
}

/// Generate configurations for every device of `topo`.
pub fn build_configs(topo: &Topology, proto: ProtocolChoice) -> BTreeMap<String, DeviceConfig> {
    let mut configs: BTreeMap<String, DeviceConfig> = topo
        .devices
        .iter()
        .map(|d| (d.clone(), DeviceConfig::new(d.clone())))
        .collect();
    let index: BTreeMap<&str, u32> =
        topo.devices.iter().enumerate().map(|(i, d)| (d.as_str(), i as u32)).collect();

    // Link interfaces: the a-side gets host .1, the b-side host .2.
    let mut neighbor_addr: Vec<(String, Ip, String, Ip)> = Vec::new();
    for (li, link) in topo.links.iter().enumerate() {
        let subnet = link_subnet(li as u32);
        let (ip_a, ip_b) = (subnet.host(1), subnet.host(2));
        configs.get_mut(&link.a.device).expect("device exists").interfaces.push(
            InterfaceConfig {
                name: link.a.iface.clone(),
                address: Some((ip_a, 30)),
                ..Default::default()
            },
        );
        configs.get_mut(&link.b.device).expect("device exists").interfaces.push(
            InterfaceConfig {
                name: link.b.iface.clone(),
                address: Some((ip_b, 30)),
                ..Default::default()
            },
        );
        neighbor_addr.push((link.a.device.clone(), ip_b, link.a.iface.clone(), ip_a));
        neighbor_addr.push((link.b.device.clone(), ip_a, link.b.iface.clone(), ip_b));
    }

    // Host interfaces announcing the device's prefixes.
    for (dev, prefixes) in &topo.host_prefixes {
        let cfg = configs.get_mut(dev).expect("device exists");
        for (i, p) in prefixes.iter().enumerate() {
            cfg.interfaces.push(InterfaceConfig {
                name: format!("host{i}"),
                address: Some((p.host(1), p.len())),
                ..Default::default()
            });
        }
    }

    match proto {
        ProtocolChoice::Rip => {
            for cfg in configs.values_mut() {
                cfg.rip = Some(RipConfig {
                    networks: vec![
                        "10.0.0.0/8".parse().expect("valid"),
                        "172.16.0.0/12".parse().expect("valid"),
                    ],
                    redistribute: vec![],
                });
            }
        }
        ProtocolChoice::Ospf => {
            for cfg in configs.values_mut() {
                for iface in &mut cfg.interfaces {
                    if iface.name.starts_with("eth") {
                        iface.ospf_cost = Some(1);
                    }
                }
                cfg.ospf = Some(OspfConfig {
                    process_id: 1,
                    networks: vec![
                        "10.0.0.0/8".parse().expect("valid"),
                        "172.16.0.0/12".parse().expect("valid"),
                    ],
                    redistribute: vec![],
                });
            }
        }
        ProtocolChoice::Bgp => {
            for (dev, cfg) in configs.iter_mut() {
                let mut bgp = BgpConfig { asn: device_asn(index[dev.as_str()]), ..Default::default() };
                for p in topo.host_prefixes.get(dev).into_iter().flatten() {
                    bgp.networks.push(*p);
                }
                cfg.bgp = Some(bgp);
            }
            // Sessions: one per link endpoint, with an import route-map.
            let mut peer_dev_of: BTreeMap<Ip, String> = BTreeMap::new();
            for (dev, _peer_ip, _iface, my_ip) in &neighbor_addr {
                peer_dev_of.insert(*my_ip, dev.clone());
            }
            for (dev, peer_ip, iface, _my_ip) in &neighbor_addr {
                let peer_dev = peer_dev_of.get(peer_ip).expect("peer address assigned").clone();
                let remote_as = device_asn(index[peer_dev.as_str()]);
                let map = import_map_name(iface);
                let cfg = configs.get_mut(dev).expect("device exists");
                cfg.bgp.as_mut().expect("bgp configured").neighbors.push(BgpNeighbor {
                    addr: *peer_ip,
                    remote_as,
                    route_map_in: Some(map.clone()),
                    route_map_out: None,
                });
                cfg.route_maps.push(RouteMap {
                    name: map,
                    entries: vec![RouteMapEntry {
                        seq: 10,
                        action: RouteMapAction::Permit,
                        match_prefix: None,
                        set_local_pref: Some(100),
                        set_metric: None,
                    }],
                });
            }
            for cfg in configs.values_mut() {
                cfg.bgp.as_mut().expect("bgp configured").neighbors.sort_by_key(|n| n.addr);
                cfg.route_maps.sort_by(|a, b| a.name.cmp(&b.name));
            }
        }
    }

    for cfg in configs.values_mut() {
        cfg.interfaces.sort_by(|a, b| a.name.cmp(&b.name));
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_config;
    use crate::printer::print_config;
    use crate::topology::{fat_tree, ring};

    #[test]
    fn ospf_fat_tree_configs() {
        let topo = fat_tree(4);
        let cfgs = build_configs(&topo, ProtocolChoice::Ospf);
        assert_eq!(cfgs.len(), 20);
        let edge = &cfgs["pod00-edge00"];
        // 2 uplinks + 1 host interface.
        assert_eq!(edge.interfaces.len(), 3);
        assert!(edge.ospf.is_some());
        assert!(edge.bgp.is_none());
        assert_eq!(edge.interface("eth0").unwrap().ospf_cost, Some(1));
        assert!(edge.interface("host0").unwrap().ospf_cost.is_none());
    }

    #[test]
    fn bgp_fat_tree_configs() {
        let topo = fat_tree(4);
        let cfgs = build_configs(&topo, ProtocolChoice::Bgp);
        let edge = &cfgs["pod00-edge00"];
        let bgp = edge.bgp.as_ref().unwrap();
        assert_eq!(bgp.neighbors.len(), 2);
        assert_eq!(bgp.networks.len(), 1);
        // Every neighbor has an import map setting LP 100.
        for nb in &bgp.neighbors {
            let rm = edge.route_map(nb.route_map_in.as_deref().unwrap()).unwrap();
            assert_eq!(rm.entries[0].set_local_pref, Some(100));
        }
        // AS numbers unique.
        let mut asns: Vec<u32> = cfgs.values().map(|c| c.bgp.as_ref().unwrap().asn).collect();
        asns.sort();
        asns.dedup();
        assert_eq!(asns.len(), cfgs.len());
    }

    #[test]
    fn remote_as_matches_peer() {
        let topo = ring(4);
        let cfgs = build_configs(&topo, ProtocolChoice::Bgp);
        for cfg in cfgs.values() {
            for nb in &cfg.bgp.as_ref().unwrap().neighbors {
                // Find the device owning nb.addr; its ASN must match.
                let owner = cfgs
                    .values()
                    .find(|c| c.interfaces.iter().any(|i| i.ip() == Some(nb.addr)))
                    .expect("peer address owned by someone");
                assert_eq!(owner.bgp.as_ref().unwrap().asn, nb.remote_as);
            }
        }
    }

    #[test]
    fn generated_configs_round_trip_through_text() {
        let topo = ring(3);
        for proto in [ProtocolChoice::Ospf, ProtocolChoice::Bgp] {
            let cfgs = build_configs(&topo, proto);
            for cfg in cfgs.values() {
                let text = print_config(cfg);
                let reparsed = parse_config(&text).unwrap();
                assert_eq!(&reparsed, cfg);
            }
        }
    }

    #[test]
    fn link_subnets_disjoint() {
        for i in 0..200 {
            for j in (i + 1)..200 {
                assert!(!link_subnet(i).overlaps(link_subnet(j)));
            }
        }
    }
}
