//! Parser for the Cisco-IOS-flavoured configuration language.
//!
//! The format is line-oriented: top-level stanza headers (`interface`,
//! `router ospf`, `router bgp`, `route-map`, `ip access-list`) are
//! followed by body lines indented with one space, Cisco style; `!`
//! lines are separators. The parser is strict — unknown statements are
//! errors, not silently skipped — because a verifier that drops config
//! lines verifies a different network than the one deployed.

use crate::ast::*;
use crate::types::{mask_to_len, Ip, Prefix};

/// A parse failure with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line_no: usize,
    pub line: String,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {} (in {:?})", self.line_no, self.msg, self.line)
    }
}

impl std::error::Error for ParseError {}

struct Lines<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim_end()))
            .filter(|(_, l)| !l.trim().is_empty() && l.trim() != "!")
            .collect();
        Lines { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    /// Consume the indented body lines following a stanza header.
    fn body(&mut self) -> Vec<(usize, &'a str)> {
        let mut out = Vec::new();
        while let Some((n, l)) = self.peek() {
            if l.starts_with(' ') {
                out.push((n, l.trim()));
                self.pos += 1;
            } else {
                break;
            }
        }
        out
    }
}

fn err(line_no: usize, line: &str, msg: impl Into<String>) -> ParseError {
    ParseError { line_no, line: line.to_string(), msg: msg.into() }
}

fn parse_prefix(s: &str, n: usize, line: &str) -> Result<Prefix, ParseError> {
    if s == "any" {
        return Ok(Prefix::DEFAULT);
    }
    s.parse().map_err(|_| err(n, line, format!("invalid prefix {s:?}")))
}

fn parse_ip(s: &str, n: usize, line: &str) -> Result<Ip, ParseError> {
    s.parse().map_err(|_| err(n, line, format!("invalid address {s:?}")))
}

fn parse_u32(s: &str, n: usize, line: &str) -> Result<u32, ParseError> {
    s.parse().map_err(|_| err(n, line, format!("invalid number {s:?}")))
}

fn parse_redist_source(s: &str, n: usize, line: &str) -> Result<RedistSource, ParseError> {
    match s {
        "connected" => Ok(RedistSource::Connected),
        "static" => Ok(RedistSource::Static),
        "ospf" => Ok(RedistSource::Ospf),
        "rip" => Ok(RedistSource::Rip),
        "bgp" => Ok(RedistSource::Bgp),
        _ => Err(err(n, line, format!("unknown redistribution source {s:?}"))),
    }
}

/// Parse one device configuration.
pub fn parse_config(text: &str) -> Result<DeviceConfig, ParseError> {
    let mut lines = Lines::new(text);
    let mut cfg = DeviceConfig::default();

    while let Some((n, raw)) = lines.next() {
        let line = raw.trim();
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["hostname", name] => cfg.hostname = name.to_string(),

            ["interface", name] => {
                let mut iface = InterfaceConfig::new(*name);
                for (bn, bl) in lines.body() {
                    let w: Vec<&str> = bl.split_whitespace().collect();
                    match w.as_slice() {
                        ["ip", "address", addr, mask] => {
                            let ip = parse_ip(addr, bn, bl)?;
                            let len = mask_to_len(parse_ip(mask, bn, bl)?)
                                .ok_or_else(|| err(bn, bl, "non-contiguous netmask"))?;
                            iface.address = Some((ip, len));
                        }
                        ["ip", "ospf", "cost", c] => {
                            iface.ospf_cost = Some(parse_u32(c, bn, bl)?);
                        }
                        ["ip", "access-group", name, "in"] => {
                            iface.acl_in = Some(name.to_string());
                        }
                        ["ip", "access-group", name, "out"] => {
                            iface.acl_out = Some(name.to_string());
                        }
                        ["shutdown"] => iface.shutdown = true,
                        ["no", "shutdown"] => iface.shutdown = false,
                        _ => return Err(err(bn, bl, "unknown interface statement")),
                    }
                }
                cfg.interfaces.push(iface);
            }

            ["router", "ospf", pid] => {
                let mut ospf =
                    OspfConfig { process_id: parse_u32(pid, n, line)?, ..Default::default() };
                for (bn, bl) in lines.body() {
                    let w: Vec<&str> = bl.split_whitespace().collect();
                    match w.as_slice() {
                        ["network", p, "area", _area] => {
                            ospf.networks.push(parse_prefix(p, bn, bl)?);
                        }
                        ["redistribute", src, "metric", m] => {
                            ospf.redistribute.push(Redistribution {
                                source: parse_redist_source(src, bn, bl)?,
                                metric: parse_u32(m, bn, bl)?,
                            });
                        }
                        _ => return Err(err(bn, bl, "unknown ospf statement")),
                    }
                }
                cfg.ospf = Some(ospf);
            }

            ["router", "rip"] => {
                let mut rip = RipConfig::default();
                for (bn, bl) in lines.body() {
                    let w: Vec<&str> = bl.split_whitespace().collect();
                    match w.as_slice() {
                        ["network", p] => rip.networks.push(parse_prefix(p, bn, bl)?),
                        ["redistribute", src, "metric", m] => {
                            rip.redistribute.push(Redistribution {
                                source: parse_redist_source(src, bn, bl)?,
                                metric: parse_u32(m, bn, bl)?,
                            });
                        }
                        _ => return Err(err(bn, bl, "unknown rip statement")),
                    }
                }
                cfg.rip = Some(rip);
            }

            ["router", "bgp", asn] => {
                let mut bgp = BgpConfig { asn: parse_u32(asn, n, line)?, ..Default::default() };
                for (bn, bl) in lines.body() {
                    let w: Vec<&str> = bl.split_whitespace().collect();
                    match w.as_slice() {
                        ["network", p] => bgp.networks.push(parse_prefix(p, bn, bl)?),
                        ["neighbor", addr, "remote-as", ras] => {
                            bgp.neighbors.push(BgpNeighbor {
                                addr: parse_ip(addr, bn, bl)?,
                                remote_as: parse_u32(ras, bn, bl)?,
                                route_map_in: None,
                                route_map_out: None,
                            });
                        }
                        ["neighbor", addr, "route-map", rm, dir @ ("in" | "out")] => {
                            let a = parse_ip(addr, bn, bl)?;
                            let nb = bgp
                                .neighbors
                                .iter_mut()
                                .find(|x| x.addr == a)
                                .ok_or_else(|| err(bn, bl, "route-map before remote-as"))?;
                            if *dir == "in" {
                                nb.route_map_in = Some(rm.to_string());
                            } else {
                                nb.route_map_out = Some(rm.to_string());
                            }
                        }
                        ["redistribute", src, "metric", m] => {
                            bgp.redistribute.push(Redistribution {
                                source: parse_redist_source(src, bn, bl)?,
                                metric: parse_u32(m, bn, bl)?,
                            });
                        }
                        _ => return Err(err(bn, bl, "unknown bgp statement")),
                    }
                }
                cfg.bgp = Some(bgp);
            }

            ["ip", "route", p, nh] => {
                let prefix = parse_prefix(p, n, line)?;
                let next_hop = if *nh == "null0" {
                    NextHop::Drop
                } else if nh.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    NextHop::Address(parse_ip(nh, n, line)?)
                } else {
                    NextHop::Interface(nh.to_string())
                };
                cfg.static_routes.push(StaticRoute { prefix, next_hop });
            }

            ["route-map", name, action @ ("permit" | "deny"), seq] => {
                let mut entry = RouteMapEntry {
                    seq: parse_u32(seq, n, line)?,
                    action: if *action == "permit" {
                        RouteMapAction::Permit
                    } else {
                        RouteMapAction::Deny
                    },
                    match_prefix: None,
                    set_local_pref: None,
                    set_metric: None,
                };
                for (bn, bl) in lines.body() {
                    let w: Vec<&str> = bl.split_whitespace().collect();
                    match w.as_slice() {
                        ["match", "ip", "address", "prefix", p] => {
                            entry.match_prefix = Some(parse_prefix(p, bn, bl)?);
                        }
                        ["set", "local-preference", lp] => {
                            entry.set_local_pref = Some(parse_u32(lp, bn, bl)?);
                        }
                        ["set", "metric", m] => {
                            entry.set_metric = Some(parse_u32(m, bn, bl)?);
                        }
                        _ => return Err(err(bn, bl, "unknown route-map statement")),
                    }
                }
                match cfg.route_maps.iter_mut().find(|m| m.name == *name) {
                    Some(m) => m.entries.push(entry),
                    None => cfg
                        .route_maps
                        .push(RouteMap { name: name.to_string(), entries: vec![entry] }),
                }
            }

            ["ip", "access-list", "extended", name] => {
                let mut acl = Acl { name: name.to_string(), entries: Vec::new() };
                for (bn, bl) in lines.body() {
                    acl.entries.push(parse_acl_entry(bn, bl)?);
                }
                cfg.acls.push(acl);
            }

            _ => return Err(err(n, line, "unknown statement")),
        }
    }

    // Route-map entries parse in file order; normalize by sequence.
    for m in &mut cfg.route_maps {
        m.entries.sort_by_key(|e| e.seq);
    }
    for a in &mut cfg.acls {
        a.entries.sort_by_key(|e| e.seq);
    }
    Ok(cfg)
}

fn parse_acl_entry(n: usize, line: &str) -> Result<AclEntry, ParseError> {
    let w: Vec<&str> = line.split_whitespace().collect();
    if w.len() < 5 {
        return Err(err(n, line, "truncated access-list entry"));
    }
    let seq = parse_u32(w[0], n, line)?;
    let action = match w[1] {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        other => return Err(err(n, line, format!("unknown acl action {other:?}"))),
    };
    let proto = match w[2] {
        "ip" => None,
        "icmp" => Some(1),
        "tcp" => Some(6),
        "udp" => Some(17),
        num => Some(
            num.parse::<u8>().map_err(|_| err(n, line, format!("unknown protocol {num:?}")))?,
        ),
    };
    let src = parse_prefix(w[3], n, line)?;
    let dst = parse_prefix(w[4], n, line)?;
    let dst_ports = match w.get(5..) {
        None | Some([]) => None,
        Some(["eq", p]) => {
            let p: u16 = p.parse().map_err(|_| err(n, line, "invalid port"))?;
            Some((p, p))
        }
        Some(["range", lo, hi]) => {
            let lo: u16 = lo.parse().map_err(|_| err(n, line, "invalid port"))?;
            let hi: u16 = hi.parse().map_err(|_| err(n, line, "invalid port"))?;
            if lo > hi {
                return Err(err(n, line, "empty port range"));
            }
            Some((lo, hi))
        }
        _ => return Err(err(n, line, "unknown acl qualifier")),
    };
    if dst_ports.is_some() && !matches!(proto, Some(6) | Some(17)) {
        return Err(err(n, line, "port match requires tcp or udp"));
    }
    Ok(AclEntry { seq, action, proto, src, dst, dst_ports })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
hostname r1
!
interface eth0
 ip address 10.0.0.1 255.255.255.252
 ip ospf cost 10
 ip access-group BLOCK in
!
interface eth1
 ip address 172.16.1.1 255.255.255.0
 shutdown
!
router ospf 1
 network 10.0.0.0/8 area 0
 redistribute static metric 20
!
router bgp 65001
 network 172.16.1.0/24
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map LP_IN in
!
ip route 192.168.0.0/24 10.0.0.2
ip route 192.168.1.0/24 null0
!
route-map LP_IN permit 10
 match ip address prefix 172.16.0.0/12
 set local-preference 150
route-map LP_IN permit 20
!
ip access-list extended BLOCK
 10 deny tcp 10.0.0.0/8 172.16.1.0/24 eq 80
 20 permit ip any any
";

    #[test]
    fn parses_full_sample() {
        let cfg = parse_config(SAMPLE).unwrap();
        assert_eq!(cfg.hostname, "r1");
        assert_eq!(cfg.interfaces.len(), 2);
        let e0 = cfg.interface("eth0").unwrap();
        assert_eq!(e0.prefix().unwrap().to_string(), "10.0.0.0/30");
        assert_eq!(e0.ospf_cost, Some(10));
        assert_eq!(e0.acl_in.as_deref(), Some("BLOCK"));
        assert!(cfg.interface("eth1").unwrap().shutdown);

        let ospf = cfg.ospf.as_ref().unwrap();
        assert_eq!(ospf.networks, vec!["10.0.0.0/8".parse().unwrap()]);
        assert_eq!(ospf.redistribute[0].source, RedistSource::Static);

        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn, 65001);
        assert_eq!(bgp.neighbors[0].route_map_in.as_deref(), Some("LP_IN"));

        assert_eq!(cfg.static_routes.len(), 2);
        assert_eq!(cfg.static_routes[1].next_hop, NextHop::Drop);

        let rm = cfg.route_map("LP_IN").unwrap();
        assert_eq!(rm.entries.len(), 2);
        assert_eq!(rm.entries[0].set_local_pref, Some(150));
        assert_eq!(rm.entries[1].match_prefix, None);

        let acl = cfg.acl("BLOCK").unwrap();
        assert_eq!(acl.entries[0].dst_ports, Some((80, 80)));
        assert_eq!(acl.entries[1].action, AclAction::Permit);
    }

    #[test]
    fn unknown_statement_is_an_error() {
        let e = parse_config("frobnicate everything\n").unwrap_err();
        assert_eq!(e.line_no, 1);
        assert!(e.msg.contains("unknown"));
    }

    #[test]
    fn unknown_interface_statement_is_an_error() {
        let e = parse_config("interface eth0\n speed 1000\n").unwrap_err();
        assert_eq!(e.line_no, 2);
    }

    #[test]
    fn bad_mask_rejected() {
        let e = parse_config("interface eth0\n ip address 10.0.0.1 255.0.255.0\n").unwrap_err();
        assert!(e.msg.contains("netmask"));
    }

    #[test]
    fn route_map_before_remote_as_rejected() {
        let text = "router bgp 1\n neighbor 10.0.0.2 route-map X in\n";
        assert!(parse_config(text).is_err());
    }

    #[test]
    fn acl_port_on_non_tcp_rejected() {
        let text = "ip access-list extended A\n 10 permit ip any any eq 80\n";
        assert!(parse_config(text).is_err());
    }

    #[test]
    fn empty_config_parses() {
        let cfg = parse_config("!\n\n!\n").unwrap();
        assert_eq!(cfg, DeviceConfig::default());
    }

    #[test]
    fn route_map_entries_sorted_by_seq() {
        let text = "route-map M permit 20\nroute-map M deny 10\n";
        let cfg = parse_config(text).unwrap();
        let rm = cfg.route_map("M").unwrap();
        assert_eq!(rm.entries[0].seq, 10);
        assert_eq!(rm.entries[0].action, RouteMapAction::Deny);
    }
}
