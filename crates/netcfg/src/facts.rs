//! Lowering: configurations → input facts for the routing engine.
//!
//! The paper's incremental data plane generator consumes configuration
//! changes as *relation deltas*. This module defines those relations
//! ([`Fact`]) and the lowering pass that derives them from a set of
//! parsed device configurations. Incremental verification then reduces
//! to: lower old and new configurations, diff the fact sets
//! ([`fact_delta`]), and feed the delta to the dataflow — the engine
//! works out everything downstream, whatever kind of change it was.
//!
//! Identifiers are interned in an append-only [`Registry`] owned by the
//! caller, so facts from successive configuration versions share an id
//! space and diff cleanly.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;
use crate::types::{IfaceId, Ip, NodeId, Port, Prefix, Proto};

/// ACL / policy action.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Action {
    Permit,
    Deny,
}

/// Direction of an ACL binding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dir {
    In,
    Out,
}

/// An input relation tuple for the routing engine.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Fact {
    /// A device exists.
    Device(NodeId),
    /// A usable layer-3 adjacency, directed (each physical link lowers
    /// to two of these). Present only when both interfaces are up and
    /// addressed in the same subnet.
    Link { src: Port, dst: Port },
    /// An up, addressed interface and its connected subnet.
    IfacePrefix { node: NodeId, iface: IfaceId, prefix: Prefix },
    /// OSPF runs on this interface with this cost.
    OspfIface { node: NodeId, iface: IfaceId, cost: u32 },
    /// This node advertises `prefix` into OSPF (stub network) at the
    /// advertising interface's cost.
    OspfOrigin { node: NodeId, prefix: Prefix, cost: u32 },
    /// RIP runs on this interface.
    RipIface { node: NodeId, iface: IfaceId },
    /// This node advertises `prefix` into RIP at `metric` hops
    /// (connected networks start at 1; 16 is infinity).
    RipOrigin { node: NodeId, prefix: Prefix, metric: u32 },
    /// An established (two-way compatible) eBGP session, directed:
    /// routes flow from `peer` to `node` through `iface`.
    BgpSession { node: NodeId, iface: IfaceId, peer: NodeId, peer_iface: IfaceId },
    /// One entry of the import policy applied to routes received on
    /// `iface`. Entries apply lowest-`seq` first; a session with no
    /// route-map lowers to a single permit-everything entry.
    BgpImportPolicy {
        node: NodeId,
        iface: IfaceId,
        seq: u32,
        action: Action,
        match_prefix: Option<Prefix>,
        set_lp: Option<u32>,
        set_med: Option<u32>,
    },
    /// One entry of the export policy applied to routes sent to the
    /// peer of `iface`.
    BgpExportPolicy {
        node: NodeId,
        iface: IfaceId,
        seq: u32,
        action: Action,
        match_prefix: Option<Prefix>,
        set_med: Option<u32>,
    },
    /// This node originates `prefix` into BGP.
    BgpOrigin { node: NodeId, prefix: Prefix },
    /// A static route; `out == None` discards (null0).
    StaticRoute { node: NodeId, prefix: Prefix, out: Option<IfaceId> },
    /// One ACL entry bound to an interface/direction. `proto == None`
    /// matches any IP protocol.
    AclRule {
        node: NodeId,
        iface: IfaceId,
        dir: Dir,
        seq: u32,
        action: Action,
        proto: Option<u8>,
        src: Prefix,
        dst: Prefix,
        dst_ports: Option<(u16, u16)>,
    },
    /// Route redistribution from one protocol into another.
    Redistribute { node: NodeId, from: Proto, into: Proto, metric: u32 },
}

/// A lowering diagnostic: configuration constructs that are accepted
/// but do not produce the facts the operator probably expected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Warning {
    /// `ip access-group` names an ACL that is not defined (treated as
    /// permit-all, the vendor behaviour).
    UnknownAcl { device: String, acl: String },
    /// A neighbor's route-map is not defined (treated as permit-all).
    UnknownRouteMap { device: String, map: String },
    /// A static route whose next hop resolves to no connected subnet.
    UnresolvedNextHop { device: String, prefix: Prefix },
    /// A BGP neighbor statement with no usable session behind it
    /// (address not on a connected subnet, peer missing or down, AS
    /// mismatch, or no reciprocal configuration).
    DeadBgpNeighbor { device: String, addr: Ip, reason: String },
    /// Both session ends are in the same AS — iBGP is not modeled.
    IbgpUnsupported { device: String, addr: Ip },
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Warning::UnknownAcl { device, acl } => {
                write!(f, "{device}: access-group {acl} references an undefined ACL")
            }
            Warning::UnknownRouteMap { device, map } => {
                write!(f, "{device}: route-map {map} is not defined")
            }
            Warning::UnresolvedNextHop { device, prefix } => {
                write!(f, "{device}: static route {prefix} has an unresolvable next hop")
            }
            Warning::DeadBgpNeighbor { device, addr, reason } => {
                write!(f, "{device}: neighbor {addr} cannot establish: {reason}")
            }
            Warning::IbgpUnsupported { device, addr } => {
                write!(f, "{device}: neighbor {addr} is iBGP, which is not modeled")
            }
        }
    }
}

/// Append-only interner for device and interface identifiers. Owned by
/// the verifier across configuration versions so ids are stable.
#[derive(Default, Debug, Clone)]
pub struct Registry {
    nodes: BTreeMap<String, NodeId>,
    node_names: Vec<String>,
    ifaces: BTreeMap<String, IfaceId>,
    iface_names: Vec<String>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a device name.
    pub fn node_id(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.nodes.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.nodes.insert(name.to_string(), id);
        self.node_names.push(name.to_string());
        id
    }

    /// Intern an interface name.
    pub fn iface_id(&mut self, name: &str) -> IfaceId {
        if let Some(&id) = self.ifaces.get(name) {
            return id;
        }
        let id = IfaceId(self.iface_names.len() as u32);
        self.ifaces.insert(name.to_string(), id);
        self.iface_names.push(name.to_string());
        id
    }

    /// Look up a device id without interning.
    pub fn try_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.get(name).copied()
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0 as usize]
    }

    pub fn iface_name(&self, id: IfaceId) -> &str {
        &self.iface_names[id.0 as usize]
    }

    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Export the interning history — every device and interface name
    /// in id order. Interning is append-only and history-dependent, so
    /// a durable snapshot must carry these lists verbatim: every
    /// `NodeId`/`IfaceId` embedded in serialized model and checker
    /// state indexes into exactly this assignment.
    pub fn export_names(&self) -> (Vec<String>, Vec<String>) {
        (self.node_names.clone(), self.iface_names.clone())
    }

    /// Rebuild a registry from [`Registry::export_names`] output,
    /// reproducing the identical name→id assignment. Duplicate names
    /// in either list are rejected (they cannot arise from a real
    /// interning history and would silently alias ids).
    pub fn from_names(
        node_names: Vec<String>,
        iface_names: Vec<String>,
    ) -> Result<Self, String> {
        let mut reg = Registry::new();
        for name in &node_names {
            reg.nodes.insert(name.clone(), NodeId(reg.node_names.len() as u32));
            reg.node_names.push(name.clone());
        }
        for name in &iface_names {
            reg.ifaces.insert(name.clone(), IfaceId(reg.iface_names.len() as u32));
            reg.iface_names.push(name.clone());
        }
        if reg.nodes.len() != reg.node_names.len() {
            return Err("duplicate device name in registry snapshot".into());
        }
        if reg.ifaces.len() != reg.iface_names.len() {
            return Err("duplicate interface name in registry snapshot".into());
        }
        Ok(reg)
    }
}

/// The result of lowering a configuration set.
#[derive(Debug, Default)]
pub struct Lowered {
    pub facts: BTreeSet<Fact>,
    pub warnings: Vec<Warning>,
}

fn redist_proto(s: RedistSource) -> Proto {
    match s {
        RedistSource::Connected => Proto::Connected,
        RedistSource::Static => Proto::Static,
        RedistSource::Ospf => Proto::Ospf,
        RedistSource::Rip => Proto::Rip,
        RedistSource::Bgp => Proto::Bgp,
    }
}

/// Lower a full configuration set to input facts.
pub fn lower(configs: &BTreeMap<String, DeviceConfig>, reg: &mut Registry) -> Lowered {
    let mut out = Lowered::default();

    // Intern every name upfront (shutdown interfaces included) so that
    // identifier assignment is a deterministic function of the
    // configuration set — two registries fed the same configurations
    // agree, whatever state the interfaces are in.
    for (name, cfg) in configs {
        reg.node_id(name);
        for iface in &cfg.interfaces {
            reg.iface_id(&iface.name);
        }
    }

    // Pass 1: devices, up interfaces, connected subnets, address owners.
    // `addr_owner` maps every assigned interface address to its port.
    let mut addr_owner: BTreeMap<Ip, (NodeId, IfaceId, &DeviceConfig, &InterfaceConfig)> =
        BTreeMap::new();
    let mut subnet_ports: BTreeMap<Prefix, Vec<Port>> = BTreeMap::new();
    for (name, cfg) in configs {
        let node = reg.node_id(name);
        out.facts.insert(Fact::Device(node));
        for iface in &cfg.interfaces {
            if iface.shutdown {
                continue;
            }
            let Some(prefix) = iface.prefix() else { continue };
            let ifid = reg.iface_id(&iface.name);
            out.facts.insert(Fact::IfacePrefix { node, iface: ifid, prefix });
            addr_owner.insert(iface.ip().expect("addressed"), (node, ifid, cfg, iface));
            subnet_ports.entry(prefix).or_default().push(Port { node, iface: ifid });
        }
    }

    // Pass 2: links — all port pairs sharing a subnet, both directions.
    for ports in subnet_ports.values() {
        for a in ports {
            for b in ports {
                if a.node != b.node {
                    out.facts.insert(Fact::Link { src: *a, dst: *b });
                }
            }
        }
    }

    // Pass 3: per-device protocol facts.
    for (name, cfg) in configs {
        let node = reg.node_id(name);

        if let Some(ospf) = &cfg.ospf {
            for iface in &cfg.interfaces {
                if iface.shutdown {
                    continue;
                }
                let Some(prefix) = iface.prefix() else { continue };
                if !ospf.networks.iter().any(|n| n.contains(prefix)) {
                    continue;
                }
                let ifid = reg.iface_id(&iface.name);
                let cost = iface.ospf_cost.unwrap_or(1);
                out.facts.insert(Fact::OspfIface { node, iface: ifid, cost });
                out.facts.insert(Fact::OspfOrigin { node, prefix, cost });
            }
            for r in &ospf.redistribute {
                out.facts.insert(Fact::Redistribute {
                    node,
                    from: redist_proto(r.source),
                    into: Proto::Ospf,
                    metric: r.metric,
                });
            }
        }

        if let Some(rip) = &cfg.rip {
            for iface in &cfg.interfaces {
                if iface.shutdown {
                    continue;
                }
                let Some(prefix) = iface.prefix() else { continue };
                if !rip.networks.iter().any(|n| n.contains(prefix)) {
                    continue;
                }
                let ifid = reg.iface_id(&iface.name);
                out.facts.insert(Fact::RipIface { node, iface: ifid });
                out.facts.insert(Fact::RipOrigin { node, prefix, metric: 1 });
            }
            for r in &rip.redistribute {
                out.facts.insert(Fact::Redistribute {
                    node,
                    from: redist_proto(r.source),
                    into: Proto::Rip,
                    metric: r.metric,
                });
            }
        }

        if let Some(bgp) = &cfg.bgp {
            for p in &bgp.networks {
                out.facts.insert(Fact::BgpOrigin { node, prefix: *p });
            }
            for r in &bgp.redistribute {
                out.facts.insert(Fact::Redistribute {
                    node,
                    from: redist_proto(r.source),
                    into: Proto::Bgp,
                    metric: r.metric,
                });
            }
            for nb in &bgp.neighbors {
                match resolve_session(name, cfg, nb, &addr_owner, configs) {
                    Ok((local_iface, peer_name, peer_iface)) => {
                        let iface = reg.iface_id(local_iface);
                        let peer = reg.node_id(peer_name);
                        let peer_if = reg.iface_id(peer_iface);
                        out.facts.insert(Fact::BgpSession {
                            node,
                            iface,
                            peer,
                            peer_iface: peer_if,
                        });
                        lower_import_policy(&mut out, cfg, name, nb, node, iface, reg);
                        lower_export_policy(&mut out, cfg, name, nb, node, iface, reg);
                    }
                    Err(w) => out.warnings.push(w),
                }
            }
        }

        for sr in &cfg.static_routes {
            let resolved = match &sr.next_hop {
                NextHop::Drop => Some(None),
                NextHop::Interface(ifname) => cfg
                    .interfaces
                    .iter()
                    .find(|i| &i.name == ifname && !i.shutdown)
                    .map(|i| Some(reg.iface_id(&i.name))),
                NextHop::Address(ip) => cfg
                    .interfaces
                    .iter()
                    .find(|i| {
                        !i.shutdown && i.prefix().is_some_and(|p| p.contains_ip(*ip)) && i.ip() != Some(*ip)
                    })
                    .map(|i| Some(reg.iface_id(&i.name))),
            };
            match resolved {
                Some(out_iface) => {
                    out.facts.insert(Fact::StaticRoute { node, prefix: sr.prefix, out: out_iface });
                }
                None => out.warnings.push(Warning::UnresolvedNextHop {
                    device: name.clone(),
                    prefix: sr.prefix,
                }),
            }
        }

        for iface in &cfg.interfaces {
            if iface.shutdown {
                continue;
            }
            for (dir, aclname) in
                [(Dir::In, &iface.acl_in), (Dir::Out, &iface.acl_out)]
            {
                let Some(aclname) = aclname else { continue };
                let Some(acl) = cfg.acl(aclname) else {
                    out.warnings.push(Warning::UnknownAcl {
                        device: name.clone(),
                        acl: aclname.clone(),
                    });
                    continue;
                };
                let ifid = reg.iface_id(&iface.name);
                for e in &acl.entries {
                    out.facts.insert(Fact::AclRule {
                        node,
                        iface: ifid,
                        dir,
                        seq: e.seq,
                        action: match e.action {
                            AclAction::Permit => Action::Permit,
                            AclAction::Deny => Action::Deny,
                        },
                        proto: e.proto,
                        src: e.src,
                        dst: e.dst,
                        dst_ports: e.dst_ports,
                    });
                }
                // The vendor-implicit final deny.
                out.facts.insert(Fact::AclRule {
                    node,
                    iface: ifid,
                    dir,
                    seq: u32::MAX,
                    action: Action::Deny,
                    proto: None,
                    src: Prefix::DEFAULT,
                    dst: Prefix::DEFAULT,
                    dst_ports: None,
                });
            }
        }
    }

    out
}

/// Resolve a neighbor statement to an established session:
/// returns (local interface, peer device, peer interface).
fn resolve_session<'a>(
    device: &str,
    cfg: &DeviceConfig,
    nb: &BgpNeighbor,
    addr_owner: &'a BTreeMap<Ip, (NodeId, IfaceId, &'a DeviceConfig, &'a InterfaceConfig)>,
    _configs: &BTreeMap<String, DeviceConfig>,
) -> Result<(&'a str, &'a str, &'a str), Warning>
where
{
    let dead = |reason: &str| Warning::DeadBgpNeighbor {
        device: device.to_string(),
        addr: nb.addr,
        reason: reason.to_string(),
    };
    // Local interface whose connected subnet contains the peer address.
    let local = cfg
        .interfaces
        .iter()
        .find(|i| {
            !i.shutdown && i.prefix().is_some_and(|p| p.contains_ip(nb.addr)) && i.ip() != Some(nb.addr)
        })
        .ok_or_else(|| dead("peer address not on a connected subnet"))?;
    let local_ip = local.ip().expect("addressed");
    // The peer device actually owning that address.
    let (_pn, _pi, peer_cfg, peer_iface) =
        addr_owner.get(&nb.addr).ok_or_else(|| dead("no device owns the peer address"))?;
    let peer_bgp = peer_cfg.bgp.as_ref().ok_or_else(|| dead("peer does not run BGP"))?;
    if peer_bgp.asn != nb.remote_as {
        return Err(dead(&format!(
            "remote-as {} does not match peer AS {}",
            nb.remote_as, peer_bgp.asn
        )));
    }
    let local_asn = cfg.bgp.as_ref().expect("caller checked").asn;
    if peer_bgp.asn == local_asn {
        return Err(Warning::IbgpUnsupported { device: device.to_string(), addr: nb.addr });
    }
    // Reciprocal neighbor statement on the peer.
    let reciprocal = peer_bgp
        .neighbors
        .iter()
        .any(|pnb| pnb.addr == local_ip && pnb.remote_as == local_asn);
    if !reciprocal {
        return Err(dead("peer has no matching reciprocal neighbor statement"));
    }
    // Resolve local iface name from the owner map of our own address
    // (gives us 'a-lifetime strings, avoiding clones).
    let (_, _, _, own_iface) =
        addr_owner.get(&local_ip).ok_or_else(|| dead("local address not registered"))?;
    Ok((&own_iface.name, &peer_cfg.hostname, &peer_iface.name))
}

fn lower_import_policy(
    out: &mut Lowered,
    cfg: &DeviceConfig,
    device: &str,
    nb: &BgpNeighbor,
    node: NodeId,
    iface: IfaceId,
    _reg: &mut Registry,
) {
    match &nb.route_map_in {
        None => {
            out.facts.insert(Fact::BgpImportPolicy {
                node,
                iface,
                seq: u32::MAX,
                action: Action::Permit,
                match_prefix: None,
                set_lp: None,
                set_med: None,
            });
        }
        Some(name) => match cfg.route_map(name) {
            None => {
                out.warnings
                    .push(Warning::UnknownRouteMap { device: device.to_string(), map: name.clone() });
                // Vendor behaviour: an undefined route-map permits all.
                out.facts.insert(Fact::BgpImportPolicy {
                    node,
                    iface,
                    seq: u32::MAX,
                    action: Action::Permit,
                    match_prefix: None,
                    set_lp: None,
                    set_med: None,
                });
            }
            Some(rm) => {
                for e in &rm.entries {
                    out.facts.insert(Fact::BgpImportPolicy {
                        node,
                        iface,
                        seq: e.seq,
                        action: match e.action {
                            RouteMapAction::Permit => Action::Permit,
                            RouteMapAction::Deny => Action::Deny,
                        },
                        match_prefix: e.match_prefix,
                        set_lp: e.set_local_pref,
                        set_med: e.set_metric,
                    });
                }
                // Implicit deny at the end of a route-map.
                out.facts.insert(Fact::BgpImportPolicy {
                    node,
                    iface,
                    seq: u32::MAX,
                    action: Action::Deny,
                    match_prefix: None,
                    set_lp: None,
                    set_med: None,
                });
            }
        },
    }
}

fn lower_export_policy(
    out: &mut Lowered,
    cfg: &DeviceConfig,
    device: &str,
    nb: &BgpNeighbor,
    node: NodeId,
    iface: IfaceId,
    _reg: &mut Registry,
) {
    match &nb.route_map_out {
        None => {
            out.facts.insert(Fact::BgpExportPolicy {
                node,
                iface,
                seq: u32::MAX,
                action: Action::Permit,
                match_prefix: None,
                set_med: None,
            });
        }
        Some(name) => match cfg.route_map(name) {
            None => {
                out.warnings
                    .push(Warning::UnknownRouteMap { device: device.to_string(), map: name.clone() });
                out.facts.insert(Fact::BgpExportPolicy {
                    node,
                    iface,
                    seq: u32::MAX,
                    action: Action::Permit,
                    match_prefix: None,
                    set_med: None,
                });
            }
            Some(rm) => {
                for e in &rm.entries {
                    out.facts.insert(Fact::BgpExportPolicy {
                        node,
                        iface,
                        seq: e.seq,
                        action: match e.action {
                            RouteMapAction::Permit => Action::Permit,
                            RouteMapAction::Deny => Action::Deny,
                        },
                        match_prefix: e.match_prefix,
                        set_med: e.set_metric,
                    });
                }
                out.facts.insert(Fact::BgpExportPolicy {
                    node,
                    iface,
                    seq: u32::MAX,
                    action: Action::Deny,
                    match_prefix: None,
                    set_med: None,
                });
            }
        },
    }
}

/// Set difference of two fact sets as signed deltas: `+1` for facts
/// only in `new`, `-1` for facts only in `old`.
pub fn fact_delta(old: &BTreeSet<Fact>, new: &BTreeSet<Fact>) -> Vec<(Fact, isize)> {
    let mut delta = Vec::new();
    for f in old.difference(new) {
        delta.push((f.clone(), -1));
    }
    for f in new.difference(old) {
        delta.push((f.clone(), 1));
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{build_configs, ProtocolChoice};
    use crate::topology::ring;

    fn lower_ring(proto: ProtocolChoice) -> (Lowered, Registry) {
        let topo = ring(3);
        let cfgs = build_configs(&topo, proto);
        let mut reg = Registry::new();
        let lowered = lower(&cfgs, &mut reg);
        (lowered, reg)
    }

    fn count<F: Fn(&Fact) -> bool>(l: &Lowered, f: F) -> usize {
        l.facts.iter().filter(|x| f(x)).count()
    }

    #[test]
    fn ospf_ring_facts() {
        let (l, _) = lower_ring(ProtocolChoice::Ospf);
        assert!(l.warnings.is_empty(), "{:?}", l.warnings);
        assert_eq!(count(&l, |f| matches!(f, Fact::Device(_))), 3);
        // 3 physical links → 6 directed links.
        assert_eq!(count(&l, |f| matches!(f, Fact::Link { .. })), 6);
        // 2 link ifaces + 1 host iface per device.
        assert_eq!(count(&l, |f| matches!(f, Fact::IfacePrefix { .. })), 9);
        assert_eq!(count(&l, |f| matches!(f, Fact::OspfIface { .. })), 9);
        assert_eq!(count(&l, |f| matches!(f, Fact::OspfOrigin { .. })), 9);
        assert_eq!(count(&l, |f| matches!(f, Fact::BgpSession { .. })), 0);
    }

    #[test]
    fn bgp_ring_facts() {
        let (l, _) = lower_ring(ProtocolChoice::Bgp);
        assert!(l.warnings.is_empty(), "{:?}", l.warnings);
        // 2 sessions per device, directed.
        assert_eq!(count(&l, |f| matches!(f, Fact::BgpSession { .. })), 6);
        // Per session: route-map entry + implicit deny (import), and an
        // implicit permit (export).
        assert_eq!(count(&l, |f| matches!(f, Fact::BgpImportPolicy { .. })), 12);
        assert_eq!(count(&l, |f| matches!(f, Fact::BgpExportPolicy { .. })), 6);
        assert_eq!(count(&l, |f| matches!(f, Fact::BgpOrigin { .. })), 3);
    }

    #[test]
    fn shutdown_interface_removes_link_and_session() {
        let topo = ring(3);
        let mut cfgs = build_configs(&topo, ProtocolChoice::Bgp);
        let mut reg = Registry::new();
        let before = lower(&cfgs, &mut reg);

        let dev = cfgs.keys().next().unwrap().clone();
        cfgs.get_mut(&dev).unwrap().interface_mut("eth0").unwrap().shutdown = true;
        let after = lower(&cfgs, &mut reg);

        let delta = fact_delta(&before.facts, &after.facts);
        assert!(!delta.is_empty());
        // Both link directions disappear, plus the session both ways,
        // plus the iface prefix, plus policies; nothing is added.
        assert!(delta.iter().all(|(_, r)| *r == -1), "{delta:?}");
        assert_eq!(
            delta.iter().filter(|(f, _)| matches!(f, Fact::Link { .. })).count(),
            2
        );
        assert_eq!(
            delta.iter().filter(|(f, _)| matches!(f, Fact::BgpSession { .. })).count(),
            2
        );
        // The peer also notices its session died.
        let down_sessions: Vec<_> = delta
            .iter()
            .filter_map(|(f, _)| match f {
                Fact::BgpSession { node, peer, .. } => Some((*node, *peer)),
                _ => None,
            })
            .collect();
        assert_eq!(down_sessions.len(), 2);
        assert_eq!(down_sessions[0].0, down_sessions[1].1);
    }

    #[test]
    fn as_mismatch_warns_and_skips_session() {
        let topo = ring(3);
        let mut cfgs = build_configs(&topo, ProtocolChoice::Bgp);
        let dev = cfgs.keys().next().unwrap().clone();
        cfgs.get_mut(&dev).unwrap().bgp.as_mut().unwrap().neighbors[0].remote_as = 99;
        let mut reg = Registry::new();
        let l = lower(&cfgs, &mut reg);
        assert!(l
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::DeadBgpNeighbor { .. })), "{:?}", l.warnings);
        // Our direction dies on the AS mismatch, and the peer's
        // direction dies on the reciprocity check (our statement no
        // longer names its real AS): 6 − 2 = 4 sessions remain.
        assert_eq!(count(&l, |f| matches!(f, Fact::BgpSession { .. })), 4);
        assert_eq!(l.warnings.len(), 2);
    }

    #[test]
    fn unknown_acl_warns_permit_all() {
        let mut cfgs = BTreeMap::new();
        let mut c = DeviceConfig::new("r1");
        c.interfaces.push(InterfaceConfig {
            name: "eth0".into(),
            address: Some((Ip::new(10, 0, 0, 1), 30)),
            acl_in: Some("NOPE".into()),
            ..Default::default()
        });
        cfgs.insert("r1".to_string(), c);
        let mut reg = Registry::new();
        let l = lower(&cfgs, &mut reg);
        assert!(matches!(l.warnings[0], Warning::UnknownAcl { .. }));
        assert_eq!(count(&l, |f| matches!(f, Fact::AclRule { .. })), 0);
    }

    #[test]
    fn static_route_resolution() {
        let mut cfgs = BTreeMap::new();
        let mut c = DeviceConfig::new("r1");
        c.interfaces.push(InterfaceConfig {
            name: "eth0".into(),
            address: Some((Ip::new(10, 0, 0, 1), 30)),
            ..Default::default()
        });
        c.static_routes.push(StaticRoute {
            prefix: "1.0.0.0/8".parse().unwrap(),
            next_hop: NextHop::Address(Ip::new(10, 0, 0, 2)),
        });
        c.static_routes.push(StaticRoute {
            prefix: "2.0.0.0/8".parse().unwrap(),
            next_hop: NextHop::Drop,
        });
        c.static_routes.push(StaticRoute {
            prefix: "3.0.0.0/8".parse().unwrap(),
            next_hop: NextHop::Address(Ip::new(99, 0, 0, 1)),
        });
        cfgs.insert("r1".to_string(), c);
        let mut reg = Registry::new();
        let l = lower(&cfgs, &mut reg);
        assert_eq!(count(&l, |f| matches!(f, Fact::StaticRoute { out: Some(_), .. })), 1);
        assert_eq!(count(&l, |f| matches!(f, Fact::StaticRoute { out: None, .. })), 1);
        assert!(matches!(l.warnings[0], Warning::UnresolvedNextHop { .. }));
    }

    #[test]
    fn registry_ids_stable_across_versions() {
        let topo = ring(3);
        let cfgs = build_configs(&topo, ProtocolChoice::Ospf);
        let mut reg = Registry::new();
        let a = lower(&cfgs, &mut reg);
        let b = lower(&cfgs, &mut reg);
        assert_eq!(a.facts, b.facts);
        assert!(fact_delta(&a.facts, &b.facts).is_empty());
    }
}
