//! Network configuration substrate for RealConfig: a Cisco-IOS
//! flavoured configuration language (AST, parser, printer), topology
//! and configuration generators, high-level change operations, line
//! diffs, and the lowering pass that turns configurations into the
//! input relations (facts) consumed by the routing engine.
//!
//! # From text to facts
//!
//! ```
//! use rc_netcfg::parser::parse_config;
//! use rc_netcfg::facts::{lower, Registry};
//!
//! let text = "\
//! hostname r1
//! interface eth0
//!  ip address 10.0.0.1 255.255.255.252
//!  ip ospf cost 5
//! router ospf 1
//!  network 10.0.0.0/8 area 0
//! ";
//! let cfg = parse_config(text).unwrap();
//! let mut configs = std::collections::BTreeMap::new();
//! configs.insert(cfg.hostname.clone(), cfg);
//! let mut reg = Registry::new();
//! let lowered = lower(&configs, &mut reg);
//! assert!(lowered.warnings.is_empty());
//! assert!(!lowered.facts.is_empty());
//! ```

pub mod ast;
pub mod change;
pub mod facts;
pub mod gen;
pub mod linediff;
pub mod parser;
pub mod printer;
pub mod topology;
pub mod types;

pub use ast::DeviceConfig;
pub use change::{ChangeOp, ChangeSet};
pub use facts::{fact_delta, lower, Fact, Lowered, Registry, Warning};
pub use types::{IfaceId, Ip, NodeId, Port, Prefix, Proto};
