//! High-level configuration change operations.
//!
//! A [`ChangeSet`] is an ordered list of edits applied to a
//! configuration set at the AST level. The verifier derives the
//! semantic (fact) delta and the textual (line) delta from the before
//! and after configurations — change operations themselves never touch
//! the routing engine.
//!
//! The three operations of the paper's evaluation are
//! [`ChangeOp::DisableInterface`] (LinkFailure),
//! [`ChangeOp::SetOspfCost`] (LC) and [`ChangeOp::SetLocalPref`] (LP).

use std::collections::BTreeMap;

use crate::ast::*;
use crate::types::{Ip, Prefix};

/// One configuration edit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChangeOp {
    /// Administratively shut an interface (the paper's LinkFailure).
    DisableInterface { device: String, iface: String },
    /// Re-enable a shut interface.
    EnableInterface { device: String, iface: String },
    /// Change an interface's OSPF cost (the paper's LC).
    SetOspfCost { device: String, iface: String, cost: u32 },
    /// Set the local preference applied to routes imported from the
    /// neighbor reached through `iface` (the paper's LP). Edits every
    /// permit entry of that session's import route-map, creating map
    /// and binding if absent.
    SetLocalPref { device: String, iface: String, pref: u32 },
    /// Set the MED advertised to the neighbor reached through `iface`
    /// (telling the peer how much this entry point should be avoided).
    /// Edits every permit entry of that session's export route-map,
    /// creating map and binding if absent.
    SetMed { device: String, iface: String, med: u32 },
    /// Add a static route.
    AddStaticRoute { device: String, prefix: Prefix, next_hop: NextHop },
    /// Remove all static routes for a prefix.
    RemoveStaticRoute { device: String, prefix: Prefix },
    /// Add an entry to an ACL (creating the ACL if needed).
    AddAclEntry { device: String, acl: String, entry: AclEntry },
    /// Remove an ACL entry by sequence number.
    RemoveAclEntry { device: String, acl: String, seq: u32 },
    /// Bind an ACL to an interface direction.
    BindAcl { device: String, iface: String, dir: AclDir, acl: String },
    /// Remove an ACL binding.
    UnbindAcl { device: String, iface: String, dir: AclDir },
    /// Originate an additional prefix in BGP.
    AddBgpNetwork { device: String, prefix: Prefix },
    /// Stop originating a prefix in BGP.
    RemoveBgpNetwork { device: String, prefix: Prefix },
    /// Enable route redistribution on a device.
    AddRedistribution { device: String, into: RedistTarget, source: RedistSource, metric: u32 },
}

/// ACL binding direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AclDir {
    In,
    Out,
}

/// The protocol receiving redistributed routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedistTarget {
    Ospf,
    Bgp,
}

/// An ordered list of configuration edits.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChangeSet {
    pub ops: Vec<ChangeOp>,
}

/// An edit that could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChangeError {
    pub op: ChangeOp,
    pub msg: String,
}

impl std::fmt::Display for ChangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot apply {:?}: {}", self.op, self.msg)
    }
}

impl std::error::Error for ChangeError {}

impl ChangeSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, op: ChangeOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Shorthand constructors for the paper's three change types.
    pub fn link_failure(device: &str, iface: &str) -> Self {
        ChangeSet {
            ops: vec![ChangeOp::DisableInterface {
                device: device.to_string(),
                iface: iface.to_string(),
            }],
        }
    }

    pub fn link_cost(device: &str, iface: &str, cost: u32) -> Self {
        ChangeSet {
            ops: vec![ChangeOp::SetOspfCost {
                device: device.to_string(),
                iface: iface.to_string(),
                cost,
            }],
        }
    }

    pub fn local_pref(device: &str, iface: &str, pref: u32) -> Self {
        ChangeSet {
            ops: vec![ChangeOp::SetLocalPref {
                device: device.to_string(),
                iface: iface.to_string(),
                pref,
            }],
        }
    }

    /// Apply all edits to `configs` in order. On error, `configs` is
    /// left partially modified — apply to a clone when transactional
    /// behaviour is needed (the verifier does).
    pub fn apply(&self, configs: &mut BTreeMap<String, DeviceConfig>) -> Result<(), ChangeError> {
        for op in &self.ops {
            apply_op(op, configs).map_err(|msg| ChangeError { op: op.clone(), msg })?;
        }
        Ok(())
    }

    /// Fold a burst of change sets into one, cancelling superseded
    /// writes: for *set-type* operations (interface admin state, OSPF
    /// cost, local-pref, MED, ACL bindings) only the last write to a
    /// target survives, in the position of the first. Add/remove
    /// operations (static routes, ACL entries, BGP networks,
    /// redistribution) are never folded — dropping an add that a later
    /// remove undoes would change which sequences error — so they keep
    /// their relative order. Returns the folded set and the number of
    /// cancelled (superseded) operations.
    ///
    /// Folding is behaviour-preserving: same-key set-type operations
    /// have identical error conditions, and no retained operation reads
    /// state that a cancelled one writes, so applying the folded set
    /// yields exactly the configurations — and exactly the success or
    /// failure — of applying the originals in sequence.
    pub fn coalesce(sets: &[ChangeSet]) -> (ChangeSet, usize) {
        // Key: (op discriminant, device, iface, ACL direction).
        let mut slot: BTreeMap<(u8, String, String, u8), usize> = BTreeMap::new();
        let mut ops: Vec<ChangeOp> = Vec::new();
        let mut cancelled = 0usize;
        for op in sets.iter().flat_map(|s| s.ops.iter()) {
            let key = match op {
                ChangeOp::DisableInterface { device, iface }
                | ChangeOp::EnableInterface { device, iface } => {
                    Some((0, device.clone(), iface.clone(), 0))
                }
                ChangeOp::SetOspfCost { device, iface, .. } => {
                    Some((1, device.clone(), iface.clone(), 0))
                }
                ChangeOp::SetLocalPref { device, iface, .. } => {
                    Some((2, device.clone(), iface.clone(), 0))
                }
                ChangeOp::SetMed { device, iface, .. } => {
                    Some((3, device.clone(), iface.clone(), 0))
                }
                ChangeOp::BindAcl { device, iface, dir, .. }
                | ChangeOp::UnbindAcl { device, iface, dir } => {
                    Some((4, device.clone(), iface.clone(), *dir as u8))
                }
                _ => None,
            };
            match key {
                Some(k) => match slot.get(&k) {
                    Some(&i) => {
                        ops[i] = op.clone();
                        cancelled += 1;
                    }
                    None => {
                        slot.insert(k, ops.len());
                        ops.push(op.clone());
                    }
                },
                None => ops.push(op.clone()),
            }
        }
        (ChangeSet { ops }, cancelled)
    }
}

fn device<'a>(
    configs: &'a mut BTreeMap<String, DeviceConfig>,
    name: &str,
) -> Result<&'a mut DeviceConfig, String> {
    configs.get_mut(name).ok_or_else(|| format!("unknown device {name:?}"))
}

fn iface<'a>(cfg: &'a mut DeviceConfig, name: &str) -> Result<&'a mut InterfaceConfig, String> {
    let host = cfg.hostname.clone();
    cfg.interface_mut(name).ok_or_else(|| format!("unknown interface {name:?} on {host:?}"))
}

fn apply_op(op: &ChangeOp, configs: &mut BTreeMap<String, DeviceConfig>) -> Result<(), String> {
    match op {
        ChangeOp::DisableInterface { device: d, iface: i } => {
            iface(device(configs, d)?, i)?.shutdown = true;
        }
        ChangeOp::EnableInterface { device: d, iface: i } => {
            iface(device(configs, d)?, i)?.shutdown = false;
        }
        ChangeOp::SetOspfCost { device: d, iface: i, cost } => {
            let cfg = device(configs, d)?;
            if cfg.ospf.is_none() {
                return Err(format!("{d:?} does not run OSPF"));
            }
            iface(cfg, i)?.ospf_cost = Some(*cost);
        }
        ChangeOp::SetLocalPref { device: d, iface: i, pref } => {
            let cfg = device(configs, d)?;
            let peer_subnet = iface(cfg, i)?
                .prefix()
                .ok_or_else(|| format!("interface {i:?} has no address"))?;
            let bgp = cfg.bgp.as_mut().ok_or_else(|| format!("{d:?} does not run BGP"))?;
            // The session on this interface: the neighbor whose address
            // lies in the interface subnet.
            let nb = bgp
                .neighbors
                .iter_mut()
                .find(|n| peer_subnet.contains_ip(n.addr))
                .ok_or_else(|| format!("no BGP neighbor on interface {i:?}"))?;
            let map_name = match &nb.route_map_in {
                Some(m) => m.clone(),
                None => {
                    let m = crate::gen::import_map_name(i);
                    nb.route_map_in = Some(m.clone());
                    m
                }
            };
            match cfg.route_maps.iter_mut().find(|m| m.name == map_name) {
                Some(rm) => {
                    for e in &mut rm.entries {
                        if e.action == RouteMapAction::Permit {
                            e.set_local_pref = Some(*pref);
                        }
                    }
                }
                None => cfg.route_maps.push(RouteMap {
                    name: map_name,
                    entries: vec![RouteMapEntry {
                        seq: 10,
                        action: RouteMapAction::Permit,
                        match_prefix: None,
                        set_local_pref: Some(*pref),
                        set_metric: None,
                    }],
                }),
            }
        }
        ChangeOp::SetMed { device: d, iface: i, med } => {
            let cfg = device(configs, d)?;
            let peer_subnet = iface(cfg, i)?
                .prefix()
                .ok_or_else(|| format!("interface {i:?} has no address"))?;
            let bgp = cfg.bgp.as_mut().ok_or_else(|| format!("{d:?} does not run BGP"))?;
            let nb = bgp
                .neighbors
                .iter_mut()
                .find(|n| peer_subnet.contains_ip(n.addr))
                .ok_or_else(|| format!("no BGP neighbor on interface {i:?}"))?;
            let map_name = match &nb.route_map_out {
                Some(m) => m.clone(),
                None => {
                    let m = format!("RM-OUT-{i}");
                    nb.route_map_out = Some(m.clone());
                    m
                }
            };
            match cfg.route_maps.iter_mut().find(|m| m.name == map_name) {
                Some(rm) => {
                    for e in &mut rm.entries {
                        if e.action == RouteMapAction::Permit {
                            e.set_metric = Some(*med);
                        }
                    }
                }
                None => cfg.route_maps.push(RouteMap {
                    name: map_name,
                    entries: vec![RouteMapEntry {
                        seq: 10,
                        action: RouteMapAction::Permit,
                        match_prefix: None,
                        set_local_pref: None,
                        set_metric: Some(*med),
                    }],
                }),
            }
        }
        ChangeOp::AddStaticRoute { device: d, prefix, next_hop } => {
            device(configs, d)?
                .static_routes
                .push(StaticRoute { prefix: *prefix, next_hop: next_hop.clone() });
        }
        ChangeOp::RemoveStaticRoute { device: d, prefix } => {
            let cfg = device(configs, d)?;
            let before = cfg.static_routes.len();
            cfg.static_routes.retain(|r| r.prefix != *prefix);
            if cfg.static_routes.len() == before {
                return Err(format!("no static route for {prefix}"));
            }
        }
        ChangeOp::AddAclEntry { device: d, acl, entry } => {
            let cfg = device(configs, d)?;
            match cfg.acls.iter_mut().find(|a| a.name == *acl) {
                Some(a) => {
                    if a.entries.iter().any(|e| e.seq == entry.seq) {
                        return Err(format!("ACL {acl:?} already has seq {}", entry.seq));
                    }
                    a.entries.push(entry.clone());
                    a.entries.sort_by_key(|e| e.seq);
                }
                None => cfg.acls.push(Acl { name: acl.clone(), entries: vec![entry.clone()] }),
            }
        }
        ChangeOp::RemoveAclEntry { device: d, acl, seq } => {
            let cfg = device(configs, d)?;
            let a = cfg
                .acls
                .iter_mut()
                .find(|a| a.name == *acl)
                .ok_or_else(|| format!("unknown ACL {acl:?}"))?;
            let before = a.entries.len();
            a.entries.retain(|e| e.seq != *seq);
            if a.entries.len() == before {
                return Err(format!("ACL {acl:?} has no seq {seq}"));
            }
        }
        ChangeOp::BindAcl { device: d, iface: i, dir, acl } => {
            let f = iface(device(configs, d)?, i)?;
            match dir {
                AclDir::In => f.acl_in = Some(acl.clone()),
                AclDir::Out => f.acl_out = Some(acl.clone()),
            }
        }
        ChangeOp::UnbindAcl { device: d, iface: i, dir } => {
            let f = iface(device(configs, d)?, i)?;
            match dir {
                AclDir::In => f.acl_in = None,
                AclDir::Out => f.acl_out = None,
            }
        }
        ChangeOp::AddBgpNetwork { device: d, prefix } => {
            let bgp = device(configs, d)?
                .bgp
                .as_mut()
                .ok_or_else(|| format!("{d:?} does not run BGP"))?;
            if !bgp.networks.contains(prefix) {
                bgp.networks.push(*prefix);
            }
        }
        ChangeOp::RemoveBgpNetwork { device: d, prefix } => {
            let bgp = device(configs, d)?
                .bgp
                .as_mut()
                .ok_or_else(|| format!("{d:?} does not run BGP"))?;
            let before = bgp.networks.len();
            bgp.networks.retain(|p| p != prefix);
            if bgp.networks.len() == before {
                return Err(format!("{d:?} does not originate {prefix}"));
            }
        }
        ChangeOp::AddRedistribution { device: d, into, source, metric } => {
            let cfg = device(configs, d)?;
            let r = Redistribution { source: *source, metric: *metric };
            match into {
                RedistTarget::Ospf => cfg
                    .ospf
                    .as_mut()
                    .ok_or_else(|| format!("{d:?} does not run OSPF"))?
                    .redistribute
                    .push(r),
                RedistTarget::Bgp => cfg
                    .bgp
                    .as_mut()
                    .ok_or_else(|| format!("{d:?} does not run BGP"))?
                    .redistribute
                    .push(r),
            }
        }
    }
    Ok(())
}

/// Helper: an address-based static next hop.
pub fn via(ip: Ip) -> NextHop {
    NextHop::Address(ip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{build_configs, ProtocolChoice};
    use crate::topology::ring;

    #[test]
    fn link_failure_sets_shutdown() {
        let mut cfgs = build_configs(&ring(3), ProtocolChoice::Ospf);
        ChangeSet::link_failure("r000", "eth0").apply(&mut cfgs).unwrap();
        assert!(cfgs["r000"].interface("eth0").unwrap().shutdown);
    }

    #[test]
    fn link_cost_change() {
        let mut cfgs = build_configs(&ring(3), ProtocolChoice::Ospf);
        ChangeSet::link_cost("r000", "eth0", 100).apply(&mut cfgs).unwrap();
        assert_eq!(cfgs["r000"].interface("eth0").unwrap().ospf_cost, Some(100));
    }

    #[test]
    fn local_pref_change_edits_route_map() {
        let mut cfgs = build_configs(&ring(3), ProtocolChoice::Bgp);
        ChangeSet::local_pref("r000", "eth0", 150).apply(&mut cfgs).unwrap();
        let cfg = &cfgs["r000"];
        let map = cfg.route_map(&crate::gen::import_map_name("eth0")).unwrap();
        assert_eq!(map.entries[0].set_local_pref, Some(150));
        // Other sessions untouched.
        let other = cfg.route_map(&crate::gen::import_map_name("eth1")).unwrap();
        assert_eq!(other.entries[0].set_local_pref, Some(100));
    }

    #[test]
    fn unknown_targets_error() {
        let mut cfgs = build_configs(&ring(3), ProtocolChoice::Ospf);
        assert!(ChangeSet::link_failure("nope", "eth0").apply(&mut cfgs).is_err());
        assert!(ChangeSet::link_failure("r000", "eth9").apply(&mut cfgs).is_err());
        assert!(ChangeSet::local_pref("r000", "eth0", 1).apply(&mut cfgs).is_err(),
            "LP change on an OSPF-only network must fail");
    }

    #[test]
    fn acl_edit_cycle() {
        let mut cfgs = build_configs(&ring(3), ProtocolChoice::Ospf);
        let entry = AclEntry {
            seq: 10,
            action: AclAction::Deny,
            proto: Some(6),
            src: Prefix::DEFAULT,
            dst: "172.16.0.0/24".parse().unwrap(),
            dst_ports: Some((80, 80)),
        };
        let mut cs = ChangeSet::new();
        cs.push(ChangeOp::AddAclEntry {
            device: "r000".into(),
            acl: "BLOCK".into(),
            entry: entry.clone(),
        });
        cs.push(ChangeOp::BindAcl {
            device: "r000".into(),
            iface: "eth0".into(),
            dir: AclDir::In,
            acl: "BLOCK".into(),
        });
        cs.apply(&mut cfgs).unwrap();
        assert_eq!(cfgs["r000"].acl("BLOCK").unwrap().entries, vec![entry]);
        assert_eq!(cfgs["r000"].interface("eth0").unwrap().acl_in.as_deref(), Some("BLOCK"));

        // Duplicate seq is rejected.
        let dup = ChangeSet {
            ops: vec![ChangeOp::AddAclEntry {
                device: "r000".into(),
                acl: "BLOCK".into(),
                entry: AclEntry { action: AclAction::Permit, ..cfgs["r000"].acl("BLOCK").unwrap().entries[0].clone() },
            }],
        };
        assert!(dup.apply(&mut cfgs).is_err());

        let mut cs = ChangeSet::new();
        cs.push(ChangeOp::RemoveAclEntry { device: "r000".into(), acl: "BLOCK".into(), seq: 10 });
        cs.push(ChangeOp::UnbindAcl { device: "r000".into(), iface: "eth0".into(), dir: AclDir::In });
        cs.apply(&mut cfgs).unwrap();
        assert!(cfgs["r000"].acl("BLOCK").unwrap().entries.is_empty());
        assert!(cfgs["r000"].interface("eth0").unwrap().acl_in.is_none());
    }

    #[test]
    fn coalesce_folds_set_type_ops_last_writer_wins() {
        let sets = vec![
            ChangeSet::link_failure("r000", "eth0"),
            ChangeSet::link_cost("r001", "eth0", 10),
            ChangeSet { ops: vec![ChangeOp::EnableInterface { device: "r000".into(), iface: "eth0".into() }] },
            ChangeSet::link_cost("r001", "eth0", 20),
            ChangeSet::link_failure("r000", "eth1"),
        ];
        let (folded, cancelled) = ChangeSet::coalesce(&sets);
        assert_eq!(cancelled, 2);
        assert_eq!(
            folded.ops,
            vec![
                ChangeOp::EnableInterface { device: "r000".into(), iface: "eth0".into() },
                ChangeOp::SetOspfCost { device: "r001".into(), iface: "eth0".into(), cost: 20 },
                ChangeOp::DisableInterface { device: "r000".into(), iface: "eth1".into() },
            ]
        );

        // Applying the folded set equals applying the originals in turn.
        let mut serial = build_configs(&ring(3), ProtocolChoice::Ospf);
        for s in &sets {
            s.apply(&mut serial).unwrap();
        }
        let mut coalesced = build_configs(&ring(3), ProtocolChoice::Ospf);
        folded.apply(&mut coalesced).unwrap();
        assert_eq!(serial, coalesced);
    }

    #[test]
    fn coalesce_leaves_add_remove_ops_in_order() {
        let p: Prefix = "172.20.0.0/24".parse().unwrap();
        let sets = vec![ChangeSet {
            ops: vec![
                ChangeOp::AddStaticRoute { device: "r000".into(), prefix: p, next_hop: NextHop::Drop },
                ChangeOp::RemoveStaticRoute { device: "r000".into(), prefix: p },
            ],
        }];
        let (folded, cancelled) = ChangeSet::coalesce(&sets);
        assert_eq!(cancelled, 0, "add/remove pairs must not be folded");
        assert_eq!(folded.ops, sets[0].ops);
    }

    #[test]
    fn bgp_network_add_remove() {
        let mut cfgs = build_configs(&ring(3), ProtocolChoice::Bgp);
        let p: Prefix = "172.20.0.0/24".parse().unwrap();
        let mut cs = ChangeSet::new();
        cs.push(ChangeOp::AddBgpNetwork { device: "r000".into(), prefix: p });
        cs.apply(&mut cfgs).unwrap();
        assert!(cfgs["r000"].bgp.as_ref().unwrap().networks.contains(&p));
        let mut cs = ChangeSet::new();
        cs.push(ChangeOp::RemoveBgpNetwork { device: "r000".into(), prefix: p });
        cs.apply(&mut cfgs).unwrap();
        assert!(!cfgs["r000"].bgp.as_ref().unwrap().networks.contains(&p));
    }
}
