//! The configuration AST: a structured, vendor-neutral (Cisco-IOS
//! flavoured) model of one device's configuration.
//!
//! The AST is produced by the parser, printed back by the printer
//! (round-trip canonical), edited by [`crate::change::ChangeSet`], and
//! lowered to input facts by [`crate::facts`].

use crate::types::{Ip, Prefix};

/// One device's full configuration.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DeviceConfig {
    pub hostname: String,
    pub interfaces: Vec<InterfaceConfig>,
    pub ospf: Option<OspfConfig>,
    pub rip: Option<RipConfig>,
    pub bgp: Option<BgpConfig>,
    pub static_routes: Vec<StaticRoute>,
    pub route_maps: Vec<RouteMap>,
    pub acls: Vec<Acl>,
}

impl DeviceConfig {
    pub fn new(hostname: impl Into<String>) -> Self {
        DeviceConfig { hostname: hostname.into(), ..Default::default() }
    }

    pub fn interface(&self, name: &str) -> Option<&InterfaceConfig> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    pub fn interface_mut(&mut self, name: &str) -> Option<&mut InterfaceConfig> {
        self.interfaces.iter_mut().find(|i| i.name == name)
    }

    pub fn route_map(&self, name: &str) -> Option<&RouteMap> {
        self.route_maps.iter().find(|m| m.name == name)
    }

    pub fn acl(&self, name: &str) -> Option<&Acl> {
        self.acls.iter().find(|a| a.name == name)
    }
}

/// An interface stanza.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct InterfaceConfig {
    pub name: String,
    /// `ip address A.B.C.D M.M.M.M`.
    pub address: Option<(Ip, u8)>,
    /// `shutdown` — administratively down.
    pub shutdown: bool,
    /// `ip ospf cost N` (defaults to 1 when OSPF covers the interface).
    pub ospf_cost: Option<u32>,
    /// `ip access-group NAME in`.
    pub acl_in: Option<String>,
    /// `ip access-group NAME out`.
    pub acl_out: Option<String>,
}

impl InterfaceConfig {
    pub fn new(name: impl Into<String>) -> Self {
        InterfaceConfig { name: name.into(), ..Default::default() }
    }

    /// The interface's connected subnet, if addressed.
    pub fn prefix(&self) -> Option<Prefix> {
        self.address.map(|(ip, len)| Prefix::new(ip, len))
    }

    /// The interface's own address.
    pub fn ip(&self) -> Option<Ip> {
        self.address.map(|(ip, _)| ip)
    }
}

/// `router ospf N` stanza.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct OspfConfig {
    pub process_id: u32,
    /// `network P/L area 0` statements: interfaces whose address falls
    /// inside one of these run OSPF.
    pub networks: Vec<Prefix>,
    /// `redistribute <proto> metric N`.
    pub redistribute: Vec<Redistribution>,
}

/// `router rip` stanza. RIP is modeled as classic hop-count distance
/// vector: metric 16 is infinity, so prefixes more than 15 hops away
/// are unreachable.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RipConfig {
    /// `network P/L` statements: interfaces inside run RIP.
    pub networks: Vec<Prefix>,
    pub redistribute: Vec<Redistribution>,
}

/// `router bgp ASN` stanza.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BgpConfig {
    pub asn: u32,
    /// `network P/L` — prefixes this AS originates.
    pub networks: Vec<Prefix>,
    pub neighbors: Vec<BgpNeighbor>,
    pub redistribute: Vec<Redistribution>,
}

/// `neighbor A.B.C.D ...` lines of a BGP stanza.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BgpNeighbor {
    pub addr: Ip,
    pub remote_as: u32,
    /// `neighbor X route-map NAME in`.
    pub route_map_in: Option<String>,
    /// `neighbor X route-map NAME out`.
    pub route_map_out: Option<String>,
}

/// The protocol a redistribution statement pulls routes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RedistSource {
    Connected,
    Static,
    Ospf,
    Rip,
    Bgp,
}

/// `redistribute <source> metric N`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Redistribution {
    pub source: RedistSource,
    pub metric: u32,
}

/// `ip route P/L <next-hop>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticRoute {
    pub prefix: Prefix,
    pub next_hop: NextHop,
}

/// Next hop of a static route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NextHop {
    /// Forward out of a named interface.
    Interface(String),
    /// Forward toward an address (resolved to an interface by the
    /// lowering pass via connected subnets).
    Address(Ip),
    /// Discard (`null0`).
    Drop,
}

/// `route-map NAME <permit|deny> SEQ` stanza with match/set lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMap {
    pub name: String,
    pub entries: Vec<RouteMapEntry>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMapEntry {
    pub seq: u32,
    pub action: RouteMapAction,
    /// `match ip address prefix P/L` — entry applies only to routes
    /// inside `P/L`. `None` matches everything.
    pub match_prefix: Option<Prefix>,
    /// `set local-preference N`.
    pub set_local_pref: Option<u32>,
    /// `set metric N`.
    pub set_metric: Option<u32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteMapAction {
    Permit,
    Deny,
}

/// `ip access-list extended NAME` stanza.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Acl {
    pub name: String,
    pub entries: Vec<AclEntry>,
}

/// One `permit|deny` line of an ACL. Priority is list order (first
/// match wins); `seq` makes that explicit and editable.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AclEntry {
    pub seq: u32,
    pub action: AclAction,
    /// IP protocol number (`ip` = any).
    pub proto: Option<u8>,
    pub src: Prefix,
    pub dst: Prefix,
    /// Destination port range, for TCP/UDP matches.
    pub dst_ports: Option<(u16, u16)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AclAction {
    Permit,
    Deny,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        let mut cfg = DeviceConfig::new("r1");
        cfg.interfaces.push(InterfaceConfig {
            name: "eth0".into(),
            address: Some((Ip::new(10, 0, 0, 1), 30)),
            ..Default::default()
        });
        assert!(cfg.interface("eth0").is_some());
        assert!(cfg.interface("eth1").is_none());
        assert_eq!(cfg.interface("eth0").unwrap().prefix().unwrap().to_string(), "10.0.0.0/30");
        cfg.interface_mut("eth0").unwrap().shutdown = true;
        assert!(cfg.interface("eth0").unwrap().shutdown);
    }
}
