//! Abstract topologies and generators.
//!
//! A [`Topology`] names devices, physical links (with interface names on
//! both ends), and which host prefixes each device originates. Config
//! generators ([`crate::gen`]) turn a topology plus a protocol choice
//! into concrete per-device configurations; the paper's evaluation
//! topology is [`fat_tree`]`(12)` — 180 switches, 864 physical links.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::Prefix;

/// One end of a physical link.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct End {
    pub device: String,
    pub iface: String,
}

/// A physical link between two device interfaces.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinkSpec {
    pub a: End,
    pub b: End,
}

/// An abstract network topology.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// Device hostnames, sorted.
    pub devices: Vec<String>,
    /// Physical links; interface names are unique per device.
    pub links: Vec<LinkSpec>,
    /// Host prefixes originated by each device (e.g., server subnets
    /// attached to edge switches).
    pub host_prefixes: BTreeMap<String, Vec<Prefix>>,
}

impl Topology {
    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of physical (undirected) links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Degree (number of link endpoints) of a device.
    pub fn degree(&self, device: &str) -> usize {
        self.links.iter().filter(|l| l.a.device == device || l.b.device == device).count()
    }

    fn finish(mut self) -> Self {
        self.devices.sort();
        self.devices.dedup();
        self.links.sort();
        self
    }
}

/// Helper tracking the next free interface index per device.
struct IfaceAlloc(BTreeMap<String, u32>);

impl IfaceAlloc {
    fn new() -> Self {
        IfaceAlloc(BTreeMap::new())
    }

    fn next(&mut self, device: &str) -> String {
        let n = self.0.entry(device.to_string()).or_insert(0);
        let name = format!("eth{n}");
        *n += 1;
        name
    }

    fn link(&mut self, topo: &mut Topology, a: &str, b: &str) {
        let ia = self.next(a);
        let ib = self.next(b);
        topo.links.push(LinkSpec {
            a: End { device: a.to_string(), iface: ia },
            b: End { device: b.to_string(), iface: ib },
        });
    }
}

/// The `i`-th host prefix: `172.16.0.0/12` carved into /24s.
pub fn host_prefix(i: u32) -> Prefix {
    assert!(i < (1 << 12), "host prefix index {i} out of the /12 space");
    Prefix::new(crate::types::Ip(0xAC10_0000 | (i << 8)), 24)
}

/// A `k`-ary fat tree (`k` even): `(k/2)²` core switches, `k` pods of
/// `k/2` aggregation and `k/2` edge switches. Every edge switch
/// originates one host /24. `fat_tree(12)` is the paper's evaluation
/// topology: 180 devices, 864 links.
pub fn fat_tree(k: u32) -> Topology {
    assert!(k >= 2 && k.is_multiple_of(2), "fat tree arity must be even, got {k}");
    let half = k / 2;
    let mut topo = Topology::default();
    let mut alloc = IfaceAlloc::new();

    let core = |i: u32| format!("core{i:03}");
    let aggr = |p: u32, a: u32| format!("pod{p:02}-aggr{a:02}");
    let edge = |p: u32, e: u32| format!("pod{p:02}-edge{e:02}");

    for i in 0..half * half {
        topo.devices.push(core(i));
    }
    let mut host_idx = 0u32;
    for p in 0..k {
        for a in 0..half {
            topo.devices.push(aggr(p, a));
        }
        for e in 0..half {
            let name = edge(p, e);
            topo.host_prefixes.insert(name.clone(), vec![host_prefix(host_idx)]);
            host_idx += 1;
            topo.devices.push(name);
        }
    }

    for p in 0..k {
        // Edge ↔ aggregation: full bipartite within the pod.
        for e in 0..half {
            for a in 0..half {
                let en = edge(p, e);
                let an = aggr(p, a);
                alloc.link(&mut topo, &en, &an);
            }
        }
        // Aggregation `a` ↔ core group `a`.
        for a in 0..half {
            for c in 0..half {
                let an = aggr(p, a);
                let cn = core(a * half + c);
                alloc.link(&mut topo, &an, &cn);
            }
        }
    }

    topo.finish()
}

/// A ring of `n` devices, each originating one host /24.
pub fn ring(n: u32) -> Topology {
    assert!(n >= 3, "ring needs at least 3 devices");
    let mut topo = Topology::default();
    let mut alloc = IfaceAlloc::new();
    let name = |i: u32| format!("r{i:03}");
    for i in 0..n {
        topo.devices.push(name(i));
        topo.host_prefixes.insert(name(i), vec![host_prefix(i)]);
    }
    for i in 0..n {
        let a = name(i);
        let b = name((i + 1) % n);
        alloc.link(&mut topo, &a, &b);
    }
    topo.finish()
}

/// A `w`×`h` grid, each device originating one host /24.
pub fn grid(w: u32, h: u32) -> Topology {
    assert!(w >= 1 && h >= 1 && w * h >= 2, "grid too small");
    let mut topo = Topology::default();
    let mut alloc = IfaceAlloc::new();
    let name = |x: u32, y: u32| format!("g{x:02}x{y:02}");
    let mut i = 0;
    for x in 0..w {
        for y in 0..h {
            topo.devices.push(name(x, y));
            topo.host_prefixes.insert(name(x, y), vec![host_prefix(i)]);
            i += 1;
        }
    }
    for x in 0..w {
        for y in 0..h {
            if x + 1 < w {
                let (a, b) = (name(x, y), name(x + 1, y));
                alloc.link(&mut topo, &a, &b);
            }
            if y + 1 < h {
                let (a, b) = (name(x, y), name(x, y + 1));
                alloc.link(&mut topo, &a, &b);
            }
        }
    }
    topo.finish()
}

/// A connected random graph: a random spanning tree plus each extra
/// edge with probability `p`. Deterministic for a given `seed`.
pub fn random_connected(n: u32, p: f64, seed: u64) -> Topology {
    assert!(n >= 2, "need at least 2 devices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topo = Topology::default();
    let mut alloc = IfaceAlloc::new();
    let name = |i: u32| format!("r{i:03}");
    for i in 0..n {
        topo.devices.push(name(i));
        topo.host_prefixes.insert(name(i), vec![host_prefix(i)]);
    }
    let mut linked: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    // Random spanning tree: attach each node to a random earlier node.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        linked.insert((j, i));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !linked.contains(&(i, j)) && rng.gen_bool(p) {
                linked.insert((i, j));
            }
        }
    }
    for (i, j) in linked {
        let (a, b) = (name(i), name(j));
        alloc.link(&mut topo, &a, &b);
    }
    topo.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_paper_dimensions() {
        // The paper's evaluation topology: 180 nodes, 864 links.
        let t = fat_tree(12);
        assert_eq!(t.num_devices(), 180);
        assert_eq!(t.num_links(), 864);
        // 72 edge switches originate one /24 each.
        assert_eq!(t.host_prefixes.len(), 72);
    }

    #[test]
    fn fat_tree_small_structure() {
        let t = fat_tree(4);
        assert_eq!(t.num_devices(), 4 + 8 + 8); // 4 core, 8 aggr, 8 edge
        assert_eq!(t.num_links(), 32);
        // Every edge switch has k/2 = 2 uplinks.
        assert_eq!(t.degree("pod00-edge00"), 2);
        // Every aggregation switch has k/2 down + k/2 up = 4.
        assert_eq!(t.degree("pod00-aggr00"), 4);
        // Every core switch connects to all k pods.
        assert_eq!(t.degree("core000"), 4);
    }

    #[test]
    fn interface_names_unique_per_device() {
        let t = fat_tree(4);
        let mut seen = std::collections::BTreeSet::new();
        for l in &t.links {
            assert!(seen.insert((l.a.device.clone(), l.a.iface.clone())), "dup {:?}", l.a);
            assert!(seen.insert((l.b.device.clone(), l.b.iface.clone())), "dup {:?}", l.b);
        }
    }

    #[test]
    fn ring_and_grid_shapes() {
        let r = ring(5);
        assert_eq!(r.num_devices(), 5);
        assert_eq!(r.num_links(), 5);
        assert_eq!(r.degree("r000"), 2);

        let g = grid(3, 4);
        assert_eq!(g.num_devices(), 12);
        assert_eq!(g.num_links(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert_eq!(g.degree("g00x00"), 2);
        assert_eq!(g.degree("g01x01"), 4);
    }

    #[test]
    fn random_topology_is_connected_and_deterministic() {
        let t1 = random_connected(20, 0.1, 42);
        let t2 = random_connected(20, 0.1, 42);
        assert_eq!(t1.links, t2.links);
        assert!(t1.num_links() >= 19, "spanning tree guarantees n-1 links");
        // Connectivity via union-find.
        let idx: BTreeMap<&str, usize> =
            t1.devices.iter().enumerate().map(|(i, d)| (d.as_str(), i)).collect();
        let mut parent: Vec<usize> = (0..t1.devices.len()).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for l in &t1.links {
            let (a, b) = (idx[l.a.device.as_str()], idx[l.b.device.as_str()]);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for i in 0..t1.devices.len() {
            assert_eq!(find(&mut parent, i), root, "device {i} disconnected");
        }
    }

    #[test]
    fn host_prefixes_disjoint() {
        for i in 0..100 {
            for j in (i + 1)..100 {
                assert!(!host_prefix(i).overlaps(host_prefix(j)));
            }
        }
    }
}
