//! Canonical printer: renders a [`DeviceConfig`] back to configuration
//! text. `parse(print(cfg)) == cfg` — the round trip is exercised by
//! property tests — which is what lets RealConfig treat configuration
//! *text* diffs and *AST* diffs interchangeably.

use std::fmt::Write;

use crate::ast::*;
use crate::types::{Ip, Prefix};

fn mask_str(len: u8) -> String {
    let m = if len == 0 { 0 } else { u32::MAX << (32 - len) };
    Ip(m).to_string()
}

fn prefix_or_any(p: Prefix) -> String {
    if p == Prefix::DEFAULT {
        "any".to_string()
    } else {
        p.to_string()
    }
}

/// Render a device configuration as canonical text.
pub fn print_config(cfg: &DeviceConfig) -> String {
    let mut s = String::new();
    let w = &mut s;

    if !cfg.hostname.is_empty() {
        writeln!(w, "hostname {}", cfg.hostname).unwrap();
        writeln!(w, "!").unwrap();
    }

    for iface in &cfg.interfaces {
        writeln!(w, "interface {}", iface.name).unwrap();
        if let Some((ip, len)) = iface.address {
            writeln!(w, " ip address {} {}", ip, mask_str(len)).unwrap();
        }
        if let Some(c) = iface.ospf_cost {
            writeln!(w, " ip ospf cost {c}").unwrap();
        }
        if let Some(a) = &iface.acl_in {
            writeln!(w, " ip access-group {a} in").unwrap();
        }
        if let Some(a) = &iface.acl_out {
            writeln!(w, " ip access-group {a} out").unwrap();
        }
        if iface.shutdown {
            writeln!(w, " shutdown").unwrap();
        }
        writeln!(w, "!").unwrap();
    }

    if let Some(ospf) = &cfg.ospf {
        writeln!(w, "router ospf {}", ospf.process_id).unwrap();
        for p in &ospf.networks {
            writeln!(w, " network {p} area 0").unwrap();
        }
        for r in &ospf.redistribute {
            writeln!(w, " redistribute {} metric {}", redist_str(r.source), r.metric).unwrap();
        }
        writeln!(w, "!").unwrap();
    }

    if let Some(rip) = &cfg.rip {
        writeln!(w, "router rip").unwrap();
        for p in &rip.networks {
            writeln!(w, " network {p}").unwrap();
        }
        for r in &rip.redistribute {
            writeln!(w, " redistribute {} metric {}", redist_str(r.source), r.metric).unwrap();
        }
        writeln!(w, "!").unwrap();
    }

    if let Some(bgp) = &cfg.bgp {
        writeln!(w, "router bgp {}", bgp.asn).unwrap();
        for p in &bgp.networks {
            writeln!(w, " network {p}").unwrap();
        }
        for nb in &bgp.neighbors {
            writeln!(w, " neighbor {} remote-as {}", nb.addr, nb.remote_as).unwrap();
            if let Some(rm) = &nb.route_map_in {
                writeln!(w, " neighbor {} route-map {} in", nb.addr, rm).unwrap();
            }
            if let Some(rm) = &nb.route_map_out {
                writeln!(w, " neighbor {} route-map {} out", nb.addr, rm).unwrap();
            }
        }
        for r in &bgp.redistribute {
            writeln!(w, " redistribute {} metric {}", redist_str(r.source), r.metric).unwrap();
        }
        writeln!(w, "!").unwrap();
    }

    for sr in &cfg.static_routes {
        let nh = match &sr.next_hop {
            NextHop::Interface(i) => i.clone(),
            NextHop::Address(a) => a.to_string(),
            NextHop::Drop => "null0".to_string(),
        };
        writeln!(w, "ip route {} {}", sr.prefix, nh).unwrap();
    }
    if !cfg.static_routes.is_empty() {
        writeln!(w, "!").unwrap();
    }

    for rm in &cfg.route_maps {
        for e in &rm.entries {
            let action = match e.action {
                RouteMapAction::Permit => "permit",
                RouteMapAction::Deny => "deny",
            };
            writeln!(w, "route-map {} {} {}", rm.name, action, e.seq).unwrap();
            if let Some(p) = e.match_prefix {
                writeln!(w, " match ip address prefix {p}").unwrap();
            }
            if let Some(lp) = e.set_local_pref {
                writeln!(w, " set local-preference {lp}").unwrap();
            }
            if let Some(m) = e.set_metric {
                writeln!(w, " set metric {m}").unwrap();
            }
        }
        writeln!(w, "!").unwrap();
    }

    for acl in &cfg.acls {
        writeln!(w, "ip access-list extended {}", acl.name).unwrap();
        for e in &acl.entries {
            let action = match e.action {
                AclAction::Permit => "permit",
                AclAction::Deny => "deny",
            };
            let proto = match e.proto {
                None => "ip".to_string(),
                Some(1) => "icmp".to_string(),
                Some(6) => "tcp".to_string(),
                Some(17) => "udp".to_string(),
                Some(n) => n.to_string(),
            };
            let mut line =
                format!(" {} {} {} {} {}", e.seq, action, proto, prefix_or_any(e.src), prefix_or_any(e.dst));
            if let Some((lo, hi)) = e.dst_ports {
                if lo == hi {
                    write!(line, " eq {lo}").unwrap();
                } else {
                    write!(line, " range {lo} {hi}").unwrap();
                }
            }
            writeln!(w, "{line}").unwrap();
        }
        writeln!(w, "!").unwrap();
    }

    s
}

fn redist_str(s: RedistSource) -> &'static str {
    match s {
        RedistSource::Connected => "connected",
        RedistSource::Static => "static",
        RedistSource::Ospf => "ospf",
        RedistSource::Rip => "rip",
        RedistSource::Bgp => "bgp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_config;
    use crate::types::Ip;

    #[test]
    fn round_trip_sample() {
        let mut cfg = DeviceConfig::new("r9");
        cfg.interfaces.push(InterfaceConfig {
            name: "eth0".into(),
            address: Some((Ip::new(10, 0, 0, 1), 30)),
            ospf_cost: Some(7),
            acl_in: Some("A".into()),
            acl_out: None,
            shutdown: true,
        });
        cfg.ospf = Some(OspfConfig {
            process_id: 1,
            networks: vec!["10.0.0.0/8".parse().unwrap()],
            redistribute: vec![Redistribution { source: RedistSource::Bgp, metric: 5 }],
        });
        cfg.bgp = Some(BgpConfig {
            asn: 65000,
            networks: vec!["172.16.0.0/24".parse().unwrap()],
            neighbors: vec![BgpNeighbor {
                addr: Ip::new(10, 0, 0, 2),
                remote_as: 65001,
                route_map_in: Some("LP".into()),
                route_map_out: None,
            }],
            redistribute: vec![],
        });
        cfg.static_routes.push(StaticRoute {
            prefix: "0.0.0.0/0".parse().unwrap(),
            next_hop: NextHop::Address(Ip::new(10, 0, 0, 2)),
        });
        cfg.route_maps.push(RouteMap {
            name: "LP".into(),
            entries: vec![RouteMapEntry {
                seq: 10,
                action: RouteMapAction::Permit,
                match_prefix: None,
                set_local_pref: Some(150),
                set_metric: None,
            }],
        });
        cfg.acls.push(Acl {
            name: "A".into(),
            entries: vec![AclEntry {
                seq: 10,
                action: AclAction::Deny,
                proto: Some(6),
                src: Prefix::DEFAULT,
                dst: "172.16.0.0/24".parse().unwrap(),
                dst_ports: Some((80, 443)),
            }],
        });

        let text = print_config(&cfg);
        let reparsed = parse_config(&text).unwrap();
        assert_eq!(reparsed, cfg, "round trip failed for:\n{text}");
    }

    #[test]
    fn empty_config_prints_empty() {
        assert_eq!(print_config(&DeviceConfig::default()), "");
    }
}
