//! Line-level configuration diffs.
//!
//! The paper frames configuration changes as "insertions or deletions
//! of configuration lines" (a modification is a deletion plus an
//! insertion). This module computes that view — an LCS-based diff of
//! two configuration texts — which the verifier reports alongside the
//! semantic fact delta, mirroring how operators and the management
//! literature count change sizes.

/// One diffed line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineEdit {
    /// Present only in the new text.
    Insert(String),
    /// Present only in the old text.
    Delete(String),
}

/// A line diff between two texts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LineDiff {
    pub edits: Vec<LineEdit>,
}

impl LineDiff {
    pub fn insertions(&self) -> usize {
        self.edits.iter().filter(|e| matches!(e, LineEdit::Insert(_))).count()
    }

    pub fn deletions(&self) -> usize {
        self.edits.iter().filter(|e| matches!(e, LineEdit::Delete(_))).count()
    }

    /// Total changed lines (insertions + deletions).
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }
}

impl std::fmt::Display for LineDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for e in &self.edits {
            match e {
                LineEdit::Insert(l) => writeln!(f, "+ {l}")?,
                LineEdit::Delete(l) => writeln!(f, "- {l}")?,
            }
        }
        Ok(())
    }
}

/// Diff two texts line-by-line using a longest-common-subsequence
/// alignment. Separator (`!`) and blank lines are ignored — they carry
/// no configuration meaning.
pub fn diff_lines(old: &str, new: &str) -> LineDiff {
    let filter = |s: &str| {
        s.lines()
            .map(str::trim_end)
            .filter(|l| !l.trim().is_empty() && l.trim() != "!")
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let a = filter(old);
    let b = filter(new);

    // Standard DP LCS table. Configurations are small (tens to a few
    // hundred lines), so O(n·m) is fine.
    let (n, m) = (a.len(), b.len());
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut edits = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            edits.push(LineEdit::Delete(a[i].clone()));
            i += 1;
        } else {
            edits.push(LineEdit::Insert(b[j].clone()));
            j += 1;
        }
    }
    edits.extend(a[i..].iter().map(|l| LineEdit::Delete(l.clone())));
    edits.extend(b[j..].iter().map(|l| LineEdit::Insert(l.clone())));
    LineDiff { edits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_empty_diff() {
        let t = "a\nb\nc\n";
        assert!(diff_lines(t, t).is_empty());
    }

    #[test]
    fn separator_lines_ignored() {
        assert!(diff_lines("a\n!\nb\n", "a\nb\n!\n!\n").is_empty());
    }

    #[test]
    fn single_modification_is_delete_plus_insert() {
        let old = "interface eth0\n ip ospf cost 1\n";
        let new = "interface eth0\n ip ospf cost 100\n";
        let d = diff_lines(old, new);
        assert_eq!(d.insertions(), 1);
        assert_eq!(d.deletions(), 1);
        assert_eq!(
            d.edits,
            vec![
                LineEdit::Delete(" ip ospf cost 1".into()),
                LineEdit::Insert(" ip ospf cost 100".into()),
            ]
        );
    }

    #[test]
    fn pure_insertion_and_deletion() {
        let d = diff_lines("a\nc\n", "a\nb\nc\n");
        assert_eq!(d.edits, vec![LineEdit::Insert("b".into())]);
        let d = diff_lines("a\nb\nc\n", "a\nc\n");
        assert_eq!(d.edits, vec![LineEdit::Delete("b".into())]);
    }

    #[test]
    fn display_format() {
        let d = diff_lines("x\n", "y\n");
        assert_eq!(d.to_string(), "- x\n+ y\n");
    }

    #[test]
    fn lcs_finds_minimal_alignment() {
        // The diff must not report the common suffix as changed.
        let old = "a\nb\nc\nd\ne\n";
        let new = "z\nb\nc\nd\ne\n";
        let d = diff_lines(old, new);
        assert_eq!(d.len(), 2);
    }
}
