//! Change-stream and arrival-profile generators shared by the `churn`
//! and `throughput` benchmark binaries.
//!
//! Two stream *shapes* (what changes happen) and two arrival *profiles*
//! (when they happen):
//!
//! - [`uniform_churn`]: the long-running maintenance stream — random
//!   link fail/restore events, stateful so it only fails up links and
//!   only restores down ones.
//! - [`maintenance_bursts`]: clustered maintenance windows — a link
//!   group taken down and brought back up (the folded burst is a net
//!   no-op), alternating with rule-swap storms where a cost or
//!   local-pref value flip-flops and only the last write matters. This
//!   is the workload batch coalescing exists for.
//! - [`poisson_arrivals`]: memoryless arrivals with a given mean gap.
//! - [`burst_arrivals`]: near-simultaneous arrivals inside each window,
//!   long gaps between windows.
//!
//! All generators are seeded and deterministic: the same `(workload,
//! seed)` produces the same stream on every machine, which is what lets
//! CI gate the throughput harness's final state against a committed
//! baseline.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rc_netcfg::gen::ProtocolChoice;
use rc_netcfg::{ChangeOp, ChangeSet};

use crate::Workload;

/// Stateful uniform churn: `changes` link fail/restore events, failing
/// only currently-up links and restoring only currently-down ones (so
/// every event is a real configuration change).
pub fn uniform_churn(w: &Workload, changes: usize, seed: u64) -> Vec<ChangeSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ports = w.sample_ports(w.topo.num_links(), seed);
    let mut down: Vec<(String, String)> = Vec::new();
    let mut out = Vec::with_capacity(changes);
    while out.len() < changes {
        if !down.is_empty() && (rng.gen_bool(0.5) || down.len() > 5) {
            let (dev, iface) = down.swap_remove(rng.gen_range(0..down.len()));
            out.push(ChangeSet {
                ops: vec![ChangeOp::EnableInterface { device: dev, iface }],
            });
        } else {
            let (dev, iface) = ports[rng.gen_range(0..ports.len())].clone();
            if down.iter().any(|(d, i)| *d == dev && *i == iface) {
                continue;
            }
            down.push((dev.clone(), iface.clone()));
            out.push(ChangeSet::link_failure(&dev, &iface));
        }
    }
    out
}

/// Maintenance windows: `windows` bursts of changes, each targeting one
/// device's link group. Even windows bounce the group (every interface
/// down, then every interface up — coalescing folds the burst to a net
/// no-op); odd windows are rule-swap storms (the group's OSPF cost, or
/// local-pref under BGP, flip-flops several times — only the last write
/// per interface survives folding). RIP has neither knob, so all its
/// windows bounce.
///
/// Returns one `Vec<ChangeSet>` per window, preserving window
/// boundaries so [`burst_arrivals`] can cluster arrival times.
pub fn maintenance_bursts(w: &Workload, windows: usize, seed: u64) -> Vec<Vec<ChangeSet>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ports = w.sample_ports(w.topo.num_links(), seed ^ 0xB0057);
    let mut by_dev: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (dev, iface) in &ports {
        by_dev.entry(dev.clone()).or_default().push(iface.clone());
    }
    let devices: Vec<(String, Vec<String>)> = by_dev.into_iter().collect();
    let mut out = Vec::with_capacity(windows);
    for win in 0..windows {
        let (dev, ifaces) = &devices[rng.gen_range(0..devices.len())];
        let group: Vec<&String> = ifaces.iter().take(4).collect();
        let mut burst = Vec::new();
        let storm = win % 2 == 1 && w.proto != ProtocolChoice::Rip;
        if storm {
            let flips = 3 + rng.gen_range(0..3usize);
            for flip in 0..flips {
                for iface in &group {
                    let v = if flip % 2 == 0 { 100 } else { 1 };
                    burst.push(match w.proto {
                        ProtocolChoice::Bgp => ChangeSet::local_pref(dev, iface, 100 + v),
                        _ => ChangeSet::link_cost(dev, iface, v),
                    });
                }
            }
        } else {
            for iface in &group {
                burst.push(ChangeSet::link_failure(dev, iface));
            }
            for iface in &group {
                burst.push(ChangeSet {
                    ops: vec![ChangeOp::EnableInterface {
                        device: dev.clone(),
                        iface: (*iface).clone(),
                    }],
                });
            }
        }
        out.push(burst);
    }
    out
}

/// Poisson arrival times: `n` arrivals with exponentially distributed
/// inter-arrival gaps of mean `mean_gap_us` microseconds, starting at 0.
pub fn poisson_arrivals(n: usize, mean_gap_us: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += -u.ln() * mean_gap_us;
            t as u64
        })
        .collect()
}

/// Clustered arrival times for bursts of the given sizes: changes
/// inside a burst arrive `intra_us` apart, consecutive bursts are
/// separated by a `gap_us` quiet period.
pub fn burst_arrivals(burst_sizes: &[usize], intra_us: u64, gap_us: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(burst_sizes.iter().sum());
    let mut t = 0u64;
    for (bi, &n) in burst_sizes.iter().enumerate() {
        if bi > 0 {
            t += gap_us;
        }
        for j in 0..n {
            out.push(t + j as u64 * intra_us);
        }
        t += n.saturating_sub(1) as u64 * intra_us;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_churn_is_deterministic_and_applies() {
        let w = Workload::fat_tree(4, ProtocolChoice::Ospf);
        let a = uniform_churn(&w, 30, 7);
        let b = uniform_churn(&w, 30, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        let mut cfgs = w.configs.clone();
        for cs in &a {
            cs.apply(&mut cfgs).expect("every churn event applies");
        }
    }

    #[test]
    fn maintenance_bursts_apply_and_bounce_windows_cancel() {
        let w = Workload::fat_tree(4, ProtocolChoice::Ospf);
        let bursts = maintenance_bursts(&w, 6, 11);
        assert_eq!(bursts.len(), 6);
        let mut cfgs = w.configs.clone();
        for burst in &bursts {
            for cs in burst {
                cs.apply(&mut cfgs).expect("every window change applies");
            }
        }
        // A bounce window (even index) folds to a net no-op.
        let before = w.configs.clone();
        let (folded, cancelled) = ChangeSet::coalesce(&bursts[0]);
        assert!(cancelled > 0);
        let mut after = before.clone();
        folded.apply(&mut after).unwrap();
        assert_eq!(before, after, "down-then-up window must cancel out");
    }

    #[test]
    fn arrival_profiles_are_sorted() {
        let p = poisson_arrivals(50, 300.0, 3);
        assert_eq!(p.len(), 50);
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
        let b = burst_arrivals(&[4, 8, 2], 1, 10_000);
        assert_eq!(b.len(), 14);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        // The inter-burst gap dominates the intra-burst spacing.
        assert!(b[4] - b[3] >= 10_000);
    }
}
