//! Benchmark harness reproducing the paper's evaluation (§5).
//!
//! The paper's setting: a fat-tree topology with 180 nodes and 864
//! links (k = 12), running OSPF or BGP; three change types —
//! LinkFailure (deactivate an interface), LC (OSPF link cost 1 → 100),
//! LP (BGP local preference 100 → 150 on one interface's imports).
//!
//! [`run_table2`] regenerates Table 2 (data plane generation time:
//! from-scratch vs incremental) and [`run_table3`] regenerates Table 3
//! (model update and policy checking, including the insertion-first vs
//! deletion-first ordering effect). Absolute numbers differ from the
//! paper's testbed; the reproduction targets the *shape*: incremental
//! time a small percentage of full recomputation, <1% of rules
//! affected, insertion-first beating deletion-first, policy checking on
//! a few percent of pairs.

pub mod stream;

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

use rc_netcfg::facts::{fact_delta, lower, Registry};
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, Topology};
use rc_netcfg::{ChangeSet, DeviceConfig};
use rc_routing::engine::RoutingEngine;
use realconfig::{RealConfig, UpdateOrder};

/// The paper's change types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PaperChange {
    /// Deactivate an interface.
    LinkFailure,
    /// OSPF link cost 1 → 100.
    CostChange,
    /// BGP local preference 100 → 150 on one interface's imports.
    LocalPref,
}

impl PaperChange {
    pub fn label(self) -> &'static str {
        match self {
            PaperChange::LinkFailure => "LinkFailure",
            PaperChange::CostChange => "LC",
            PaperChange::LocalPref => "LP",
        }
    }
}

/// A benchmark workload: a generated fat-tree network.
pub struct Workload {
    pub k: u32,
    pub proto: ProtocolChoice,
    pub topo: Topology,
    pub configs: BTreeMap<String, DeviceConfig>,
}

impl Workload {
    pub fn fat_tree(k: u32, proto: ProtocolChoice) -> Self {
        let topo = fat_tree(k);
        let configs = build_configs(&topo, proto);
        Workload { k, proto, topo, configs }
    }

    /// Deterministically sample `n` link endpoints (device, interface)
    /// spread over the topology.
    pub fn sample_ports(&self, n: usize, seed: u64) -> Vec<(String, String)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ports: Vec<(String, String)> = self
            .topo
            .links
            .iter()
            .map(|l| (l.a.device.clone(), l.a.iface.clone()))
            .collect();
        ports.shuffle(&mut rng);
        ports.truncate(n);
        ports
    }

    /// The paper's change at a sampled port, plus the change that
    /// reverts it.
    pub fn change_at(&self, change: PaperChange, port: &(String, String)) -> (ChangeSet, ChangeSet) {
        let (dev, iface) = port;
        match change {
            PaperChange::LinkFailure => (
                ChangeSet::link_failure(dev, iface),
                ChangeSet {
                    ops: vec![rc_netcfg::ChangeOp::EnableInterface {
                        device: dev.clone(),
                        iface: iface.clone(),
                    }],
                },
            ),
            PaperChange::CostChange => (
                ChangeSet::link_cost(dev, iface, 100),
                ChangeSet::link_cost(dev, iface, 1),
            ),
            PaperChange::LocalPref => (
                ChangeSet::local_pref(dev, iface, 150),
                ChangeSet::local_pref(dev, iface, 100),
            ),
        }
    }

    /// The change types applicable to this workload's protocol.
    pub fn changes(&self) -> Vec<PaperChange> {
        match self.proto {
            ProtocolChoice::Ospf => vec![PaperChange::LinkFailure, PaperChange::CostChange],
            // RIP has neither link costs nor local preferences: only
            // the failure change applies.
            ProtocolChoice::Rip => vec![PaperChange::LinkFailure],
            ProtocolChoice::Bgp => vec![PaperChange::LinkFailure, PaperChange::LocalPref],
        }
    }
}

/// One protocol row of Table 2.
#[derive(Clone, Debug, Serialize)]
pub struct Table2Row {
    pub proto: String,
    pub k: u32,
    pub nodes: usize,
    pub links: usize,
    /// Custom-algorithm from-scratch (the paper's Batfish column), µs.
    pub baseline_full_us: u128,
    /// General-purpose engine from scratch (RealConfig Full), µs.
    pub rc_full_us: u128,
    /// Incremental, averaged over samples, µs: LinkFailure.
    pub link_failure_us: u128,
    /// Incremental, averaged: LC (OSPF) or LP (BGP).
    pub lc_lp_us: u128,
    pub samples: usize,
    /// Logical CPUs of the machine that produced the row (context for
    /// the timing columns; not a gate field).
    pub host_cores: usize,
    /// Process peak RSS in KiB when the row was finalized (not a gate
    /// field; cumulative across rows of one run).
    pub peak_rss_kb: u64,
    /// Engine telemetry at the end of the run (per-operator work,
    /// queue depths, compaction counters).
    pub metrics: rc_telemetry::MetricsSnapshot,
}

impl Table2Row {
    pub fn pct_link_failure(&self) -> f64 {
        100.0 * self.link_failure_us as f64 / self.rc_full_us as f64
    }

    pub fn pct_lc_lp(&self) -> f64 {
        100.0 * self.lc_lp_us as f64 / self.rc_full_us as f64
    }
}

/// Time one incremental change (apply only), restoring afterwards.
/// Uses a bare routing engine — Table 2 measures data plane
/// *generation*, the pipeline's first stage.
struct EngineHarness {
    engine: RoutingEngine,
    reg: Registry,
    configs: BTreeMap<String, DeviceConfig>,
    facts: std::collections::BTreeSet<rc_netcfg::Fact>,
    telemetry: rc_telemetry::Telemetry,
}

impl EngineHarness {
    fn new(configs: BTreeMap<String, DeviceConfig>) -> (Self, Duration) {
        let mut reg = Registry::new();
        let lowered = lower(&configs, &mut reg);
        let mut engine = RoutingEngine::new();
        let telemetry = rc_telemetry::Telemetry::new();
        engine.set_telemetry(telemetry.clone());
        let t = Instant::now();
        engine
            .apply(lowered.facts.iter().map(|f| (f.clone(), 1)))
            .expect("workload converges");
        let full = t.elapsed();
        (EngineHarness { engine, reg, configs, facts: lowered.facts, telemetry }, full)
    }

    /// Apply a change set; returns the data plane generation time.
    fn apply(&mut self, cs: &ChangeSet) -> Duration {
        cs.apply(&mut self.configs).expect("change applies");
        let lowered = lower(&self.configs, &mut self.reg);
        let delta = fact_delta(&self.facts, &lowered.facts);
        self.facts = lowered.facts;
        let t = Instant::now();
        self.engine.apply(delta).expect("workload converges");
        t.elapsed()
    }
}

/// Regenerate Table 2 for one protocol.
pub fn run_table2(k: u32, proto: ProtocolChoice, samples: usize, seed: u64) -> Table2Row {
    let w = Workload::fat_tree(k, proto);

    let (baseline_full, _) =
        realconfig::full_dataplane_baseline(&w.configs).expect("baseline converges");

    let (mut harness, rc_full) = EngineHarness::new(w.configs.clone());

    let ports = w.sample_ports(samples, seed);
    let mut avg = BTreeMap::new();
    for change in w.changes() {
        let mut total = Duration::ZERO;
        for port in &ports {
            let (apply, restore) = w.change_at(change, port);
            total += harness.apply(&apply);
            harness.apply(&restore);
            harness.engine.compact();
        }
        avg.insert(change.label(), total / ports.len() as u32);
    }

    Table2Row {
        proto: match proto {
            ProtocolChoice::Ospf => "OSPF".into(),
            ProtocolChoice::Rip => "RIP".into(),
            ProtocolChoice::Bgp => "BGP".into(),
        },
        k,
        nodes: w.topo.num_devices(),
        links: w.topo.num_links(),
        baseline_full_us: baseline_full.as_micros(),
        rc_full_us: rc_full.as_micros(),
        link_failure_us: avg["LinkFailure"].as_micros(),
        lc_lp_us: avg
            .iter()
            .find(|(l, _)| **l != "LinkFailure")
            .map(|(_, d)| d.as_micros())
            .unwrap_or_default(),
        samples: ports.len(),
        host_cores: host_cores(),
        peak_rss_kb: peak_rss_kb(),
        metrics: harness.telemetry.snapshot(),
    }
}

/// One change-type row of Table 3 (per update order).
#[derive(Clone, Debug, Serialize)]
pub struct Table3Row {
    pub change: String,
    pub order: String,
    /// Predicate backend the run used ("bdd" or "atoms"). Deliberately
    /// not a gate field: the equivalence gate compares an atoms run
    /// against the committed (bdd) baseline on everything else.
    pub backend: String,
    pub rules_inserted: usize,
    pub rules_removed: usize,
    pub rules_total: usize,
    /// EC move events (the order-sensitive churn the paper reports as
    /// "#ECs").
    pub ec_moves: usize,
    /// Net affected ECs.
    pub affected_ecs: usize,
    /// Model update time (T1), µs.
    pub t1_us: u128,
    pub affected_pairs: usize,
    pub total_pairs: usize,
    /// Policy checking time (T2), µs.
    pub t2_us: u128,
    /// Ablation: time of a non-incremental full policy recheck on the
    /// same state, µs (what T2 would cost without incrementality).
    pub t2_full_us: u128,
    pub samples: usize,
    /// Logical CPUs of the machine that produced the row (context for
    /// the timing columns; not a gate field).
    pub host_cores: usize,
    /// Process peak RSS in KiB when the row was finalized (not a gate
    /// field; cumulative across rows of one run).
    pub peak_rss_kb: u64,
    /// Pipeline-wide telemetry at the end of this row's run (all three
    /// stages, cumulative over the sampled changes).
    pub metrics: rc_telemetry::MetricsSnapshot,
}

/// Regenerate Table 3: model update + policy checking on the BGP fat
/// tree, for both update orders, averaged over sampled changes.
pub fn run_table3(k: u32, samples: usize, seed: u64) -> Vec<Table3Row> {
    run_table3_opts(k, samples, seed, false, realconfig::default_backend())
}

/// [`run_table3`] with an ablation switch and an explicit predicate
/// backend. `full_scan` disables the EC model's dst-interval candidate
/// index, reverting every rule transfer to the O(#ECs) scan; `backend`
/// selects BDDs or Delta-net interval atoms (the fat-tree workload is
/// pure dst-prefix routing, so both encode it). All non-timing fields
/// are identical across every combination (the property suite and CI's
/// equivalence gate enforce this); only T1/T2 move.
pub fn run_table3_opts(
    k: u32,
    samples: usize,
    seed: u64,
    full_scan: bool,
    backend: realconfig::PredKind,
) -> Vec<Table3Row> {
    let w = Workload::fat_tree(k, ProtocolChoice::Bgp);
    let ports = w.sample_ports(samples, seed);
    let mut rows = Vec::new();

    for change in [PaperChange::LinkFailure, PaperChange::LocalPref] {
        for order in [UpdateOrder::InsertFirst, UpdateOrder::DeleteFirst] {
            let (mut rc, _) = RealConfig::with_order_backend(w.configs.clone(), order, backend)
                .expect("workload verifies");
            rc.set_ec_index_enabled(!full_scan);
            let mut acc = Table3Row {
                change: change.label().into(),
                backend: backend.label().into(),
                order: match order {
                    UpdateOrder::InsertFirst => "+,-".into(),
                    UpdateOrder::DeleteFirst => "-,+".into(),
                    UpdateOrder::AsGiven => "as-given".into(),
                },
                rules_inserted: 0,
                rules_removed: 0,
                rules_total: rc.num_rules(),
                ec_moves: 0,
                affected_ecs: 0,
                t1_us: 0,
                affected_pairs: 0,
                total_pairs: rc.num_pairs(),
                t2_us: 0,
                t2_full_us: 0,
                samples: ports.len(),
                host_cores: host_cores(),
                peak_rss_kb: 0,
                metrics: Default::default(),
            };
            for port in &ports {
                let (apply, restore) = w.change_at(change, port);
                let report = rc.apply_change(&apply).expect("verifies");
                acc.rules_inserted += report.rules_inserted;
                acc.rules_removed += report.rules_removed;
                acc.ec_moves += report.ec_moves;
                acc.affected_ecs += report.affected_ecs;
                acc.t1_us += report.model_update.as_micros();
                acc.affected_pairs += report.affected_pairs;
                acc.t2_us += report.policy_check.as_micros();
                rc.apply_change(&restore).expect("verifies");
                rc.compact();
            }
            // Ablation: what would checking cost without
            // incrementality? One full recheck on the settled state.
            let t = Instant::now();
            rc.recheck_policies();
            acc.t2_full_us = t.elapsed().as_micros();

            let n = ports.len();
            acc.rules_inserted /= n;
            acc.rules_removed /= n;
            acc.ec_moves /= n;
            acc.affected_ecs /= n;
            acc.t1_us /= n as u128;
            acc.affected_pairs /= n;
            acc.t2_us /= n as u128;
            acc.peak_rss_kb = peak_rss_kb();
            acc.metrics = rc.metrics_snapshot();
            rows.push(acc);
        }
    }
    rows
}

/// Compare a run's serialized rows against a committed baseline JSON
/// file on every field named in `fields` (the non-timing equivalence
/// gate shared by the `table2`, `table3` and `parallel` binaries: a
/// perf knob — EC index, worker count — must not change *what* is
/// computed, only how fast). Returns the number of fields compared, or
/// a description of every mismatch.
pub fn check_gate(rows_json: &str, baseline_path: &str, fields: &[&str]) -> Result<usize, String> {
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: serde_json::Value = serde_json::from_str(&baseline_text)
        .map_err(|e| format!("cannot parse baseline {baseline_path}: {e:?}"))?;
    let current: serde_json::Value =
        serde_json::from_str(rows_json).map_err(|e| format!("own output does not parse: {e:?}"))?;
    let (base_rows, cur_rows) = match (baseline.as_array(), current.as_array()) {
        (Some(b), Some(c)) => (b, c),
        _ => return Err("baseline or current results are not a JSON array".into()),
    };
    if base_rows.len() != cur_rows.len() {
        return Err(format!(
            "row count mismatch: baseline {} vs current {}",
            base_rows.len(),
            cur_rows.len()
        ));
    }
    let mut mismatches = Vec::new();
    let mut compared = 0usize;
    for (i, (b, c)) in base_rows.iter().zip(cur_rows).enumerate() {
        for field in fields {
            let (bv, cv) = (b.get(field), c.get(field));
            if bv != cv {
                mismatches.push(format!(
                    "  row {i} field {field:?}: baseline {bv:?} vs current {cv:?}"
                ));
            }
            compared += 1;
        }
    }
    if mismatches.is_empty() {
        Ok(compared)
    } else {
        Err(mismatches.join("\n"))
    }
}

/// Write a results file under `bench_results/` atomically (write-temp,
/// fsync, rename via [`rc_store::atomic_write`]): an interrupted or
/// panicking bench run never clobbers a previously committed baseline
/// with a half-written file. Panics on failure, like the direct writes
/// it replaces — a bench that cannot record results should fail loudly.
pub fn write_results(path: &str, contents: &str) {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    if let Err(e) = rc_store::atomic_write(p, contents.as_bytes()) {
        panic!("cannot write results to {path}: {e}");
    }
}

/// Logical CPU count of the host a bench row was produced on (`0` if
/// the platform cannot report it). Recorded in every row so numbers
/// from differently sized machines are never compared naively; not a
/// gate field.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0)
}

/// Peak resident set size of this process so far, in KiB, read from
/// `/proc/self/status` (`VmHWM`). Returns `0` on platforms without
/// procfs. A high-water mark: it only grows over the process lifetime,
/// so per-row values in a multi-row run are cumulative, not per-row.
/// Not a gate field.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
        }
    }
    0
}

/// Format a duration in the paper's style.
pub fn fmt_us(us: u128) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_smoke_ospf() {
        let row = run_table2(4, ProtocolChoice::Ospf, 2, 7);
        assert_eq!(row.nodes, 20);
        assert!(row.rc_full_us > 0);
        assert!(row.link_failure_us > 0);
        // Incremental must be cheaper than full even at toy scale.
        assert!(row.link_failure_us < row.rc_full_us);
    }

    #[test]
    fn table3_smoke() {
        let rows = run_table3(4, 2, 7);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.rules_total > 0);
            assert!(r.total_pairs > 0);
        }
        // Ordering effect: deletion-first does at least as many EC
        // moves as insertion-first for the same change type.
        for pair in rows.chunks(2) {
            assert!(pair[1].ec_moves >= pair[0].ec_moves, "{pair:?}");
        }
    }
}
