//! Regenerate the paper's Table 2: average data plane generation time
//! on the fat-tree network, from scratch vs incrementally.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin table2 \
//!   [-- --k 12 --samples 10 --out bench_results/table2.json \
//!       --check <baseline.json>]`
//!
//! `--k 12` is the paper's topology (180 nodes, 864 links). `--check`
//! compares this run's structural fields (protocol, topology size,
//! sample count — everything a perf knob must not change) against a
//! committed baseline and exits non-zero on mismatch.

use rc_netcfg::gen::ProtocolChoice;
use realconfig_bench::{check_gate, fmt_us, run_table2};

/// Fields of a Table2Row that must be byte-identical across perf knobs
/// (worker count, EC index): everything except timings and the
/// telemetry snapshot.
const GATE_FIELDS: &[&str] = &["proto", "k", "nodes", "links", "samples"];

fn main() {
    let args = parse_args();
    println!(
        "Table 2 reproduction: fat tree k={}, {} sampled changes per type.\n",
        args.k, args.samples
    );

    let mut rows = Vec::new();
    for proto in [ProtocolChoice::Ospf, ProtocolChoice::Bgp] {
        let label = if proto == ProtocolChoice::Ospf { "OSPF" } else { "BGP" };
        eprintln!("[{label}] building and measuring…");
        let row = run_table2(args.k, proto, args.samples, 0xC0FFEE);
        eprintln!(
            "[{label}] done: full={} incremental: LinkFailure={} LC/LP={}",
            fmt_us(row.rc_full_us),
            fmt_us(row.link_failure_us),
            fmt_us(row.lc_lp_us)
        );
        rows.push(row);
    }

    println!("\n== Measured (this machine, {} nodes / {} links) ==", rows[0].nodes, rows[0].links);
    println!(
        "{:<9} {:>14} {:>14} {:>22} {:>22}",
        "Protocol", "Baseline Full", "RealConfig Full", "LinkFailure", "LC/LP"
    );
    for r in &rows {
        println!(
            "{:<9} {:>14} {:>14} {:>14} ({:>4.1}%) {:>14} ({:>4.1}%)",
            r.proto,
            fmt_us(r.baseline_full_us),
            fmt_us(r.rc_full_us),
            fmt_us(r.link_failure_us),
            r.pct_link_failure(),
            fmt_us(r.lc_lp_us),
            r.pct_lc_lp(),
        );
    }

    println!("\n== Paper (Table 2, 180 nodes / 864 links, Xeon 2.3GHz) ==");
    println!(
        "{:<9} {:>14} {:>14} {:>22} {:>22}",
        "Protocol", "Batfish Full", "RealConfig Full", "LinkFailure", "LC/LP"
    );
    println!("{:<9} {:>14} {:>14} {:>22} {:>22}", "OSPF", "7.13s", "36.11s", "0.39s (1.1%)", "0.39s (1.1%)");
    println!("{:<9} {:>14} {:>14} {:>22} {:>22}", "BGP", "3.81s", "3.92s", "0.19s (4.8%)", "0.12s (3.1%)");

    println!(
        "\nShape check: incremental ≪ full ({}), custom-algorithm from-scratch faster than the \
         general-purpose engine from scratch ({}).",
        if rows.iter().all(|r| r.pct_link_failure() < 20.0 && r.pct_lc_lp() < 20.0) {
            "HOLDS"
        } else {
            "DOES NOT HOLD"
        },
        if rows.iter().all(|r| r.baseline_full_us <= r.rc_full_us) { "HOLDS" } else { "MIXED" }
    );

    let rows_json = serde_json::to_string_pretty(&rows).expect("serializes");

    // The equivalence gate runs before the output is written, so a
    // baseline can double as the output path.
    if let Some(baseline) = &args.check {
        match check_gate(&rows_json, baseline, GATE_FIELDS) {
            Ok(n) => println!(
                "\nEquivalence gate vs {baseline}: {n} structural fields byte-identical — PASS"
            ),
            Err(msg) => {
                eprintln!("\nEquivalence gate vs {baseline} FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }

    realconfig_bench::write_results(&args.out, &rows_json);
    println!("Raw results: {}", args.out);
}

struct Args {
    k: u32,
    samples: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed =
        Args { k: 12, samples: 10, out: "bench_results/table2.json".into(), check: None };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                parsed.k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--samples" => {
                parsed.samples = args[i + 1].parse().expect("--samples N");
                i += 2;
            }
            "--out" => {
                parsed.out = args[i + 1].clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!(
                "unknown argument {other:?} (expected --k / --samples / --out / --check)"
            ),
        }
    }
    parsed
}
