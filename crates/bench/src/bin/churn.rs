//! Sustained-maintenance benchmark (paper §2, "Regular maintenance"):
//! a long-running verifier absorbing a stream of small changes, as a
//! network team would produce over weeks. Reports latency percentiles
//! over the stream and the effect of history compaction — the
//! operator-facing promise is *flat* per-change latency, however long
//! the verifier has been running.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin churn [-- --k 6 --changes 400]`

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rc_netcfg::gen::ProtocolChoice;
use realconfig::{ChangeOp, ChangeSet, RealConfig};
use realconfig_bench::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct ChurnResult {
    k: u32,
    changes: usize,
    compacting: bool,
    p50_us: u128,
    p95_us: u128,
    max_us: u128,
    first_quarter_mean_us: u128,
    last_quarter_mean_us: u128,
    /// Pipeline-wide telemetry at the end of the stream.
    metrics: realconfig::MetricsSnapshot,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_stream(w: &Workload, changes: usize, compacting: bool, seed: u64) -> ChurnResult {
    let (mut rc, _) = RealConfig::new(w.configs.clone()).expect("verifies");
    rc.set_auto_compact(if compacting { Some(1) } else { None });
    let mut rng = StdRng::seed_from_u64(seed);
    let ports = w.sample_ports(w.topo.num_links(), seed);
    let mut lat: Vec<Duration> = Vec::with_capacity(changes);
    // Track which interfaces are currently down so the stream stays
    // meaningful (fail only up links, restore only down ones).
    let mut down: Vec<(String, String)> = Vec::new();

    for _ in 0..changes {
        let cs = if !down.is_empty() && (rng.gen_bool(0.5) || down.len() > 5) {
            let (dev, iface) = down.swap_remove(rng.gen_range(0..down.len()));
            ChangeSet { ops: vec![ChangeOp::EnableInterface { device: dev, iface }] }
        } else {
            let (dev, iface) = ports[rng.gen_range(0..ports.len())].clone();
            if down.iter().any(|(d, i)| *d == dev && *i == iface) {
                continue;
            }
            down.push((dev.clone(), iface.clone()));
            ChangeSet::link_failure(&dev, &iface)
        };
        let t = Instant::now();
        rc.apply_change(&cs).expect("verifies");
        lat.push(t.elapsed());
    }

    let quarter = lat.len() / 4;
    let mean = |s: &[Duration]| {
        (s.iter().sum::<Duration>() / s.len().max(1) as u32).as_micros()
    };
    let (first, last) = (mean(&lat[..quarter]), mean(&lat[lat.len() - quarter..]));
    lat.sort();
    ChurnResult {
        k: w.k,
        changes: lat.len(),
        compacting,
        p50_us: percentile(&lat, 0.5).as_micros(),
        p95_us: percentile(&lat, 0.95).as_micros(),
        max_us: percentile(&lat, 1.0).as_micros(),
        first_quarter_mean_us: first,
        last_quarter_mean_us: last,
        metrics: rc.metrics_snapshot(),
    }
}

fn main() {
    let (k, changes) = parse_args();
    let w = Workload::fat_tree(k, ProtocolChoice::Ospf);
    println!(
        "Churn stream: k={k} fat tree OSPF ({} devices), {changes} link fail/restore changes.\n",
        w.topo.num_devices()
    );

    let mut results = Vec::new();
    for compacting in [true, false] {
        let r = run_stream(&w, changes, compacting, 0xFEED);
        println!(
            "compaction {:>3}: p50 {:>8} p95 {:>8} max {:>8} | mean first-¼ {:>8} last-¼ {:>8}{}",
            if compacting { "on" } else { "off" },
            realconfig_bench::fmt_us(r.p50_us),
            realconfig_bench::fmt_us(r.p95_us),
            realconfig_bench::fmt_us(r.max_us),
            realconfig_bench::fmt_us(r.first_quarter_mean_us),
            realconfig_bench::fmt_us(r.last_quarter_mean_us),
            if !compacting && r.last_quarter_mean_us > 2 * r.first_quarter_mean_us {
                "   ← history growth without compaction"
            } else {
                ""
            }
        );
        results.push(r);
    }

    println!(
        "\nWith per-change compaction the stream stays flat — the verifier can absorb the \
         paper's 'regular maintenance' workload indefinitely."
    );
    std::fs::create_dir_all("bench_results").ok();
    std::fs::write(
        "bench_results/churn.json",
        serde_json::to_string_pretty(&results).expect("serializes"),
    )
    .expect("written");
    println!("Raw results: bench_results/churn.json");
}

fn parse_args() -> (u32, usize) {
    let mut k = 6;
    let mut changes = 400;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--changes" => {
                changes = args[i + 1].parse().expect("--changes N");
                i += 2;
            }
            other => panic!("unknown argument {other:?} (expected --k / --changes)"),
        }
    }
    (k, changes)
}
