//! Sustained-maintenance benchmark (paper §2, "Regular maintenance"):
//! a long-running verifier absorbing a stream of small changes, as a
//! network team would produce over weeks. Reports latency percentiles
//! over the stream and the effect of history compaction — the
//! operator-facing promise is *flat* per-change latency, however long
//! the verifier has been running.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin churn [-- --k 6 --changes 400]`
//!
//! `--fault-every N` additionally injects a deterministic fault
//! (rotating across the three stage boundaries) into every Nth change
//! and verifies through the self-healing
//! [`RealConfig::apply_change_or_rebuild`] path, recording full-rebuild
//! latency alongside the incremental percentiles.

use std::time::{Duration, Instant};

use rc_netcfg::gen::ProtocolChoice;
use realconfig::RealConfig;
use realconfig_bench::{stream, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct ChurnResult {
    k: u32,
    changes: usize,
    compacting: bool,
    p50_us: u128,
    p95_us: u128,
    max_us: u128,
    first_quarter_mean_us: u128,
    last_quarter_mean_us: u128,
    /// Fault-injection cadence (0: fault-free run).
    fault_every: usize,
    /// Self-healing full rebuilds triggered by injected faults.
    rebuilds: u64,
    /// Rebuild latency percentiles from the `verifier.rebuild_us`
    /// histogram (0 when no rebuild happened).
    rebuild_p50_us: u64,
    rebuild_max_us: u64,
    /// Logical CPUs of the host (context for the latency columns).
    host_cores: usize,
    /// Process peak RSS in KiB at the end of the stream (cumulative
    /// across the runs of one invocation).
    peak_rss_kb: u64,
    /// Pipeline-wide telemetry at the end of the stream.
    metrics: realconfig::MetricsSnapshot,
}

/// One-shot fault plan for round `round`, rotating across the stage
/// boundaries (stage 1 takes the error channel, stages 2 and 3 panic).
fn rotating_fault(round: usize) -> rc_faults::FaultGuard {
    let point = rc_faults::FaultPoint::ALL[round % rc_faults::FaultPoint::ALL.len()];
    if point == rc_faults::FaultPoint::EngineApply {
        rc_faults::FaultPlan::new().error_on(point, 1).install()
    } else {
        rc_faults::FaultPlan::new().panic_on(point, 1).install()
    }
}

/// Silence the default panic hook for injected-fault panics only.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX));
        if !injected {
            default(info);
        }
    }));
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_stream(
    w: &Workload,
    changes: usize,
    compacting: bool,
    seed: u64,
    fault_every: usize,
) -> ChurnResult {
    let (mut rc, _) = RealConfig::new(w.configs.clone()).expect("verifies");
    rc.set_auto_compact(if compacting { Some(1) } else { None });
    let mut lat: Vec<Duration> = Vec::with_capacity(changes);
    // The shared uniform-churn generator: stateful link fail/restore
    // (fail only up links, restore only down ones), same stream the
    // `throughput` bin feeds its ingest queue.
    for (i, cs) in stream::uniform_churn(w, changes, seed).iter().enumerate() {
        if fault_every > 0 && i % fault_every == 0 {
            let _guard = rotating_fault(i / fault_every);
            let t = Instant::now();
            rc.apply_change_or_rebuild(cs).expect("self-heals");
            lat.push(t.elapsed());
        } else {
            let t = Instant::now();
            rc.apply_change(cs).expect("verifies");
            lat.push(t.elapsed());
        }
    }

    let quarter = lat.len() / 4;
    let mean = |s: &[Duration]| {
        (s.iter().sum::<Duration>() / s.len().max(1) as u32).as_micros()
    };
    let (first, last) = (mean(&lat[..quarter]), mean(&lat[lat.len() - quarter..]));
    lat.sort();
    let metrics = rc.metrics_snapshot();
    let rebuild_hist = metrics.histograms.get("verifier.rebuild_us");
    ChurnResult {
        k: w.k,
        changes: lat.len(),
        compacting,
        p50_us: percentile(&lat, 0.5).as_micros(),
        p95_us: percentile(&lat, 0.95).as_micros(),
        max_us: percentile(&lat, 1.0).as_micros(),
        first_quarter_mean_us: first,
        last_quarter_mean_us: last,
        fault_every,
        rebuilds: metrics.counters.get("verifier.rebuilds").copied().unwrap_or(0),
        rebuild_p50_us: rebuild_hist.map_or(0, |h| h.p50),
        rebuild_max_us: rebuild_hist.map_or(0, |h| h.max),
        host_cores: realconfig_bench::host_cores(),
        peak_rss_kb: realconfig_bench::peak_rss_kb(),
        metrics,
    }
}

fn main() {
    let (k, changes, fault_every) = parse_args();
    let w = Workload::fat_tree(k, ProtocolChoice::Ospf);
    println!(
        "Churn stream: k={k} fat tree OSPF ({} devices), {changes} link fail/restore changes{}.\n",
        w.topo.num_devices(),
        if fault_every > 0 {
            format!(", injected fault every {fault_every} changes")
        } else {
            String::new()
        }
    );
    if fault_every > 0 {
        quiet_injected_panics();
    }

    let mut results = Vec::new();
    for compacting in [true, false] {
        let r = run_stream(&w, changes, compacting, 0xFEED, fault_every);
        println!(
            "compaction {:>3}: p50 {:>8} p95 {:>8} max {:>8} | mean first-¼ {:>8} last-¼ {:>8}{}",
            if compacting { "on" } else { "off" },
            realconfig_bench::fmt_us(r.p50_us),
            realconfig_bench::fmt_us(r.p95_us),
            realconfig_bench::fmt_us(r.max_us),
            realconfig_bench::fmt_us(r.first_quarter_mean_us),
            realconfig_bench::fmt_us(r.last_quarter_mean_us),
            if !compacting && r.last_quarter_mean_us > 2 * r.first_quarter_mean_us {
                "   ← history growth without compaction"
            } else {
                ""
            }
        );
        if fault_every > 0 {
            println!(
                "               {} self-healing rebuilds: p50 {} max {}",
                r.rebuilds,
                realconfig_bench::fmt_us(r.rebuild_p50_us as u128),
                realconfig_bench::fmt_us(r.rebuild_max_us as u128),
            );
        }
        results.push(r);
    }

    println!(
        "\nWith per-change compaction the stream stays flat — the verifier can absorb the \
         paper's 'regular maintenance' workload indefinitely."
    );
    realconfig_bench::write_results(
        "bench_results/churn.json",
        &serde_json::to_string_pretty(&results).expect("serializes"),
    );
    println!("Raw results: bench_results/churn.json");
}

fn parse_args() -> (u32, usize, usize) {
    let mut k = 6;
    let mut changes = 400;
    let mut fault_every = 0;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--changes" => {
                changes = args[i + 1].parse().expect("--changes N");
                i += 2;
            }
            "--fault-every" => {
                fault_every = args[i + 1].parse().expect("--fault-every N");
                i += 2;
            }
            other => {
                panic!("unknown argument {other:?} (expected --k / --changes / --fault-every)")
            }
        }
    }
    (k, changes, fault_every)
}
