//! Warm-restart A/B bench: cold build vs snapshot restore vs
//! snapshot restore + journal replay.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin restart \
//!   [-- --k 8 --samples 4 --reps 5 \
//!       --out bench_results/restart.json --check <baseline.json>]`
//!
//! Three ways of bringing the same verifier state up are timed against
//! each other on one BGP fat tree:
//!
//! 1. **cold build** — full pipeline bring-up from configuration
//!    files: lowering, dataflow, APKeep model, policy registration and
//!    a full policy pass.
//! 2. **snapshot restore** — `RealConfig::open` against a state
//!    directory whose newest snapshot already describes the target
//!    state (empty journal, zero records replayed).
//! 3. **restore + replay** — `RealConfig::open` against a state
//!    directory whose snapshot is `2 × samples` committed changes
//!    behind the target state, so the journal tail is replayed on top.
//!
//! All three legs end in the same network state; the binary asserts
//! the structural results (FIB rules, ECs, pairs, verdicts) are
//! identical before any timing is reported. Repetitions are
//! interleaved across legs so machine noise hits each equally, and
//! timings are medians. `--check` gates the non-timing fields against
//! a committed baseline.

use rc_netcfg::gen::ProtocolChoice;
use rc_netcfg::topology::host_prefix;
use realconfig::{RealConfig, RestoreSource};
use realconfig_bench::{check_gate, fmt_us, PaperChange, Workload};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Fields that must be byte-identical across runs of the same shape.
const GATE_FIELDS: &[&str] =
    &["k", "nodes", "links", "samples", "ecs", "pairs", "fib_rules", "journal_records"];

#[derive(Serialize)]
struct RestartRow {
    k: u32,
    nodes: usize,
    links: usize,
    samples: usize,
    reps: usize,
    ecs: usize,
    pairs: usize,
    fib_rules: usize,
    /// Committed config deltas sitting in the replay leg's journal.
    journal_records: usize,
    /// Median wall time of a full cold bring-up (build + policies +
    /// full policy pass), µs.
    cold_build_us: u128,
    /// Median wall time of `RealConfig::open` against an up-to-date
    /// snapshot (no journal records to replay), µs.
    snapshot_restore_us: u128,
    /// Median wall time of `RealConfig::open` against a stale snapshot
    /// plus `journal_records` replayed deltas, µs.
    journal_replay_us: u128,
    /// On-disk size of the up-to-date snapshot, bytes.
    snapshot_size_bytes: u64,
    /// Process peak RSS in KiB when the row was finalized.
    peak_rss_kb: u64,
    note: String,
}

fn median(mut v: Vec<u128>) -> u128 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// A state-dir scratch path that is cleaned up on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("rc-bench-restart-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn main() {
    let args = parse_args();
    println!(
        "Warm-restart A/B: BGP fat tree k={}, {} churn changes, {} reps.\n",
        args.k, args.samples, args.reps
    );

    let w = Workload::fat_tree(args.k, ProtocolChoice::Bgp);
    let ports = w.sample_ports(args.samples, 0xC0FFEE);
    let policies = |rc: &mut RealConfig| {
        rc.require_reachability("pod00-edge00", "pod01-edge00", host_prefix(2))
            .expect("devices exist");
        rc.add_policy(realconfig::Policy::LoopFree { class: realconfig::PacketClass::All });
        rc.recheck_policies();
    };

    // Reference verifier: the target state every leg must reach. The
    // churn legs apply each sampled failure and its restore, so the
    // final configurations equal the initial ones — but each commit is
    // a journal record, which is exactly what the replay leg replays.
    eprintln!("building reference verifier…");
    let (mut reference, _) = RealConfig::new(w.configs.clone()).expect("workload verifies");
    policies(&mut reference);

    // State dir A: snapshot taken at the target state — pure restore.
    let snap_dir = ScratchDir::new("snap");
    reference.attach_state_dir(&snap_dir.0).expect("state dir creatable");
    reference.save_snapshot().expect("snapshot writes");

    // State dir B: snapshot taken at the target state, then 2×samples
    // committed churn deltas journaled on top (ending back at the
    // target configs) — restore + replay.
    let journal_dir = ScratchDir::new("journal");
    reference.attach_state_dir(&journal_dir.0).expect("state dir creatable");
    reference.save_snapshot().expect("snapshot writes");
    for port in &ports {
        let (apply, restore) = w.change_at(PaperChange::LinkFailure, port);
        reference.apply_change(&apply).expect("change verifies");
        reference.apply_change(&restore).expect("restore verifies");
    }
    let journal_records = reference.journaled_changes() as usize;
    assert_eq!(journal_records, 2 * ports.len(), "every churn commit must journal");

    let snapshot_size_bytes = std::fs::read_dir(&snap_dir.0)
        .expect("state dir readable")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("snap-"))
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .max()
        .unwrap_or(0);

    // Structural determinism across all three legs, before any timing.
    let specs = reference.policy_specs();
    let check_leg = |rc: &RealConfig, leg: &str| {
        assert_eq!(rc.num_fib_rules(), reference.num_fib_rules(), "{leg}: FIB diverged");
        assert_eq!(rc.num_ecs(), reference.num_ecs(), "{leg}: EC count diverged");
        assert_eq!(rc.num_pairs(), reference.num_pairs(), "{leg}: pair count diverged");
        assert_eq!(rc.policy_specs(), specs, "{leg}: policy verdicts diverged");
    };

    // Interleave reps across legs so noise is shared.
    let mut cold_us = Vec::new();
    let mut restore_us = Vec::new();
    let mut replay_us = Vec::new();
    for rep in 0..args.reps {
        let start = Instant::now();
        let (mut cold, _) = RealConfig::new(w.configs.clone()).expect("cold build verifies");
        policies(&mut cold);
        cold_us.push(start.elapsed().as_micros());
        check_leg(&cold, "cold");
        drop(cold);

        let start = Instant::now();
        let (restored, report) =
            RealConfig::open(&snap_dir.0, w.configs.clone()).expect("restore succeeds");
        restore_us.push(start.elapsed().as_micros());
        assert!(
            matches!(report.source, RestoreSource::Snapshot { .. }),
            "restore leg fell off the snapshot rung: {:?}",
            report.source
        );
        assert_eq!(report.replayed, 0, "restore leg must not replay");
        check_leg(&restored, "restore");
        drop(restored);

        let start = Instant::now();
        let (replayed, report) =
            RealConfig::open(&journal_dir.0, w.configs.clone()).expect("replay succeeds");
        replay_us.push(start.elapsed().as_micros());
        assert!(
            matches!(report.source, RestoreSource::Snapshot { .. }),
            "replay leg fell off the snapshot rung: {:?}",
            report.source
        );
        assert_eq!(report.replayed, journal_records, "replay leg replays the whole journal");
        check_leg(&replayed, "replay");
        drop(replayed);

        eprintln!(
            "[rep {rep}] cold {} restore {} restore+replay {}",
            fmt_us(*cold_us.last().unwrap()),
            fmt_us(*restore_us.last().unwrap()),
            fmt_us(*replay_us.last().unwrap())
        );
    }

    let row = RestartRow {
        k: args.k,
        nodes: w.topo.num_devices(),
        links: w.topo.num_links(),
        samples: ports.len(),
        reps: args.reps,
        ecs: reference.num_ecs(),
        pairs: reference.num_pairs(),
        fib_rules: reference.num_fib_rules(),
        journal_records,
        cold_build_us: median(cold_us),
        snapshot_restore_us: median(restore_us),
        journal_replay_us: median(replay_us),
        snapshot_size_bytes,
        peak_rss_kb: realconfig_bench::peak_rss_kb(),
        note: String::new(),
    };

    println!(
        "\n{:<22} {:>14}\n{:<22} {:>14}\n{:<22} {:>14}",
        "cold build",
        fmt_us(row.cold_build_us),
        "snapshot restore",
        fmt_us(row.snapshot_restore_us),
        "restore + replay",
        fmt_us(row.journal_replay_us)
    );
    println!(
        "snapshot size: {} bytes; restore speedup over cold: {:.2}x (pure), {:.2}x (+{} replays)",
        row.snapshot_size_bytes,
        row.cold_build_us as f64 / row.snapshot_restore_us.max(1) as f64,
        row.cold_build_us as f64 / row.journal_replay_us.max(1) as f64,
        row.journal_records
    );

    let rows_json = serde_json::to_string_pretty(std::slice::from_ref(&row)).expect("serializes");
    if let Some(baseline) = &args.check {
        match check_gate(&rows_json, baseline, GATE_FIELDS) {
            Ok(n) => println!(
                "\nEquivalence gate vs {baseline}: {n} structural fields byte-identical — PASS"
            ),
            Err(msg) => {
                eprintln!("\nEquivalence gate vs {baseline} FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }
    realconfig_bench::write_results(&args.out, &rows_json);
    println!("Raw results: {}", args.out);
}

struct Args {
    k: u32,
    samples: usize,
    reps: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        k: 8,
        samples: 4,
        reps: 5,
        out: "bench_results/restart.json".into(),
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                parsed.k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--samples" => {
                parsed.samples = args[i + 1].parse().expect("--samples N");
                i += 2;
            }
            "--reps" => {
                parsed.reps = args[i + 1].parse().expect("--reps N");
                i += 2;
            }
            "--out" => {
                parsed.out = args[i + 1].clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!(
                "unknown argument {other:?} (expected --k / --samples / --reps / --out / --check)"
            ),
        }
    }
    parsed
}
