//! Reproduce the paper's §2/§5 specification-mining claim: incremental
//! data plane generation across all single-link-failure scenarios is
//! ~20× faster than non-incremental generation.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin specmine [-- --k 12 --scenarios 40]`
//!
//! Results are written to `bench_results/specmine.json`.

use std::time::{Duration, Instant};

use rc_netcfg::facts::{fact_delta, lower, Registry};
use rc_netcfg::gen::ProtocolChoice;
use rc_netcfg::ChangeOp;
use rc_routing::engine::RoutingEngine;
use realconfig_bench::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct SpecmineResult {
    k: u32,
    scenarios: usize,
    incremental_total_us: u128,
    scratch_total_us: u128,
    speedup: f64,
}

fn main() {
    let (k, max_scenarios) = parse_args();
    let w = Workload::fat_tree(k, ProtocolChoice::Ospf);
    println!(
        "Spec-mining sweep: k={k} fat tree ({} devices, {} links, OSPF), single-link failures.",
        w.topo.num_devices(),
        w.topo.num_links()
    );

    // Incremental: one warm engine; per scenario apply failure +
    // restore (two incremental epochs, both counted).
    let mut reg = Registry::new();
    let lowered = lower(&w.configs, &mut reg);
    let mut engine = RoutingEngine::new();
    let t = Instant::now();
    engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1))).expect("converges");
    let full_build = t.elapsed();
    println!("full (from-scratch) generation: {full_build:?}");

    let scenarios: Vec<_> = w.topo.links.iter().take(max_scenarios).collect();
    let mut configs = w.configs.clone();
    let mut facts = lowered.facts.clone();
    let mut incremental = Duration::ZERO;
    for link in &scenarios {
        for shutdown in [true, false] {
            let op = if shutdown {
                ChangeOp::DisableInterface {
                    device: link.a.device.clone(),
                    iface: link.a.iface.clone(),
                }
            } else {
                ChangeOp::EnableInterface {
                    device: link.a.device.clone(),
                    iface: link.a.iface.clone(),
                }
            };
            rc_netcfg::ChangeSet { ops: vec![op] }.apply(&mut configs).expect("applies");
            let lowered = lower(&configs, &mut reg);
            let delta = fact_delta(&facts, &lowered.facts);
            facts = lowered.facts;
            let t = Instant::now();
            engine.apply(delta).expect("converges");
            incremental += t.elapsed();
        }
        engine.compact();
    }
    println!(
        "incremental: {} scenarios (fail + restore) in {incremental:?} \
         ({:?} per scenario)",
        scenarios.len(),
        incremental / scenarios.len() as u32
    );

    // Non-incremental: fresh engine per scenario (measure a sample,
    // extrapolate — each run costs a full build).
    let sample = scenarios.len().min(5);
    let mut scratch_sample = Duration::ZERO;
    for link in scenarios.iter().take(sample) {
        let mut failed = w.configs.clone();
        rc_netcfg::ChangeSet::link_failure(&link.a.device, &link.a.iface)
            .apply(&mut failed)
            .expect("applies");
        let mut reg = Registry::new();
        let lowered = lower(&failed, &mut reg);
        let mut engine = RoutingEngine::new();
        let t = Instant::now();
        engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1))).expect("converges");
        scratch_sample += t.elapsed();
    }
    let scratch = scratch_sample * scenarios.len() as u32 / sample as u32;
    println!(
        "non-incremental: ~{scratch:?} extrapolated from {sample} scenarios \
         ({:?} per scenario)",
        scratch_sample / sample as u32
    );

    let speedup = scratch.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    println!("\nspeedup: {speedup:.1}×  (paper §5 reports ~20× for this use case)");

    let result = SpecmineResult {
        k,
        scenarios: scenarios.len(),
        incremental_total_us: incremental.as_micros(),
        scratch_total_us: scratch.as_micros(),
        speedup,
    };
    realconfig_bench::write_results(
        "bench_results/specmine.json",
        &serde_json::to_string_pretty(&result).expect("serializes"),
    );
    println!("Raw results: bench_results/specmine.json");
}

fn parse_args() -> (u32, usize) {
    let mut k = 12;
    let mut scenarios = 40;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--scenarios" => {
                scenarios = args[i + 1].parse().expect("--scenarios N");
                i += 2;
            }
            other => panic!("unknown argument {other:?} (expected --k / --scenarios)"),
        }
    }
    (k, scenarios)
}
