//! Sustained-churn throughput harness: how many configuration changes
//! per second can the verifier absorb, and at what latency and memory
//! cost?
//!
//! Drives the ingest queue + adaptive batch coalescer
//! ([`RealConfig::apply_stream`]) with two arrival profiles:
//!
//! - **burst**: maintenance windows (link-group bounces and rule-swap
//!   storms from [`stream::maintenance_bursts`]) arriving
//!   near-simultaneously inside each window — the workload coalescing
//!   exists for;
//! - **poisson**: the uniform churn stream with memoryless arrivals —
//!   the steady-state feed.
//!
//! For each profile the A/B legs run *interleaved in this one binary*
//! on identical streams: one-at-a-time application (the degenerate
//! `CoalescePolicy::one_at_a_time`, same code path), coalescing under
//! insertion-first ordering, and coalescing under deletion-first
//! ordering. A fourth leg re-runs the coalesced burst profile with the
//! threshold-driven compaction policy replacing the per-change sweep,
//! measuring records fed through compaction and records retained.
//!
//! Every leg must converge to the identical final state
//! (`ab_identical`: FIB set, rule and pair counts equal to the serial
//! leg's) — coalescing and compaction change speed and memory, never
//! results. `--check` gates the deterministic fields against a
//! committed baseline, like the table2/table3 bins.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin throughput \
//!   [-- --k 8 --windows 24 --changes 240 --out bench_results/throughput.json \
//!       --check <baseline.json>]`

use std::collections::BTreeSet;

use rc_netcfg::gen::ProtocolChoice;
use rc_netcfg::ChangeSet;
use realconfig::{CoalescePolicy, CompactionPolicy, RealConfig, UpdateOrder};
use realconfig_bench::{check_gate, fmt_us, stream, Workload};
use serde::Serialize;

/// Fields that must be byte-identical between a run and the committed
/// baseline: the stream definition and the final verified state. Batch
/// boundaries, latencies and throughput depend on the host's measured
/// apply times and are deliberately absent.
const GATE_FIELDS: &[&str] = &[
    "k",
    "profile",
    "mode",
    "compaction",
    "arrivals",
    "final_fib",
    "final_rules",
    "final_pairs",
    "ab_identical",
];

#[derive(Serialize)]
struct ThroughputRow {
    k: u32,
    /// Arrival profile: "burst" or "poisson".
    profile: String,
    /// Apply mode: "serial", "coalesce(+,-)" or "coalesce(-,+)".
    mode: String,
    /// History compaction: "per-change" sweep or "adaptive" threshold.
    compaction: String,
    /// Changes that arrived on the stream (deterministic).
    arrivals: usize,
    /// Transactional applies actually performed.
    batches: usize,
    /// Batches that folded to a net no-op and skipped the pipeline.
    noop_batches: usize,
    /// Operations cancelled by last-writer-wins folding.
    cancelled_ops: usize,
    /// Largest number of changes folded into one apply.
    max_coalesced: usize,
    /// Deepest the ingest queue got.
    max_queue_depth: usize,
    /// Sustained throughput over the stream's span.
    changes_per_sec: f64,
    /// Per-change latency percentiles (completion of carrying batch
    /// minus arrival).
    p50_us: u64,
    p99_us: u64,
    /// Pipeline busy time vs stream span, microseconds.
    busy_us: u64,
    span_us: u64,
    /// Final verified state — identical across all legs of a profile.
    final_fib: usize,
    final_rules: usize,
    final_pairs: usize,
    /// True iff this leg's final FIB set, rule count and pair count
    /// equal the serial leg's (the equal-correctness half of the A/B).
    ab_identical: bool,
    /// Trace records fed through compaction passes during the run
    /// (per-change sweep + threshold triggers).
    compact_records: u64,
    /// Trace records retained in the dataflow spine at end of run.
    trace_records: usize,
    /// Logical CPUs of the host (context for the timing columns).
    host_cores: usize,
    /// Process peak RSS in KiB at the end of this leg (cumulative
    /// across the legs of one invocation).
    peak_rss_kb: u64,
    /// Pipeline-wide telemetry at the end of the leg.
    metrics: realconfig::MetricsSnapshot,
}

/// Final-state fingerprint of a finished leg.
struct FinalState {
    fib: BTreeSet<realconfig::FibEntry>,
    rules: usize,
    pairs: usize,
}

/// Everything that distinguishes one A/B leg: its labels, the batch
/// ordering, the coalescing policy, and the compaction discipline.
struct Leg<'a> {
    profile: &'a str,
    mode: &'a str,
    order: UpdateOrder,
    policy: &'a CoalescePolicy,
    adaptive: Option<CompactionPolicy>,
}

fn run_leg(
    w: &Workload,
    arrivals: &[(u64, ChangeSet)],
    leg: &Leg<'_>,
    reference: Option<&FinalState>,
) -> (ThroughputRow, FinalState) {
    let (mut rc, _) =
        RealConfig::with_order(w.configs.clone(), leg.order).expect("workload verifies");
    match leg.adaptive {
        Some(p) => rc.set_adaptive_compact(Some(p)),
        None => rc.set_auto_compact(Some(1)),
    }
    let report = rc.apply_stream(arrivals.to_vec(), leg.policy).expect("stream verifies");
    let state = FinalState { fib: rc.fib(), rules: rc.num_rules(), pairs: rc.num_pairs() };
    let ab_identical = reference
        .map(|r| r.fib == state.fib && r.rules == state.rules && r.pairs == state.pairs)
        .unwrap_or(true);
    let metrics = rc.metrics_snapshot();
    let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
    let row = ThroughputRow {
        k: w.k,
        profile: leg.profile.into(),
        mode: leg.mode.into(),
        compaction: if leg.adaptive.is_some() { "adaptive".into() } else { "per-change".into() },
        arrivals: report.arrivals,
        batches: report.batches,
        noop_batches: report.noop_batches,
        cancelled_ops: report.cancelled_ops,
        max_coalesced: report.max_coalesced,
        max_queue_depth: report.max_queue_depth,
        changes_per_sec: report.changes_per_sec(),
        p50_us: report.latency_percentile_us(50.0),
        p99_us: report.latency_percentile_us(99.0),
        busy_us: report.busy_us,
        span_us: report.span_us,
        final_fib: state.fib.len(),
        final_rules: state.rules,
        final_pairs: state.pairs,
        ab_identical,
        compact_records: counter("dataflow.compact.records_before")
            + counter("compact.trigger.records_before"),
        trace_records: rc.trace_records(),
        host_cores: realconfig_bench::host_cores(),
        peak_rss_kb: realconfig_bench::peak_rss_kb(),
        metrics,
    };
    (row, state)
}

fn main() {
    let args = parse_args();
    let w = Workload::fat_tree(args.k, ProtocolChoice::Ospf);
    println!(
        "Throughput harness: k={} fat tree OSPF ({} devices), {} maintenance windows (burst), \
         {} churn events (poisson).\n",
        args.k,
        w.topo.num_devices(),
        args.windows,
        args.changes,
    );

    // Burst profile: maintenance windows, near-simultaneous arrivals
    // inside each window, 20ms quiet periods between windows.
    let bursts = stream::maintenance_bursts(&w, args.windows, 0xB07);
    let sizes: Vec<usize> = bursts.iter().map(|b| b.len()).collect();
    let times = stream::burst_arrivals(&sizes, 1, 20_000);
    let burst_stream: Vec<(u64, ChangeSet)> = times
        .into_iter()
        .zip(bursts.into_iter().flatten())
        .collect();

    // Poisson profile: uniform churn with a 500µs mean inter-arrival
    // gap — well below the per-change pipeline latency at k≥8, so the
    // queue deepens and coalescing has something to fold.
    let churn = stream::uniform_churn(&w, args.changes, 0xFEED);
    let churn_stream: Vec<(u64, ChangeSet)> = stream::poisson_arrivals(churn.len(), 500.0, 0x9015)
        .into_iter()
        .zip(churn)
        .collect();

    let coalesce = CoalescePolicy::default();
    let serial = CoalescePolicy::one_at_a_time();
    let adaptive = CompactionPolicy::default();

    let mut rows: Vec<ThroughputRow> = Vec::new();
    for (profile, arrivals) in [("burst", &burst_stream), ("poisson", &churn_stream)] {
        // Interleaved A/B on the identical stream: serial reference
        // first, then the coalescing legs compared against it.
        let (row, reference) = run_leg(
            &w,
            arrivals,
            &Leg {
                profile,
                mode: "serial",
                order: UpdateOrder::InsertFirst,
                policy: &serial,
                adaptive: None,
            },
            None,
        );
        print_row(&row);
        let serial_cps = row.changes_per_sec;
        rows.push(row);
        for (mode, order) in [
            ("coalesce(+,-)", UpdateOrder::InsertFirst),
            ("coalesce(-,+)", UpdateOrder::DeleteFirst),
        ] {
            let (row, _) = run_leg(
                &w,
                arrivals,
                &Leg { profile, mode, order, policy: &coalesce, adaptive: None },
                Some(&reference),
            );
            print_row(&row);
            if profile == "burst" && mode == "coalesce(+,-)" {
                println!(
                    "  → coalescing sustains {:.1}x the serial rate under bursts ({})",
                    row.changes_per_sec / serial_cps.max(f64::MIN_POSITIVE),
                    if row.changes_per_sec > serial_cps { "HOLDS" } else { "DOES NOT HOLD" },
                );
            }
            rows.push(row);
        }
        // Memory leg: same coalesced stream, threshold-driven
        // compaction instead of the per-change sweep.
        let (row, _) = run_leg(
            &w,
            arrivals,
            &Leg {
                profile,
                mode: "coalesce(+,-)",
                order: UpdateOrder::InsertFirst,
                policy: &coalesce,
                adaptive: Some(adaptive),
            },
            Some(&reference),
        );
        print_row(&row);
        let per_change = &rows[rows.len() - 2];
        println!(
            "  → adaptive compaction fed {} records through compaction vs {} per-change \
             ({:.1}x less work), retaining {} vs {} trace records",
            row.compact_records,
            per_change.compact_records,
            per_change.compact_records as f64 / row.compact_records.max(1) as f64,
            row.trace_records,
            per_change.trace_records,
        );
        rows.push(row);
    }

    let all_identical = rows.iter().all(|r| r.ab_identical);
    println!(
        "\nEqual-correctness check: every leg reached the serial leg's final state ({}).",
        if all_identical { "HOLDS" } else { "DOES NOT HOLD" },
    );

    let rows_json = serde_json::to_string_pretty(&rows).expect("serializes");
    if let Some(baseline) = &args.check {
        match check_gate(&rows_json, baseline, GATE_FIELDS) {
            Ok(n) => println!(
                "Equivalence gate vs {baseline}: {n} non-timing fields byte-identical — PASS"
            ),
            Err(msg) => {
                eprintln!("Equivalence gate vs {baseline} FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }
    if !all_identical {
        eprintln!("final-state divergence between A/B legs — coalescing changed results");
        std::process::exit(1);
    }

    realconfig_bench::write_results(&args.out, &rows_json);
    println!("Raw results: {}", args.out);
}

fn print_row(r: &ThroughputRow) {
    println!(
        "{:<8} {:<14} {:<10} {:>7.1} ch/s  p50 {:>8} p99 {:>8}  depth {:>3}  folded≤{:<3} \
         noop {:>2}  rss {:>7} KiB",
        r.profile,
        r.mode,
        r.compaction,
        r.changes_per_sec,
        fmt_us(r.p50_us as u128),
        fmt_us(r.p99_us as u128),
        r.max_queue_depth,
        r.max_coalesced,
        r.noop_batches,
        r.peak_rss_kb,
    );
}

struct Args {
    k: u32,
    windows: usize,
    changes: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        k: 8,
        windows: 24,
        changes: 240,
        out: "bench_results/throughput.json".into(),
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                parsed.k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--windows" => {
                parsed.windows = args[i + 1].parse().expect("--windows N");
                i += 2;
            }
            "--changes" => {
                parsed.changes = args[i + 1].parse().expect("--changes N");
                i += 2;
            }
            "--out" => {
                parsed.out = args[i + 1].clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!(
                "unknown argument {other:?} (expected --k / --windows / --changes / --out / --check)"
            ),
        }
    }
    parsed
}
