//! Regenerate the paper's Table 3: incremental model update and policy
//! checking on the BGP fat tree, under both rule-update orders.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin table3 \
//!   [-- --k 12 --samples 10 --out bench_results/table3.json \
//!       --check <baseline.json> --full-scan --backend bdd|atoms]`
//!
//! `--check` compares this run's rows against a committed baseline on
//! every non-timing field (the equivalence gate: a perf knob — the EC
//! index, the predicate backend — must not change *what* the model
//! computes, only how fast) and exits non-zero on any mismatch.
//! `--full-scan` disables the EC candidate index — the ablation leg of
//! the T1 A/B. `--backend` selects the predicate backend (default:
//! `RC_BACKEND`, then BDDs); an atoms run gates cleanly against a bdd
//! baseline because `backend` is not a gate field.

use realconfig_bench::{check_gate, fmt_us, run_table3_opts, Table3Row};

/// Fields of a Table3Row that must be byte-identical between an indexed
/// and a full-scan run, and between a bdd and an atoms run (everything
/// except timings, the telemetry snapshot — which embeds timing
/// histograms and index counters — and the backend label itself).
const GATE_FIELDS: &[&str] = &[
    "change",
    "order",
    "rules_inserted",
    "rules_removed",
    "rules_total",
    "ec_moves",
    "affected_ecs",
    "affected_pairs",
    "total_pairs",
    "samples",
];

fn main() {
    let args = parse_args();
    println!(
        "Table 3 reproduction: BGP fat tree k={}, {} sampled changes per type, {} backend{}.\n",
        args.k,
        args.samples,
        args.backend.label(),
        if args.full_scan { " [EC index DISABLED: full-scan ablation]" } else { "" }
    );
    eprintln!("building two verifiers per change type (insert-first / delete-first)…");
    let rows = run_table3_opts(args.k, args.samples, 0xC0FFEE, args.full_scan, args.backend);

    println!(
        "== Measured (this machine; #Rules total {}, #Pairs total {}) ==",
        rows[0].rules_total, rows[0].total_pairs
    );
    println!(
        "{:<12} {:>6} {:>12} {:>8} {:>10} {:>16} {:>10}",
        "Change", "Order", "#Rules", "#ECs", "T1", "#Pairs", "T2"
    );
    for r in &rows {
        println!(
            "{:<12} {:>6} {:>5}+/{:<4}- {:>8} {:>10} {:>9}/{:<7} {:>10}",
            r.change,
            r.order,
            r.rules_inserted,
            r.rules_removed,
            r.ec_moves,
            fmt_us(r.t1_us),
            r.affected_pairs,
            r.total_pairs,
            fmt_us(r.t2_us),
        );
    }
    let rule_pct = |r: &Table3Row| {
        100.0 * (r.rules_inserted + r.rules_removed) as f64 / r.rules_total as f64
    };
    let pair_pct = |r: &Table3Row| 100.0 * r.affected_pairs as f64 / r.total_pairs as f64;
    println!(
        "\nAblation — incremental vs full policy checking: T2 {} vs full recheck {} ({}x)",
        fmt_us(rows[0].t2_us),
        fmt_us(rows[0].t2_full_us),
        if rows[0].t2_us > 0 { rows[0].t2_full_us / rows[0].t2_us.max(1) } else { 0 },
    );
    println!("\nAffected fractions (measured):");
    for r in rows.iter().step_by(2) {
        println!("  {:<12} rules {:.2}%  pairs {:.2}%", r.change, rule_pct(r), pair_pct(r));
    }

    println!("\n== Paper (Table 3) ==");
    println!("Change       Order  #Rules      #ECs   T1     #Pairs          T2");
    println!("LinkFailure  +,-    +26/-28     28     3ms    286/10224       58ms");
    println!("             -,+    (0.32%)     54     10ms   (2.79%)");
    println!("LP           +,-    +54/-54     54     6ms    132/10224       61ms");
    println!("             -,+    (0.64%)     108    20ms   (1.29%)");

    let ordering_holds = rows
        .chunks(2)
        .all(|pair| pair[1].ec_moves >= pair[0].ec_moves && pair[1].t1_us >= pair[0].t1_us / 2);
    let small_fractions = rows.iter().all(|r| rule_pct(r) < 5.0 && pair_pct(r) < 20.0);
    println!(
        "\nShape check: insertion-first ≤ deletion-first churn ({}); small affected fractions ({}).",
        if ordering_holds { "HOLDS" } else { "DOES NOT HOLD" },
        if small_fractions { "HOLDS" } else { "DOES NOT HOLD" },
    );

    let rows_json = serde_json::to_string_pretty(&rows).expect("serializes");

    // The equivalence gate runs before the output is written, so a
    // baseline can double as the output path.
    if let Some(baseline) = &args.check {
        match check_gate(&rows_json, baseline, GATE_FIELDS) {
            Ok(n) => println!(
                "\nEquivalence gate vs {baseline}: {n} non-timing fields byte-identical — PASS"
            ),
            Err(msg) => {
                eprintln!("\nEquivalence gate vs {baseline} FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }

    realconfig_bench::write_results(&args.out, &rows_json);
    println!("Raw results: {}", args.out);
}

struct Args {
    k: u32,
    samples: usize,
    out: String,
    check: Option<String>,
    full_scan: bool,
    backend: realconfig::PredKind,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        k: 12,
        samples: 10,
        out: "bench_results/table3.json".into(),
        check: None,
        full_scan: false,
        backend: realconfig::default_backend(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                parsed.k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--samples" => {
                parsed.samples = args[i + 1].parse().expect("--samples N");
                i += 2;
            }
            "--out" => {
                parsed.out = args[i + 1].clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(args[i + 1].clone());
                i += 2;
            }
            "--full-scan" => {
                parsed.full_scan = true;
                i += 1;
            }
            "--backend" => {
                parsed.backend = args[i + 1].parse().expect("--backend bdd|atoms");
                i += 2;
            }
            other => panic!(
                "unknown argument {other:?} (expected --k / --samples / --out / --check / --full-scan / --backend)"
            ),
        }
    }
    parsed
}
