//! Regenerate the paper's Table 3: incremental model update and policy
//! checking on the BGP fat tree, under both rule-update orders.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin table3 [-- --k 12 --samples 10]`
//!
//! Results are also written to `bench_results/table3.json`.

use realconfig_bench::{fmt_us, run_table3};

fn main() {
    let (k, samples) = parse_args();
    println!("Table 3 reproduction: BGP fat tree k={k}, {samples} sampled changes per type.\n");
    eprintln!("building two verifiers per change type (insert-first / delete-first)…");
    let rows = run_table3(k, samples, 0xC0FFEE);

    println!(
        "== Measured (this machine; #Rules total {}, #Pairs total {}) ==",
        rows[0].rules_total, rows[0].total_pairs
    );
    println!(
        "{:<12} {:>6} {:>12} {:>8} {:>10} {:>16} {:>10}",
        "Change", "Order", "#Rules", "#ECs", "T1", "#Pairs", "T2"
    );
    for r in &rows {
        println!(
            "{:<12} {:>6} {:>5}+/{:<4}- {:>8} {:>10} {:>9}/{:<7} {:>10}",
            r.change,
            r.order,
            r.rules_inserted,
            r.rules_removed,
            r.ec_moves,
            fmt_us(r.t1_us),
            r.affected_pairs,
            r.total_pairs,
            fmt_us(r.t2_us),
        );
    }
    let rule_pct = |r: &realconfig_bench::Table3Row| {
        100.0 * (r.rules_inserted + r.rules_removed) as f64 / r.rules_total as f64
    };
    let pair_pct = |r: &realconfig_bench::Table3Row| {
        100.0 * r.affected_pairs as f64 / r.total_pairs as f64
    };
    println!(
        "\nAblation — incremental vs full policy checking: T2 {} vs full recheck {} ({}x)",
        fmt_us(rows[0].t2_us),
        fmt_us(rows[0].t2_full_us),
        if rows[0].t2_us > 0 { rows[0].t2_full_us / rows[0].t2_us.max(1) } else { 0 },
    );
    println!("\nAffected fractions (measured):");
    for r in rows.iter().step_by(2) {
        println!(
            "  {:<12} rules {:.2}%  pairs {:.2}%",
            r.change,
            rule_pct(r),
            pair_pct(r)
        );
    }

    println!("\n== Paper (Table 3) ==");
    println!("Change       Order  #Rules      #ECs   T1     #Pairs          T2");
    println!("LinkFailure  +,-    +26/-28     28     3ms    286/10224       58ms");
    println!("             -,+    (0.32%)     54     10ms   (2.79%)");
    println!("LP           +,-    +54/-54     54     6ms    132/10224       61ms");
    println!("             -,+    (0.64%)     108    20ms   (1.29%)");

    let ordering_holds = rows
        .chunks(2)
        .all(|pair| pair[1].ec_moves >= pair[0].ec_moves && pair[1].t1_us >= pair[0].t1_us / 2);
    let small_fractions = rows.iter().all(|r| rule_pct(r) < 5.0 && pair_pct(r) < 20.0);
    println!(
        "\nShape check: insertion-first ≤ deletion-first churn ({}); small affected fractions ({}).",
        if ordering_holds { "HOLDS" } else { "DOES NOT HOLD" },
        if small_fractions { "HOLDS" } else { "DOES NOT HOLD" },
    );

    std::fs::create_dir_all("bench_results").ok();
    std::fs::write(
        "bench_results/table3.json",
        serde_json::to_string_pretty(&rows).expect("serializes"),
    )
    .expect("bench_results/table3.json written");
    println!("Raw results: bench_results/table3.json");
}

fn parse_args() -> (u32, usize) {
    let mut k = 12;
    let mut samples = 10;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--samples" => {
                samples = args[i + 1].parse().expect("--samples N");
                i += 2;
            }
            other => panic!("unknown argument {other:?} (expected --k / --samples)"),
        }
    }
    (k, samples)
}
