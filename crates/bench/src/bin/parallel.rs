//! Thread-scaling smoke bench for the parallel policy-checking phase.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin parallel \
//!   [-- --k 6 --samples 4 --reps 3 --threads 1,2,4 \
//!       --out bench_results/parallel.json --check <baseline.json>]`
//!
//! One verifier per worker count is driven through the same workload —
//! a full policy pass, a LinkFailure churn leg, and a from-scratch
//! full build (config lowering through dataflow, model and policy
//! bring-up) — with repetitions interleaved across worker counts so
//! machine noise hits every configuration equally. Structural results
//! (ECs, pairs, verdicts) must be identical for every worker count;
//! the binary asserts that before reporting timings, and `--check`
//! additionally gates them against a committed baseline. Timings are
//! medians; `host_cores` records how much hardware parallelism was
//! actually available (on a single-core host the >1-thread legs
//! measure overhead, not speedup).

use rc_netcfg::gen::ProtocolChoice;
use rc_netcfg::topology::host_prefix;
use realconfig::RealConfig;
use realconfig_bench::{check_gate, fmt_us, PaperChange, Workload};
use serde::Serialize;
use std::time::Instant;

/// Fields that must be byte-identical across worker counts and runs.
const GATE_FIELDS: &[&str] = &["threads", "k", "nodes", "links", "samples", "ecs", "pairs"];

#[derive(Serialize)]
struct ParallelRow {
    threads: usize,
    k: u32,
    nodes: usize,
    links: usize,
    samples: usize,
    reps: usize,
    ecs: usize,
    pairs: usize,
    /// Median wall time of one full policy pass, µs.
    check_full_us: u128,
    /// Median wall time of the LinkFailure apply+restore churn leg
    /// (`samples` changes), µs.
    churn_wall_us: u128,
    /// Median wall time of one from-scratch full build of the whole
    /// pipeline at this worker count, µs.
    build_full_us: u128,
    /// Hardware threads the host actually had during the run.
    host_cores: usize,
    /// Process peak RSS in KiB when the rows were finalized (shared
    /// across all worker counts of one run; not a gate field).
    peak_rss_kb: u64,
    note: String,
}

fn median(mut v: Vec<u128>) -> u128 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    let args = parse_args();
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "Parallel policy-check scaling: BGP fat tree k={}, {} changes × {} reps, \
         worker counts {:?}, host cores {}.\n",
        args.k, args.samples, args.reps, args.threads, host_cores
    );

    let w = Workload::fat_tree(args.k, ProtocolChoice::Bgp);
    let ports = w.sample_ports(args.samples, 0xC0FFEE);

    // One verifier per worker count, identical workload and policies.
    let mut rcs: Vec<(usize, RealConfig)> = Vec::new();
    for &t in &args.threads {
        eprintln!("[threads={t}] building verifier…");
        let (mut rc, _) = RealConfig::new(w.configs.clone()).expect("workload verifies");
        rc.set_threads(Some(t));
        rc.require_reachability("pod00-edge00", "pod01-edge00", host_prefix(2))
            .expect("devices exist");
        rc.add_policy(realconfig::Policy::LoopFree { class: realconfig::PacketClass::All });
        rc.recheck_policies();
        rcs.push((t, rc));
    }

    // Structural determinism across worker counts, before any timing.
    let (ecs0, pairs0) = (rcs[0].1.num_ecs(), rcs[0].1.num_pairs());
    for (t, rc) in &rcs {
        assert_eq!(rc.num_ecs(), ecs0, "threads={t}: EC count diverged");
        assert_eq!(rc.num_pairs(), pairs0, "threads={t}: pair count diverged");
    }

    // Interleave reps across worker counts so noise is shared.
    let mut full_us = vec![Vec::new(); rcs.len()];
    let mut churn_us = vec![Vec::new(); rcs.len()];
    let mut build_us = vec![Vec::new(); rcs.len()];
    // Fresh builds carry no policies, so their EC count is compared
    // against the first fresh build, not against the policy-bearing
    // verifiers above.
    let mut build_ecs: Option<usize> = None;
    for rep in 0..args.reps {
        for (i, (t, rc)) in rcs.iter_mut().enumerate() {
            let start = Instant::now();
            rc.recheck_policies();
            full_us[i].push(start.elapsed().as_micros());

            let start = Instant::now();
            for port in &ports {
                let (apply, restore) = w.change_at(PaperChange::LinkFailure, port);
                rc.apply_change(&apply).expect("change verifies");
                rc.apply_change(&restore).expect("restore verifies");
            }
            churn_us[i].push(start.elapsed().as_micros());

            // From-scratch full build A/B: construction reads the
            // process-global worker knob, so set it for the duration of
            // the build only (the long-lived verifiers carry their own
            // per-verifier override and are unaffected).
            realconfig::set_threads(*t);
            let start = Instant::now();
            let (built, _) =
                RealConfig::new(w.configs.clone()).expect("full build verifies");
            build_us[i].push(start.elapsed().as_micros());
            realconfig::set_threads(0);
            let ecs = *build_ecs.get_or_insert(built.num_ecs());
            assert_eq!(built.num_ecs(), ecs, "threads={t}: full-build EC count diverged");
            drop(built);

            eprintln!(
                "[rep {rep}] threads={t}: full {} churn {} build {}",
                fmt_us(*full_us[i].last().unwrap()),
                fmt_us(*churn_us[i].last().unwrap()),
                fmt_us(*build_us[i].last().unwrap())
            );
        }
    }

    let rows: Vec<ParallelRow> = rcs
        .iter()
        .enumerate()
        .map(|(i, (t, rc))| ParallelRow {
            threads: *t,
            k: args.k,
            nodes: w.topo.num_devices(),
            links: w.topo.num_links(),
            samples: ports.len(),
            reps: args.reps,
            ecs: rc.num_ecs(),
            pairs: rc.num_pairs(),
            check_full_us: median(full_us[i].clone()),
            churn_wall_us: median(churn_us[i].clone()),
            build_full_us: median(build_us[i].clone()),
            host_cores,
            peak_rss_kb: realconfig_bench::peak_rss_kb(),
            note: if host_cores > 1 {
                String::new()
            } else {
                "single-core host: >1-thread legs measure pool overhead, not speedup".into()
            },
        })
        .collect();

    println!(
        "\n{:<8} {:>14} {:>14} {:>14}",
        "Threads", "check_full", "churn wall", "build_full"
    );
    for r in &rows {
        println!(
            "{:<8} {:>14} {:>14} {:>14}",
            r.threads,
            fmt_us(r.check_full_us),
            fmt_us(r.churn_wall_us),
            fmt_us(r.build_full_us)
        );
    }
    let base = rows.iter().find(|r| r.threads == 1);
    if let Some(base) = base {
        for r in rows.iter().filter(|r| r.threads > 1) {
            println!(
                "threads={} speedup over serial: check_full {:.2}x, churn {:.2}x, build {:.2}x",
                r.threads,
                base.check_full_us as f64 / r.check_full_us.max(1) as f64,
                base.churn_wall_us as f64 / r.churn_wall_us.max(1) as f64,
                base.build_full_us as f64 / r.build_full_us.max(1) as f64,
            );
        }
    }
    if host_cores == 1 {
        println!("NOTE: single-core host — scaling cannot manifest; structural gate still applies.");
    }

    let rows_json = serde_json::to_string_pretty(&rows).expect("serializes");
    if let Some(baseline) = &args.check {
        match check_gate(&rows_json, baseline, GATE_FIELDS) {
            Ok(n) => println!(
                "\nEquivalence gate vs {baseline}: {n} structural fields byte-identical — PASS"
            ),
            Err(msg) => {
                eprintln!("\nEquivalence gate vs {baseline} FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }
    realconfig_bench::write_results(&args.out, &rows_json);
    println!("Raw results: {}", args.out);
}

struct Args {
    k: u32,
    samples: usize,
    reps: usize,
    threads: Vec<usize>,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        k: 6,
        samples: 4,
        reps: 3,
        threads: vec![1, 2, 4],
        out: "bench_results/parallel.json".into(),
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                parsed.k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--samples" => {
                parsed.samples = args[i + 1].parse().expect("--samples N");
                i += 2;
            }
            "--reps" => {
                parsed.reps = args[i + 1].parse().expect("--reps N");
                i += 2;
            }
            "--threads" => {
                parsed.threads = args[i + 1]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads N,N,…"))
                    .collect();
                i += 2;
            }
            "--out" => {
                parsed.out = args[i + 1].clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!(
                "unknown argument {other:?} (expected --k / --samples / --reps / --threads / --out / --check)"
            ),
        }
    }
    assert!(!parsed.threads.is_empty(), "--threads needs at least one worker count");
    parsed
}
