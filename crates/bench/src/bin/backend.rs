//! Interleaved A/B of the two predicate backends (BDDs vs Delta-net
//! interval atoms) on the BGP fat-tree dst-prefix workload.
//!
//! Usage: `cargo run --release -p realconfig-bench --bin backend \
//!   [-- --k 8 --samples 10 --out bench_results/backend.json]`
//!
//! One verifier per backend over the *same* sampled change sequence,
//! with per-change interleaving (bdd then atoms on even samples, atoms
//! then bdd on odd) so allocator and frequency drift hit both equally.
//! Every change's report must agree between the backends on all
//! non-timing fields — any divergence is a correctness bug and the
//! binary exits non-zero. Timings are compared as the sum over change
//! types of the per-change median T1 (model update), the robust summary
//! the acceptance gate uses: atoms is expected at parity or better on
//! this dst-prefix-only workload.

use std::collections::BTreeMap;

use realconfig::{PredKind, RealConfig, UpdateOrder};
use realconfig_bench::{fmt_us, PaperChange, Workload};
use rc_netcfg::gen::ProtocolChoice;
use serde::Serialize;

/// Per (change type, backend) summary over the sampled changes.
#[derive(Serialize)]
struct ChangeRow {
    change: String,
    backend: String,
    samples: usize,
    /// Per-change model-update times, µs (one entry per sampled port).
    t1_us: Vec<u128>,
    median_t1_us: u128,
    median_t2_us: u128,
}

#[derive(Serialize)]
struct Output {
    k: u32,
    samples: usize,
    rules_total: usize,
    total_pairs: usize,
    rows: Vec<ChangeRow>,
    /// Sum over change types of the per-change median T1, per backend.
    summed_median_t1_us: BTreeMap<String, u128>,
    /// atoms summed-median T1 relative to bdd (< 1.0: atoms faster).
    atoms_over_bdd_t1: f64,
    /// Number of per-change report comparisons that were byte-identical
    /// on non-timing fields (all of them, or the binary exited 1).
    reports_compared: usize,
}

fn median(mut v: Vec<u128>) -> u128 {
    v.sort_unstable();
    if v.is_empty() {
        0
    } else {
        v[v.len() / 2]
    }
}

fn main() {
    let args = parse_args();
    println!(
        "Backend A/B: BGP fat tree k={}, {} sampled changes per type, interleaved bdd/atoms.\n",
        args.k, args.samples
    );
    let w = Workload::fat_tree(args.k, ProtocolChoice::Bgp);
    let ports = w.sample_ports(args.samples, 0xC0FFEE);

    eprintln!("building one verifier per backend…");
    let (mut rc_bdd, _) =
        RealConfig::with_order_backend(w.configs.clone(), UpdateOrder::InsertFirst, PredKind::Bdd)
            .expect("workload verifies");
    let (mut rc_atoms, _) =
        RealConfig::with_order_backend(w.configs.clone(), UpdateOrder::InsertFirst, PredKind::Atoms)
            .expect("workload verifies");

    let mut rows = Vec::new();
    let mut reports_compared = 0usize;
    for change in [PaperChange::LinkFailure, PaperChange::LocalPref] {
        let mut t1: BTreeMap<&str, Vec<u128>> = BTreeMap::new();
        let mut t2: BTreeMap<&str, Vec<u128>> = BTreeMap::new();
        for (i, port) in ports.iter().enumerate() {
            let (apply, restore) = w.change_at(change, port);
            // Interleave: alternate which backend goes first so neither
            // consistently runs on a warmer cache / higher clock.
            let run = |rc: &mut RealConfig| {
                let report = rc.apply_change(&apply).expect("verifies");
                rc.apply_change(&restore).expect("verifies");
                rc.compact();
                report
            };
            let (rb, ra) = if i % 2 == 0 {
                let rb = run(&mut rc_bdd);
                (rb, run(&mut rc_atoms))
            } else {
                let ra = run(&mut rc_atoms);
                (run(&mut rc_bdd), ra)
            };
            let same = rb.rules_inserted == ra.rules_inserted
                && rb.rules_removed == ra.rules_removed
                && rb.ec_moves == ra.ec_moves
                && rb.affected_ecs == ra.affected_ecs
                && rb.affected_pairs == ra.affected_pairs
                && rb.newly_violated == ra.newly_violated
                && rb.newly_satisfied == ra.newly_satisfied;
            if !same {
                eprintln!(
                    "backend divergence at {} sample {i} ({port:?}):\n  bdd   {rb:?}\n  atoms {ra:?}",
                    change.label()
                );
                std::process::exit(1);
            }
            reports_compared += 1;
            t1.entry("bdd").or_default().push(rb.model_update.as_micros());
            t1.entry("atoms").or_default().push(ra.model_update.as_micros());
            t2.entry("bdd").or_default().push(rb.policy_check.as_micros());
            t2.entry("atoms").or_default().push(ra.policy_check.as_micros());
        }
        for backend in ["bdd", "atoms"] {
            let t1s = t1.remove(backend).unwrap_or_default();
            rows.push(ChangeRow {
                change: change.label().into(),
                backend: backend.into(),
                samples: ports.len(),
                median_t1_us: median(t1s.clone()),
                median_t2_us: median(t2.remove(backend).unwrap_or_default()),
                t1_us: t1s,
            });
        }
    }

    let mut summed: BTreeMap<String, u128> = BTreeMap::new();
    for r in &rows {
        *summed.entry(r.backend.clone()).or_default() += r.median_t1_us;
    }
    let ratio = summed["atoms"] as f64 / summed["bdd"].max(1) as f64;

    println!("{:<12} {:>7} {:>12} {:>12}", "Change", "Backend", "median T1", "median T2");
    for r in &rows {
        println!(
            "{:<12} {:>7} {:>12} {:>12}",
            r.change,
            r.backend,
            fmt_us(r.median_t1_us),
            fmt_us(r.median_t2_us)
        );
    }
    println!(
        "\nSummed median T1: bdd {}  atoms {}  (atoms/bdd = {ratio:.2}; {} per-change reports identical)",
        fmt_us(summed["bdd"]),
        fmt_us(summed["atoms"]),
        reports_compared,
    );

    let out = Output {
        k: args.k,
        samples: ports.len(),
        rules_total: rc_bdd.num_rules(),
        total_pairs: rc_bdd.num_pairs(),
        rows,
        summed_median_t1_us: summed,
        atoms_over_bdd_t1: ratio,
        reports_compared,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializes");
    realconfig_bench::write_results(&args.out, &json);
    println!("Raw results: {}", args.out);
}

struct Args {
    k: u32,
    samples: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed =
        Args { k: 8, samples: 10, out: "bench_results/backend.json".into() };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                parsed.k = args[i + 1].parse().expect("--k N");
                i += 2;
            }
            "--samples" => {
                parsed.samples = args[i + 1].parse().expect("--samples N");
                i += 2;
            }
            "--out" => {
                parsed.out = args[i + 1].clone();
                i += 2;
            }
            other => panic!("unknown argument {other:?} (expected --k / --samples / --out)"),
        }
    }
    parsed
}
