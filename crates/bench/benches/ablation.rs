//! Ablations of RealConfig's design decisions (DESIGN.md):
//!
//! * **batch vs per-rule checking** — the paper's §4.2 point: realtime
//!   data plane verifiers check policies after *every* rule update; the
//!   batch-mode extension updates the model for the whole batch and
//!   checks once. Per-rule checking pays the policy-analysis cost per
//!   rule and also observes transient states nobody asked about.
//! * **incremental vs full policy checking** — re-analyze only affected
//!   ECs vs rebuild the whole pair map.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_apkeep::{ApkModel, ElementKey, ModelRule, PortAction, RuleMatch, RuleUpdate, UpdateOrder};
use rc_netcfg::facts::{lower, Registry};
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::fat_tree;
use rc_netcfg::types::{IfaceId, NodeId, Port, Prefix};
use rc_policy::PolicyChecker;

/// Build a data plane model + checker directly from a k=4 BGP fat
/// tree's converged FIB (bypassing the routing engine so this bench
/// isolates stages 2–3).
fn build_stage23() -> (ApkModel, PolicyChecker, Vec<ModelRule>) {
    let topo = fat_tree(4);
    let configs = build_configs(&topo, ProtocolChoice::Bgp);
    let mut reg = Registry::new();
    let lowered = lower(&configs, &mut reg);
    let dp = rc_routing::baseline::compute(&lowered.facts).expect("converges");

    let mut model = ApkModel::new();
    let mut by_group: std::collections::BTreeMap<(NodeId, Prefix), Vec<rc_routing::route::FibAction>> =
        std::collections::BTreeMap::new();
    for e in &dp.fib {
        by_group.entry((e.node, e.prefix)).or_default().push(e.action);
    }
    let mut rules = Vec::new();
    for ((node, prefix), actions) in by_group {
        let ifaces: Vec<IfaceId> = actions
            .iter()
            .filter_map(|a| match a {
                rc_routing::route::FibAction::Forward(i)
                | rc_routing::route::FibAction::Local(i) => Some(*i),
                rc_routing::route::FibAction::Drop => None,
            })
            .collect();
        if ifaces.is_empty() {
            continue;
        }
        let local = matches!(actions[0], rc_routing::route::FibAction::Local(_));
        rules.push(ModelRule {
            element: ElementKey::Forward(node),
            priority: prefix.len() as u32,
            rule_match: RuleMatch::DstPrefix(prefix),
            action: if local {
                PortAction::deliver(ifaces)
            } else {
                PortAction::forward(ifaces)
            },
        });
    }
    model.apply_batch(rules.iter().cloned().map(RuleUpdate::Insert).collect(), UpdateOrder::AsGiven);

    let mut checker = PolicyChecker::new();
    let nodes: BTreeSet<NodeId> = lowered
        .facts
        .iter()
        .filter_map(|f| match f {
            rc_netcfg::Fact::Device(n) => Some(*n),
            _ => None,
        })
        .collect();
    checker.set_nodes(nodes);
    let links: Vec<(Port, Port, isize)> = lowered
        .facts
        .iter()
        .filter_map(|f| match f {
            rc_netcfg::Fact::Link { src, dst } => Some((*src, *dst, 1)),
            _ => None,
        })
        .collect();
    checker.apply_link_delta(&links);
    checker.check_full(&mut model);
    (model, checker, rules)
}

/// A realistic batch: flip `n` forwarding rules to drop and back.
fn flip_batches(rules: &[ModelRule], n: usize) -> (Vec<RuleUpdate>, Vec<RuleUpdate>) {
    let victims: Vec<_> = rules.iter().step_by(rules.len() / n.max(1)).take(n).cloned().collect();
    let to_drop = victims
        .iter()
        .flat_map(|r| {
            [
                RuleUpdate::Remove(r.clone()),
                RuleUpdate::Insert(ModelRule { action: PortAction::Drop, ..r.clone() }),
            ]
        })
        .collect();
    let back = victims
        .iter()
        .flat_map(|r| {
            [
                RuleUpdate::Remove(ModelRule { action: PortAction::Drop, ..r.clone() }),
                RuleUpdate::Insert(r.clone()),
            ]
        })
        .collect();
    (to_drop, back)
}

fn batch_vs_per_rule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/batch-vs-per-rule");
    group.sample_size(20);
    let (mut model, mut checker, rules) = build_stage23();
    let (to_drop, back) = flip_batches(&rules, 12);

    group.bench_function(BenchmarkId::new("update+check", "batch"), |b| {
        b.iter(|| {
            let mut touched = 0;
            for batch in [to_drop.clone(), back.clone()] {
                let summary = model.apply_batch(batch, UpdateOrder::InsertFirst);
                let report =
                    checker.check_incremental(&mut model, &summary, BTreeSet::new());
                touched += report.affected_pairs;
            }
            touched
        })
    });

    group.bench_function(BenchmarkId::new("update+check", "per-rule"), |b| {
        b.iter(|| {
            let mut touched = 0;
            for batch in [to_drop.clone(), back.clone()] {
                for update in batch {
                    // The realtime-verifier discipline: model update and
                    // policy check after every single rule.
                    let summary = model.apply_batch(vec![update], UpdateOrder::InsertFirst);
                    let report =
                        checker.check_incremental(&mut model, &summary, BTreeSet::new());
                    touched += report.affected_pairs;
                }
            }
            touched
        })
    });
    group.finish();
}

fn incremental_vs_full_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/policy-check");
    group.sample_size(20);
    let (mut model, mut checker, rules) = build_stage23();
    let (to_drop, back) = flip_batches(&rules, 4);

    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut pairs = 0;
            for batch in [to_drop.clone(), back.clone()] {
                let summary = model.apply_batch(batch, UpdateOrder::InsertFirst);
                pairs += checker
                    .check_incremental(&mut model, &summary, BTreeSet::new())
                    .affected_pairs;
            }
            pairs
        })
    });

    group.bench_function("full-recheck", |b| {
        b.iter(|| {
            let mut pairs = 0;
            for batch in [to_drop.clone(), back.clone()] {
                let _ = model.apply_batch(batch, UpdateOrder::InsertFirst);
                pairs += checker.check_full(&mut model).total_pairs;
            }
            pairs
        })
    });
    group.finish();
}

criterion_group!(benches, batch_vs_per_rule, incremental_vs_full_check);
criterion_main!(benches);
