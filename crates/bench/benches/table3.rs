//! Criterion bench for Table 3: the full incremental pipeline (data
//! plane generation + EC model update + policy checking) on the BGP
//! fat tree, under both rule-update orders. Uses k=6; the `table3`
//! binary reproduces the paper's k=12.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_netcfg::gen::ProtocolChoice;
use realconfig::{RealConfig, UpdateOrder};
use realconfig_bench::{PaperChange, Workload};

const K: u32 = 6;

fn pipeline_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/pipeline");
    group.sample_size(10);
    let w = Workload::fat_tree(K, ProtocolChoice::Bgp);
    for change in [PaperChange::LinkFailure, PaperChange::LocalPref] {
        for (olabel, order) in
            [("insert-first", UpdateOrder::InsertFirst), ("delete-first", UpdateOrder::DeleteFirst)]
        {
            let (mut rc, _) =
                RealConfig::with_order(w.configs.clone(), order).expect("verifies");
            let port = &w.sample_ports(1, 42)[0];
            let (apply_cs, restore_cs) = w.change_at(change, port);
            group.bench_function(
                BenchmarkId::new(change.label(), olabel),
                |b| {
                    b.iter(|| {
                        let r1 = rc.apply_change(&apply_cs).expect("verifies");
                        let r2 = rc.apply_change(&restore_cs).expect("verifies");
                        rc.compact();
                        r1.affected_ecs + r2.affected_ecs
                    })
                },
            );
        }
    }
    group.finish();
}

fn stage_breakdown(c: &mut Criterion) {
    // Isolate the model-update + policy-check stages: apply a rule
    // batch directly to a prebuilt model (bypassing config lowering and
    // routing).
    use rc_apkeep::{RuleUpdate, UpdateOrder};
    let mut group = c.benchmark_group("table3/model-batch");
    group.sample_size(20);
    let w = Workload::fat_tree(K, ProtocolChoice::Bgp);
    let (mut rc, _) = RealConfig::new(w.configs.clone()).expect("verifies");
    // Derive a realistic rule batch from the LP change: capture the FIB
    // delta by applying and reverting once.
    let port = &w.sample_ports(1, 42)[0];
    let (apply_cs, restore_cs) = w.change_at(PaperChange::LocalPref, port);
    let report = rc.apply_change(&apply_cs).expect("verifies");
    rc.apply_change(&restore_cs).expect("verifies");
    let batch_size = report.rules_inserted + report.rules_removed;

    // Rebuild a standalone model mirroring the FIB for direct batching.
    let mut model = rc_apkeep::ApkModel::new();
    let mut rules = Vec::new();
    let mut by_group: std::collections::BTreeMap<_, Vec<_>> = std::collections::BTreeMap::new();
    for e in rc.fib() {
        by_group.entry((e.node, e.prefix)).or_default().push(e.action);
    }
    for ((node, prefix), actions) in by_group {
        let ifaces: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                rc_routing::route::FibAction::Forward(i) => Some(*i),
                rc_routing::route::FibAction::Local(i) => Some(*i),
                rc_routing::route::FibAction::Drop => None,
            })
            .collect();
        if ifaces.is_empty() {
            continue;
        }
        let is_local =
            matches!(actions[0], rc_routing::route::FibAction::Local(_));
        rules.push(rc_apkeep::ModelRule {
            element: rc_apkeep::ElementKey::Forward(node),
            priority: prefix.len() as u32,
            rule_match: rc_apkeep::RuleMatch::DstPrefix(prefix),
            action: if is_local {
                rc_apkeep::PortAction::deliver(ifaces)
            } else {
                rc_apkeep::PortAction::forward(ifaces)
            },
        });
    }
    model.apply_batch(rules.iter().cloned().map(RuleUpdate::Insert).collect(), UpdateOrder::AsGiven);

    // The benchmark batch: replace `batch_size` rules with themselves
    // shifted to a different port set (remove + insert per rule).
    let victims: Vec<_> = rules.iter().take(batch_size.max(4)).cloned().collect();
    for (olabel, order) in
        [("insert-first", UpdateOrder::InsertFirst), ("delete-first", UpdateOrder::DeleteFirst)]
    {
        group.bench_function(BenchmarkId::new("replace-batch", olabel), |b| {
            b.iter(|| {
                // Swap each victim to Drop and back: two batches.
                let to_drop: Vec<_> = victims
                    .iter()
                    .flat_map(|r| {
                        [
                            RuleUpdate::Remove(r.clone()),
                            RuleUpdate::Insert(rc_apkeep::ModelRule {
                                action: rc_apkeep::PortAction::Drop,
                                ..r.clone()
                            }),
                        ]
                    })
                    .collect();
                let back: Vec<_> = victims
                    .iter()
                    .flat_map(|r| {
                        [
                            RuleUpdate::Remove(rc_apkeep::ModelRule {
                                action: rc_apkeep::PortAction::Drop,
                                ..r.clone()
                            }),
                            RuleUpdate::Insert(r.clone()),
                        ]
                    })
                    .collect();
                let s1 = model.apply_batch(to_drop, order);
                let s2 = model.apply_batch(back, order);
                s1.ec_moves + s2.ec_moves
            })
        });
    }
    group.finish();
}

criterion_group!(benches, pipeline_update, stage_breakdown);
criterion_main!(benches);
