//! Criterion bench for Table 2: from-scratch vs incremental data plane
//! generation. Uses k=6 (45 nodes / 108 links) so a bench run stays
//! minutes-scale; the `table2` binary reproduces the paper's k=12.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_netcfg::facts::{fact_delta, lower, Registry};
use rc_netcfg::gen::ProtocolChoice;
use rc_routing::engine::RoutingEngine;
use realconfig_bench::Workload;

const K: u32 = 6;

fn full_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/full");
    group.sample_size(10);
    for proto in [ProtocolChoice::Ospf, ProtocolChoice::Bgp] {
        let label = if proto == ProtocolChoice::Ospf { "ospf" } else { "bgp" };
        let w = Workload::fat_tree(K, proto);
        let mut reg = Registry::new();
        let lowered = lower(&w.configs, &mut reg);
        let facts: Vec<_> = lowered.facts.iter().cloned().map(|f| (f, 1isize)).collect();

        group.bench_function(BenchmarkId::new("realconfig", label), |b| {
            b.iter(|| {
                let mut engine = RoutingEngine::new();
                engine.apply(facts.iter().cloned()).expect("converges");
                engine.fib().len()
            })
        });
        group.bench_function(BenchmarkId::new("baseline", label), |b| {
            b.iter(|| rc_routing::baseline::compute(&lowered.facts).expect("converges").fib.len())
        });
    }
    group.finish();
}

fn incremental_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/incremental");
    group.sample_size(10);
    for proto in [ProtocolChoice::Ospf, ProtocolChoice::Bgp] {
        let plabel = if proto == ProtocolChoice::Ospf { "ospf" } else { "bgp" };
        let w = Workload::fat_tree(K, proto);
        for change in w.changes() {
            // One engine, warmed with the full network; each iteration
            // verifies the change and its revert (two incremental
            // epochs).
            let mut reg = Registry::new();
            let lowered = lower(&w.configs, &mut reg);
            let mut engine = RoutingEngine::new();
            engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1))).expect("converges");
            let mut configs = w.configs.clone();
            let mut facts = lowered.facts;
            let port = &w.sample_ports(1, 42)[0];
            let (apply_cs, restore_cs) = w.change_at(change, port);

            group.bench_function(
                BenchmarkId::new(format!("{plabel}/{}", change.label()), "apply+revert"),
                |b| {
                    b.iter(|| {
                        for cs in [&apply_cs, &restore_cs] {
                            cs.apply(&mut configs).expect("applies");
                            let lowered = lower(&configs, &mut reg);
                            let delta = fact_delta(&facts, &lowered.facts);
                            facts = lowered.facts;
                            engine.apply(delta).expect("converges");
                        }
                        engine.compact();
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, full_generation, incremental_generation);
criterion_main!(benches);
