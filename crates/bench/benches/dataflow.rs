//! Microbenchmarks for the dataflow engine's hot paths: trace
//! accumulation against deep vs shallow histories, incremental join
//! steps, and spine compaction at increasing trace sizes.
//!
//! Set `BENCH_SMOKE=1` to run a reduced-iteration smoke pass (used by
//! CI to keep the benches compiling and executing without paying for
//! stable numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_dataflow::trace::KeyTrace;
use rc_dataflow::{Dataflow, Time};

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn samples(normal: usize) -> usize {
    if smoke() {
        2
    } else {
        normal
    }
}

/// Accumulate one key's state from a 10k-record history, once with
/// every record still in the recent delta layer (deep) and once after
/// compaction folded everything into the consolidated base (shallow,
/// served from the generation-tagged cache).
fn trace_accumulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow/trace_accumulate");
    group.sample_size(samples(50));
    const RECORDS: u64 = 10_000;
    let build = || {
        let mut tr: KeyTrace<u32, u64> = KeyTrace::new();
        for i in 0..RECORDS {
            tr.push(0, i, Time::new(1 + i % 512, 0), 1);
        }
        tr
    };
    let t = Time::new(1024, 0);

    let mut deep = build();
    group.bench_function("deep-history", |b| b.iter(|| deep.accumulate(&0, t).len()));

    let mut shallow = build();
    shallow.compact(512);
    group.bench_function("shallow-base", |b| b.iter(|| shallow.accumulate(&0, t).len()));
    group.finish();
}

/// One incremental epoch through a 2000-key join: insert a record,
/// advance, remove it, advance, compact. Exercises dirty-set
/// scheduling, trace pushes and the cached-base accumulate path.
fn join_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow/join_step");
    group.sample_size(samples(30));
    const KEYS: u32 = 2_000;
    let mut df = Dataflow::new();
    let (a_in, a) = df.input::<(u32, u32)>();
    let (b_in, b_col) = df.input::<(u32, u32)>();
    let mut out = a.join(&b_col).output();
    a_in.extend((0..KEYS).map(|k| (k, k)));
    b_in.extend((0..KEYS).map(|k| (k, k + 1)));
    df.advance().expect("initial epoch");
    out.drain();
    df.compact();
    group.bench_function(BenchmarkId::from_parameter(format!("{KEYS}-keys")), |b| {
        b.iter(|| {
            a_in.insert((7, 99));
            df.advance().expect("insert epoch");
            let n = out.drain().len();
            a_in.remove((7, 99));
            df.advance().expect("remove epoch");
            let m = out.drain().len();
            df.compact();
            n + m
        })
    });
    group.finish();
}

/// Merge a 100-record recent batch into a consolidated base of n
/// records — the steady-state compaction step after the initial fold.
fn compact(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow/compact");
    group.sample_size(samples(20));
    let sizes: &[u64] = if smoke() { &[10_000, 100_000] } else { &[10_000, 100_000, 1_000_000] };
    for &n in sizes {
        let keys = (n / 64).max(1);
        let mut tr: KeyTrace<u32, u64> = KeyTrace::new();
        for i in 0..n {
            tr.push((i % keys) as u32, i, Time::new(1, (i % 4) as u32), 1);
        }
        tr.compact(1);
        let mut epoch = 2u64;
        let mut next = n;
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                for j in 0..100 {
                    tr.push(((next + j) % keys) as u32, next + j, Time::new(epoch, 0), 1);
                }
                next += 100;
                tr.compact(epoch);
                epoch += 1;
                tr.base_len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, trace_accumulate, join_step, compact);
criterion_main!(benches);
