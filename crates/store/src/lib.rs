//! Durable state for the RealConfig verifier.
//!
//! The paper's whole value proposition is *warm incremental state*:
//! rebuilding the EC model and policy verdicts from scratch costs two
//! orders of magnitude more than updating them in place. This crate
//! makes that warmth survive a process exit. Three pieces:
//!
//! - [`atomic_write`] — the crash-safe file write every durable
//!   artifact goes through (`write temp → fsync file → rename →
//!   fsync dir`), so a reader never observes a half-written file under
//!   the final name.
//! - [`snapshot`] — a versioned, length-prefixed container with a
//!   CRC32 per section. Corruption anywhere (bit flip, truncation,
//!   version skew) is detected on read, never silently deserialized.
//! - [`journal`] — an append-only record log for state *newer* than
//!   the last snapshot. Each record carries its own length and CRC;
//!   a torn tail (the expected artifact of a crash mid-append) is
//!   detected and discarded, everything before it replays.
//!
//! The crate is deliberately policy-free: it moves bytes and checks
//! checksums. What goes *in* the sections and records — and what to do
//! when they are missing — is the caller's recovery ladder
//! (`realconfig::RealConfig::open`).
//!
//! Crash behavior is testable on demand: the write paths are
//! instrumented with [`rc_faults`] I/O fault points (torn write,
//! partial append, bit flip on read, fsync failure), so chaos tests
//! can kill persistence at any byte boundary deterministically.

mod atomic;
mod journal;
mod snapshot;
pub mod wire;

pub use atomic::atomic_write;
pub use journal::{read_journal, Journal, JournalRead, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use snapshot::{
    decode_snapshot, encode_snapshot, list_snapshots, prune_snapshots, snapshot_path,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use wire::{Reader, WireError, Writer};

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why a durable artifact could not be read back.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The bytes are present but fail validation: bad magic, bad CRC,
    /// truncated section, or a malformed payload.
    Corrupt(String),
    /// The artifact was written by an incompatible format version.
    Version {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store artifact: {msg}"),
            StoreError::Version { found, expected } => {
                write!(f, "store format version {found} (this build expects {expected})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Corrupt(e.to_string())
    }
}

/// Conventional journal file name inside a state directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.rcj")
}

/// Read a whole file, passing the bytes through the
/// [`rc_faults::FaultPoint::StoreBitFlipRead`] fault point: an armed
/// plan flips one bit mid-buffer, modeling silent media corruption
/// that only a checksum can catch.
pub fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    if rc_faults::fire(rc_faults::FaultPoint::StoreBitFlipRead) && !bytes.is_empty() {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
    }
    Ok(bytes)
}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Vendored
/// here because the build environment is offline; the checksum only
/// needs to catch torn writes and bit rot, not adversaries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The canonical CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_a_single_bit_flip() {
        let mut data = b"the warm state must survive".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
