//! Crash-safe whole-file writes.

use rc_faults::FaultPoint;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers targeting the same destination
/// (the temp name also carries the pid, so two *processes* cannot
/// collide either).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("{} {what}", rc_faults::INJECTED_PANIC_PREFIX))
}

/// Write `bytes` to `path` atomically: the data goes to a temp file in
/// the same directory, is fsynced, then renamed over the destination,
/// and finally the directory itself is fsynced so the rename is
/// durable. A reader (or a post-crash restart) therefore sees either
/// the complete old file or the complete new file under `path` — never
/// a prefix.
///
/// Instrumented with two [`rc_faults`] points so crash tests can
/// exercise the failure surface deterministically:
///
/// - [`FaultPoint::StoreTornWrite`] models the one case the protocol
///   exists to prevent — a non-atomic writer dying mid-write. It
///   clobbers the *destination* with a prefix of `bytes` and errors,
///   so recovery code can prove it survives a torn file under the
///   final name.
/// - [`FaultPoint::StoreFsyncFail`] models the fsync itself failing
///   (full disk, dying media): the temp file is discarded and the
///   destination is left untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if rc_faults::fire(FaultPoint::StoreTornWrite) {
        let torn = &bytes[..bytes.len() / 2];
        // Best-effort clobber: the point is to leave a detectably
        // broken artifact behind, mirroring a crashed naive writer.
        let _ = fs::write(path, torn);
        return Err(injected("torn write to"));
    }

    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("atomic_write: {} has no file name", path.display())))?
        .to_string_lossy()
        .into_owned();
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(".{file_name}.tmp.{}.{seq}", std::process::id());
    let tmp = match parent {
        Some(dir) => dir.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };

    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        if rc_faults::fire(FaultPoint::StoreFsyncFail) {
            return Err(injected("fsync failure while writing"));
        }
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        if let Some(dir) = parent {
            // Make the rename itself durable. Directories cannot be
            // opened for write on all platforms; read access suffices
            // for fsync on the ones we target.
            OpenOptions::new().read(true).open(dir)?.sync_all()?;
        }
        Ok(())
    })();

    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_faults::FaultPlan;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rc-store-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_complete_and_replace_prior_content() {
        let dir = temp_dir("basic");
        let path = dir.join("data.bin");
        atomic_write(&path, b"first version").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first version");
        atomic_write(&path, b"second, longer version").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer version");
        // No temp litter left behind.
        let extras: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "data.bin")
            .collect();
        assert!(extras.is_empty(), "leftover temp files: {extras:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_leaves_a_detectable_prefix() {
        let dir = temp_dir("torn");
        let path = dir.join("data.bin");
        atomic_write(&path, b"good old state").unwrap();
        let _g = FaultPlan::new().error_on(FaultPoint::StoreTornWrite, 1).install();
        let err = atomic_write(&path, b"new state that tears").unwrap_err();
        assert!(err.to_string().contains("torn write"));
        // The destination was clobbered with a prefix — exactly the
        // hazard recovery must survive.
        assert_eq!(fs::read(&path).unwrap(), b"new state "[..].to_vec());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fsync_failure_preserves_the_old_file() {
        let dir = temp_dir("fsync");
        let path = dir.join("data.bin");
        atomic_write(&path, b"durable").unwrap();
        let _g = FaultPlan::new().error_on(FaultPoint::StoreFsyncFail, 1).install();
        assert!(atomic_write(&path, b"never lands").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"durable");
        // The temp file was cleaned up.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
