//! The append-only apply journal.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [8]  magic  "RCJRNL\0\1"
//! [4]  format version (u32)
//! [8]  snapshot sequence number this journal extends (u64)
//! per record:
//!   [4]  payload length (u32)
//!   [4]  CRC32 of payload
//!   [n]  payload
//! ```
//!
//! Appends are `write_all` + fsync on a file opened in append mode, so
//! a crash can only ever leave a *torn tail*: the final record's bytes
//! cut short, or its CRC not matching. [`read_journal`] stops at the
//! first defective record and reports how much it discarded — every
//! record before the tear replays; nothing after it is trusted
//! (lengths downstream of a tear are noise).

use crate::wire::{Reader, Writer};
use crate::{atomic_write, crc32, read_file, StoreError};
use rc_faults::FaultPoint;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Identifies a journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"RCJRNL\x00\x01";

/// Bumped on any incompatible record-layout change.
pub const JOURNAL_VERSION: u32 = 1;

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("{} {what}", rc_faults::INJECTED_PANIC_PREFIX))
}

/// Handle for appending to a journal file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// Create (atomically, truncating any predecessor) a fresh journal
    /// at `path` extending snapshot `snapshot_seq`.
    pub fn create(path: &Path, snapshot_seq: u64) -> io::Result<Journal> {
        let mut w = Writer::new();
        w.raw(JOURNAL_MAGIC);
        w.u32(JOURNAL_VERSION);
        w.u64(snapshot_seq);
        atomic_write(path, &w.finish())?;
        Ok(Journal { path: path.to_path_buf() })
    }

    /// Reattach to an existing journal file for further appends.
    pub fn attach(path: &Path) -> Journal {
        Journal { path: path.to_path_buf() }
    }

    /// Append one checksummed record and fsync it. On error the file
    /// may hold a torn tail — which is exactly what [`read_journal`]
    /// is built to discard.
    ///
    /// Instrumented fault points: [`FaultPoint::StorePartialAppend`]
    /// writes only a prefix of the record (a crash mid-append);
    /// [`FaultPoint::StoreFsyncFail`] writes the record but fails the
    /// fsync, so the caller must treat it as not durable.
    pub fn append(&self, payload: &[u8]) -> io::Result<()> {
        let mut rec = Writer::new();
        rec.u32(payload.len() as u32);
        rec.u32(crc32(payload));
        rec.raw(payload);
        let rec = rec.finish();

        let mut f = OpenOptions::new().append(true).open(&self.path)?;
        if rc_faults::fire(FaultPoint::StorePartialAppend) {
            let torn = &rec[..rec.len() / 2];
            let _ = f.write_all(torn);
            let _ = f.sync_all();
            return Err(injected("partial append to journal"));
        }
        f.write_all(&rec)?;
        if rc_faults::fire(FaultPoint::StoreFsyncFail) {
            return Err(injected("fsync failure on journal append"));
        }
        f.sync_all()
    }

    /// The file this journal appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Everything salvageable from a journal file.
#[derive(Debug)]
pub struct JournalRead {
    /// Sequence number of the snapshot the journal extends.
    pub snapshot_seq: u64,
    /// Fully validated records, in append order.
    pub records: Vec<Vec<u8>>,
    /// Defective records discarded at the tail (0 on a clean file, 1
    /// for a torn tail — everything after the first defect is
    /// untrusted and counted as one discard).
    pub discarded: usize,
}

/// Read and validate a journal. A corrupt *header* is an error (the
/// file tells us nothing); a corrupt or torn *record* ends the replay
/// early and is reported via [`JournalRead::discarded`].
pub fn read_journal(path: &Path) -> Result<JournalRead, StoreError> {
    let bytes = read_file(path)?;
    let mut r = Reader::new(&bytes);
    let magic = r.raw(8).map_err(|_| StoreError::Corrupt("journal shorter than magic".into()))?;
    if magic != JOURNAL_MAGIC {
        return Err(StoreError::Corrupt("bad journal magic".into()));
    }
    let version = r.u32()?;
    if version != JOURNAL_VERSION {
        return Err(StoreError::Version { found: version, expected: JOURNAL_VERSION });
    }
    let snapshot_seq = r.u64()?;

    let mut records = Vec::new();
    let mut discarded = 0usize;
    let mut pos = bytes.len() - r.remaining();
    while pos < bytes.len() {
        let mut rec = Reader::new(&bytes[pos..]);
        let valid = (|| -> Option<Vec<u8>> {
            let len = rec.u32().ok()?;
            let stored = rec.u32().ok()?;
            let payload = rec.raw(len as usize).ok()?;
            (crc32(payload) == stored).then(|| payload.to_vec())
        })();
        match valid {
            Some(payload) => {
                pos += 8 + payload.len();
                records.push(payload);
            }
            None => {
                // Torn or rotten: nothing past this offset is
                // trustworthy (record framing is sequential).
                discarded = 1;
                break;
            }
        }
    }
    Ok(JournalRead { snapshot_seq, records, discarded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_faults::FaultPlan;

    fn temp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rc-store-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.rcj")
    }

    #[test]
    fn append_then_read_round_trips_in_order() {
        let path = temp_journal("roundtrip");
        let j = Journal::create(&path, 42).unwrap();
        j.append(b"first").unwrap();
        j.append(b"").unwrap();
        j.append(&[0xAB; 300]).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.snapshot_seq, 42);
        assert_eq!(read.records, vec![b"first".to_vec(), Vec::new(), vec![0xAB; 300]]);
        assert_eq!(read.discarded, 0);
    }

    #[test]
    fn torn_tail_is_discarded_but_the_prefix_replays() {
        let path = temp_journal("torn");
        let j = Journal::create(&path, 1).unwrap();
        j.append(b"kept one").unwrap();
        j.append(b"kept two").unwrap();
        let _g = FaultPlan::new().error_on(FaultPoint::StorePartialAppend, 1).install();
        assert!(j.append(b"this record tears").is_err());
        drop(_g);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records, vec![b"kept one".to_vec(), b"kept two".to_vec()]);
        assert_eq!(read.discarded, 1);
    }

    #[test]
    fn corrupt_record_body_stops_the_replay_at_the_defect() {
        let path = temp_journal("bitrot");
        let j = Journal::create(&path, 7).unwrap();
        j.append(b"good").unwrap();
        j.append(b"soon to rot").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records, vec![b"good".to_vec()]);
        assert_eq!(read.discarded, 1);
    }

    #[test]
    fn corrupt_header_is_an_error_not_an_empty_read() {
        let path = temp_journal("header");
        Journal::create(&path, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_journal(&path).is_err());
    }

    #[test]
    fn bit_flip_on_read_is_caught_by_record_crc() {
        let path = temp_journal("bitflip");
        let j = Journal::create(&path, 3).unwrap();
        j.append(&[1u8; 64]).unwrap();
        j.append(&[2u8; 64]).unwrap();
        let _g = FaultPlan::new().error_on(FaultPoint::StoreBitFlipRead, 1).install();
        let read = read_journal(&path).unwrap();
        // The flip lands mid-file: some suffix is discarded, and no
        // corrupted payload is ever returned as valid.
        assert!(read.discarded > 0 || read.records.len() == 2);
        for rec in &read.records {
            assert!(rec.iter().all(|&b| b == 1) || rec.iter().all(|&b| b == 2));
        }
    }
}
