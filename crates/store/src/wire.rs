//! A minimal little-endian wire format: length-prefixed bytes and
//! fixed-width integers, with a bounds-checked reader.
//!
//! Every decode error is a value ([`WireError`]), never a panic or an
//! out-of-bounds slice — corrupt input must be survivable, because the
//! recovery ladder treats "failed to decode" as "try the next rung",
//! not "refuse to start".

use std::fmt;

/// Append-only encoder. All integers are little-endian; variable-size
/// payloads are `u64` length-prefixed.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64` (the on-disk width is fixed so a
    /// 32-bit reader agrees with a 64-bit writer).
    pub fn len_prefix(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.len_prefix(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Append raw bytes with no length prefix (for fixed-layout
    /// trailers the reader knows how to find).
    pub fn raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Consume the writer, yielding the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A decode failure: truncated input, an impossible length, or invalid
/// UTF-8 where a string was promised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// Bounds-checked decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return err(format!("need {n} bytes, {} remain", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Take one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.raw(1)?[0])
    }

    /// Take a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.raw(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Take a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.raw(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Take a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.raw(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Take a `u64` length prefix, validated against the bytes that
    /// actually remain (an absurd length from corrupt input must not
    /// drive an allocation or a panic).
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return err(format!("length prefix {n} exceeds {} remaining bytes", self.remaining()));
        }
        Ok(n as usize)
    }

    /// Take a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.len_prefix()?;
        self.raw(n)
    }

    /// Take a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let b = self.bytes()?;
        match std::str::from_utf8(b) {
            Ok(s) => Ok(s),
            Err(_) => err("invalid utf-8 in string"),
        }
    }

    /// Assert the input was fully consumed (trailing garbage after a
    /// decoded payload means the payload is not what it claims).
    pub fn done(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return err(format!("{} trailing bytes after payload", self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.bytes(b"abc");
        w.str("héllo");
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.str().unwrap(), "héllo");
        r.done().unwrap();
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // claims ~18EB follow
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert!(r.done().is_err());
    }
}
