//! The checksummed snapshot container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [8]  magic  "RCSNAP\0\1"
//! [4]  format version (u32)
//! [4]  section count (u32)
//! per section:
//!   [4]  tag (u32, caller-defined)
//!   [8]  payload length (u64)
//!   [n]  payload
//!   [4]  CRC32 of payload
//! ```
//!
//! Each section is independently checksummed so a bit flip anywhere is
//! pinned to a section and the whole file is rejected (state sections
//! cross-reference each other — predicate handles into the predicate
//! arena, EC ids into the partition — so a partially-valid snapshot is
//! not worth salvaging; the recovery ladder's next rung is).

use crate::wire::{Reader, Writer};
use crate::{crc32, StoreError};
use std::io;
use std::path::{Path, PathBuf};

/// Identifies a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"RCSNAP\x00\x01";

/// Bumped on any incompatible layout change; readers reject other
/// versions and the recovery ladder falls through to a rebuild.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Encode `sections` (tag, payload) into a self-validating snapshot
/// image, ready for [`crate::atomic_write`].
pub fn encode_snapshot(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u32(sections.len() as u32);
    for (tag, payload) in sections {
        w.u32(*tag);
        w.u64(payload.len() as u64);
        w.raw(payload);
        w.u32(crc32(payload));
    }
    w.finish()
}

/// Decode and fully validate a snapshot image, returning its sections.
/// Any defect — bad magic, version skew, truncation, CRC mismatch,
/// trailing garbage — is an error; the caller never sees bytes that
/// did not checksum clean.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<(u32, Vec<u8>)>, StoreError> {
    let mut r = Reader::new(bytes);
    let magic = r.raw(8).map_err(|_| StoreError::Corrupt("snapshot shorter than magic".into()))?;
    if magic != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".into()));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::Version { found: version, expected: SNAPSHOT_VERSION });
    }
    let count = r.u32()?;
    let mut sections = Vec::new();
    for i in 0..count {
        let tag = r.u32()?;
        let len = r.u64()?;
        if len > r.remaining() as u64 {
            return Err(StoreError::Corrupt(format!(
                "section {i} (tag {tag}) claims {len} bytes, {} remain",
                r.remaining()
            )));
        }
        let payload = r.raw(len as usize)?;
        let stored = r.u32()?;
        let actual = crc32(payload);
        if stored != actual {
            return Err(StoreError::Corrupt(format!(
                "section {i} (tag {tag}) CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        sections.push((tag, payload.to_vec()));
    }
    r.done().map_err(|e| StoreError::Corrupt(e.to_string()))?;
    Ok(sections)
}

/// Path of the snapshot with sequence number `seq` inside a state
/// directory. Sequence numbers are zero-padded so lexicographic and
/// numeric order agree.
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:016}.rcs"))
}

/// Enumerate the snapshots in a state directory, newest (highest
/// sequence number) first. Files that do not parse as snapshot names
/// are ignored; missing directories yield an empty list (a cold start
/// is not an error).
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name.strip_prefix("snap-").and_then(|s| s.strip_suffix(".rcs")) else {
            continue;
        };
        if let Ok(seq) = seq.parse::<u64>() {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(found)
}

/// Delete all but the newest `keep` snapshots in `dir`. Failures to
/// remove are ignored — pruning is advisory; stale snapshots only
/// cost disk.
pub fn prune_snapshots(dir: &Path, keep: usize) -> io::Result<()> {
    for (_, path) in list_snapshots(dir)?.into_iter().skip(keep) {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(u32, Vec<u8>)> {
        vec![(1, b"alpha section".to_vec()), (7, vec![0u8; 1000]), (2, Vec::new())]
    }

    #[test]
    fn encode_decode_round_trips() {
        let img = encode_snapshot(&sample());
        assert_eq!(decode_snapshot(&img).unwrap(), sample());
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let img = encode_snapshot(&sample());
        // Flip a bit at several positions spanning header, payload and
        // CRC bytes; every one must fail validation.
        for pos in [0usize, 9, 20, 40, img.len() / 2, img.len() - 1] {
            let mut bad = img.clone();
            bad[pos] ^= 0x04;
            assert!(decode_snapshot(&bad).is_err(), "bit flip at {pos} went undetected");
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_rejected() {
        let img = encode_snapshot(&sample());
        for cut in [0, 4, 8, 12, 16, img.len() - 1] {
            assert!(decode_snapshot(&img[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    #[test]
    fn version_skew_is_a_distinct_error() {
        let mut img = encode_snapshot(&sample());
        img[8] = 99; // version field follows the 8-byte magic
        match decode_snapshot(&img) {
            Err(StoreError::Version { found: 99, expected }) => {
                assert_eq!(expected, SNAPSHOT_VERSION)
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn listing_orders_newest_first_and_pruning_keeps_that_prefix() {
        let dir = std::env::temp_dir()
            .join(format!("rc-store-snaplist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seq in [3u64, 1, 2] {
            std::fs::write(snapshot_path(&dir, seq), b"x").unwrap();
        }
        std::fs::write(dir.join("journal.rcj"), b"not a snapshot").unwrap();
        let seqs: Vec<u64> = list_snapshots(&dir).unwrap().iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![3, 2, 1]);
        prune_snapshots(&dir, 2).unwrap();
        let seqs: Vec<u64> = list_snapshots(&dir).unwrap().iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![3, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
