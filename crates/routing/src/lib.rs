//! Control-plane models for RealConfig.
//!
//! Two implementations of identical routing semantics:
//!
//! * [`engine::RoutingEngine`] — the paper's incremental data plane
//!   generator: protocol behaviour written once as a differential
//!   dataflow; any configuration change is just a fact delta.
//! * [`baseline`] — a from-scratch simulator with custom algorithms
//!   (Dijkstra, synchronous path vector), standing in for Batfish as
//!   the non-incremental comparison point and serving as the
//!   differential-testing oracle.
//!
//! ```
//! use rc_netcfg::{gen, topology, facts};
//! use rc_routing::engine::RoutingEngine;
//!
//! let topo = topology::ring(4);
//! let cfgs = gen::build_configs(&topo, gen::ProtocolChoice::Ospf);
//! let mut reg = facts::Registry::new();
//! let lowered = facts::lower(&cfgs, &mut reg);
//!
//! let mut engine = RoutingEngine::new();
//! engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1))).unwrap();
//! let fib = engine.fib();
//! assert!(!fib.is_empty());
//!
//! // The from-scratch baseline computes the same data plane.
//! let oracle = rc_routing::baseline::compute(&lowered.facts).unwrap();
//! assert_eq!(fib, oracle.fib);
//! ```

pub mod baseline;
pub mod engine;
pub mod route;

pub use engine::{ApplyStats, RoutingEngine};
pub use route::{BgpRoute, FibAction, FibDelta, FibEntry, FilterRule, PathVec, RibValue};
