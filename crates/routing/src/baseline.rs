//! The from-scratch baseline simulator ("batfish-like" in the paper's
//! Table 2): custom, non-incremental algorithms — Dijkstra for OSPF,
//! synchronous path-vector iteration for BGP — over the same fact
//! relations and with identical semantics to the dataflow engine.
//!
//! It serves two purposes: the full-recomputation baseline for the
//! benchmarks, and a differential-testing oracle for the incremental
//! engine (their FIBs must match on every input).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use rc_netcfg::facts::{Action, Fact};
use rc_netcfg::types::{IfaceId, NodeId, Prefix, Proto};

use crate::route::{BgpRoute, FibAction, FibEntry, FilterRule, RibValue};

/// Baseline failure: the synchronous BGP iteration did not converge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineDivergence {
    pub iterations: u32,
}

impl std::fmt::Display for BaselineDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BGP did not converge within {} synchronous rounds", self.iterations)
    }
}

impl std::error::Error for BaselineDivergence {}

const MAX_ROUNDS: u32 = 200;

/// The complete data plane computed from scratch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataPlane {
    pub fib: BTreeSet<FibEntry>,
    pub filters: BTreeSet<FilterRule>,
}

/// Compute the converged data plane for a fact set, from scratch.
pub fn compute(facts: &BTreeSet<Fact>) -> Result<DataPlane, BaselineDivergence> {
    // ---------- Collect relations ----------
    let mut links: Vec<((NodeId, IfaceId), (NodeId, IfaceId))> = Vec::new();
    let mut iface_prefix: Vec<(NodeId, IfaceId, Prefix)> = Vec::new();
    let mut ospf_iface: BTreeMap<(NodeId, IfaceId), u32> = BTreeMap::new();
    let mut ospf_origin: Vec<(NodeId, Prefix, u32)> = Vec::new();
    let mut rip_iface: BTreeSet<(NodeId, IfaceId)> = BTreeSet::new();
    let mut rip_origin: Vec<(NodeId, Prefix, u32)> = Vec::new();
    let mut sessions: Vec<(NodeId, IfaceId, NodeId, IfaceId)> = Vec::new();
    type ImportEntry = (u32, bool, Option<Prefix>, Option<u32>, Option<u32>);
    type ExportEntry = (u32, bool, Option<Prefix>, Option<u32>);
    let mut import_pol: BTreeMap<(NodeId, IfaceId), Vec<ImportEntry>> = BTreeMap::new();
    let mut export_pol: BTreeMap<(NodeId, IfaceId), Vec<ExportEntry>> = BTreeMap::new();
    let mut bgp_origin: Vec<(NodeId, Prefix)> = Vec::new();
    let mut statics: Vec<(NodeId, Prefix, Option<IfaceId>)> = Vec::new();
    let mut filters: BTreeSet<FilterRule> = BTreeSet::new();
    let mut redist: Vec<(NodeId, Proto, Proto, u32)> = Vec::new();

    for f in facts {
        match f.clone() {
            Fact::Device(_) => {}
            Fact::Link { src, dst } => links.push(((src.node, src.iface), (dst.node, dst.iface))),
            Fact::IfacePrefix { node, iface, prefix } => iface_prefix.push((node, iface, prefix)),
            Fact::OspfIface { node, iface, cost } => {
                ospf_iface.insert((node, iface), cost);
            }
            Fact::OspfOrigin { node, prefix, cost } => ospf_origin.push((node, prefix, cost)),
            Fact::RipIface { node, iface } => {
                rip_iface.insert((node, iface));
            }
            Fact::RipOrigin { node, prefix, metric } => rip_origin.push((node, prefix, metric)),
            Fact::BgpSession { node, iface, peer, peer_iface } => {
                sessions.push((node, iface, peer, peer_iface))
            }
            Fact::BgpImportPolicy { node, iface, seq, action, match_prefix, set_lp, set_med } => {
                import_pol
                    .entry((node, iface))
                    .or_default()
                    .push((seq, action == Action::Permit, match_prefix, set_lp, set_med))
            }
            Fact::BgpExportPolicy { node, iface, seq, action, match_prefix, set_med } => export_pol
                .entry((node, iface))
                .or_default()
                .push((seq, action == Action::Permit, match_prefix, set_med)),
            Fact::BgpOrigin { node, prefix } => bgp_origin.push((node, prefix)),
            Fact::StaticRoute { node, prefix, out } => statics.push((node, prefix, out)),
            Fact::AclRule { node, iface, dir, seq, action, proto, src, dst, dst_ports } => {
                filters.insert(FilterRule {
                    node,
                    iface,
                    dir,
                    seq,
                    permit: action == Action::Permit,
                    proto,
                    src,
                    dst,
                    dst_ports,
                });
            }
            Fact::Redistribute { node, from, into, metric } => {
                redist.push((node, from, into, metric))
            }
        }
    }
    for entries in import_pol.values_mut() {
        entries.sort();
    }
    for entries in export_pol.values_mut() {
        entries.sort();
    }

    let has_redist = |n: NodeId, from: Proto, into: Proto| {
        redist.iter().find(|&&(rn, rf, rt, _)| rn == n && rf == from && rt == into).map(|r| r.3)
    };

    // ---------- RIB: connected & static ----------
    let mut rib: BTreeMap<(NodeId, Prefix), Vec<RibValue>> = BTreeMap::new();
    for &(n, i, p) in &iface_prefix {
        rib.entry((n, p))
            .or_default()
            .push(RibValue { admin: Proto::Connected.admin_distance(), action: FibAction::Local(i) });
    }
    for &(n, p, out) in &statics {
        let action = out.map(FibAction::Forward).unwrap_or(FibAction::Drop);
        rib.entry((n, p))
            .or_default()
            .push(RibValue { admin: Proto::Static.admin_distance(), action });
    }

    // ---------- OSPF: multi-source Dijkstra per prefix ----------
    // Edges where both interfaces run OSPF; weight is the source
    // interface's cost.
    let mut ospf_edges: Vec<(NodeId, IfaceId, NodeId, u32)> = Vec::new();
    for &((un, ui), (vn, vi)) in &links {
        if let Some(&w) = ospf_iface.get(&(un, ui)) {
            if ospf_iface.contains_key(&(vn, vi)) {
                ospf_edges.push((un, ui, vn, w));
            }
        }
    }
    // Reverse adjacency: for Dijkstra from destinations.
    let mut radj: HashMap<NodeId, Vec<(NodeId, IfaceId, u32)>> = HashMap::new();
    for &(u, i, v, w) in &ospf_edges {
        radj.entry(v).or_default().push((u, i, w));
    }

    // Origins per prefix (configured plus redistributed).
    let mut origins_per_prefix: BTreeMap<Prefix, Vec<(NodeId, u32)>> = BTreeMap::new();
    for &(n, p, c) in &ospf_origin {
        origins_per_prefix.entry(p).or_default().push((n, c));
    }
    for &(n, _i, p) in &iface_prefix {
        if let Some(m) = has_redist(n, Proto::Connected, Proto::Ospf) {
            origins_per_prefix.entry(p).or_default().push((n, m));
        }
    }
    for &(n, p, _out) in &statics {
        if let Some(m) = has_redist(n, Proto::Static, Proto::Ospf) {
            origins_per_prefix.entry(p).or_default().push((n, m));
        }
    }

    let mut ospf_dist: BTreeMap<(NodeId, Prefix), u32> = BTreeMap::new();
    for (&p, origins) in &origins_per_prefix {
        let mut dist: HashMap<NodeId, u32> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
        for &(n, c) in origins {
            // Multiple origins at the same node: keep the cheapest.
            let slot = dist.entry(n).or_insert(u32::MAX);
            if c < *slot {
                *slot = c;
                heap.push(Reverse((c, n)));
            }
        }
        let mut done: BTreeSet<NodeId> = BTreeSet::new();
        while let Some(Reverse((d, v))) = heap.pop() {
            if !done.insert(v) {
                continue;
            }
            ospf_dist.insert((v, p), d);
            for &(u, _i, w) in radj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                let nd = d + w;
                let slot = dist.entry(u).or_insert(u32::MAX);
                if nd < *slot {
                    *slot = nd;
                    heap.push(Reverse((nd, u)));
                }
            }
        }
    }
    // Next hops: edges on shortest paths.
    for (&(u, p), &du) in &ospf_dist {
        for &(eu, i, v, w) in &ospf_edges {
            if eu != u {
                continue;
            }
            if let Some(&dv) = ospf_dist.get(&(v, p)) {
                if w + dv == du {
                    rib.entry((u, p)).or_default().push(RibValue {
                        admin: Proto::Ospf.admin_distance(),
                        action: FibAction::Forward(i),
                    });
                }
            }
        }
    }

    // ---------- RIP: hop-count distance vector, infinity at 16 ----------
    let mut rip_edges: Vec<(NodeId, IfaceId, NodeId)> = Vec::new();
    for &((un, ui), (vn, vi)) in &links {
        if rip_iface.contains(&(un, ui)) && rip_iface.contains(&(vn, vi)) {
            rip_edges.push((un, ui, vn));
        }
    }
    let mut rip_radj: HashMap<NodeId, Vec<(NodeId, IfaceId)>> = HashMap::new();
    for &(u, i, v) in &rip_edges {
        rip_radj.entry(v).or_default().push((u, i));
    }
    let mut rip_origins_per_prefix: BTreeMap<Prefix, Vec<(NodeId, u32)>> = BTreeMap::new();
    for &(n, p, m) in &rip_origin {
        rip_origins_per_prefix.entry(p).or_default().push((n, m.clamp(1, 15)));
    }
    for &(n, _i, p) in &iface_prefix {
        if let Some(m) = has_redist(n, Proto::Connected, Proto::Rip) {
            rip_origins_per_prefix.entry(p).or_default().push((n, m.clamp(1, 15)));
        }
    }
    for &(n, p, _out) in &statics {
        if let Some(m) = has_redist(n, Proto::Static, Proto::Rip) {
            rip_origins_per_prefix.entry(p).or_default().push((n, m.clamp(1, 15)));
        }
    }
    let mut rip_dist: BTreeMap<(NodeId, Prefix), u32> = BTreeMap::new();
    for (&p, origins) in &rip_origins_per_prefix {
        let mut dist: HashMap<NodeId, u32> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
        for &(n, c) in origins {
            let slot = dist.entry(n).or_insert(u32::MAX);
            if c < *slot {
                *slot = c;
                heap.push(Reverse((c, n)));
            }
        }
        let mut done: BTreeSet<NodeId> = BTreeSet::new();
        while let Some(Reverse((d, v))) = heap.pop() {
            if !done.insert(v) {
                continue;
            }
            rip_dist.insert((v, p), d);
            if d + 1 > 15 {
                continue; // further hops would be infinity
            }
            for &(u, _i) in rip_radj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                let nd = d + 1;
                let slot = dist.entry(u).or_insert(u32::MAX);
                if nd < *slot {
                    *slot = nd;
                    heap.push(Reverse((nd, u)));
                }
            }
        }
    }
    for (&(u, p), &du) in &rip_dist {
        for &(eu, i, v) in &rip_edges {
            if eu != u {
                continue;
            }
            if let Some(&dv) = rip_dist.get(&(v, p)) {
                if 1 + dv == du {
                    rib.entry((u, p)).or_default().push(RibValue {
                        admin: Proto::Rip.admin_distance(),
                        action: FibAction::Forward(i),
                    });
                }
            }
        }
    }

    // ---------- BGP: synchronous path-vector ----------
    let mut origins: BTreeSet<(NodeId, Prefix)> = bgp_origin.iter().copied().collect();
    for &(n, _i, p) in &iface_prefix {
        if has_redist(n, Proto::Connected, Proto::Bgp).is_some() {
            origins.insert((n, p));
        }
    }
    for &(n, p, _out) in &statics {
        if has_redist(n, Proto::Static, Proto::Bgp).is_some() {
            origins.insert((n, p));
        }
    }
    for &(n, p) in ospf_dist.keys() {
        if has_redist(n, Proto::Ospf, Proto::Bgp).is_some() {
            origins.insert((n, p));
        }
    }
    for &(n, p) in rip_dist.keys() {
        if has_redist(n, Proto::Rip, Proto::Bgp).is_some() {
            origins.insert((n, p));
        }
    }

    let first_match_export =
        |pols: &BTreeMap<(NodeId, IfaceId), Vec<ExportEntry>>,
         key: (NodeId, IfaceId),
         p: Prefix| {
            pols.get(&key)
                .and_then(|entries| {
                    entries.iter().find(|(_, _, m, _)| m.is_none_or(|mp| mp.contains(p)))
                })
                .map(|&(_, permit, _, med)| (permit, med))
                .unwrap_or((false, None))
        };
    let first_match_import = |key: (NodeId, IfaceId), p: Prefix| {
        import_pol
            .get(&key)
            .and_then(|entries| {
                entries.iter().find(|(_, _, m, _, _)| m.is_none_or(|mp| mp.contains(p)))
            })
            .map(|&(_, permit, _, lp, med)| (permit, lp, med))
            .unwrap_or((false, None, None))
    };

    let mut best: BTreeMap<(NodeId, Prefix), BgpRoute> = BTreeMap::new();
    for &(n, p) in &origins {
        best.insert((n, p), BgpRoute::originate(n));
    }
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(BaselineDivergence { iterations: MAX_ROUNDS });
        }
        let mut next: BTreeMap<(NodeId, Prefix), BgpRoute> = BTreeMap::new();
        for &(n, p) in &origins {
            next.insert((n, p), BgpRoute::originate(n));
        }
        for &(n, i, m, j) in &sessions {
            // Everything m currently holds, offered to n.
            for ((bn, p), r) in best.range((m, Prefix::DEFAULT)..) {
                if *bn != m {
                    break;
                }
                if r.path.contains(&n) {
                    continue;
                }
                let (epermit, emed) = first_match_export(&export_pol, (m, j), *p);
                if !epermit {
                    continue;
                }
                let (permit, lp, imed) = first_match_import((n, i), *p);
                if !permit {
                    continue;
                }
                let med = imed.or(emed).unwrap_or(BgpRoute::DEFAULT_MED);
                let cand =
                    r.import(n, m, i, lp.unwrap_or(BgpRoute::DEFAULT_LOCAL_PREF), med);
                match next.get(&(n, *p)) {
                    Some(cur) if *cur <= cand => {}
                    _ => {
                        next.insert((n, *p), cand);
                    }
                }
            }
        }
        if next == best {
            break;
        }
        best = next;
    }
    for ((n, p), r) in &best {
        if let Some(out) = r.out {
            rib.entry((*n, *p))
                .or_default()
                .push(RibValue { admin: Proto::Bgp.admin_distance(), action: FibAction::Forward(out) });
        }
    }

    // ---------- FIB: admin-distance selection ----------
    let mut fib = BTreeSet::new();
    for ((n, p), mut vals) in rib {
        vals.sort();
        vals.dedup();
        let min_admin = vals[0].admin;
        for v in vals.into_iter().take_while(|v| v.admin == min_admin) {
            fib.insert(FibEntry { node: n, prefix: p, action: v.action });
        }
    }

    Ok(DataPlane { fib, filters })
}
