//! The incremental control-plane model: configuration facts in, FIB
//! (and filter-rule) deltas out.
//!
//! All protocol semantics are expressed **once**, declaratively, as a
//! dataflow over the differential engine — the paper's key design
//! decision. There is no per-change-type code here: a link failure, a
//! cost change, a local-preference change, a new ACL entry and a brand
//! new device all enter as fact deltas, and the engine incrementally
//! updates exactly the affected routes.
//!
//! The model covers OSPF (SPF with ECMP), RIP (hop-count distance
//! vector with infinity at 16), eBGP (path-vector best-path with
//! local-pref / path-length / neighbor-id selection, AS-path loop
//! rejection, import and export route-maps), static routes, connected
//! routes, admin-distance RIB→FIB merging, and redistribution of
//! connected/static into OSPF/RIP and connected/static/OSPF/RIP into
//! BGP.
//! Mutual BGP↔OSPF redistribution would make the two fixpoints
//! circularly dependent and is reported via [`RoutingEngine::ignored`].

use std::collections::BTreeSet;

use rc_dataflow::{Dataflow, EvalError, InputHandle, OutputHandle};
use rc_netcfg::facts::{Action, Fact};
use rc_netcfg::types::{IfaceId, NodeId, Port, Prefix, Proto};

use crate::route::{BgpRoute, FibAction, FibDelta, FibEntry, FilterRule, RibValue};

type ImportEntry = (NodeId, IfaceId, u32, bool, Option<Prefix>, Option<u32>, Option<u32>);
type ExportEntry = (NodeId, IfaceId, u32, bool, Option<Prefix>, Option<u32>);

/// Statistics for one `apply` call.
#[derive(Clone, Copy, Debug, Default)]
pub struct ApplyStats {
    /// Records processed inside the dataflow this epoch (work measure).
    pub records: u64,
    /// FIB entries inserted + removed.
    pub fib_changes: usize,
    /// Filter rules inserted + removed.
    pub filter_changes: usize,
}

/// The incremental data plane generator (paper §4.2, first stage).
pub struct RoutingEngine {
    df: Dataflow,
    in_link: InputHandle<(Port, Port)>,
    in_iface_prefix: InputHandle<(NodeId, IfaceId, Prefix)>,
    in_ospf_iface: InputHandle<(NodeId, IfaceId, u32)>,
    in_ospf_origin: InputHandle<(NodeId, Prefix, u32)>,
    in_rip_iface: InputHandle<(NodeId, IfaceId)>,
    in_rip_origin: InputHandle<(NodeId, Prefix, u32)>,
    in_bgp_session: InputHandle<(NodeId, IfaceId, NodeId, IfaceId)>,
    in_bgp_import: InputHandle<ImportEntry>,
    in_bgp_export: InputHandle<ExportEntry>,
    in_bgp_origin: InputHandle<(NodeId, Prefix)>,
    in_static: InputHandle<(NodeId, Prefix, Option<IfaceId>)>,
    in_acl: InputHandle<FilterRule>,
    in_redist: InputHandle<(NodeId, Proto, Proto, u32)>,
    fib_out: OutputHandle<FibEntry>,
    acl_out: OutputHandle<FilterRule>,
    last_fib_delta: FibDelta,
    last_filter_delta: (Vec<FilterRule>, Vec<FilterRule>),
    ignored: Vec<Fact>,
}

impl Default for RoutingEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Default fixpoint cap for the protocol iterations. Convergence is
/// bounded by path exploration, itself bounded by network diameter —
/// even 180-node fat trees settle within ~10 iterations, so 200 spare
/// iterations separate "big network" from "divergent control plane"
/// comfortably.
pub const DEFAULT_PROTOCOL_ITERS: u32 = 200;

impl RoutingEngine {
    /// Build the dataflow with the default iteration cap.
    pub fn new() -> Self {
        Self::with_max_iters(DEFAULT_PROTOCOL_ITERS)
    }

    /// Build the dataflow. This constructs the full protocol model but
    /// computes nothing until facts are applied. `max_iters` bounds
    /// each protocol fixpoint; exceeding it surfaces as
    /// [`EvalError::Divergence`] (paper §6: nonterminating Datalog
    /// evaluation signals a non-converging control plane).
    pub fn with_max_iters(max_iters: u32) -> Self {
        let mut df = Dataflow::new();
        let (in_link, links) = df.input::<(Port, Port)>();
        let (in_iface_prefix, iface_prefix) = df.input::<(NodeId, IfaceId, Prefix)>();
        let (in_ospf_iface, ospf_iface) = df.input::<(NodeId, IfaceId, u32)>();
        let (in_ospf_origin, ospf_origin) = df.input::<(NodeId, Prefix, u32)>();
        let (in_rip_iface, rip_iface) = df.input::<(NodeId, IfaceId)>();
        let (in_rip_origin, rip_origin) = df.input::<(NodeId, Prefix, u32)>();
        let (in_bgp_session, sessions) = df.input::<(NodeId, IfaceId, NodeId, IfaceId)>();
        let (in_bgp_import, bgp_import) = df.input::<ImportEntry>();
        let (in_bgp_export, bgp_export) = df.input::<ExportEntry>();
        let (in_bgp_origin, bgp_origin) = df.input::<(NodeId, Prefix)>();
        let (in_static, statics) = df.input::<(NodeId, Prefix, Option<IfaceId>)>();
        let (in_acl, acls) = df.input::<FilterRule>();
        let (in_redist, redist) = df.input::<(NodeId, Proto, Proto, u32)>();

        // ---------- Connected & static RIBs ----------
        let connected_rib = iface_prefix.map(|(n, i, p)| {
            ((n, p), RibValue { admin: Proto::Connected.admin_distance(), action: FibAction::Local(i) })
        });
        let static_rib = statics.map(|(n, p, out)| {
            let action = match out {
                Some(i) => FibAction::Forward(i),
                None => FibAction::Drop,
            };
            ((n, p), RibValue { admin: Proto::Static.admin_distance(), action })
        });
        let conn_prefixes = iface_prefix.map(|(n, _i, p)| (n, p));
        let static_prefixes = statics.map(|(n, p, _)| (n, p)).distinct();

        // ---------- OSPF ----------
        // Adjacencies where both interfaces run OSPF; weighted by the
        // source interface's cost.
        let ospf_if_keyed = ospf_iface.map(|(n, i, c)| ((n, i), c));
        let ospf_ports = ospf_iface.map(|(n, i, _c)| (n, i));
        let edges_by_dst = links
            .map(|(a, b)| ((a.node, a.iface), b))
            .join(&ospf_if_keyed)
            .map(|((n, i), (b, w))| ((b.node, b.iface), (n, i, w)))
            .semijoin(&ospf_ports)
            .map(|((bn, _bi), (n, i, w))| (bn, (n, i, w)));

        // Origins: configured stub networks plus redistributed routes.
        let redist_pair = |from: Proto, into: Proto| {
            redist
                .filter(move |&(_, f, t, _)| f == from && t == into)
                .map(|(n, _f, _t, m)| (n, m))
        };
        let ro_conn = redist_pair(Proto::Connected, Proto::Ospf)
            .join(&conn_prefixes)
            .map(|(n, (m, p))| ((n, p), m));
        let ro_static = redist_pair(Proto::Static, Proto::Ospf)
            .join(&static_prefixes)
            .map(|(n, (m, p))| ((n, p), m));
        let ospf_origins =
            ospf_origin.map(|(n, p, c)| ((n, p), c)).concat_many(&[&ro_conn, &ro_static]);

        // dist(n, p): min cost from n to prefix p.
        let dist = ospf_origins.iterate_capped(max_iters, |inner| {
            let relaxed = inner
                .map(|((v, p), c)| (v, (p, c)))
                .join(&edges_by_dst)
                .map(|(_v, ((p, c), (u, _i, w)))| ((u, p), c + w));
            ospf_origins.concat(&relaxed).reduce_min()
        });

        // ECMP next hops: interfaces on shortest paths.
        let cand = edges_by_dst
            .join(&dist.map(|((v, p), c)| (v, (p, c))))
            .map(|(_v, ((u, i, w), (p, c)))| ((u, p), (w + c, i)));
        let ospf_rib = cand
            .join(&dist)
            .filter(|(_, ((through, _i), best))| through == best)
            .map(|((u, p), ((_t, i), _))| {
                ((u, p), RibValue { admin: Proto::Ospf.admin_distance(), action: FibAction::Forward(i) })
            });

        // ---------- RIP (hop-count distance vector, infinity at 16) ----------
        let rip_ports = rip_iface.map(|(n, i)| (n, i));
        let rip_edges_by_dst = links
            .map(|(a, b)| ((a.node, a.iface), b))
            .semijoin(&rip_ports.clone())
            .map(|((n, i), b)| ((b.node, b.iface), (n, i)))
            .semijoin(&rip_ports)
            .map(|((bn, _bi), (n, i))| (bn, (n, i)));
        let rr_conn = redist_pair(Proto::Connected, Proto::Rip)
            .join(&conn_prefixes)
            .map(|(n, (m, p))| ((n, p), m.clamp(1, 15)));
        let rr_static = redist_pair(Proto::Static, Proto::Rip)
            .join(&static_prefixes)
            .map(|(n, (m, p))| ((n, p), m.clamp(1, 15)));
        let rip_origins = rip_origin
            .map(|(n, p, m)| ((n, p), m.clamp(1, 15)))
            .concat_many(&[&rr_conn, &rr_static]);
        let rip_dist = rip_origins.iterate_capped(max_iters, |inner| {
            let relaxed = inner
                .map(|((v, p), c)| (v, (p, c)))
                .join(&rip_edges_by_dst)
                .map(|(_v, ((p, c), (u, _i)))| ((u, p), c + 1))
                .filter(|(_, c)| *c <= 15);
            rip_origins.concat(&relaxed).reduce_min()
        });
        let rip_cand = rip_edges_by_dst
            .join(&rip_dist.map(|((v, p), c)| (v, (p, c))))
            .map(|(_v, ((u, i), (p, c)))| ((u, p), (c + 1, i)));
        let rip_rib = rip_cand
            .join(&rip_dist)
            .filter(|(_, ((through, _i), best))| through == best)
            .map(|((u, p), ((_t, i), _))| {
                ((u, p), RibValue { admin: Proto::Rip.admin_distance(), action: FibAction::Forward(i) })
            });

        // ---------- BGP ----------
        let rb_conn = redist_pair(Proto::Connected, Proto::Bgp)
            .join(&conn_prefixes)
            .map(|(n, (_m, p))| ((n, p), BgpRoute::originate(n)));
        let rb_static = redist_pair(Proto::Static, Proto::Bgp)
            .join(&static_prefixes)
            .map(|(n, (_m, p))| ((n, p), BgpRoute::originate(n)));
        let rb_ospf = redist_pair(Proto::Ospf, Proto::Bgp)
            .join(&dist.map(|((n, p), _c)| (n, p)))
            .map(|(n, (_m, p))| ((n, p), BgpRoute::originate(n)));
        let rb_rip = redist_pair(Proto::Rip, Proto::Bgp)
            .join(&rip_dist.map(|((n, p), _c)| (n, p)))
            .map(|(n, (_m, p))| ((n, p), BgpRoute::originate(n)));
        let bgp_origins = bgp_origin
            .map(|(n, p)| ((n, p), BgpRoute::originate(n)))
            .concat_many(&[&rb_conn, &rb_static, &rb_ospf, &rb_rip])
            .distinct();

        let sessions_by_peer = sessions.map(|(n, i, m, j)| (m, (n, i, j)));
        let import_pol = bgp_import
            .map(|(n, i, seq, permit, mtch, lp, med)| ((n, i), (seq, permit, mtch, lp, med)));
        let export_pol =
            bgp_export.map(|(n, i, seq, permit, mtch, med)| ((n, i), (seq, permit, mtch, med)));

        let best = bgp_origins.iterate_capped(max_iters, |inner| {
            // Peers' current best routes, visible over sessions, minus
            // anything whose path already contains the receiver.
            let adverts = sessions_by_peer
                .join(&inner.map(|((m, p), r)| (m, (p, r))))
                .map(|(m, ((n, i, j), (p, r)))| ((n, i, j, m, p), r))
                .filter(|((n, _i, _j, _m, _p), r)| !r.path.contains(n));
            // Export policy at the peer's interface: lowest-seq matching
            // entry decides.
            let exported = adverts
                .map(|((n, i, j, m, p), r)| ((m, j), (n, i, p, r)))
                .join(&export_pol)
                .filter(|(_, ((_n, _i, p, _r), (_seq, _permit, mtch, _med)))| {
                    mtch.is_none_or(|mp| mp.contains(*p))
                })
                .map(|((m, _j), ((n, i, p, r), (seq, permit, _mtch, med)))| {
                    (((n, i, m, p), r), (seq, permit, med))
                })
                .reduce_named("export-first-match", |_, vals| vec![(vals[0].0, 1)])
                .filter(|(_, (_seq, permit, _med))| *permit)
                .map(|(((n, i, m, p), r), (_seq, _permit, med))| ((n, i), (m, p, r, med)));
            // Import policy at the receiver's interface.
            let imported = exported
                .join(&import_pol)
                .filter(|(_, ((_m, p, _r, _emed), (_seq, _permit, mtch, _lp, _imed)))| {
                    mtch.is_none_or(|mp| mp.contains(*p))
                })
                .map(|((n, i), ((m, p, r, emed), (seq, permit, _mtch, lp, imed)))| {
                    (((n, i, m, p), r), (seq, permit, lp, emed, imed))
                })
                .reduce_named("import-first-match", |_, vals| vec![(vals[0].0, 1)])
                .filter(|(_, (_seq, permit, _lp, _emed, _imed))| *permit)
                .map(|(((n, i, m, p), r), (_seq, _permit, lp, emed, imed))| {
                    // The import policy's MED, if set, overrides the
                    // exporter's; otherwise the advertisement carries
                    // the exporter's MED (or the default).
                    let med = imed.or(emed).unwrap_or(BgpRoute::DEFAULT_MED);
                    ((n, p), r.import(n, m, i, lp.unwrap_or(BgpRoute::DEFAULT_LOCAL_PREF), med))
                });
            bgp_origins.concat(&imported).reduce_min()
        });
        let bgp_rib = best
            .filter(|(_, r)| r.out.is_some())
            .map(|((n, p), r)| {
                let out = r.out.expect("filtered");
                ((n, p), RibValue { admin: Proto::Bgp.admin_distance(), action: FibAction::Forward(out) })
            });

        // ---------- RIB → FIB (admin distance) ----------
        let rib = connected_rib.concat_many(&[&static_rib, &ospf_rib, &rip_rib, &bgp_rib]);
        let fib = rib.reduce_named("fib-select", |_, vals| {
            let min_admin = vals[0].0.admin;
            vals.iter()
                .take_while(|(v, _)| v.admin == min_admin)
                .map(|(v, _)| (v.action, 1))
                .collect()
        });
        let fib_out = fib.map(|((n, p), action)| FibEntry { node: n, prefix: p, action }).output();
        let acl_out = acls.output();

        RoutingEngine {
            df,
            in_link,
            in_iface_prefix,
            in_ospf_iface,
            in_ospf_origin,
            in_rip_iface,
            in_rip_origin,
            in_bgp_session,
            in_bgp_import,
            in_bgp_export,
            in_bgp_origin,
            in_static,
            in_acl,
            in_redist,
            fib_out,
            acl_out,
            last_fib_delta: FibDelta::default(),
            last_filter_delta: (Vec::new(), Vec::new()),
            ignored: Vec::new(),
        }
    }

    fn push_fact(&mut self, fact: Fact, diff: isize) {
        match fact {
            Fact::Device(_) => {}
            Fact::Link { src, dst } => self.in_link.update((src, dst), diff),
            Fact::IfacePrefix { node, iface, prefix } => {
                self.in_iface_prefix.update((node, iface, prefix), diff)
            }
            Fact::OspfIface { node, iface, cost } => {
                self.in_ospf_iface.update((node, iface, cost), diff)
            }
            Fact::OspfOrigin { node, prefix, cost } => {
                self.in_ospf_origin.update((node, prefix, cost), diff)
            }
            Fact::RipIface { node, iface } => self.in_rip_iface.update((node, iface), diff),
            Fact::RipOrigin { node, prefix, metric } => {
                self.in_rip_origin.update((node, prefix, metric), diff)
            }
            Fact::BgpSession { node, iface, peer, peer_iface } => {
                self.in_bgp_session.update((node, iface, peer, peer_iface), diff)
            }
            Fact::BgpImportPolicy { node, iface, seq, action, match_prefix, set_lp, set_med } => {
                self.in_bgp_import.update(
                    (node, iface, seq, action == Action::Permit, match_prefix, set_lp, set_med),
                    diff,
                )
            }
            Fact::BgpExportPolicy { node, iface, seq, action, match_prefix, set_med } => self
                .in_bgp_export
                .update((node, iface, seq, action == Action::Permit, match_prefix, set_med), diff),
            Fact::BgpOrigin { node, prefix } => self.in_bgp_origin.update((node, prefix), diff),
            Fact::StaticRoute { node, prefix, out } => {
                self.in_static.update((node, prefix, out), diff)
            }
            Fact::AclRule { node, iface, dir, seq, action, proto, src, dst, dst_ports } => {
                self.in_acl.update(
                    FilterRule {
                        node,
                        iface,
                        dir,
                        seq,
                        permit: action == Action::Permit,
                        proto,
                        src,
                        dst,
                        dst_ports,
                    },
                    diff,
                )
            }
            Fact::Redistribute { node, from, into, metric } => {
                let supported = matches!(
                    (from, into),
                    (Proto::Connected | Proto::Static, Proto::Ospf | Proto::Rip)
                        | (
                            Proto::Connected | Proto::Static | Proto::Ospf | Proto::Rip,
                            Proto::Bgp
                        )
                );
                if supported {
                    self.in_redist.update((node, from, into, metric), diff);
                } else if diff > 0 {
                    self.ignored.push(Fact::Redistribute { node, from, into, metric });
                } else {
                    let target = Fact::Redistribute { node, from, into, metric };
                    if let Some(pos) = self.ignored.iter().position(|f| *f == target) {
                        self.ignored.remove(pos);
                    }
                }
            }
        }
    }

    /// Apply a batch of fact changes as one epoch and update all
    /// derived state incrementally.
    ///
    /// Fault injection: the `rc_faults` hook fires *before* the delta
    /// is ingested, so an injected [`EvalError::InjectedFault`] leaves
    /// the engine's state untouched — a genuine mid-evaluation
    /// divergence does not.
    pub fn apply<I: IntoIterator<Item = (Fact, isize)>>(
        &mut self,
        delta: I,
    ) -> Result<ApplyStats, EvalError> {
        if rc_faults::fire(rc_faults::FaultPoint::EngineApply) {
            return Err(EvalError::InjectedFault);
        }
        for (f, r) in delta {
            self.push_fact(f, r);
        }
        let stats = self.df.advance()?;
        let fib_changes = self.fib_out.drain();
        let mut fd = FibDelta::default();
        for (e, r) in fib_changes {
            debug_assert!(r.abs() == 1, "FIB multiplicity change {r} for {e:?}");
            if r > 0 {
                fd.inserted.push(e);
            } else {
                fd.removed.push(e);
            }
        }
        let filter_changes = self.acl_out.drain();
        let mut inserted = Vec::new();
        let mut removed = Vec::new();
        for (e, r) in filter_changes {
            if r > 0 {
                inserted.push(e);
            } else {
                removed.push(e);
            }
        }
        let stats = ApplyStats {
            records: stats.records,
            fib_changes: fd.len(),
            filter_changes: inserted.len() + removed.len(),
        };
        self.last_fib_delta = fd;
        self.last_filter_delta = (inserted, removed);
        Ok(stats)
    }

    /// The FIB entries inserted/removed by the last `apply`.
    pub fn fib_delta(&self) -> &FibDelta {
        &self.last_fib_delta
    }

    /// The filter rules inserted/removed by the last `apply`.
    pub fn filter_delta(&self) -> (&[FilterRule], &[FilterRule]) {
        (&self.last_filter_delta.0, &self.last_filter_delta.1)
    }

    /// Snapshot of the complete current FIB.
    pub fn fib(&self) -> BTreeSet<FibEntry> {
        self.fib_out.state_set().into_iter().collect()
    }

    /// Snapshot of the complete current filter-rule set.
    pub fn filters(&self) -> BTreeSet<FilterRule> {
        self.acl_out.state_set().into_iter().collect()
    }

    /// Redistribution facts the engine does not model (mutual BGP↔OSPF
    /// redistribution).
    pub fn ignored(&self) -> &[Fact] {
        &self.ignored
    }

    /// Total dataflow records processed so far (work measure).
    pub fn total_work(&self) -> u64 {
        self.df.total_work()
    }

    /// Attach a telemetry registry to the underlying dataflow (see
    /// [`Dataflow::set_telemetry`]).
    pub fn set_telemetry(&mut self, registry: rc_telemetry::Telemetry) {
        self.df.set_telemetry(registry);
    }

    /// Override the worker count for the underlying dataflow's sharded
    /// operators (see [`Dataflow::set_threads`]).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.df.set_threads(threads);
    }

    /// Per-operator statistics of the underlying dataflow.
    pub fn op_stats(&self) -> std::collections::BTreeMap<&'static str, rc_dataflow::OpStats> {
        self.df.op_stats()
    }

    /// Fold operator history below the current epoch (bounds memory
    /// across long change sequences).
    pub fn compact(&mut self) {
        self.df.compact();
    }

    /// Threshold-triggered compaction: fold history only on operators
    /// whose recent trace layer has outgrown the policy's ratio of
    /// their consolidated base (see
    /// [`rc_dataflow::Dataflow::compact_adaptive`]). Returns the number
    /// of operators compacted.
    pub fn compact_adaptive(&mut self, policy: &rc_dataflow::CompactionPolicy) -> usize {
        self.df.compact_adaptive(policy)
    }

    /// Records currently retained across the dataflow's trace spines
    /// (base + recent layers).
    pub fn trace_records(&self) -> usize {
        self.df.trace_records()
    }
}
