//! Route and FIB value types shared by the dataflow engine and the
//! from-scratch baseline.

use std::sync::Arc;

use rc_netcfg::types::{IfaceId, NodeId, Prefix};

/// An interned, immutable node path. BGP route values are the hottest
/// tuples in the dataflow traces — every import clones the route into
/// join and reduce spines — so the path is stored as a shared
/// `Arc<[NodeId]>`: cloning a route bumps a refcount instead of
/// reallocating a `Vec`, and every trace layer holding the same route
/// shares one allocation. Comparison, ordering and hashing delegate to
/// the slice, so route selection is unchanged.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathVec(Arc<[NodeId]>);

impl PathVec {
    /// The one-hop path of a locally originated route.
    pub fn single(node: NodeId) -> Self {
        PathVec(Arc::from([node]))
    }

    /// A new path extending `self` by one hop. The only allocation an
    /// import performs.
    pub fn appending(&self, node: NodeId) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(node);
        PathVec(v.into())
    }
}

impl std::ops::Deref for PathVec {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        &self.0
    }
}

/// What a FIB entry does with a matching packet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FibAction {
    /// Send out of the interface (the adjacent device, if any, is
    /// resolved through the link relation by consumers).
    Forward(IfaceId),
    /// Deliver onto the connected subnet of the interface (connected
    /// routes): the packet terminates here instead of transiting to
    /// the link peer.
    Local(IfaceId),
    /// Discard (static null0 routes).
    Drop,
}

/// One forwarding entry: longest prefix match on `prefix` at `node`.
/// ECMP appears as multiple entries for the same `(node, prefix)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FibEntry {
    pub node: NodeId,
    pub prefix: Prefix,
    pub action: FibAction,
}

/// The protocol a RIB entry came from, with its admin distance baked
/// into the ordering (field order matters for `Ord`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RibValue {
    pub admin: u8,
    pub action: FibAction,
}

/// A BGP route as carried through best-path selection.
///
/// `score` is ordered so that `Ord`-minimum is BGP-best:
/// `(u32::MAX − local_pref, path length, MED, neighbor id)` — higher
/// local preference wins, then shorter AS path, then lower
/// multi-exit discriminator (compared across all neighbors, i.e.
/// `bgp always-compare-med` semantics), then lowest neighbor id
/// (router-id tiebreak). `path` lists the nodes the route has
/// traversed, ending with the current holder; since every device is its
/// own AS in the modeled networks, node path and AS path coincide.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BgpRoute {
    pub score: (u32, u32, u32, u32),
    pub path: PathVec,
    /// The local session interface the route was learned through;
    /// `None` for locally originated routes.
    pub out: Option<IfaceId>,
}

impl BgpRoute {
    /// The default local preference Cisco assigns to received routes.
    pub const DEFAULT_LOCAL_PREF: u32 = 100;
    /// The MED of routes whose advertisement carries none.
    pub const DEFAULT_MED: u32 = 0;

    /// A locally originated route at `node`.
    pub fn originate(node: NodeId) -> Self {
        BgpRoute {
            score: (u32::MAX - Self::DEFAULT_LOCAL_PREF, 1, Self::DEFAULT_MED, 0),
            path: PathVec::single(node),
            out: None,
        }
    }

    /// The route `node` obtains by importing `self` from `peer` with
    /// the given local preference and multi-exit discriminator. MED is
    /// a per-advertisement attribute: it is whatever the export/import
    /// policies of this session set, never inherited from the route's
    /// previous hops.
    pub fn import(
        &self,
        node: NodeId,
        peer: NodeId,
        iface: IfaceId,
        local_pref: u32,
        med: u32,
    ) -> Self {
        let path = self.path.appending(node);
        BgpRoute {
            score: (u32::MAX - local_pref, path.len() as u32, med, peer.0),
            path,
            out: Some(iface),
        }
    }

    pub fn local_pref(&self) -> u32 {
        u32::MAX - self.score.0
    }

    pub fn med(&self) -> u32 {
        self.score.2
    }
}

/// A FIB delta: entries that appeared and disappeared in one epoch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FibDelta {
    pub inserted: Vec<FibEntry>,
    pub removed: Vec<FibEntry>,
}

impl FibDelta {
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }

    pub fn len(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }
}

/// An ACL rule as forwarded to the data plane model (a filter rule in
/// the paper's terms). Mirrors `Fact::AclRule` but lives here so the
/// data plane stage does not depend on configuration internals.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FilterRule {
    pub node: NodeId,
    pub iface: IfaceId,
    pub dir: rc_netcfg::facts::Dir,
    pub seq: u32,
    pub permit: bool,
    pub proto: Option<u8>,
    pub src: Prefix,
    pub dst: Prefix,
    pub dst_ports: Option<(u16, u16)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgp_score_prefers_local_pref_then_path() {
        let o = BgpRoute::originate(NodeId(7));
        assert_eq!(o.local_pref(), 100);
        let n = NodeId(1);
        let low_lp = o.import(n, NodeId(7), IfaceId(0), 50, 0);
        let high_lp = o.import(n, NodeId(7), IfaceId(0), 150, 0);
        let def = o.import(n, NodeId(7), IfaceId(0), 100, 0);
        assert!(high_lp < def, "higher local-pref must rank first");
        assert!(def < low_lp);
        // Same LP: shorter path wins.
        let longer = def.import(NodeId(2), n, IfaceId(1), 100, 0);
        assert!(def.score < longer.score);
        // Same LP and length: lower MED wins.
        let med5 = o.import(n, NodeId(3), IfaceId(0), 100, 5);
        let med9 = o.import(n, NodeId(3), IfaceId(0), 100, 9);
        assert!(med5 < med9);
        // Same LP, length and MED: lower neighbor id wins.
        let via3 = o.import(n, NodeId(3), IfaceId(0), 100, 0);
        let via9 = o.import(n, NodeId(9), IfaceId(0), 100, 0);
        assert!(via3 < via9);
    }

    #[test]
    fn import_tracks_path() {
        let o = BgpRoute::originate(NodeId(5));
        let r = o.import(NodeId(1), NodeId(5), IfaceId(2), 100, 0);
        assert_eq!(&r.path[..], [NodeId(5), NodeId(1)]);
        assert_eq!(r.out, Some(IfaceId(2)));
        assert!(r.path.contains(&NodeId(5)), "loop check data present");
    }

    #[test]
    fn rib_value_ordering_is_admin_first() {
        let conn = RibValue { admin: 0, action: FibAction::Forward(IfaceId(9)) };
        let ospf = RibValue { admin: 110, action: FibAction::Forward(IfaceId(0)) };
        assert!(conn < ospf);
    }
}
