//! Differential testing: for random topologies and random configuration
//! change sequences, the incrementally-maintained FIB must equal the
//! from-scratch baseline after every single change.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rc_netcfg::ast::{AclAction, AclEntry, NextHop, RedistSource};
use rc_netcfg::change::{AclDir, ChangeOp, ChangeSet, RedistTarget};
use rc_netcfg::facts::{fact_delta, lower, Registry};
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{grid, host_prefix, random_connected, ring};
use rc_netcfg::types::Prefix;
use rc_netcfg::DeviceConfig;
use rc_routing::baseline;
use rc_routing::engine::RoutingEngine;

/// Abstract change commands, instantiated against a topology's actual
/// device/interface space by index arithmetic.
#[derive(Clone, Debug)]
enum Cmd {
    ToggleIface { dev: usize, iface: usize },
    SetCost { dev: usize, iface: usize, cost: u32 },
    SetLocalPref { dev: usize, iface: usize, pref: u32 },
    AddStaticDrop { dev: usize, pfx: u32 },
    RemoveStatic { dev: usize, pfx: u32 },
    AddAclDeny { dev: usize, iface: usize, pfx: u32 },
    RedistStatic { dev: usize },
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    let cmd = prop_oneof![
        3 => (0usize..20, 0usize..4).prop_map(|(dev, iface)| Cmd::ToggleIface { dev, iface }),
        2 => (0usize..20, 0usize..4, prop_oneof![Just(1u32), Just(10), Just(100)])
            .prop_map(|(dev, iface, cost)| Cmd::SetCost { dev, iface, cost }),
        2 => (0usize..20, 0usize..4, prop_oneof![Just(50u32), Just(100), Just(150)])
            .prop_map(|(dev, iface, pref)| Cmd::SetLocalPref { dev, iface, pref }),
        1 => (0usize..20, 0u32..8).prop_map(|(dev, pfx)| Cmd::AddStaticDrop { dev, pfx }),
        1 => (0usize..20, 0u32..8).prop_map(|(dev, pfx)| Cmd::RemoveStatic { dev, pfx }),
        1 => (0usize..20, 0usize..4, 0u32..8)
            .prop_map(|(dev, iface, pfx)| Cmd::AddAclDeny { dev, iface, pfx }),
        1 => (0usize..20).prop_map(|dev| Cmd::RedistStatic { dev }),
    ];
    prop::collection::vec(cmd, 1..12)
}

/// Translate an abstract command into concrete change ops; returns None
/// when the command does not apply (unknown iface, nothing to remove…).
fn concretize(cmd: &Cmd, configs: &BTreeMap<String, DeviceConfig>) -> Option<ChangeSet> {
    let devices: Vec<&String> = configs.keys().collect();
    let pick_dev = |i: usize| devices[i % devices.len()].clone();
    let pick_iface = |cfg: &DeviceConfig, i: usize| -> Option<String> {
        let eths: Vec<_> =
            cfg.interfaces.iter().filter(|f| f.name.starts_with("eth")).collect();
        if eths.is_empty() {
            None
        } else {
            Some(eths[i % eths.len()].name.clone())
        }
    };
    let mut cs = ChangeSet::new();
    match cmd {
        Cmd::ToggleIface { dev, iface } => {
            let d = pick_dev(*dev);
            let i = pick_iface(&configs[&d], *iface)?;
            let shut = configs[&d].interface(&i).unwrap().shutdown;
            if shut {
                cs.push(ChangeOp::EnableInterface { device: d, iface: i });
            } else {
                cs.push(ChangeOp::DisableInterface { device: d, iface: i });
            }
        }
        Cmd::SetCost { dev, iface, cost } => {
            let d = pick_dev(*dev);
            configs[&d].ospf.as_ref()?;
            let i = pick_iface(&configs[&d], *iface)?;
            cs.push(ChangeOp::SetOspfCost { device: d, iface: i, cost: *cost });
        }
        Cmd::SetLocalPref { dev, iface, pref } => {
            let d = pick_dev(*dev);
            configs[&d].bgp.as_ref()?;
            let i = pick_iface(&configs[&d], *iface)?;
            // The interface may be shut (no session): still legal as a
            // config change.
            cs.push(ChangeOp::SetLocalPref { device: d, iface: i, pref: *pref });
        }
        Cmd::AddStaticDrop { dev, pfx } => {
            let d = pick_dev(*dev);
            cs.push(ChangeOp::AddStaticRoute {
                device: d,
                prefix: host_prefix(*pfx),
                next_hop: NextHop::Drop,
            });
        }
        Cmd::RemoveStatic { dev, pfx } => {
            let d = pick_dev(*dev);
            if !configs[&d].static_routes.iter().any(|r| r.prefix == host_prefix(*pfx)) {
                return None;
            }
            cs.push(ChangeOp::RemoveStaticRoute { device: d, prefix: host_prefix(*pfx) });
        }
        Cmd::AddAclDeny { dev, iface, pfx } => {
            let d = pick_dev(*dev);
            let i = pick_iface(&configs[&d], *iface)?;
            let seq = 10 + configs[&d].acl("T").map_or(0, |a| a.entries.len() as u32) * 10;
            if configs[&d].acl("T").is_some_and(|a| a.entries.iter().any(|e| e.seq == seq)) {
                return None;
            }
            cs.push(ChangeOp::AddAclEntry {
                device: d.clone(),
                acl: "T".into(),
                entry: AclEntry {
                    seq,
                    action: AclAction::Deny,
                    proto: None,
                    src: Prefix::DEFAULT,
                    dst: host_prefix(*pfx),
                    dst_ports: None,
                },
            });
            cs.push(ChangeOp::BindAcl { device: d, iface: i, dir: AclDir::In, acl: "T".into() });
        }
        Cmd::RedistStatic { dev } => {
            let d = pick_dev(*dev);
            let cfg = &configs[&d];
            let target = if cfg.ospf.is_some() {
                RedistTarget::Ospf
            } else if cfg.bgp.is_some() {
                RedistTarget::Bgp
            } else {
                return None;
            };
            // Only add once.
            let already = match target {
                RedistTarget::Ospf => cfg
                    .ospf
                    .as_ref()
                    .unwrap()
                    .redistribute
                    .iter()
                    .any(|r| r.source == RedistSource::Static),
                RedistTarget::Bgp => cfg
                    .bgp
                    .as_ref()
                    .unwrap()
                    .redistribute
                    .iter()
                    .any(|r| r.source == RedistSource::Static),
            };
            if already {
                return None;
            }
            cs.push(ChangeOp::AddRedistribution {
                device: d,
                into: target,
                source: RedistSource::Static,
                metric: 20,
            });
        }
    }
    Some(cs)
}

fn run_sequence(mut configs: BTreeMap<String, DeviceConfig>, cmds: Vec<Cmd>) {
    let mut reg = Registry::new();
    let lowered = lower(&configs, &mut reg);
    let mut facts = lowered.facts;
    let mut engine = RoutingEngine::new();
    engine.apply(facts.iter().map(|f| (f.clone(), 1))).unwrap();
    let oracle = baseline::compute(&facts).unwrap();
    assert_eq!(engine.fib(), oracle.fib, "initial FIB mismatch");

    for (step, cmd) in cmds.iter().enumerate() {
        let Some(cs) = concretize(cmd, &configs) else { continue };
        if cs.apply(&mut configs).is_err() {
            continue;
        }
        let lowered = lower(&configs, &mut reg);
        let delta = fact_delta(&facts, &lowered.facts);
        facts = lowered.facts;
        if engine.apply(delta).is_err() {
            // Random local-pref settings can build genuine preference
            // cycles. A divergent control plane poisons the epoch, so
            // stop here — the scenario suite covers divergence
            // reporting explicitly.
            return;
        }
        let oracle = baseline::compute(&facts).unwrap();
        assert_eq!(
            engine.fib(),
            oracle.fib,
            "FIB mismatch after step {step} ({cmd:?})"
        );
        assert_eq!(engine.filters(), oracle.filters, "filter mismatch after step {step}");
        if step % 5 == 4 {
            engine.compact();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ospf_ring_incremental_equals_baseline(cmds in arb_cmds()) {
        run_sequence(build_configs(&ring(5), ProtocolChoice::Ospf), cmds);
    }

    #[test]
    fn bgp_ring_incremental_equals_baseline(cmds in arb_cmds()) {
        run_sequence(build_configs(&ring(5), ProtocolChoice::Bgp), cmds);
    }

    #[test]
    fn ospf_grid_incremental_equals_baseline(cmds in arb_cmds()) {
        run_sequence(build_configs(&grid(3, 3), ProtocolChoice::Ospf), cmds);
    }

    #[test]
    fn bgp_random_incremental_equals_baseline(cmds in arb_cmds(), seed in 0u64..50) {
        run_sequence(
            build_configs(&random_connected(8, 0.3, seed), ProtocolChoice::Bgp),
            cmds,
        );
    }

    #[test]
    fn rip_ring_incremental_equals_baseline(cmds in arb_cmds()) {
        run_sequence(build_configs(&ring(5), ProtocolChoice::Rip), cmds);
    }

    #[test]
    fn rip_random_incremental_equals_baseline(cmds in arb_cmds(), seed in 0u64..50) {
        run_sequence(
            build_configs(&random_connected(8, 0.3, seed), ProtocolChoice::Rip),
            cmds,
        );
    }
}
