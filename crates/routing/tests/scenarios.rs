//! Scenario tests: the paper's three change types (LinkFailure, LC,
//! LP) plus statics, ACLs and redistribution, on small topologies where
//! the expected forwarding behaviour can be stated by hand.

use std::collections::BTreeMap;

use rc_netcfg::change::{ChangeOp, ChangeSet};
use rc_netcfg::facts::{fact_delta, lower, Registry};
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix, ring};
use rc_netcfg::types::Prefix;
use rc_netcfg::DeviceConfig;
use rc_routing::baseline;
use rc_routing::engine::RoutingEngine;
use rc_routing::route::{FibAction, FibEntry};

struct Harness {
    engine: RoutingEngine,
    reg: Registry,
    configs: BTreeMap<String, DeviceConfig>,
    facts: std::collections::BTreeSet<rc_netcfg::Fact>,
}

impl Harness {
    fn new(configs: BTreeMap<String, DeviceConfig>) -> Self {
        let mut reg = Registry::new();
        let lowered = lower(&configs, &mut reg);
        assert!(lowered.warnings.is_empty(), "unexpected warnings: {:?}", lowered.warnings);
        let mut engine = RoutingEngine::new();
        engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1))).unwrap();
        Harness { engine, reg, configs, facts: lowered.facts }
    }

    /// Apply a change set incrementally; returns the number of FIB
    /// changes.
    fn change(&mut self, cs: &ChangeSet) -> usize {
        cs.apply(&mut self.configs).unwrap();
        let lowered = lower(&self.configs, &mut self.reg);
        let delta = fact_delta(&self.facts, &lowered.facts);
        self.facts = lowered.facts;
        let stats = self.engine.apply(delta).unwrap();
        stats.fib_changes
    }

    /// Assert the incremental FIB equals the from-scratch baseline.
    fn check_against_baseline(&self) {
        let oracle = baseline::compute(&self.facts).unwrap();
        assert_eq!(self.engine.fib(), oracle.fib, "incremental FIB diverged from baseline");
        assert_eq!(self.engine.filters(), oracle.filters);
    }

    /// FIB next hops at `node` for `prefix`, as interface names.
    fn nexthops(&self, node: &str, prefix: Prefix) -> Vec<String> {
        let n = self.reg.try_node(node).unwrap();
        let mut out: Vec<String> = self
            .engine
            .fib()
            .iter()
            .filter(|e| e.node == n && e.prefix == prefix)
            .map(|e| match e.action {
                FibAction::Forward(i) => self.reg.iface_name(i).to_string(),
                FibAction::Local(i) => format!("local:{}", self.reg.iface_name(i)),
                FibAction::Drop => "drop".to_string(),
            })
            .collect();
        out.sort();
        out
    }
}

#[test]
fn ospf_ring_link_failure_reroutes() {
    // 4-ring r000–r001–r002–r003; host prefix of r002 seen from r000
    // via either neighbor (equal cost both ways? 2 hops vs 2 hops — ECMP).
    let mut h = Harness::new(build_configs(&ring(4), ProtocolChoice::Ospf));
    let p2 = host_prefix(2); // r002's prefix
    let nh0 = h.nexthops("r000", p2);
    assert_eq!(nh0.len(), 2, "equal-cost paths both ways around the ring: {nh0:?}");
    h.check_against_baseline();

    // Fail r000's link toward r001 (eth0 connects r000-r001 by
    // construction order). Traffic must take the other direction only.
    let changed = h.change(&ChangeSet::link_failure("r000", "eth0"));
    assert!(changed > 0);
    let nh = h.nexthops("r000", p2);
    assert_eq!(nh.len(), 1);
    h.check_against_baseline();

    // Re-enable: ECMP returns.
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::EnableInterface { device: "r000".into(), iface: "eth0".into() });
    h.change(&cs);
    assert_eq!(h.nexthops("r000", p2), nh0);
    h.check_against_baseline();
}

#[test]
fn ospf_link_cost_change_shifts_paths() {
    // Ring of 5: r000 reaches r002's prefix via r001 (2 hops) rather
    // than the 3-hop way around.
    let mut h = Harness::new(build_configs(&ring(5), ProtocolChoice::Ospf));
    let p2 = host_prefix(2);
    let before = h.nexthops("r000", p2);
    assert_eq!(before.len(), 1);

    // Paper's LC change: cost 1 → 100 on the shortest-path interface.
    let iface = before[0].clone();
    let changed = h.change(&ChangeSet::link_cost("r000", &iface, 100));
    assert!(changed > 0);
    let after = h.nexthops("r000", p2);
    assert_ne!(after, before, "traffic must shift to the long way around");
    h.check_against_baseline();

    // Restore.
    h.change(&ChangeSet::link_cost("r000", &iface, 1));
    assert_eq!(h.nexthops("r000", p2), before);
    h.check_against_baseline();
}

#[test]
fn bgp_ring_converges_and_matches_baseline() {
    let h = Harness::new(build_configs(&ring(5), ProtocolChoice::Bgp));
    h.check_against_baseline();
    // Every node has a route to every host prefix.
    for n in 0..5 {
        for p in 0..5 {
            if n == p {
                continue;
            }
            let nh = h.nexthops(&format!("r{n:03}"), host_prefix(p));
            assert!(!nh.is_empty(), "r{n:03} missing route to prefix {p}");
        }
    }
}

#[test]
fn bgp_local_pref_change_attracts_traffic() {
    // Ring of 4: r000's routes to r002's prefix — both directions are 2
    // AS hops, tiebreak picks one. Raising LP on the other session must
    // flip the choice (the paper's LP change).
    let mut h = Harness::new(build_configs(&ring(4), ProtocolChoice::Bgp));
    let p2 = host_prefix(2);
    let before = h.nexthops("r000", p2);
    assert_eq!(before.len(), 1, "path-vector tiebreak yields a single best: {before:?}");
    let other: String =
        if before[0] == "eth0" { "eth1".into() } else { "eth0".into() };

    let changed = h.change(&ChangeSet::local_pref("r000", &other, 150));
    assert!(changed > 0);
    let after = h.nexthops("r000", p2);
    assert_eq!(after, vec![other.clone()], "higher local-pref must win");
    h.check_against_baseline();

    // Lower it below default: traffic returns to the original side.
    h.change(&ChangeSet::local_pref("r000", &other, 50));
    assert_eq!(h.nexthops("r000", p2), before);
    h.check_against_baseline();
}

#[test]
fn static_route_overrides_ospf_and_null0_drops() {
    let mut h = Harness::new(build_configs(&ring(4), ProtocolChoice::Ospf));
    let victim: Prefix = host_prefix(2);

    // A null0 static for r002's prefix at r000: admin distance 1 beats
    // OSPF's 110, so the packet is dropped at r000.
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::AddStaticRoute {
        device: "r000".into(),
        prefix: victim,
        next_hop: rc_netcfg::ast::NextHop::Drop,
    });
    h.change(&cs);
    assert_eq!(h.nexthops("r000", victim), vec!["drop".to_string()]);
    h.check_against_baseline();

    // Remove it: OSPF routes come back.
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::RemoveStaticRoute { device: "r000".into(), prefix: victim });
    h.change(&cs);
    assert_ne!(h.nexthops("r000", victim), vec!["drop".to_string()]);
    h.check_against_baseline();
}

#[test]
fn acl_rules_pass_through_as_filter_deltas() {
    let mut h = Harness::new(build_configs(&ring(3), ProtocolChoice::Ospf));
    assert!(h.engine.filters().is_empty());

    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::AddAclEntry {
        device: "r000".into(),
        acl: "BLOCK".into(),
        entry: rc_netcfg::ast::AclEntry {
            seq: 10,
            action: rc_netcfg::ast::AclAction::Deny,
            proto: Some(6),
            src: Prefix::DEFAULT,
            dst: host_prefix(1),
            dst_ports: Some((80, 80)),
        },
    });
    cs.push(ChangeOp::BindAcl {
        device: "r000".into(),
        iface: "eth0".into(),
        dir: rc_netcfg::change::AclDir::In,
        acl: "BLOCK".into(),
    });
    h.change(&cs);
    // The explicit entry plus the implicit trailing deny.
    assert_eq!(h.engine.filters().len(), 2);
    let (ins, rem) = h.engine.filter_delta();
    assert_eq!(ins.len(), 2);
    assert!(rem.is_empty());
    h.check_against_baseline();

    // Unbinding removes both.
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::UnbindAcl {
        device: "r000".into(),
        iface: "eth0".into(),
        dir: rc_netcfg::change::AclDir::In,
    });
    h.change(&cs);
    assert!(h.engine.filters().is_empty());
    h.check_against_baseline();
}

#[test]
fn redistribution_static_into_ospf() {
    // r000 holds a static route for an external prefix and
    // redistributes it into OSPF; everyone learns it.
    let external: Prefix = "192.168.77.0/24".parse().unwrap();
    let mut configs = build_configs(&ring(4), ProtocolChoice::Ospf);
    // Static must resolve: point it at r000's eth0 neighbor address.
    let mut h = {
        let mut cs = ChangeSet::new();
        cs.push(ChangeOp::AddStaticRoute {
            device: "r000".into(),
            prefix: external,
            next_hop: rc_netcfg::ast::NextHop::Interface("host0".into()),
        });
        cs.push(ChangeOp::AddRedistribution {
            device: "r000".into(),
            into: rc_netcfg::change::RedistTarget::Ospf,
            source: rc_netcfg::ast::RedistSource::Static,
            metric: 20,
        });
        cs.apply(&mut configs).unwrap();
        Harness::new(configs)
    };
    for n in 1..4 {
        let nh = h.nexthops(&format!("r{n:03}"), external);
        assert!(!nh.is_empty(), "r{n:03} did not learn the redistributed prefix");
    }
    h.check_against_baseline();

    // Withdrawing the static withdraws it everywhere.
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::RemoveStaticRoute { device: "r000".into(), prefix: external });
    h.change(&cs);
    for n in 1..4 {
        assert!(h.nexthops(&format!("r{n:03}"), external).is_empty());
    }
    h.check_against_baseline();
}

#[test]
fn fat_tree_ospf_full_fib_shape() {
    let topo = fat_tree(4);
    let h = Harness::new(build_configs(&topo, ProtocolChoice::Ospf));
    h.check_against_baseline();
    let fib = h.engine.fib();
    // Every device must reach every host prefix (8 edge switches).
    let mut reach: BTreeMap<rc_netcfg::NodeId, usize> = BTreeMap::new();
    for e in &fib {
        if e.prefix.len() == 24 {
            *reach.entry(e.node).or_default() += 1;
        }
    }
    assert_eq!(reach.len(), 20);
    for (n, count) in reach {
        assert!(count >= 8, "node {n:?} has only {count} /24 routes");
    }
    // Edge switches have ECMP over both uplinks for remote-pod
    // prefixes.
    let e00 = h.reg.try_node("pod00-edge00").unwrap();
    let remote = host_prefix(7); // a pod-3 prefix
    let ups: Vec<&FibEntry> =
        fib.iter().filter(|e| e.node == e00 && e.prefix == remote).collect();
    assert_eq!(ups.len(), 2, "expected 2-way ECMP at the edge: {ups:?}");
}

#[test]
fn fat_tree_bgp_matches_baseline() {
    let topo = fat_tree(4);
    let h = Harness::new(build_configs(&topo, ProtocolChoice::Bgp));
    h.check_against_baseline();
}

#[test]
fn incremental_change_work_is_small_on_fat_tree() {
    let topo = fat_tree(4);
    let mut h = Harness::new(build_configs(&topo, ProtocolChoice::Bgp));
    let full_work = h.engine.total_work();

    let changed = h.change(&ChangeSet::local_pref("pod00-edge00", "eth0", 150));
    let inc_work = h.engine.total_work() - full_work;
    assert!(
        inc_work * 5 < full_work,
        "incremental work {inc_work} not ≪ full work {full_work} (changed {changed} rules)"
    );
    h.check_against_baseline();
}

#[test]
fn divergent_bgp_is_detected() {
    // A classic "bad gadget"-style preference cycle on a 3-ring: every
    // node prefers the route through its clockwise neighbor over its
    // own direct route, which never converges.
    let mut configs = build_configs(&ring(3), ProtocolChoice::Bgp);
    for n in 0..3 {
        // On each node, prefer routes learned on eth1 (counterclockwise
        // side) with a higher LP the longer they are — engineered by
        // raising LP on exactly one side everywhere.
        ChangeSet::local_pref(&format!("r{n:03}"), "eth1", 200)
            .apply(&mut configs)
            .unwrap();
    }
    let mut reg = Registry::new();
    let lowered = lower(&configs, &mut reg);
    let mut engine = RoutingEngine::new();
    let result = engine.apply(lowered.facts.iter().map(|f| (f.clone(), 1)));
    let oracle = baseline::compute(&lowered.facts);
    match (result, oracle) {
        // Either both diverge (true bad gadget) or both converge to the
        // same answer (if the gadget is actually stable).
        (Err(_), Err(_)) => {}
        (Ok(_), Ok(dp)) => assert_eq!(engine.fib(), dp.fib),
        (a, b) => panic!("engine and baseline disagree on convergence: {a:?} vs {b:?}"),
    }
}

#[test]
fn rip_ring_matches_baseline_and_reroutes() {
    let mut h = Harness::new(build_configs(&ring(5), ProtocolChoice::Rip));
    h.check_against_baseline();
    let p2 = host_prefix(2);
    let before = h.nexthops("r000", p2);
    assert_eq!(before.len(), 1, "2 hops beats 3 hops: {before:?}");

    // Fail the short side: RIP falls back to the long way around.
    let iface = before[0].clone();
    h.change(&ChangeSet::link_failure("r000", &iface));
    let after = h.nexthops("r000", p2);
    assert_eq!(after.len(), 1);
    assert_ne!(after, before);
    h.check_against_baseline();
}

#[test]
fn rip_hop_limit_makes_far_prefixes_unreachable() {
    // Ring of 40: the farthest prefix is 20 hops away, beyond RIP's
    // 15-hop horizon, while nearby prefixes stay reachable.
    let h = Harness::new(build_configs(&ring(40), ProtocolChoice::Rip));
    h.check_against_baseline();
    // r000 → prefix of r020: 20 hops either way: unreachable.
    assert!(
        h.nexthops("r000", host_prefix(20)).is_empty(),
        "20 hops exceeds RIP's metric horizon"
    );
    // r000 → prefix of r010: 10 hops: reachable.
    assert!(!h.nexthops("r000", host_prefix(10)).is_empty());
    // The boundary: 15 hops reachable (metric 15), 16 not.
    assert!(!h.nexthops("r000", host_prefix(14)).is_empty(), "14 hops + origin metric 1 = 15");
    assert!(h.nexthops("r000", host_prefix(15)).is_empty(), "15 hops + origin metric 1 = 16");
}

#[test]
fn rip_redistribution_of_statics() {
    let external: Prefix = "192.168.99.0/24".parse().unwrap();
    let mut configs = build_configs(&ring(4), ProtocolChoice::Rip);
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::AddStaticRoute {
        device: "r000".into(),
        prefix: external,
        next_hop: rc_netcfg::ast::NextHop::Interface("host0".into()),
    });
    cs.apply(&mut configs).unwrap();
    // Redistribution must be configured at the AST level (no ChangeOp
    // for RIP targets — edit directly).
    configs.get_mut("r000").unwrap().rip.as_mut().unwrap().redistribute.push(
        rc_netcfg::ast::Redistribution {
            source: rc_netcfg::ast::RedistSource::Static,
            metric: 5,
        },
    );
    let h = Harness::new(configs);
    for n in 1..4 {
        assert!(
            !h.nexthops(&format!("r{n:03}"), external).is_empty(),
            "r{n:03} did not learn the redistributed prefix"
        );
    }
    h.check_against_baseline();
}

#[test]
fn bgp_med_steers_peer_choice() {
    // Ring of 4: r000 reaches r002's prefix via either neighbor at
    // equal LP and path length; neighbor-id tiebreak picks one.
    // Advertising a LOWER Med on the other side must attract the
    // traffic (lower MED wins), without touching r000's own config.
    let mut h = Harness::new(build_configs(&ring(4), ProtocolChoice::Bgp));
    let p2 = host_prefix(2);
    let before = h.nexthops("r000", p2);
    assert_eq!(before.len(), 1);
    // The neighbor on the *other* side of r000: r001 faces r000 via its
    // eth0, r003 faces r000 via its eth1 (generator link order).
    let (steer_dev, steer_iface) =
        if before[0] == "eth0" { ("r003", "eth1") } else { ("r001", "eth0") };

    // First set a WORSE (higher) MED on the currently-unused side:
    // nothing should change (default MED 0 on the used side wins).
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::SetMed { device: steer_dev.into(), iface: steer_iface.into(), med: 50 });
    h.change(&cs);
    assert_eq!(h.nexthops("r000", p2), before);
    h.check_against_baseline();

    // Now set a worse MED on the USED side: traffic flips.
    let (used_dev, used_iface) =
        if before[0] == "eth0" { ("r001", "eth0") } else { ("r003", "eth1") };
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::SetMed { device: used_dev.into(), iface: used_iface.into(), med: 90 });
    h.change(&cs);
    let after = h.nexthops("r000", p2);
    assert_ne!(after, before, "higher MED on the used entry must repel traffic");
    h.check_against_baseline();
}
