//! Lightweight pipeline telemetry.
//!
//! Every stage of the RealConfig pipeline (dataflow engine, EC model,
//! policy checker) records what it does into a shared [`Telemetry`]
//! registry: monotonic [`Counter`]s, point-in-time [`Gauge`]s, and
//! log2-bucketed [`Histogram`]s. Updates are single atomic operations,
//! so instrumentation stays cheap enough to leave on in benchmarks;
//! the registry itself is keyed by name and lock-protected, so hot
//! paths should obtain a handle once and reuse it.
//!
//! [`Telemetry::snapshot`] produces a [`MetricsSnapshot`] — a plain,
//! serde-serializable view of every metric, sorted by name — which the
//! verifier embeds in its reports and the CLI/bench harnesses dump as
//! JSON.
//!
//! # Naming convention
//!
//! Metric names are dot-separated, stage-prefixed:
//! `dataflow.work.join`, `apkeep.ecs`, `policy.affected_ecs`. The
//! registry imposes nothing; the convention keeps snapshots greppable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

/// A monotonically increasing count. Cheap to clone (shared atomic).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value. Cheap to clone (shared atomic).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` holds values whose bit length is
/// `i` (0 itself lands in bucket 0), so bucket 64 holds `u64::MAX`-ish.
const BUCKETS: usize = 65;

struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log2-bucketed distribution of `u64` samples. Records exact count,
/// sum, min and max; percentiles are approximate (bucket upper bounds).
/// Cheap to clone (shared atomics).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        c.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        let count = c.count.load(Ordering::Relaxed);
        let sum = c.sum.load(Ordering::Relaxed);
        let (min, max) = if count == 0 {
            (0, 0)
        } else {
            (c.min.load(Ordering::Relaxed), c.max.load(Ordering::Relaxed))
        };
        let buckets: Vec<u64> = c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        // A bucket's upper bound: bit length `i` means values < 2^i.
        let upper = |i: usize| -> u64 {
            if i == 0 {
                0
            } else {
                (1u64 << i.min(63)).saturating_sub(1).max(1)
            }
        };
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (q * count as f64).ceil() as u64;
            let mut seen = 0;
            for (i, &b) in buckets.iter().enumerate() {
                seen += b;
                if seen >= rank {
                    return upper(i).min(max).max(min);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
        }
    }
}

/// Serializable view of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    /// Approximate (log2-bucket upper bound, clamped to `[min, max]`).
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// Serializable view of every metric in a registry at one instant.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A shared metric registry. Cloning shares the underlying metrics;
/// every pipeline stage holds a clone of the verifier's registry.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("telemetry lock");
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("telemetry lock");
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Gauge(Arc::new(AtomicI64::new(0)));
        map.insert(name.to_string(), g.clone());
        g
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("telemetry lock");
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Histogram(Arc::new(HistogramCore::new()));
        map.insert(name.to_string(), h.clone());
        h
    }

    /// A serializable snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("telemetry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("telemetry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("telemetry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_shares() {
        let t = Telemetry::new();
        let a = t.counter("x");
        let b = t.counter("x");
        a.add(3);
        b.incr();
        assert_eq!(t.snapshot().counters["x"], 4);
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let t = Telemetry::new();
        let g = t.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(t.snapshot().gauges["depth"], 7);
    }

    #[test]
    fn histogram_stats() {
        let t = Telemetry::new();
        let h = t.histogram("lat");
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = &t.snapshot().histograms["lat"];
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!(s.p50 >= 1 && s.p50 <= 100);
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let t = Telemetry::new();
        t.histogram("empty");
        let s = &t.snapshot().histograms["empty"];
        assert_eq!((s.count, s.min, s.max, s.p50), (0, 0, 0, 0));
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t2.counter("shared").add(5);
        assert_eq!(t.snapshot().counters["shared"], 5);
    }

    #[test]
    fn snapshot_serializes() {
        let t = Telemetry::new();
        t.counter("a").add(1);
        t.gauge("b").set(-2);
        t.histogram("c").record(7);
        let json = serde_json::to_string(&t.snapshot()).unwrap();
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"b\":-2"));
        assert!(json.contains("\"count\":1"));
    }
}
