//! Two-layer spine soundness: for random interleavings of push,
//! accumulate, times and compact — following the engine contract that
//! epochs advance monotonically and pushes after `compact(f)` carry
//! epochs `> f` — the spine trace must be observationally equal to a
//! naive flat reference trace.
//!
//! Counterexamples found by the random suite are pinned as named
//! regression tests at the bottom of this file.

use proptest::prelude::*;
use rc_dataflow::trace::KeyTrace;
use rc_dataflow::{consolidate_values, Diff, Time};

type K = u8;
type V = u8;

#[derive(Clone, Debug)]
enum Op {
    Push { key: K, value: V, iter: u32, diff: Diff },
    Accumulate { key: K, iter: u32 },
    Times { key: K },
    AdvanceEpoch,
    Compact,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0..4u8, 0..6u8, 0..4u32, -2isize..3).prop_map(|(key, value, iter, diff)| {
                Op::Push { key, value, iter, diff }
            }),
            3 => (0..4u8, 0..5u32).prop_map(|(key, iter)| Op::Accumulate { key, iter }),
            2 => (0..4u8).prop_map(|key| Op::Times { key }),
            2 => Just(Op::AdvanceEpoch),
            1 => Just(Op::Compact),
        ],
        1..60,
    )
}

/// Flat reference trace: an unordered list of `(value, time, diff)`
/// records per key, with every operation implemented by brute force.
#[derive(Default)]
struct NaiveTrace {
    records: Vec<(K, V, Time, Diff)>,
}

impl NaiveTrace {
    fn push(&mut self, k: K, v: V, t: Time, r: Diff) {
        if r != 0 {
            self.records.push((k, v, t, r));
        }
    }

    fn accumulate(&self, k: K, t: Time) -> Vec<(V, Diff)> {
        let mut acc: Vec<(V, Diff)> = self
            .records
            .iter()
            .filter(|(key, _, u, _)| *key == k && u.leq(t))
            .map(|(_, v, _, r)| (*v, *r))
            .collect();
        consolidate_values(&mut acc);
        acc
    }

    fn times(&self, k: K) -> Vec<Time> {
        let mut ts: Vec<Time> =
            self.records.iter().filter(|(key, ..)| *key == k).map(|(_, _, t, _)| *t).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Mirror of spine compaction: records at epochs `≤ frontier` are
    /// retimed to `(0, iter)` and consolidated per `(key, value, iter)`
    /// (previously folded records are at epoch 0 and re-enter the fold).
    fn compact(&mut self, frontier: u64) {
        let mut folded: Vec<(K, V, u32, Diff)> = Vec::new();
        let mut kept: Vec<(K, V, Time, Diff)> = Vec::new();
        for (k, v, t, r) in self.records.drain(..) {
            if t.epoch <= frontier {
                folded.push((k, v, t.iter, r));
            } else {
                kept.push((k, v, t, r));
            }
        }
        folded.sort_unstable();
        let mut consolidated: Vec<(K, V, u32, Diff)> = Vec::new();
        for (k, v, i, r) in folded {
            match consolidated.last_mut() {
                Some(last) if last.0 == k && last.1 == v && last.2 == i => {
                    last.3 += r;
                    if last.3 == 0 {
                        consolidated.pop();
                    }
                }
                _ => consolidated.push((k, v, i, r)),
            }
        }
        self.records =
            consolidated.into_iter().map(|(k, v, i, r)| (k, v, Time::new(0, i), r)).collect();
        self.records.extend(kept);
    }
}

/// Drive both traces through the op sequence, checking every
/// observation; panics (via assert) on the first divergence so the same
/// body serves proptest and the pinned regressions.
fn check_spine_matches_naive(ops: &[Op]) {
    let mut spine: KeyTrace<K, V> = KeyTrace::new();
    let mut naive = NaiveTrace::default();
    // Epoch 0 is reserved for the folded base; live pushes start at 1.
    let mut epoch = 1u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Push { key, value, iter, diff } => {
                let t = Time::new(epoch, iter);
                spine.push(key, value, t, diff);
                naive.push(key, value, t, diff);
            }
            Op::Accumulate { key, iter } => {
                let t = Time::new(epoch, iter);
                assert_eq!(
                    spine.accumulate(&key, t),
                    naive.accumulate(key, t),
                    "accumulate({key}, {t:?}) diverged at step {step}"
                );
            }
            Op::Times { key } => {
                assert_eq!(
                    spine.times(&key),
                    naive.times(key),
                    "times({key}) diverged at step {step}"
                );
            }
            Op::AdvanceEpoch => epoch += 1,
            Op::Compact => {
                spine.compact(epoch);
                naive.compact(epoch);
                // Contract: pushes after compact(f) have epoch > f.
                epoch += 1;
                assert_eq!(
                    spine.len(),
                    naive.records.len(),
                    "record count diverged after compact at step {step}"
                );
                assert_eq!(spine.recent_len(), 0, "recent layer nonempty after full compaction");
            }
        }
    }
    // Final sweep: every key, a deep and a shallow accumulation time.
    for key in 0..4u8 {
        for t in [Time::new(epoch, 0), Time::new(epoch, 8), Time::new(epoch + 1, 2)] {
            assert_eq!(spine.accumulate(&key, t), naive.accumulate(key, t));
        }
        assert_eq!(spine.times(&key), naive.times(key));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn spine_trace_matches_naive_reference(ops in arb_ops()) {
        check_spine_matches_naive(&ops);
    }
}

// ---------------------------------------------------------------------
// Pinned regressions: shrunk inputs from development runs of the suite,
// replayed deterministically through the same property body.
// ---------------------------------------------------------------------

/// A cancelling pair straddling a compaction: the fold must drop the
/// zero-sum `(value, iter)` run from the base so `times` agrees.
#[test]
fn cancelling_pair_folds_to_empty_base() {
    check_spine_matches_naive(&[
        Op::Push { key: 0, value: 3, iter: 1, diff: 1 },
        Op::AdvanceEpoch,
        Op::Push { key: 0, value: 3, iter: 1, diff: -1 },
        Op::Compact,
        Op::Times { key: 0 },
        Op::Accumulate { key: 0, iter: 2 },
    ]);
}

/// A push after compaction must be visible through the generation-tagged
/// accumulation cache (cache primed by the first accumulate).
#[test]
fn push_after_compaction_invalidates_nothing_it_should_not() {
    check_spine_matches_naive(&[
        Op::Push { key: 1, value: 2, iter: 0, diff: 2 },
        Op::Compact,
        Op::Accumulate { key: 1, iter: 0 },
        Op::Push { key: 1, value: 5, iter: 0, diff: 1 },
        Op::Accumulate { key: 1, iter: 0 },
    ]);
}

/// Accumulating below the base's maximum iteration must not reuse the
/// cache entry primed at a higher effective iteration.
#[test]
fn low_iter_accumulation_after_high_iter_cache_fill() {
    check_spine_matches_naive(&[
        Op::Push { key: 2, value: 1, iter: 0, diff: 1 },
        Op::Push { key: 2, value: 4, iter: 3, diff: 1 },
        Op::Compact,
        Op::Accumulate { key: 2, iter: 4 },
        Op::Accumulate { key: 2, iter: 0 },
    ]);
}

/// Two compactions in a row: already-folded base records re-enter the
/// second fold at epoch 0 and must merge, not duplicate.
#[test]
fn repeated_compaction_is_idempotent_on_the_base() {
    check_spine_matches_naive(&[
        Op::Push { key: 3, value: 0, iter: 2, diff: 1 },
        Op::Compact,
        Op::Push { key: 3, value: 0, iter: 2, diff: 1 },
        Op::Compact,
        Op::Accumulate { key: 3, iter: 2 },
        Op::Times { key: 3 },
    ]);
}
