//! Fixpoint iteration: graph reachability and shortest paths, both
//! maintained incrementally through insertions *and* deletions — the
//! capability RealConfig's incremental data plane generation rests on.

use rc_dataflow::{Collection, Dataflow, EvalError, InputHandle, OutputHandle};

type Edge = (u32, u32);

/// reach ⊆ V×V via edges, as a dataflow fixpoint.
fn reachability(edges: &Collection<Edge>) -> Collection<Edge> {
    edges.iterate(|inner| {
        let step = inner
            .map(|(x, y)| (y, x))
            .join(&edges.clone())
            .map(|(_, (x, z))| (x, z));
        inner.concat(&step).distinct()
    })
}

struct Spsp {
    df: Dataflow,
    edges: InputHandle<(u32, u32, u64)>,
    out: OutputHandle<(u32, u64)>,
}

/// Single-source (from node 0) shortest path lengths with weighted
/// edges, as an iterated min-reduction.
fn shortest_paths() -> Spsp {
    let mut df = Dataflow::new();
    let (edges_in, edges) = df.input::<(u32, u32, u64)>();
    let (seed_in, seed) = df.input::<(u32, u64)>();
    seed_in.insert((0, 0));
    let dist = seed.iterate(|inner| {
        let relaxed = inner
            .join(&edges.map(|(s, d, w)| (s, (d, w))))
            .map(|(_, (cost, (d, w)))| (d, cost + w));
        inner.concat(&relaxed).reduce_min()
    });
    let out = dist.output();
    Spsp { df, edges: edges_in, out }
}

#[test]
fn reachability_incremental_insert_and_delete() {
    let mut df = Dataflow::new();
    let (edges_in, edges) = df.input::<Edge>();
    let reach = reachability(&edges);
    let mut out = reach.output();

    // A chain 0→1→2→3.
    edges_in.extend([(0, 1), (1, 2), (2, 3)]);
    df.advance().unwrap();
    out.drain();
    assert_eq!(
        out.state_set(),
        vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    );

    // Add a shortcut and a new node.
    edges_in.insert((3, 4));
    df.advance().unwrap();
    out.drain();
    assert!(out.contains(&(0, 4)));
    assert_eq!(out.len(), 10);

    // Cut the chain in the middle: everything across the cut vanishes.
    edges_in.remove((1, 2));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![(0, 1), (2, 3), (2, 4), (3, 4)]);
}

#[test]
fn reachability_with_cycles() {
    let mut df = Dataflow::new();
    let (edges_in, edges) = df.input::<Edge>();
    let reach = reachability(&edges);
    let mut out = reach.output();

    edges_in.extend([(0, 1), (1, 2), (2, 0)]);
    df.advance().unwrap();
    out.drain();
    // A 3-cycle: all 9 ordered pairs reachable.
    assert_eq!(out.len(), 9);

    edges_in.remove((2, 0));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![(0, 1), (0, 2), (1, 2)]);
}

#[test]
fn shortest_paths_converge_and_update() {
    let mut sp = shortest_paths();
    // 0 →(1) 1 →(1) 2, plus a direct 0 →(5) 2.
    sp.edges.extend([(0, 1, 1), (1, 2, 1), (0, 2, 5)]);
    sp.df.advance().unwrap();
    sp.out.drain();
    assert_eq!(sp.out.state_set(), vec![(0, 0), (1, 1), (2, 2)]);

    // Break the cheap path: falls back to the direct edge.
    sp.edges.remove((1, 2, 1));
    sp.df.advance().unwrap();
    sp.out.drain();
    assert_eq!(sp.out.state_set(), vec![(0, 0), (1, 1), (2, 5)]);

    // Make the direct edge cheaper.
    sp.edges.remove((0, 2, 5));
    sp.edges.insert((0, 2, 3));
    sp.df.advance().unwrap();
    sp.out.drain();
    assert_eq!(sp.out.state_set(), vec![(0, 0), (1, 1), (2, 3)]);
}

#[test]
fn shortest_paths_cost_increase_reroutes() {
    let mut sp = shortest_paths();
    // Two parallel paths 0→1→3 (cost 2) and 0→2→3 (cost 4).
    sp.edges.extend([(0, 1, 1), (1, 3, 1), (0, 2, 2), (2, 3, 2)]);
    sp.df.advance().unwrap();
    sp.out.drain();
    assert_eq!(sp.out.count(&(3, 2)), 1);

    // "Link cost change": remove cost-1 edge, add cost-100 edge — the
    // route via node 2 takes over (this is the paper's LC scenario in
    // miniature).
    sp.edges.remove((1, 3, 1));
    sp.edges.insert((1, 3, 100));
    sp.df.advance().unwrap();
    sp.out.drain();
    assert_eq!(sp.out.count(&(3, 4)), 1);
    assert_eq!(sp.out.count(&(3, 2)), 0);
}

#[test]
fn incremental_work_much_smaller_than_full() {
    // Build a long chain; then perturb one edge at the far end and check
    // the engine does work proportional to the affected suffix, not the
    // whole graph.
    let mut sp = shortest_paths();
    let n = 400u32;
    for i in 0..n {
        sp.edges.insert((i, i + 1, 1));
    }
    sp.df.advance().unwrap();
    sp.out.drain();
    let full_work = sp.df.total_work();
    assert_eq!(sp.out.count(&(n, n as u64)), 1);

    // Perturb near the end: only ~the last hop is affected.
    sp.edges.remove((n - 1, n, 1));
    sp.edges.insert((n - 1, n, 2));
    sp.df.advance().unwrap();
    sp.out.drain();
    let inc_work = sp.df.total_work() - full_work;
    assert_eq!(sp.out.count(&(n, n as u64 + 1)), 1);
    assert!(
        inc_work * 20 < full_work,
        "incremental work {inc_work} not ≪ full work {full_work}"
    );
}

#[test]
fn divergent_iteration_is_detected() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<u64>();
    // A loop that strictly grows forever: x ∪ {max+1}.
    let grow = xs.iterate_capped(50, |inner| {
        let next = inner.map(|x| ((), x)).reduce_max().map(|((), x)| x + 1);
        inner.concat(&next).distinct()
    });
    let _out = grow.output();
    input.insert(0);
    match df.advance() {
        Err(EvalError::Divergence { iterations }) => assert_eq!(iterations, 50),
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn iterate_with_empty_input_is_empty() {
    let mut df = Dataflow::new();
    let (_input, edges) = df.input::<Edge>();
    let reach = reachability(&edges);
    let mut out = reach.output();
    df.advance().unwrap();
    out.drain();
    assert!(out.is_empty());
}

#[test]
fn two_independent_scopes_coexist() {
    let mut df = Dataflow::new();
    let (e1_in, e1) = df.input::<Edge>();
    let (e2_in, e2) = df.input::<Edge>();
    let r1 = reachability(&e1);
    let r2 = reachability(&e2);
    let joined = r1.map(|p| (p, ())).join(&r2.map(|p| (p, ()))).map(|(p, _)| p);
    let mut out = joined.output();

    e1_in.extend([(0, 1), (1, 2)]);
    e2_in.extend([(0, 2), (5, 6)]);
    df.advance().unwrap();
    out.drain();
    // Common reachable pair: (0,2).
    assert_eq!(out.state_set(), vec![(0, 2)]);

    e1_in.remove((1, 2));
    df.advance().unwrap();
    out.drain();
    assert!(out.is_empty());
}

#[test]
fn compaction_mid_stream_keeps_iteration_correct() {
    let mut df = Dataflow::new();
    let (edges_in, edges) = df.input::<Edge>();
    let reach = reachability(&edges);
    let mut out = reach.output();

    edges_in.extend([(0, 1), (1, 2), (2, 3)]);
    df.advance().unwrap();
    out.drain();
    df.compact();

    edges_in.remove((1, 2));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![(0, 1), (2, 3)]);

    df.compact();
    edges_in.insert((1, 2));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.len(), 6);
}

#[test]
fn recurring_state_detected_before_cap() {
    // A period-2 oscillator: x ↦ {1 − v}. The recurring-state detector
    // must report it long before the (huge) iteration cap.
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<i64>();
    let osc = xs.iterate_capped(1_000_000, |inner| inner.map(|v| 1 - v).distinct());
    let _out = osc.output();
    input.insert(0);
    match df.advance() {
        Err(EvalError::RecurringState { period, iteration }) => {
            assert_eq!(period, 2);
            assert!(iteration < 100, "detected at iteration {iteration}");
        }
        other => panic!("expected recurring-state detection, got {other:?}"),
    }
}

#[test]
fn recurring_detection_does_not_fire_on_convergent_loops() {
    // A long converging chain: hundreds of productive iterations with
    // distinct deltas must not be mistaken for oscillation.
    let mut sp = shortest_paths();
    let n = 300u32;
    for i in 0..n {
        sp.edges.insert((i, i + 1, 1));
    }
    sp.df.advance().expect("long chains converge without false positives");
    sp.out.drain();
    assert_eq!(sp.out.count(&(n, n as u64)), 1);
}

#[test]
fn unbounded_self_similar_growth_detected() {
    // x ↦ x ∪ {v + 1000} without distinct: every iteration adds the
    // same *pattern* shifted — multiplicities keep growing for a
    // shifting frontier. The frontier value changes each iteration, so
    // digests differ and the iteration cap (not the recurrence
    // detector) fires: divergence is still reported either way.
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<i64>();
    let grow = xs.iterate_capped(60, |inner| {
        let step = inner.map(|v| ((), v)).reduce_max().map(|((), v)| v + 1000);
        inner.concat(&step).distinct()
    });
    let _out = grow.output();
    input.insert(0);
    assert!(df.advance().is_err(), "non-convergence must surface as an error");
}
