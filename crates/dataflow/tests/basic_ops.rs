//! Semantics of the linear and grouping operators across epochs.

use rc_dataflow::Dataflow;

#[test]
fn map_filter_negate_concat() {
    let mut df = Dataflow::new();
    let (input, nums) = df.input::<i64>();
    let doubled = nums.map(|x| x * 2);
    let evens = nums.filter(|x| x % 2 == 0);
    let union = doubled.concat(&evens);
    let minus = nums.concat(&nums.negate());
    let mut out_union = union.output();
    let mut out_minus = minus.output();

    input.extend([1, 2, 3]);
    df.advance().unwrap();
    out_union.drain();
    out_minus.drain();
    // doubled = {2,4,6}, evens = {2} → union multiset has 2 twice.
    assert_eq!(out_union.state(), vec![(2, 2), (4, 1), (6, 1)]);
    assert!(out_minus.is_empty(), "x ⊖ x must be empty");

    input.remove(2);
    df.advance().unwrap();
    out_union.drain();
    assert_eq!(out_union.state(), vec![(2, 1), (6, 1)]);
}

#[test]
fn flat_map_expands() {
    let mut df = Dataflow::new();
    let (input, nums) = df.input::<u32>();
    let expanded = nums.flat_map(|x| (0..x).collect::<Vec<_>>());
    let mut out = expanded.output();

    input.insert(3);
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![0, 1, 2]);

    input.remove(3);
    input.insert(1);
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![0]);
}

#[test]
fn distinct_collapses_multiplicity() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<&'static str>();
    let d = xs.distinct();
    let mut out = d.output();

    input.insert("a");
    input.insert("a");
    input.insert("b");
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state(), vec![("a", 1), ("b", 1)]);

    // Removing one copy of "a" leaves it present.
    input.remove("a");
    df.advance().unwrap();
    let delta = out.drain();
    assert!(delta.is_empty(), "distinct must not change: {delta:?}");

    // Removing the second copy deletes it.
    input.remove("a");
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state(), vec![("b", 1)]);
}

#[test]
fn count_tracks_multiplicity() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<(char, u32)>();
    let counted = xs.count();
    let mut out = counted.output();

    input.extend([('a', 1), ('a', 2), ('b', 9)]);
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state(), vec![(('a', 2), 1), (('b', 1), 1)]);

    input.remove(('a', 1));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state(), vec![(('a', 1), 1), (('b', 1), 1)]);
}

#[test]
fn reduce_min_and_max() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<(u8, i32)>();
    let min = xs.reduce_min();
    let max = xs.reduce_max();
    let mut out_min = min.output();
    let mut out_max = max.output();

    input.extend([(0, 5), (0, 3), (0, 9), (1, -1)]);
    df.advance().unwrap();
    out_min.drain();
    out_max.drain();
    assert_eq!(out_min.state(), vec![((0, 3), 1), ((1, -1), 1)]);
    assert_eq!(out_max.state(), vec![((0, 9), 1), ((1, -1), 1)]);

    // Deleting the current minimum promotes the next one.
    input.remove((0, 3));
    df.advance().unwrap();
    out_min.drain();
    out_max.drain();
    assert_eq!(out_min.state(), vec![((0, 5), 1), ((1, -1), 1)]);

    // Deleting the last value of a key removes the key entirely.
    input.remove((1, -1));
    df.advance().unwrap();
    out_min.drain();
    assert_eq!(out_min.state(), vec![((0, 5), 1)]);
}

#[test]
fn top_k_min_keeps_k_smallest() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<((), u32)>();
    let top2 = xs.top_k_min(2);
    let mut out = top2.output();

    input.extend([((), 5), ((), 1), ((), 3), ((), 4)]);
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![((), 1), ((), 3)]);

    input.remove(((), 1));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![((), 3), ((), 4)]);
}

#[test]
fn empty_epochs_are_cheap_noops() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<u32>();
    let mut out = xs.map(|x| x + 1).output();
    input.insert(1);
    df.advance().unwrap();
    out.drain();
    let w0 = df.total_work();
    for _ in 0..5 {
        let stats = df.advance().unwrap();
        assert_eq!(stats.records, 0);
    }
    assert_eq!(df.total_work(), w0);
    assert_eq!(out.state_set(), vec![2]);
}

#[test]
fn updates_within_one_epoch_consolidate() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<u32>();
    let mut out = xs.output();
    input.insert(7);
    input.remove(7);
    input.insert(8);
    let stats = df.advance().unwrap();
    let delta = out.drain();
    assert_eq!(delta, vec![(8, 1)]);
    // The cancelling pair is consolidated away at the input node.
    assert!(stats.records <= 4);
}

#[test]
fn semijoin_and_antijoin() {
    let mut df = Dataflow::new();
    let (pairs_in, pairs) = df.input::<(u32, &'static str)>();
    let (keys_in, keys) = df.input::<u32>();
    let mut sj = pairs.semijoin(&keys).output();
    let mut aj = pairs.antijoin(&keys).output();

    pairs_in.extend([(1, "a"), (2, "b"), (3, "c")]);
    keys_in.insert(1);
    keys_in.insert(1); // duplicate key must not duplicate output
    keys_in.insert(3);
    df.advance().unwrap();
    sj.drain();
    aj.drain();
    assert_eq!(sj.state(), vec![((1, "a"), 1), ((3, "c"), 1)]);
    assert_eq!(aj.state(), vec![((2, "b"), 1)]);

    keys_in.remove(3);
    df.advance().unwrap();
    sj.drain();
    aj.drain();
    assert_eq!(sj.state(), vec![((1, "a"), 1)]);
    assert_eq!(aj.state(), vec![((2, "b"), 1), ((3, "c"), 1)]);

    // Removing one of the duplicate 1-keys keeps the semijoin intact.
    keys_in.remove(1);
    df.advance().unwrap();
    sj.drain();
    aj.drain();
    assert_eq!(sj.state(), vec![((1, "a"), 1)]);
}

#[test]
fn reduce_general_logic() {
    // Sum of values per key, as a user-provided reduction.
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<(char, i64)>();
    let sums = xs.reduce(|_, vals| {
        let s: i64 = vals.iter().map(|(v, r)| v * (*r as i64)).sum();
        vec![(s, 1)]
    });
    let mut out = sums.output();

    input.extend([('a', 10), ('a', 5), ('b', 1)]);
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state(), vec![(('a', 15), 1), (('b', 1), 1)]);

    input.insert(('a', 10)); // second copy: multiplicity counts
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state(), vec![(('a', 25), 1), (('b', 1), 1)]);

    input.remove(('b', 1));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state(), vec![(('a', 25), 1)]);
}

#[test]
fn compaction_preserves_results() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<(u8, u32)>();
    let min = xs.reduce_min();
    let mut out = min.output();

    for i in 0..20u32 {
        input.insert((0, 100 - i));
        df.advance().unwrap();
        out.drain();
    }
    assert_eq!(out.state_set(), vec![(0, 81)]);
    df.compact();
    // Post-compaction updates still correct.
    input.remove((0, 81));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![(0, 82)]);
    input.insert((0, 1));
    df.advance().unwrap();
    out.drain();
    assert_eq!(out.state_set(), vec![(0, 1)]);
}

#[test]
fn output_handle_views() {
    let mut df = Dataflow::new();
    let (input, xs) = df.input::<u32>();
    let mut out = xs.output();
    input.insert(4);
    input.insert(4);
    df.advance().unwrap();
    let delta = out.drain();
    assert_eq!(delta, vec![(4, 2)]);
    assert_eq!(out.count(&4), 2);
    assert!(out.contains(&4));
    assert!(!out.contains(&5));
    assert_eq!(out.len(), 1);
}
