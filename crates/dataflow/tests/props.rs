//! Incrementality soundness: for random sequences of edge insertions
//! and deletions, incrementally-maintained reachability and shortest
//! paths must equal a from-scratch recomputation after every epoch.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use proptest::prelude::*;
use rc_dataflow::{Collection, Dataflow};

const N: u32 = 6;

#[derive(Clone, Debug)]
enum Cmd {
    Insert(u32, u32, u64),
    /// Remove the i-th live edge (modulo count), if any.
    RemoveNth(usize),
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..N, 0..N, 1u64..5).prop_map(|(a, b, w)| Cmd::Insert(a, b, w)),
            2 => any::<usize>().prop_map(Cmd::RemoveNth),
        ],
        1..25,
    )
}

/// Oracle: transitive closure by naive iteration.
fn oracle_reach(edges: &BTreeSet<(u32, u32, u64)>) -> BTreeSet<(u32, u32)> {
    let mut reach: BTreeSet<(u32, u32)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
    loop {
        let mut added = false;
        let snapshot: Vec<_> = reach.iter().cloned().collect();
        for &(a, b) in &snapshot {
            for &(c, d, _) in edges.iter() {
                if b == c && reach.insert((a, d)) {
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }
    reach
}

/// Oracle: Dijkstra from node 0.
fn oracle_sssp(edges: &BTreeSet<(u32, u32, u64)>) -> BTreeMap<u32, u64> {
    let mut dist: BTreeMap<u32, u64> = BTreeMap::new();
    let mut heap = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u64, 0u32)));
    while let Some(std::cmp::Reverse((d, n))) = heap.pop() {
        if dist.contains_key(&n) {
            continue;
        }
        dist.insert(n, d);
        for &(a, b, w) in edges.iter() {
            if a == n && !dist.contains_key(&b) {
                heap.push(std::cmp::Reverse((d + w, b)));
            }
        }
    }
    dist
}

fn reachability(edges: &Collection<(u32, u32, u64)>) -> Collection<(u32, u32)> {
    let pairs = edges.map(|(a, b, _)| (a, b)).distinct();
    pairs.iterate(|inner| {
        let step = inner.map(|(x, y)| (y, x)).join(&pairs.clone()).map(|(_, (x, z))| (x, z));
        inner.concat(&step).distinct()
    })
}

fn sssp(
    edges: &Collection<(u32, u32, u64)>,
    seed: &Collection<(u32, u64)>,
) -> Collection<(u32, u64)> {
    seed.iterate(|inner| {
        let relaxed = inner
            .join(&edges.map(|(s, d, w)| (s, (d, w))))
            .map(|(_, (cost, (d, w)))| (d, cost + w));
        inner.concat(&relaxed).reduce_min()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_equals_from_scratch(cmds in arb_cmds()) {
        let mut df = Dataflow::new();
        let (edges_in, edges) = df.input::<(u32, u32, u64)>();
        let (seed_in, seed) = df.input::<(u32, u64)>();
        seed_in.insert((0, 0));
        let mut reach_out = reachability(&edges).output();
        let mut dist_out = sssp(&edges, &seed).output();

        let mut live: BTreeSet<(u32, u32, u64)> = BTreeSet::new();
        df.advance().unwrap();
        reach_out.drain();
        dist_out.drain();

        for (step, cmd) in cmds.into_iter().enumerate() {
            match cmd {
                Cmd::Insert(a, b, w) => {
                    if live.insert((a, b, w)) {
                        edges_in.insert((a, b, w));
                    }
                }
                Cmd::RemoveNth(i) => {
                    if !live.is_empty() {
                        let e = *live.iter().nth(i % live.len()).unwrap();
                        live.remove(&e);
                        edges_in.remove(e);
                    }
                }
            }
            df.advance().unwrap();
            reach_out.drain();
            dist_out.drain();

            // Multiplicities must all be exactly one.
            for (d, r) in reach_out.state() {
                prop_assert_eq!(r, 1, "reach multiplicity for {:?}", d);
            }
            let got_reach: BTreeSet<(u32, u32)> = reach_out.state_set().into_iter().collect();
            prop_assert_eq!(&got_reach, &oracle_reach(&live), "reach mismatch at step {}", step);

            let got_dist: BTreeMap<u32, u64> = dist_out.state_set().into_iter().collect();
            prop_assert_eq!(&got_dist, &oracle_sssp(&live), "sssp mismatch at step {}", step);

            // Periodic compaction must not disturb anything.
            if step % 7 == 3 {
                df.compact();
            }
        }
    }
}
