//! Worker-count determinism of the sharded operators.
//!
//! The engine's contract is that sharding is an implementation detail:
//! the emitted delta batches, the accumulated collections, and the
//! per-operator trace record counts must be byte-identical at 1 and 4
//! workers, for any churn sequence. The proptest drives the same random
//! edge churn through two copies of an iterative reachability +
//! shortest-paths dataflow (the shape the routing engine compiles to)
//! pinned at 1 and 4 workers and compares everything after every epoch.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rc_dataflow::util::{shard_of, NUM_SHARDS};
use rc_dataflow::{Dataflow, InputHandle, OutputHandle};

const N: u32 = 6;

#[derive(Clone, Debug)]
enum Cmd {
    Insert(u32, u32, u64),
    RemoveNth(usize),
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..N, 0..N, 1u64..5).prop_map(|(a, b, w)| Cmd::Insert(a, b, w)),
            2 => any::<usize>().prop_map(Cmd::RemoveNth),
        ],
        1..20,
    )
}

struct Harness {
    df: Dataflow,
    edges_in: InputHandle<(u32, u32, u64)>,
    reach_out: OutputHandle<(u32, u32)>,
    dist_out: OutputHandle<(u32, u64)>,
    telemetry: rc_telemetry::Telemetry,
}

/// Reachability + SSSP over an edge collection — joins, distinct, and
/// reduce_min inside a fixpoint scope, i.e. every sharded operator.
fn build(threads: usize) -> Harness {
    let mut df = Dataflow::new();
    let telemetry = rc_telemetry::Telemetry::new();
    df.set_telemetry(telemetry.clone());
    df.set_threads(Some(threads));
    let (edges_in, edges) = df.input::<(u32, u32, u64)>();
    let (seed_in, seed) = df.input::<(u32, u64)>();
    seed_in.insert((0, 0));

    let pairs = edges.map(|(a, b, _)| (a, b)).distinct();
    let reach = pairs.iterate(|inner| {
        let step = inner.map(|(x, y)| (y, x)).join(&pairs.clone()).map(|(_, (x, z))| (x, z));
        inner.concat(&step).distinct()
    });
    let dist = seed.iterate(|inner| {
        let relaxed = inner
            .join(&edges.map(|(s, d, w)| (s, (d, w))))
            .map(|(_, (cost, (d, w)))| (d, cost + w));
        inner.concat(&relaxed).reduce_min()
    });

    let reach_out = reach.output();
    let dist_out = dist.output();
    Harness { df, edges_in, reach_out, dist_out, telemetry }
}

/// The `dataflow.trace.*` gauge values plus total trace records from a
/// telemetry snapshot.
fn trace_counts(t: &rc_telemetry::Telemetry) -> Vec<(String, i64)> {
    let snap = t.snapshot();
    let mut out: Vec<(String, i64)> = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("dataflow.trace"))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn one_vs_four_workers_byte_identical(cmds in arb_cmds()) {
        let mut serial = build(1);
        let mut sharded = build(4);
        serial.df.advance().unwrap();
        sharded.df.advance().unwrap();
        prop_assert_eq!(serial.reach_out.drain(), sharded.reach_out.drain());
        prop_assert_eq!(serial.dist_out.drain(), sharded.dist_out.drain());

        let mut live: BTreeSet<(u32, u32, u64)> = BTreeSet::new();
        for (step, cmd) in cmds.into_iter().enumerate() {
            match cmd {
                Cmd::Insert(a, b, w) => {
                    if live.insert((a, b, w)) {
                        serial.edges_in.insert((a, b, w));
                        sharded.edges_in.insert((a, b, w));
                    }
                }
                Cmd::RemoveNth(i) => {
                    if !live.is_empty() {
                        let e = *live.iter().nth(i % live.len()).unwrap();
                        live.remove(&e);
                        serial.edges_in.remove(e);
                        sharded.edges_in.remove(e);
                    }
                }
            }
            serial.df.advance().unwrap();
            sharded.df.advance().unwrap();

            // Emitted delta batches, not just accumulated state: the
            // merge order inside every sharded step must reproduce the
            // serial emission exactly.
            prop_assert_eq!(
                serial.reach_out.drain(),
                sharded.reach_out.drain(),
                "reach deltas diverged at step {}",
                step
            );
            prop_assert_eq!(
                serial.dist_out.drain(),
                sharded.dist_out.drain(),
                "dist deltas diverged at step {}",
                step
            );
            prop_assert_eq!(serial.reach_out.state(), sharded.reach_out.state());
            prop_assert_eq!(serial.dist_out.state(), sharded.dist_out.state());

            // Trace spines hold the same records regardless of how they
            // are sharded.
            let s_stats = serial.df.op_stats();
            let p_stats = sharded.df.op_stats();
            prop_assert_eq!(s_stats.len(), p_stats.len());
            for ((name_s, s), (name_p, p)) in s_stats.iter().zip(p_stats.iter()) {
                prop_assert_eq!(name_s, name_p);
                prop_assert_eq!(
                    s.trace_records, p.trace_records,
                    "trace records diverged for {} at step {}", name_s, step
                );
                prop_assert_eq!(s.trace_base_records, p.trace_base_records);
                prop_assert_eq!(s.trace_recent_records, p.trace_recent_records);
                prop_assert_eq!(s.pending, p.pending);
            }
            prop_assert_eq!(
                trace_counts(&serial.telemetry),
                trace_counts(&sharded.telemetry),
                "dataflow.trace.* diverged at step {}",
                step
            );

            if step % 5 == 2 {
                serial.df.compact();
                sharded.df.compact();
            }
        }
    }
}

/// Pinned guard for the exchange routing at the top shard boundary:
/// `3u32` hashes to the last shard (`NUM_SHARDS - 1`) under the
/// seed-free FxHasher, so a `% NUM_SHARDS` off-by-one (or a worker
/// count smaller than the shard count dropping the tail shard) shows up
/// here as a missing/duplicated record rather than only under proptest.
#[test]
fn last_shard_key_routes_and_reduces() {
    const LAST_SHARD_KEY: u32 = 3;
    assert_eq!(shard_of(&LAST_SHARD_KEY), NUM_SHARDS - 1, "pinned key moved shards");

    for threads in [1, 2, 4, NUM_SHARDS + 3] {
        let mut df = Dataflow::new();
        df.set_threads(Some(threads));
        let (pairs_in, pairs) = df.input::<(u32, u32)>();
        let mut min_out = pairs.reduce_min().output();
        let mut distinct_out = pairs.distinct().output();

        pairs_in.extend([(LAST_SHARD_KEY, 9), (LAST_SHARD_KEY, 4), (1, 7)]);
        df.advance().unwrap();
        min_out.drain();
        distinct_out.drain();
        assert_eq!(
            min_out.state_set(),
            vec![(1, 7), (LAST_SHARD_KEY, 4)],
            "threads={threads}"
        );
        assert_eq!(distinct_out.len(), 3, "threads={threads}");

        // Retract the minimum: the last-shard key must re-reduce.
        pairs_in.remove((LAST_SHARD_KEY, 4));
        df.advance().unwrap();
        min_out.drain();
        assert_eq!(
            min_out.state_set(),
            vec![(1, 7), (LAST_SHARD_KEY, 9)],
            "threads={threads}"
        );
    }
}
