//! Small utilities: a fast, non-cryptographic hasher for internal maps.
//!
//! Keyed operator state is hit on every record; SipHash (std's default)
//! is a measurable cost there. This is the well-known FxHash mix used by
//! rustc — not DoS-resistant, which is fine for state keyed by our own
//! derived values.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher: multiply-rotate word mixing.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Number of key shards in the sharded stateful operators (`join`,
/// `reduce` and its derivatives). Fixed and worker-count-independent,
/// so exchange routing — and therefore per-shard trace contents — never
/// depends on how many workers happen to run.
pub const NUM_SHARDS: usize = 8;

/// The shard owning `key`. [`FxHasher`] is seed-free and deterministic,
/// so the same key lands on the same shard in every process, at every
/// worker count.
pub fn shard_of<K: std::hash::Hash>(key: &K) -> usize {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() % NUM_SHARDS as u64) as usize
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_distinguishing() {
        let mut m: FxHashMap<(u32, u32), &str> = FxHashMap::default();
        m.insert((1, 2), "a");
        m.insert((2, 1), "b");
        assert_eq!(m[&(1, 2)], "a");
        assert_eq!(m[&(2, 1)], "b");
    }

    #[test]
    fn handles_unaligned_bytes() {
        let mut h1 = FxHasher::default();
        h1.write(b"hello world");
        let mut h2 = FxHasher::default();
        h2.write(b"hello worle");
        assert_ne!(h1.finish(), h2.finish());
    }
}
