//! Dataflow graph plumbing: edges, node registry, the dirty-set
//! scheduler and the epoch driver.
//!
//! The engine is single-threaded and epoch-synchronous. Nodes are stored
//! in creation order, which is a topological order of the (acyclic,
//! feedback-excepted) graph, so one pass per logical time suffices:
//! every producer runs before its consumers.
//!
//! Scheduling is *dirty-set driven*: every registered node owns a slot
//! in a shared [`Scheduler`], and [`Fanout::emit`] marks the consuming
//! node's slot when it delivers a non-empty batch. The epoch driver and
//! the `iterate` fixpoint loop step only nodes that are dirty or hold
//! internal pending work (deferred emissions, unprocessed interesting
//! times), so an incremental update pays for the operators it actually
//! touches — not for the whole graph. Epoch-end invariant checks
//! (`end_epoch`, `flush_scope`) still sweep every node.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use rc_telemetry::Telemetry;

use crate::delta::{Data, Delta};
use crate::error::EvalError;
use crate::time::Time;

/// Scheduler slot of a queue whose consumer has not been registered yet
/// (or never will be, e.g. an [`crate::OutputHandle`]'s queue).
pub(crate) const UNBOUND: usize = usize::MAX;

/// Shared dirty-set state. One instance per [`Dataflow`], covering the
/// top level and every `iterate` scope (slots are allocated globally at
/// registration time).
pub(crate) struct Scheduler {
    dirty: RefCell<Vec<bool>>,
    steps_run: Cell<u64>,
    steps_skipped: Cell<u64>,
    /// Worker count for shard dispatch; 0 means "unset" — resolve via
    /// the process-wide [`rc_par::threads`] knob at dispatch time.
    threads: Cell<usize>,
}

impl Scheduler {
    fn new() -> Rc<Self> {
        Rc::new(Scheduler {
            dirty: RefCell::new(Vec::new()),
            steps_run: Cell::new(0),
            steps_skipped: Cell::new(0),
            threads: Cell::new(0),
        })
    }

    /// Pin (or with `None` unpin) the worker count used when stateful
    /// operators dispatch their shards.
    pub fn set_threads(&self, threads: Option<usize>) {
        self.threads.set(threads.unwrap_or(0));
    }

    /// The worker count shard dispatch runs at: the pinned count, else
    /// the process-wide [`rc_par::threads`] resolution.
    pub fn worker_threads(&self) -> usize {
        match self.threads.get() {
            0 => rc_par::threads(),
            n => n,
        }
    }

    /// Allocate a slot for a newly registered node.
    fn alloc(&self) -> usize {
        let mut d = self.dirty.borrow_mut();
        d.push(false);
        d.len() - 1
    }

    /// Mark a node dirty: it has fresh queued input.
    pub fn mark(&self, slot: usize) {
        if slot != UNBOUND {
            self.dirty.borrow_mut()[slot] = true;
        }
    }

    /// Read a node's dirty flag without clearing it.
    pub fn is_dirty(&self, slot: usize) -> bool {
        slot != UNBOUND && self.dirty.borrow()[slot]
    }

    /// Consume a node's dirty flag.
    pub fn take(&self, slot: usize) -> bool {
        if slot == UNBOUND {
            return false;
        }
        std::mem::replace(&mut self.dirty.borrow_mut()[slot], false)
    }

    /// Count one scheduling decision (for telemetry).
    pub fn count(&self, ran: bool) {
        if ran {
            self.steps_run.set(self.steps_run.get() + 1);
        } else {
            self.steps_skipped.set(self.steps_skipped.get() + 1);
        }
    }

    /// Cumulative `(steps_run, steps_skipped)` counters.
    pub fn step_counts(&self) -> (u64, u64) {
        (self.steps_run.get(), self.steps_skipped.get())
    }
}

/// Minimum freshly routed records in one operator step before its
/// shards go to the pool. Below this the pool's spawn/steal overhead
/// beats the win — the regression PR 5 measured on tiny churn batches —
/// so the shards run inline on the caller's thread instead.
pub(crate) const SHARD_DISPATCH_MIN: usize = 512;

/// How one [`run_shards`] call was executed (telemetry material).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ShardMode {
    /// Shards ran as pool tasks.
    Dispatched,
    /// Multiple workers were available but the step was below
    /// [`SHARD_DISPATCH_MIN`]; shards ran inline (adaptive fallback).
    Inlined,
    /// Single-worker configuration: the exact serial path.
    Serial,
}

/// Step every shard of a stateful operator, dispatching to the
/// work-stealing pool when `records` (the step's freshly routed input)
/// crosses [`SHARD_DISPATCH_MIN`] and more than one worker is
/// configured. Results always come back in shard order — merge order,
/// and therefore operator output, is identical in all three modes.
pub(crate) fn run_shards<S, R, F>(
    sched: Option<&Rc<Scheduler>>,
    records: usize,
    shards: &mut [S],
    f: F,
) -> (Vec<R>, ShardMode)
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let nthreads = sched.map_or(1, |s| s.worker_threads());
    if nthreads <= 1 {
        return (shards.iter_mut().enumerate().map(|(i, s)| f(i, s)).collect(), ShardMode::Serial);
    }
    if records < SHARD_DISPATCH_MIN {
        return (shards.iter_mut().enumerate().map(|(i, s)| f(i, s)).collect(), ShardMode::Inlined);
    }
    let (out, _stats) = rc_par::par_map_mut_in(nthreads.min(shards.len()), shards, f);
    (out, ShardMode::Dispatched)
}

/// A typed edge: producers push difference records, the (single)
/// consumer drains them on its step. The edge knows its consumer's
/// scheduler slot so a delivery can mark the consumer dirty.
pub(crate) struct QueueInner<D: Data> {
    data: RefCell<Vec<Delta<D>>>,
    consumer: Cell<usize>,
    sched: RefCell<Option<Rc<Scheduler>>>,
}

pub(crate) type Queue<D> = Rc<QueueInner<D>>;

pub(crate) fn new_queue<D: Data>() -> Queue<D> {
    Rc::new(QueueInner {
        data: RefCell::new(Vec::new()),
        consumer: Cell::new(UNBOUND),
        sched: RefCell::new(None),
    })
}

impl<D: Data> QueueInner<D> {
    /// Point this edge at its consumer's scheduler slot. Called from the
    /// consumer's [`OpNode::bind`].
    pub fn bind(&self, slot: usize, sched: &Rc<Scheduler>) {
        self.consumer.set(slot);
        *self.sched.borrow_mut() = Some(Rc::clone(sched));
    }

    /// Drain all queued records.
    pub fn take_batch(&self) -> Vec<Delta<D>> {
        std::mem::take(&mut *self.data.borrow_mut())
    }

    pub fn is_empty(&self) -> bool {
        self.data.borrow().is_empty()
    }

    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    fn mark_dirty(&self) {
        if let Some(sched) = &*self.sched.borrow() {
            sched.mark(self.consumer.get());
        }
    }

    fn append_slice(&self, batch: &[Delta<D>]) {
        self.data.borrow_mut().extend_from_slice(batch);
        self.mark_dirty();
    }

    fn append_owned(&self, batch: Vec<Delta<D>>) {
        let mut data = self.data.borrow_mut();
        if data.is_empty() {
            // Adopt the batch's storage outright — the common
            // single-subscriber, empty-queue case moves, never copies.
            *data = batch;
        } else {
            data.extend(batch);
        }
        drop(data);
        self.mark_dirty();
    }
}

/// The produce side of a collection: a list of subscriber queues.
/// Subscribing after creation is allowed (used to close feedback loops).
pub(crate) struct Fanout<D: Data> {
    subscribers: Rc<RefCell<Vec<Queue<D>>>>,
}

impl<D: Data> Clone for Fanout<D> {
    fn clone(&self) -> Self {
        Fanout { subscribers: Rc::clone(&self.subscribers) }
    }
}

impl<D: Data> Fanout<D> {
    pub fn new() -> Self {
        Fanout { subscribers: Rc::new(RefCell::new(Vec::new())) }
    }

    /// Add a subscriber and return its queue.
    pub fn subscribe(&self) -> Queue<D> {
        let q = new_queue();
        self.subscribers.borrow_mut().push(Rc::clone(&q));
        q
    }

    /// Attach an existing queue (used to wire a loop variable's feedback
    /// edge after the loop body has been built).
    pub fn attach(&self, q: &Queue<D>) {
        self.subscribers.borrow_mut().push(Rc::clone(q));
    }

    /// Push a batch to every subscriber and mark each one dirty. The
    /// batch is *moved* into the last subscriber's queue; only the
    /// n-1 preceding subscribers (rare: most collections have exactly
    /// one consumer) pay a copy.
    pub fn emit(&self, batch: Vec<Delta<D>>) {
        if batch.is_empty() {
            return;
        }
        let subs = self.subscribers.borrow();
        let Some((last, rest)) = subs.split_last() else {
            return;
        };
        for q in rest {
            q.append_slice(&batch);
        }
        last.append_owned(batch);
    }
}

/// The behaviour every operator implements. `step` is called once per
/// logical time; between steps, upstream operators have already pushed
/// everything at times `≤ now` into this operator's input queues.
pub(crate) trait OpNode {
    /// Record the node's scheduler slot and wire its input queues to it.
    /// Called exactly once, at registration.
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>);

    /// The scheduler slot assigned by [`OpNode::bind`].
    fn slot(&self) -> usize;

    /// Process queued input at logical time `now`, emitting outputs.
    fn step(&mut self, now: Time) -> Result<(), EvalError>;

    /// Whether any input queue holds unprocessed records.
    fn has_queued(&self) -> bool;

    /// Whether the node holds internal state that obliges a step even
    /// without fresh input: deferred emissions (join, delay),
    /// unprocessed interesting times (reduce), or — for a scope —
    /// any dirty or pending child. Drives dirty-set scheduling.
    fn has_internal_work(&self) -> bool {
        false
    }

    /// The smallest iteration of `epoch` at which this operator holds
    /// internal pending work (deferred emissions or unprocessed
    /// interesting times), if any. Drives loop scheduling: a fixpoint
    /// scope may not terminate while some operator still owes
    /// corrections at a future iteration.
    fn pending_iter(&self, epoch: u64) -> Option<u32>;

    /// Called by an enclosing scope after its fixpoint loop completes
    /// for `epoch`. Used by egress nodes to release consolidated output.
    fn flush_scope(&mut self, _epoch: u64) {}

    /// Called once per epoch after all processing; checks invariants.
    fn end_epoch(&mut self, epoch: u64);

    /// Fold history at epochs `≤ frontier` down to epoch 0.
    fn compact(&mut self, frontier: u64);

    /// `(base, recent)` trace record counts across this node's keyed
    /// traces (a scope sums its children). Stateless operators report
    /// `(0, 0)`. Drives threshold-triggered compaction: the recent
    /// layer is the part compaction folds away.
    fn trace_sizes(&self) -> (usize, usize) {
        (0, 0)
    }

    /// Cumulative count of records processed (a machine-independent
    /// work measure reported by the benchmarks).
    fn work(&self) -> u64;

    /// An order-insensitive digest of the differences this operator
    /// emitted during its most recent `step`, or `None` when it emitted
    /// nothing. Only the feedback (`delay`) operator implements this —
    /// the loop variable's delta stream determines the loop state, so
    /// recurring digests reveal oscillation.
    fn step_digest(&self) -> Option<u64> {
        None
    }

    /// Accumulate this operator's statistics into `acc`, keyed by
    /// operator name. The default reports cumulative work only;
    /// stateful operators add queue depth, trace size and pending
    /// internal work, and containers (the iterate scope) recurse into
    /// their children instead of reporting an aggregate.
    fn collect_stats(&self, acc: &mut BTreeMap<&'static str, OpStats>) {
        acc.entry(self.name()).or_default().work += self.work();
    }

    /// Operator name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Per-operator-name statistics aggregated over the whole graph
/// (including operators inside `iterate` scopes). See
/// [`Dataflow::op_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Cumulative records processed.
    pub work: u64,
    /// Records currently sitting in input queues.
    pub queued: usize,
    /// Difference records held in keyed traces (both spine layers).
    pub trace_records: usize,
    /// Trace records in the consolidated base layers.
    pub trace_base_records: usize,
    /// Trace records in the recent delta layers.
    pub trace_recent_records: usize,
    /// Internal pending work: a reduce's unprocessed interesting
    /// times, a join's deferred future-time outputs.
    pub pending: usize,
    /// Steps whose shards ran as pool tasks.
    pub shard_dispatched: u64,
    /// Steps that stayed inline because the batch was below the
    /// dispatch threshold while multiple workers were configured
    /// (the adaptive serial fallback firing).
    pub shard_inlined: u64,
    /// Trace records currently held per key shard (indexes
    /// `0..`[`crate::util::NUM_SHARDS`]) — the shard balance.
    pub shard_records: [usize; crate::util::NUM_SHARDS],
}

/// Shared, build-time mutable graph state. Collections hold a weak
/// reference so combinator methods can register operators.
pub(crate) struct GraphState {
    /// Stack of node lists: index 0 is the top level; an entry is pushed
    /// while an `iterate` scope is being built.
    stacks: Vec<Vec<Box<dyn OpNode>>>,
    /// Shared dirty-set scheduler; slots are allocated here as nodes
    /// register.
    sched: Rc<Scheduler>,
}

impl GraphState {
    fn new() -> Self {
        GraphState { stacks: vec![Vec::new()], sched: Scheduler::new() }
    }

    pub fn register(&mut self, mut node: Box<dyn OpNode>) {
        let slot = self.sched.alloc();
        node.bind(slot, &self.sched);
        self.stacks.last_mut().expect("graph has no scope").push(node);
    }

    pub fn push_scope(&mut self) {
        assert!(self.stacks.len() == 1, "nested iterate scopes are not supported");
        self.stacks.push(Vec::new());
    }

    pub fn pop_scope(&mut self) -> Vec<Box<dyn OpNode>> {
        assert!(self.stacks.len() > 1, "pop_scope without push_scope");
        self.stacks.pop().expect("scope stack empty")
    }

    pub fn in_scope(&self) -> bool {
        self.stacks.len() > 1
    }
}

/// When threshold-triggered compaction fires on an operator's traces.
///
/// Compacting once per round keeps resident memory minimal but pays the
/// full spine-merge cost on every change; never compacting lets the
/// recent layer grow without bound under sustained churn. The policy
/// compacts an operator only when its recent layer both exceeds
/// `min_recent` records (small spines are never worth a merge) and has
/// grown past `ratio` × the consolidated base layer — the point where
/// lookups degrade and the merge amortizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactionPolicy {
    /// Compact when `recent > ratio * base`.
    pub ratio: f64,
    /// Never compact an operator whose recent layer is below this.
    pub min_recent: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { ratio: 0.5, min_recent: 4096 }
    }
}

impl CompactionPolicy {
    /// Whether an operator with `(base, recent)` trace records is due.
    pub fn due(&self, base: usize, recent: usize) -> bool {
        recent >= self.min_recent && recent as f64 > self.ratio * base as f64
    }
}

/// Statistics for one `advance` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// The epoch that was just computed.
    pub epoch: u64,
    /// Records processed during this epoch (work measure).
    pub records: u64,
}

/// A single-threaded differential dataflow instance.
///
/// Build the graph with [`Dataflow::input`] and the combinators on
/// [`crate::Collection`], then feed changes through the input handles
/// and call [`Dataflow::advance`] once per batch of changes. Each
/// `advance` incrementally brings every derived collection (and
/// [`crate::OutputHandle`]) up to date.
pub struct Dataflow {
    state: Rc<RefCell<GraphState>>,
    epoch: u64,
    work_baseline: u64,
    telemetry: Option<EngineTelemetry>,
}

/// Telemetry handles plus the per-operator work baselines needed to
/// turn cumulative `work()` readings into per-epoch deltas.
struct EngineTelemetry {
    registry: Telemetry,
    queue_depth: rc_telemetry::Histogram,
    pending_times: rc_telemetry::Gauge,
    trace_records: rc_telemetry::Gauge,
    trace_base_records: rc_telemetry::Gauge,
    trace_recent_records: rc_telemetry::Gauge,
    compact_before: rc_telemetry::Counter,
    compact_after: rc_telemetry::Counter,
    epochs: rc_telemetry::Counter,
    records: rc_telemetry::Counter,
    steps_run: rc_telemetry::Counter,
    steps_skipped: rc_telemetry::Counter,
    work_by_op: BTreeMap<&'static str, u64>,
    /// Last-seen cumulative scheduler counters (for per-epoch deltas).
    sched_baseline: (u64, u64),
    /// Shard metrics, registered lazily on first activity so serial
    /// runs (which never dispatch or inline) carry no new keys and the
    /// committed gate baselines stay byte-identical.
    shard_dispatches: Option<rc_telemetry::Counter>,
    small_tasks_inlined: Option<rc_telemetry::Counter>,
    shard_records: Option<Vec<rc_telemetry::Gauge>>,
    shard_dispatched_seen: u64,
    shard_inlined_seen: u64,
    /// Threshold-compaction metrics, registered lazily on the first
    /// adaptive trigger so runs that never cross a threshold carry no
    /// `compact.trigger.*` keys.
    compact_trigger: Option<CompactTriggerMetrics>,
}

/// Counters describing adaptive (threshold-triggered) compactions.
struct CompactTriggerMetrics {
    fired: rc_telemetry::Counter,
    records_before: rc_telemetry::Counter,
    records_after: rc_telemetry::Counter,
}

impl EngineTelemetry {
    fn new(registry: Telemetry) -> Self {
        EngineTelemetry {
            queue_depth: registry.histogram("dataflow.queue_depth"),
            pending_times: registry.gauge("dataflow.reduce.pending_times"),
            trace_records: registry.gauge("dataflow.trace_records"),
            trace_base_records: registry.gauge("dataflow.trace.base_records"),
            trace_recent_records: registry.gauge("dataflow.trace.recent_records"),
            compact_before: registry.counter("dataflow.compact.records_before"),
            compact_after: registry.counter("dataflow.compact.records_after"),
            epochs: registry.counter("dataflow.epochs"),
            records: registry.counter("dataflow.records"),
            steps_run: registry.counter("dataflow.sched.steps_run"),
            steps_skipped: registry.counter("dataflow.sched.steps_skipped"),
            work_by_op: BTreeMap::new(),
            sched_baseline: (0, 0),
            shard_dispatches: None,
            small_tasks_inlined: None,
            shard_records: None,
            shard_dispatched_seen: 0,
            shard_inlined_seen: 0,
            compact_trigger: None,
            registry,
        }
    }

    /// Record one completed epoch from the aggregated operator stats.
    fn record_epoch(
        &mut self,
        stats: &BTreeMap<&'static str, OpStats>,
        records: u64,
        sched: &Scheduler,
    ) {
        self.epochs.incr();
        self.records.add(records);
        for (name, s) in stats {
            let baseline = self.work_by_op.entry(name).or_insert(0);
            if s.work > *baseline {
                self.registry.counter(&format!("dataflow.work.{name}")).add(s.work - *baseline);
            }
            *baseline = s.work;
        }
        self.pending_times
            .set(stats.get("reduce").map(|s| s.pending).unwrap_or(0) as i64);
        self.trace_records.set(stats.values().map(|s| s.trace_records).sum::<usize>() as i64);
        self.trace_base_records
            .set(stats.values().map(|s| s.trace_base_records).sum::<usize>() as i64);
        self.trace_recent_records
            .set(stats.values().map(|s| s.trace_recent_records).sum::<usize>() as i64);
        let (run, skipped) = sched.step_counts();
        self.steps_run.add(run - self.sched_baseline.0);
        self.steps_skipped.add(skipped - self.sched_baseline.1);
        self.sched_baseline = (run, skipped);

        // Shard activity: register on first use only, so serial runs
        // leave the snapshot's key set untouched.
        let dispatched: u64 = stats.values().map(|s| s.shard_dispatched).sum();
        if dispatched > self.shard_dispatched_seen {
            self.shard_dispatches
                .get_or_insert_with(|| self.registry.counter("dataflow.shard.dispatches"))
                .add(dispatched - self.shard_dispatched_seen);
            self.shard_dispatched_seen = dispatched;
        }
        let inlined: u64 = stats.values().map(|s| s.shard_inlined).sum();
        if inlined > self.shard_inlined_seen {
            self.small_tasks_inlined
                .get_or_insert_with(|| self.registry.counter("par.small_tasks_inlined"))
                .add(inlined - self.shard_inlined_seen);
            self.shard_inlined_seen = inlined;
        }
        if dispatched > 0 {
            let mut per = [0usize; crate::util::NUM_SHARDS];
            for s in stats.values() {
                for (acc, n) in per.iter_mut().zip(s.shard_records) {
                    *acc += n;
                }
            }
            let gauges = self.shard_records.get_or_insert_with(|| {
                (0..crate::util::NUM_SHARDS)
                    .map(|i| self.registry.gauge(&format!("dataflow.shard.records.{i}")))
                    .collect()
            });
            for (g, n) in gauges.iter().zip(per) {
                g.set(n as i64);
            }
        }
    }
}

impl Default for Dataflow {
    fn default() -> Self {
        Self::new()
    }
}

impl Dataflow {
    /// Create an empty dataflow.
    pub fn new() -> Self {
        Dataflow {
            state: Rc::new(RefCell::new(GraphState::new())),
            epoch: 0,
            work_baseline: 0,
            telemetry: None,
        }
    }

    /// Attach a telemetry registry. Every subsequent [`Dataflow::advance`]
    /// records per-operator work (`dataflow.work.<op>`), queue depths,
    /// reduce pending-times sizes, trace spine sizes and scheduler
    /// decisions; [`Dataflow::compact`] records trace record counts
    /// before and after compaction.
    pub fn set_telemetry(&mut self, registry: Telemetry) {
        self.telemetry = Some(EngineTelemetry::new(registry));
    }

    /// Pin (or with `None` unpin) the worker count the stateful
    /// operators dispatch their key shards at. Unpinned, dispatch
    /// follows the process-wide [`rc_par::threads`] resolution. Any
    /// worker count — including 1 — produces byte-identical batches,
    /// traces and outputs; the count changes speed only.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.state.borrow().sched.set_threads(threads);
    }

    /// Per-operator-name statistics aggregated over the whole graph,
    /// including operators inside `iterate` scopes.
    pub fn op_stats(&self) -> BTreeMap<&'static str, OpStats> {
        let mut acc = BTreeMap::new();
        for node in self.state.borrow().stacks[0].iter() {
            node.collect_stats(&mut acc);
        }
        acc
    }

    pub(crate) fn state(&self) -> &Rc<RefCell<GraphState>> {
        &self.state
    }

    /// The last completed epoch (0 before any `advance`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative scheduler decisions: `(steps_run, steps_skipped)`.
    pub fn sched_counts(&self) -> (u64, u64) {
        self.state.borrow().sched.step_counts()
    }

    /// Run one epoch: all changes pushed into input handles since the
    /// previous `advance` take effect atomically, and all derived state
    /// is updated incrementally. Only nodes that are dirty (received
    /// input) or hold internal pending work are stepped.
    pub fn advance(&mut self) -> Result<EpochStats, EvalError> {
        self.epoch += 1;
        let now = Time::new(self.epoch, 0);
        let mut st = self.state.borrow_mut();
        assert!(!st.in_scope(), "advance called while an iterate scope is still being built");
        let sched = Rc::clone(&st.sched);
        let nodes = &mut st.stacks[0];
        if let Some(tel) = &self.telemetry {
            let mut stats = BTreeMap::new();
            for node in nodes.iter() {
                node.collect_stats(&mut stats);
            }
            tel.queue_depth.record(stats.values().map(|s| s.queued).sum::<usize>() as u64);
        }
        for node in nodes.iter_mut() {
            let run = sched.take(node.slot()) || node.has_internal_work();
            if run {
                node.step(now)?;
            }
            sched.count(run);
        }
        for node in nodes.iter_mut() {
            node.end_epoch(self.epoch);
        }
        let total: u64 = nodes.iter().map(|n| n.work()).sum();
        let records = total - self.work_baseline;
        self.work_baseline = total;
        if let Some(tel) = &mut self.telemetry {
            let mut stats = BTreeMap::new();
            for node in nodes.iter() {
                node.collect_stats(&mut stats);
            }
            tel.record_epoch(&stats, records, &sched);
        }
        Ok(EpochStats { epoch: self.epoch, records })
    }

    /// Cumulative records processed across all epochs.
    pub fn total_work(&self) -> u64 {
        self.state.borrow().stacks[0].iter().map(|n| n.work()).sum()
    }

    /// Compact all operator state below the current epoch. Sound only
    /// between `advance` calls (which is the only time it can be
    /// called, given `&mut self`).
    pub fn compact(&mut self) {
        let mut st = self.state.borrow_mut();
        let frontier = self.epoch;
        let trace_records = |nodes: &[Box<dyn OpNode>]| {
            let mut stats = BTreeMap::new();
            for node in nodes {
                node.collect_stats(&mut stats);
            }
            stats.values().map(|s| s.trace_records).sum::<usize>() as u64
        };
        let before = self.telemetry.as_ref().map(|_| trace_records(&st.stacks[0]));
        for node in st.stacks[0].iter_mut() {
            node.compact(frontier);
        }
        if let Some(tel) = &self.telemetry {
            tel.compact_before.add(before.unwrap_or(0));
            let after = trace_records(&st.stacks[0]);
            tel.compact_after.add(after);
            tel.trace_records.set(after as i64);
        }
    }

    /// Records currently retained across all operator trace spines
    /// (base + recent layers, including operators inside scopes).
    pub fn trace_records(&self) -> usize {
        self.state.borrow().stacks[0]
            .iter()
            .map(|n| {
                let (base, recent) = n.trace_sizes();
                base + recent
            })
            .sum()
    }

    /// Compact only the operators whose trace spines have crossed the
    /// policy's recent-vs-base threshold, leaving small or already
    /// consolidated traces untouched. Returns the number of operators
    /// compacted. Sound between `advance` calls, like
    /// [`Dataflow::compact`].
    ///
    /// Telemetry: the first trigger registers `compact.trigger.fired` /
    /// `compact.trigger.records_before` / `compact.trigger.records_after`;
    /// runs where no threshold is ever crossed carry none of these keys.
    pub fn compact_adaptive(&mut self, policy: &CompactionPolicy) -> usize {
        let mut st = self.state.borrow_mut();
        let frontier = self.epoch;
        let mut fired = 0usize;
        let mut before = 0u64;
        let mut after = 0u64;
        for node in st.stacks[0].iter_mut() {
            let (base, recent) = node.trace_sizes();
            if !policy.due(base, recent) {
                continue;
            }
            fired += 1;
            before += (base + recent) as u64;
            node.compact(frontier);
            let (b, r) = node.trace_sizes();
            after += (b + r) as u64;
        }
        if fired > 0 {
            if let Some(tel) = &mut self.telemetry {
                let m = tel.compact_trigger.get_or_insert_with(|| CompactTriggerMetrics {
                    fired: tel.registry.counter("compact.trigger.fired"),
                    records_before: tel.registry.counter("compact.trigger.records_before"),
                    records_after: tel.registry.counter("compact.trigger.records_after"),
                });
                m.fired.add(fired as u64);
                m.records_before.add(before);
                m.records_after.add(after);
            }
        }
        fired
    }
}
