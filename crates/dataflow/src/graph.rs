//! Dataflow graph plumbing: edges, node registry, and the epoch driver.
//!
//! The engine is single-threaded and epoch-synchronous. Nodes are stored
//! in creation order, which is a topological order of the (acyclic,
//! feedback-excepted) graph, so one pass per logical time suffices:
//! every producer runs before its consumers.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rc_telemetry::Telemetry;

use crate::delta::{Data, Delta};
use crate::error::EvalError;
use crate::time::Time;

/// A typed edge: producers push difference records, the (single)
/// consumer drains them on its step.
pub(crate) type Queue<D> = Rc<RefCell<Vec<Delta<D>>>>;

pub(crate) fn new_queue<D: Data>() -> Queue<D> {
    Rc::new(RefCell::new(Vec::new()))
}

/// The produce side of a collection: a list of subscriber queues.
/// Subscribing after creation is allowed (used to close feedback loops).
pub(crate) struct Fanout<D: Data> {
    subscribers: Rc<RefCell<Vec<Queue<D>>>>,
}

impl<D: Data> Clone for Fanout<D> {
    fn clone(&self) -> Self {
        Fanout { subscribers: Rc::clone(&self.subscribers) }
    }
}

impl<D: Data> Fanout<D> {
    pub fn new() -> Self {
        Fanout { subscribers: Rc::new(RefCell::new(Vec::new())) }
    }

    /// Add a subscriber and return its queue.
    pub fn subscribe(&self) -> Queue<D> {
        let q = new_queue();
        self.subscribers.borrow_mut().push(Rc::clone(&q));
        q
    }

    /// Attach an existing queue (used to wire a loop variable's feedback
    /// edge after the loop body has been built).
    pub fn attach(&self, q: &Queue<D>) {
        self.subscribers.borrow_mut().push(Rc::clone(q));
    }

    /// Push a batch to every subscriber.
    pub fn emit(&self, batch: &[Delta<D>]) {
        if batch.is_empty() {
            return;
        }
        let subs = self.subscribers.borrow();
        match subs.as_slice() {
            [] => {}
            [only] => only.borrow_mut().extend_from_slice(batch),
            many => {
                for q in many {
                    q.borrow_mut().extend_from_slice(batch);
                }
            }
        }
    }
}

/// The behaviour every operator implements. `step` is called once per
/// logical time; between steps, upstream operators have already pushed
/// everything at times `≤ now` into this operator's input queues.
pub(crate) trait OpNode {
    /// Process queued input at logical time `now`, emitting outputs.
    fn step(&mut self, now: Time) -> Result<(), EvalError>;

    /// Whether any input queue holds unprocessed records.
    fn has_queued(&self) -> bool;

    /// The smallest iteration of `epoch` at which this operator holds
    /// internal pending work (deferred emissions or unprocessed
    /// interesting times), if any. Drives loop scheduling: a fixpoint
    /// scope may not terminate while some operator still owes
    /// corrections at a future iteration.
    fn pending_iter(&self, epoch: u64) -> Option<u32>;

    /// Called by an enclosing scope after its fixpoint loop completes
    /// for `epoch`. Used by egress nodes to release consolidated output.
    fn flush_scope(&mut self, _epoch: u64) {}

    /// Called once per epoch after all processing; checks invariants.
    fn end_epoch(&mut self, epoch: u64);

    /// Fold history at epochs `≤ frontier` down to epoch 0.
    fn compact(&mut self, frontier: u64);

    /// Cumulative count of records processed (a machine-independent
    /// work measure reported by the benchmarks).
    fn work(&self) -> u64;

    /// An order-insensitive digest of the differences this operator
    /// emitted during its most recent `step`, or `None` when it emitted
    /// nothing. Only the feedback (`delay`) operator implements this —
    /// the loop variable's delta stream determines the loop state, so
    /// recurring digests reveal oscillation.
    fn step_digest(&self) -> Option<u64> {
        None
    }

    /// Accumulate this operator's statistics into `acc`, keyed by
    /// operator name. The default reports cumulative work only;
    /// stateful operators add queue depth, trace size and pending
    /// internal work, and containers (the iterate scope) recurse into
    /// their children instead of reporting an aggregate.
    fn collect_stats(&self, acc: &mut BTreeMap<&'static str, OpStats>) {
        acc.entry(self.name()).or_default().work += self.work();
    }

    /// Operator name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Per-operator-name statistics aggregated over the whole graph
/// (including operators inside `iterate` scopes). See
/// [`Dataflow::op_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Cumulative records processed.
    pub work: u64,
    /// Records currently sitting in input queues.
    pub queued: usize,
    /// Difference records held in keyed traces.
    pub trace_records: usize,
    /// Internal pending work: a reduce's unprocessed interesting
    /// times, a join's deferred future-time outputs.
    pub pending: usize,
}

/// Shared, build-time mutable graph state. Collections hold a weak
/// reference so combinator methods can register operators.
pub(crate) struct GraphState {
    /// Stack of node lists: index 0 is the top level; an entry is pushed
    /// while an `iterate` scope is being built.
    stacks: Vec<Vec<Box<dyn OpNode>>>,
}

impl GraphState {
    fn new() -> Self {
        GraphState { stacks: vec![Vec::new()] }
    }

    pub fn register(&mut self, node: Box<dyn OpNode>) {
        self.stacks.last_mut().expect("graph has no scope").push(node);
    }

    pub fn push_scope(&mut self) {
        assert!(self.stacks.len() == 1, "nested iterate scopes are not supported");
        self.stacks.push(Vec::new());
    }

    pub fn pop_scope(&mut self) -> Vec<Box<dyn OpNode>> {
        assert!(self.stacks.len() > 1, "pop_scope without push_scope");
        self.stacks.pop().expect("scope stack empty")
    }

    pub fn in_scope(&self) -> bool {
        self.stacks.len() > 1
    }
}

/// Statistics for one `advance` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// The epoch that was just computed.
    pub epoch: u64,
    /// Records processed during this epoch (work measure).
    pub records: u64,
}

/// A single-threaded differential dataflow instance.
///
/// Build the graph with [`Dataflow::input`] and the combinators on
/// [`crate::Collection`], then feed changes through the input handles
/// and call [`Dataflow::advance`] once per batch of changes. Each
/// `advance` incrementally brings every derived collection (and
/// [`crate::OutputHandle`]) up to date.
pub struct Dataflow {
    state: Rc<RefCell<GraphState>>,
    epoch: u64,
    work_baseline: u64,
    telemetry: Option<EngineTelemetry>,
}

/// Telemetry handles plus the per-operator work baselines needed to
/// turn cumulative `work()` readings into per-epoch deltas.
struct EngineTelemetry {
    registry: Telemetry,
    queue_depth: rc_telemetry::Histogram,
    pending_times: rc_telemetry::Gauge,
    trace_records: rc_telemetry::Gauge,
    compact_before: rc_telemetry::Counter,
    compact_after: rc_telemetry::Counter,
    epochs: rc_telemetry::Counter,
    records: rc_telemetry::Counter,
    work_by_op: BTreeMap<&'static str, u64>,
}

impl EngineTelemetry {
    fn new(registry: Telemetry) -> Self {
        EngineTelemetry {
            queue_depth: registry.histogram("dataflow.queue_depth"),
            pending_times: registry.gauge("dataflow.reduce.pending_times"),
            trace_records: registry.gauge("dataflow.trace_records"),
            compact_before: registry.counter("dataflow.compact.records_before"),
            compact_after: registry.counter("dataflow.compact.records_after"),
            epochs: registry.counter("dataflow.epochs"),
            records: registry.counter("dataflow.records"),
            work_by_op: BTreeMap::new(),
            registry,
        }
    }

    /// Record one completed epoch from the aggregated operator stats.
    fn record_epoch(&mut self, stats: &BTreeMap<&'static str, OpStats>, records: u64) {
        self.epochs.incr();
        self.records.add(records);
        for (name, s) in stats {
            let baseline = self.work_by_op.entry(name).or_insert(0);
            if s.work > *baseline {
                self.registry.counter(&format!("dataflow.work.{name}")).add(s.work - *baseline);
            }
            *baseline = s.work;
        }
        self.pending_times
            .set(stats.get("reduce").map(|s| s.pending).unwrap_or(0) as i64);
        self.trace_records.set(stats.values().map(|s| s.trace_records).sum::<usize>() as i64);
    }
}

impl Default for Dataflow {
    fn default() -> Self {
        Self::new()
    }
}

impl Dataflow {
    /// Create an empty dataflow.
    pub fn new() -> Self {
        Dataflow {
            state: Rc::new(RefCell::new(GraphState::new())),
            epoch: 0,
            work_baseline: 0,
            telemetry: None,
        }
    }

    /// Attach a telemetry registry. Every subsequent [`Dataflow::advance`]
    /// records per-operator work (`dataflow.work.<op>`), queue depths,
    /// reduce pending-times sizes and trace sizes; [`Dataflow::compact`]
    /// records trace record counts before and after compaction.
    pub fn set_telemetry(&mut self, registry: Telemetry) {
        self.telemetry = Some(EngineTelemetry::new(registry));
    }

    /// Per-operator-name statistics aggregated over the whole graph,
    /// including operators inside `iterate` scopes.
    pub fn op_stats(&self) -> BTreeMap<&'static str, OpStats> {
        let mut acc = BTreeMap::new();
        for node in self.state.borrow().stacks[0].iter() {
            node.collect_stats(&mut acc);
        }
        acc
    }

    pub(crate) fn state(&self) -> &Rc<RefCell<GraphState>> {
        &self.state
    }

    /// The last completed epoch (0 before any `advance`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Run one epoch: all changes pushed into input handles since the
    /// previous `advance` take effect atomically, and all derived state
    /// is updated incrementally.
    pub fn advance(&mut self) -> Result<EpochStats, EvalError> {
        self.epoch += 1;
        let now = Time::new(self.epoch, 0);
        let mut st = self.state.borrow_mut();
        assert!(!st.in_scope(), "advance called while an iterate scope is still being built");
        let nodes = &mut st.stacks[0];
        if let Some(tel) = &self.telemetry {
            let mut stats = BTreeMap::new();
            for node in nodes.iter() {
                node.collect_stats(&mut stats);
            }
            tel.queue_depth.record(stats.values().map(|s| s.queued).sum::<usize>() as u64);
        }
        for node in nodes.iter_mut() {
            node.step(now)?;
        }
        for node in nodes.iter_mut() {
            node.end_epoch(self.epoch);
        }
        let total: u64 = nodes.iter().map(|n| n.work()).sum();
        let records = total - self.work_baseline;
        self.work_baseline = total;
        if let Some(tel) = &mut self.telemetry {
            let mut stats = BTreeMap::new();
            for node in nodes.iter() {
                node.collect_stats(&mut stats);
            }
            tel.record_epoch(&stats, records);
        }
        Ok(EpochStats { epoch: self.epoch, records })
    }

    /// Cumulative records processed across all epochs.
    pub fn total_work(&self) -> u64 {
        self.state.borrow().stacks[0].iter().map(|n| n.work()).sum()
    }

    /// Compact all operator state below the current epoch. Sound only
    /// between `advance` calls (which is the only time it can be
    /// called, given `&mut self`).
    pub fn compact(&mut self) {
        let mut st = self.state.borrow_mut();
        let frontier = self.epoch;
        let trace_records = |nodes: &[Box<dyn OpNode>]| {
            let mut stats = BTreeMap::new();
            for node in nodes {
                node.collect_stats(&mut stats);
            }
            stats.values().map(|s| s.trace_records).sum::<usize>() as u64
        };
        let before = self.telemetry.as_ref().map(|_| trace_records(&st.stacks[0]));
        for node in st.stacks[0].iter_mut() {
            node.compact(frontier);
        }
        if let Some(tel) = &self.telemetry {
            tel.compact_before.add(before.unwrap_or(0));
            let after = trace_records(&st.stacks[0]);
            tel.compact_after.add(after);
            tel.trace_records.set(after as i64);
        }
    }
}
