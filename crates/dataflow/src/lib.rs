//! A single-threaded differential computation engine.
//!
//! This crate reimplements the essential capability RealConfig borrows
//! from Differential Dataflow / Differential Datalog: write a
//! computation **once** as a declarative dataflow over collections, and
//! the engine maintains every derived collection **incrementally** as
//! inputs change — including through fixpoint iteration, which is what
//! routing-protocol convergence compiles to.
//!
//! # Model
//!
//! A [`Collection<D>`] is a multiset of records evolving over *epochs*.
//! Every change is a `(data, time, diff)` difference; times are
//! two-dimensional [`Time`] values `(epoch, iteration)` ordered by the
//! product partial order. Stateful operators ([`Collection::join`],
//! [`Collection::reduce`]) keep full difference traces and emit
//! corrections at time joins, which makes incremental updates to
//! iterative computations cost work proportional to what actually
//! changed — not to the size of the network.
//!
//! # Example: incremental reachability
//!
//! ```
//! use rc_dataflow::Dataflow;
//!
//! let mut df = Dataflow::new();
//! let (edges_in, edges) = df.input::<(u32, u32)>();
//! // reach = edges ∪ { (x, z) | (x, y) ∈ reach, (y, z) ∈ edges }
//! let reach = edges.iterate(|inner| {
//!     let step = inner
//!         .map(|(x, y)| (y, x))
//!         .join(&edges.map(|(y, z)| (y, z)))
//!         .map(|(_y, (x, z))| (x, z));
//!     inner.concat(&step).distinct()
//! });
//! let mut out = reach.output();
//!
//! edges_in.extend([(1, 2), (2, 3)]);
//! df.advance().unwrap();
//! out.drain();
//! assert!(out.contains(&(1, 3)));
//!
//! // Remove an edge: reachability is updated incrementally.
//! edges_in.remove((2, 3));
//! df.advance().unwrap();
//! out.drain();
//! assert!(!out.contains(&(1, 3)));
//! ```

mod collection;
mod delta;
mod error;
mod graph;
mod operators;
mod time;
pub mod trace;
pub mod util;

pub use collection::{Collection, DEFAULT_MAX_ITERS};
pub use delta::{consolidate, consolidate_values, Data, Delta, Diff};
pub use error::EvalError;
pub use graph::{CompactionPolicy, Dataflow, EpochStats, OpStats};
pub use operators::{InputHandle, OutputHandle};
pub use time::Time;
