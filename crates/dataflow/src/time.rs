//! Two-dimensional logical timestamps.
//!
//! A timestamp pairs a top-level **epoch** (one per input round) with an
//! **iteration** counter used inside `iterate` scopes. Timestamps are
//! ordered by the *product partial order* — `(e1, i1) ≤ (e2, i2)` iff
//! `e1 ≤ e2` and `i1 ≤ i2` — which is what lets the engine distinguish
//! "a change made in a later epoch" from "a change made in a later
//! iteration of the same fixpoint": a correction introduced at epoch 3,
//! iteration 1 must not be visible when accumulating state for epoch 4,
//! iteration 0.
//!
//! The derived `Ord` is the lexicographic order, a linear extension of
//! the partial order, used to process pending work in a valid sequence.

/// A product-lattice timestamp `(epoch, iter)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time {
    /// Top-level input round. Advanced by `Dataflow::advance`.
    pub epoch: u64,
    /// Iteration inside an `iterate` scope; always 0 outside scopes.
    pub iter: u32,
}

impl Time {
    /// Construct a timestamp.
    #[inline]
    pub fn new(epoch: u64, iter: u32) -> Self {
        Time { epoch, iter }
    }

    /// The product partial order: `self` happened no later than `other`
    /// in *both* dimensions.
    #[inline]
    pub fn leq(self, other: Time) -> bool {
        self.epoch <= other.epoch && self.iter <= other.iter
    }

    /// The least upper bound (componentwise max).
    #[inline]
    pub fn join(self, other: Time) -> Time {
        Time { epoch: self.epoch.max(other.epoch), iter: self.iter.max(other.iter) }
    }

    /// The greatest lower bound (componentwise min).
    #[inline]
    pub fn meet(self, other: Time) -> Time {
        Time { epoch: self.epoch.min(other.epoch), iter: self.iter.min(other.iter) }
    }

    /// Timestamp for the next iteration of the same epoch (feedback).
    #[inline]
    pub fn delayed(self) -> Time {
        Time { epoch: self.epoch, iter: self.iter + 1 }
    }

    /// Timestamp with the iteration component erased (loop egress).
    #[inline]
    pub fn outer(self) -> Time {
        Time { epoch: self.epoch, iter: 0 }
    }
}

impl std::fmt::Debug for Time {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.epoch, self.iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_order_is_product() {
        let a = Time::new(1, 5);
        let b = Time::new(2, 3);
        // Incomparable under the partial order...
        assert!(!a.leq(b));
        assert!(!b.leq(a));
        // ...but the lexicographic Ord linearizes them.
        assert!(a < b);
        assert!(a.leq(a));
        assert!(Time::new(1, 3).leq(b));
    }

    #[test]
    fn join_meet_lattice_laws() {
        let a = Time::new(1, 5);
        let b = Time::new(2, 3);
        let j = a.join(b);
        assert_eq!(j, Time::new(2, 5));
        assert!(a.leq(j) && b.leq(j));
        let m = a.meet(b);
        assert_eq!(m, Time::new(1, 3));
        assert!(m.leq(a) && m.leq(b));
        // Idempotence and commutativity.
        assert_eq!(a.join(a), a);
        assert_eq!(a.join(b), b.join(a));
        // Absorption.
        assert_eq!(a.join(a.meet(b)), a);
    }

    #[test]
    fn delayed_and_outer() {
        let t = Time::new(4, 7);
        assert_eq!(t.delayed(), Time::new(4, 8));
        assert_eq!(t.outer(), Time::new(4, 0));
        assert!(t.leq(t.delayed()));
    }
}
