//! Evaluation errors.

/// An error raised while advancing a dataflow epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// An `iterate` scope failed to reach a fixed point within its
    /// iteration cap. For control-plane models this is the signal the
    /// paper's §6 discusses: a routing protocol that does not converge
    /// (e.g., a BGP preference cycle) shows up as Datalog
    /// nontermination, which the engine surfaces instead of looping
    /// forever.
    Divergence {
        /// The cap that was exceeded.
        iterations: u32,
    },
    /// An `iterate` scope revisited a state it had already been in:
    /// the computation oscillates with a fixed period and will never
    /// converge. Detecting the recurrence reports the bug orders of
    /// magnitude sooner than waiting for the iteration cap (the
    /// paper's §6 "recurring state detection" future work).
    RecurringState {
        /// The oscillation period, in iterations.
        period: u32,
        /// The iteration at which the recurrence was confirmed.
        iteration: u32,
    },
    /// A deterministic fault injected through `rc_faults` (recovery
    /// testing). Raised *before* the engine ingests the epoch's input,
    /// so — unlike a genuine divergence — the dataflow state is still
    /// exactly what it was before the failed apply.
    InjectedFault,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Divergence { iterations } => write!(
                f,
                "iterative computation did not reach a fixed point within {iterations} iterations \
                 (divergent control plane?)"
            ),
            EvalError::RecurringState { period, iteration } => write!(
                f,
                "iterative computation revisited a previous state at iteration {iteration} \
                 (oscillation with period {period}) — the control plane cannot converge"
            ),
            EvalError::InjectedFault => {
                write!(f, "injected fault (deterministic fault-injection testing)")
            }
        }
    }
}

impl std::error::Error for EvalError {}
