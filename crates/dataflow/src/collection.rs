//! The user-facing collection handle and its combinators.

use std::cell::RefCell;
use std::rc::{Rc, Weak};

use crate::delta::{Data, Diff};
use crate::graph::{Dataflow, Fanout, GraphState, OpNode};
use crate::operators::concat::ConcatNode;
use crate::operators::delay::DelayNode;
use crate::operators::egress::EgressNode;
use crate::operators::input::{InputHandle, InputNode};
use crate::operators::join::JoinNode;
use crate::operators::linear::LinearNode;
use crate::operators::output::OutputHandle;
use crate::operators::reduce::ReduceNode;
use crate::operators::scope::ScopeNode;
use crate::time::Time;

/// Default iteration cap for [`Collection::iterate`]. Generous enough
/// for any converging control plane (iterations are bounded by network
/// diameter-ish quantities), small enough that a divergent model fails
/// fast.
pub const DEFAULT_MAX_ITERS: u32 = 10_000;

/// A handle to a dataflow collection — a multiset of `D` records that
/// evolves across epochs. Combinators build new derived collections;
/// all derivations are maintained incrementally.
pub struct Collection<D: Data> {
    graph: Weak<RefCell<GraphState>>,
    fanout: Fanout<D>,
}

impl<D: Data> Clone for Collection<D> {
    fn clone(&self) -> Self {
        Collection { graph: self.graph.clone(), fanout: self.fanout.clone() }
    }
}

impl Dataflow {
    /// Create an input collection and its client-side handle.
    pub fn input<D: Data>(&mut self) -> (InputHandle<D>, Collection<D>) {
        let fanout = Fanout::new();
        let (handle, node) = InputNode::new(fanout.clone());
        self.state().borrow_mut().register(Box::new(node));
        (handle, Collection { graph: Rc::downgrade(self.state()), fanout })
    }
}

impl<D: Data> Collection<D> {
    fn graph(&self) -> Rc<RefCell<GraphState>> {
        self.graph.upgrade().expect("dataflow was dropped while building")
    }

    fn register(&self, node: Box<dyn OpNode>) {
        self.graph().borrow_mut().register(node);
    }

    fn derived<E: Data>(&self, fanout: Fanout<E>) -> Collection<E> {
        Collection { graph: self.graph.clone(), fanout }
    }

    /// Apply `f` to every record.
    pub fn map<E: Data, F: Fn(D) -> E + 'static>(&self, f: F) -> Collection<E> {
        let out = Fanout::new();
        let node = LinearNode::new(
            "map",
            self.fanout.subscribe(),
            out.clone(),
            Box::new(move |d, t, r, staging| staging.push((f(d), t, r))),
        );
        self.register(Box::new(node));
        self.derived(out)
    }

    /// Apply `f` to every record, emitting any number of outputs.
    pub fn flat_map<E: Data, I, F>(&self, f: F) -> Collection<E>
    where
        I: IntoIterator<Item = E>,
        F: Fn(D) -> I + 'static,
    {
        let out = Fanout::new();
        let node = LinearNode::new(
            "flat_map",
            self.fanout.subscribe(),
            out.clone(),
            Box::new(move |d, t, r, staging| {
                for e in f(d) {
                    staging.push((e, t, r));
                }
            }),
        );
        self.register(Box::new(node));
        self.derived(out)
    }

    /// Keep records satisfying `f`.
    pub fn filter<F: Fn(&D) -> bool + 'static>(&self, f: F) -> Collection<D> {
        let out = Fanout::new();
        let node = LinearNode::new(
            "filter",
            self.fanout.subscribe(),
            out.clone(),
            Box::new(move |d: D, t, r, staging: &mut Vec<(D, Time, Diff)>| {
                if f(&d) {
                    staging.push((d, t, r));
                }
            }),
        );
        self.register(Box::new(node));
        self.derived(out)
    }

    /// Multiset union.
    pub fn concat(&self, other: &Collection<D>) -> Collection<D> {
        let out = Fanout::new();
        let node =
            ConcatNode::new(vec![self.fanout.subscribe(), other.fanout.subscribe()], out.clone());
        self.register(Box::new(node));
        self.derived(out)
    }

    /// Multiset union of several collections.
    pub fn concat_many(&self, others: &[&Collection<D>]) -> Collection<D> {
        let out = Fanout::new();
        let mut inputs = vec![self.fanout.subscribe()];
        inputs.extend(others.iter().map(|c| c.fanout.subscribe()));
        let node = ConcatNode::new(inputs, out.clone());
        self.register(Box::new(node));
        self.derived(out)
    }

    /// Negate all multiplicities (for multiset subtraction via
    /// `a.concat(&b.negate())`).
    pub fn negate(&self) -> Collection<D> {
        let out = Fanout::new();
        let node = LinearNode::new(
            "negate",
            self.fanout.subscribe(),
            out.clone(),
            Box::new(move |d, t, r, staging| staging.push((d, t, -r))),
        );
        self.register(Box::new(node));
        self.derived(out)
    }

    /// Observe every difference flowing through (for debugging); the
    /// collection passes through unchanged.
    pub fn inspect<F: FnMut(&D, Time, Diff) + 'static>(&self, mut f: F) -> Collection<D> {
        let out = Fanout::new();
        let node = LinearNode::new(
            "inspect",
            self.fanout.subscribe(),
            out.clone(),
            Box::new(move |d: D, t, r, staging: &mut Vec<(D, Time, Diff)>| {
                f(&d, t, r);
                staging.push((d, t, r));
            }),
        );
        self.register(Box::new(node));
        self.derived(out)
    }

    /// Create a client-side observer of this collection.
    pub fn output(&self) -> OutputHandle<D> {
        OutputHandle::new(self.fanout.subscribe())
    }

    /// Reduce the collection to the set of distinct present records
    /// (multiplicity 1 each).
    pub fn distinct(&self) -> Collection<D> {
        self.map(|d| (d, ()))
            .reduce_named("distinct", |_, _| vec![((), 1)])
            .map(|(d, ())| d)
    }

    /// Fixpoint iteration: computes `x = body(body(... body(self)))`
    /// until `body` stops changing the collection, with the engine's
    /// default iteration cap. `self` is the initial value; `body` may
    /// freely capture and use other collections from the enclosing
    /// scope (they are treated as loop-invariant).
    pub fn iterate<F>(&self, body: F) -> Collection<D>
    where
        F: FnOnce(&Collection<D>) -> Collection<D>,
    {
        self.iterate_capped(DEFAULT_MAX_ITERS, body)
    }

    /// [`Collection::iterate`] with an explicit iteration cap. If the
    /// loop has not converged after `max_iters` iterations,
    /// [`crate::Dataflow::advance`] returns
    /// [`crate::EvalError::Divergence`].
    pub fn iterate_capped<F>(&self, max_iters: u32, body: F) -> Collection<D>
    where
        F: FnOnce(&Collection<D>) -> Collection<D>,
    {
        let graph = self.graph();
        graph.borrow_mut().push_scope();

        // Loop variable x satisfying: x at iteration 0 = self;
        // x at iteration i+1 = result at iteration i. Implemented as
        //   x = self ⊕ delay(result) ⊖ delay(self)
        // where `delay` re-timestamps to the next iteration. The
        // delay(result) node is created first (it must be stepped first
        // each iteration) and its input queue is wired after the body.
        let fed_out = Fanout::new();
        let result_queue = crate::graph::new_queue::<D>();
        {
            let node = DelayNode::new(Rc::clone(&result_queue), fed_out.clone());
            graph.borrow_mut().register(Box::new(node));
        }
        let fed = self.derived(fed_out);

        let delayed_self_out = Fanout::new();
        {
            let node = DelayNode::new(self.fanout.subscribe(), delayed_self_out.clone());
            graph.borrow_mut().register(Box::new(node));
        }
        let delayed_self = self.derived::<D>(delayed_self_out);

        let x = self.concat_many(&[&fed, &delayed_self.negate()]);
        let result = body(&x);

        // Close the feedback loop.
        result.fanout.attach(&result_queue);

        // Egress: hand the fixpoint back to the outer scope.
        let out = Fanout::new();
        {
            let node = EgressNode::new(result.fanout.subscribe(), out.clone());
            graph.borrow_mut().register(Box::new(node));
        }

        let children = graph.borrow_mut().pop_scope();
        graph.borrow_mut().register(Box::new(ScopeNode::new(children, max_iters)));
        self.derived(out)
    }
}

impl<K: Data, V: Data> Collection<(K, V)> {
    /// Equi-join on the key.
    pub fn join<W: Data>(&self, other: &Collection<(K, W)>) -> Collection<(K, (V, W))> {
        let out = Fanout::new();
        let node = JoinNode::new(self.fanout.subscribe(), other.fanout.subscribe(), out.clone());
        self.register(Box::new(node));
        self.derived(out)
    }

    /// Equi-join followed by a per-match map.
    pub fn join_map<W: Data, E: Data, F>(&self, other: &Collection<(K, W)>, f: F) -> Collection<E>
    where
        F: Fn(&K, &V, &W) -> E + 'static,
    {
        self.join(other).map(move |(k, (v, w))| f(&k, &v, &w))
    }

    /// Keep pairs whose key appears in `keys` (which is `distinct`ed
    /// internally, so multiplicities in `keys` do not scale the output).
    pub fn semijoin(&self, keys: &Collection<K>) -> Collection<(K, V)> {
        let keyed = keys.distinct().map(|k| (k, ()));
        self.join(&keyed).map(|(k, (v, ()))| (k, v))
    }

    /// Keep pairs whose key does *not* appear in `keys`.
    pub fn antijoin(&self, keys: &Collection<K>) -> Collection<(K, V)> {
        self.concat(&self.semijoin(keys).negate())
    }

    /// Group by key and apply `logic` to the consolidated value multiset
    /// whenever it changes. `logic` receives values sorted ascending
    /// with positive multiplicities, and must be deterministic.
    /// `Fn + Send + Sync` because the operator shards its keys across
    /// pool workers and evaluates `logic` concurrently.
    pub fn reduce<W: Data, F>(&self, logic: F) -> Collection<(K, W)>
    where
        F: Fn(&K, &[(V, Diff)]) -> Vec<(W, Diff)> + Send + Sync + 'static,
    {
        self.reduce_named("reduce", logic)
    }

    /// [`Collection::reduce`] with a diagnostic name.
    pub fn reduce_named<W: Data, F>(&self, name: &'static str, logic: F) -> Collection<(K, W)>
    where
        F: Fn(&K, &[(V, Diff)]) -> Vec<(W, Diff)> + Send + Sync + 'static,
    {
        let out = Fanout::new();
        let node =
            ReduceNode::new(name, self.fanout.subscribe(), out.clone(), std::sync::Arc::new(logic));
        self.register(Box::new(node));
        self.derived(out)
    }

    /// For each key, keep only the minimum value (by `Ord`).
    pub fn reduce_min(&self) -> Collection<(K, V)> {
        self.reduce_named("min", |_, vals| vec![(vals[0].0.clone(), 1)])
    }

    /// For each key, keep only the maximum value (by `Ord`).
    pub fn reduce_max(&self) -> Collection<(K, V)> {
        self.reduce_named("max", |_, vals| vec![(vals.last().expect("nonempty").0.clone(), 1)])
    }

    /// For each key, the number of values (with multiplicity).
    pub fn count(&self) -> Collection<(K, isize)> {
        self.reduce_named("count", |_, vals| vec![(vals.iter().map(|(_, r)| *r).sum(), 1)])
    }

    /// For each key, the `k` smallest values (each with multiplicity 1).
    pub fn top_k_min(&self, k: usize) -> Collection<(K, V)> {
        self.reduce_named("top_k_min", move |_, vals| {
            vals.iter().take(k).map(|(v, _)| (v.clone(), 1)).collect()
        })
    }
}
