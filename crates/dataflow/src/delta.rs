//! Difference (multiset-change) utilities.
//!
//! Every record flowing through the engine is a `(data, time, diff)`
//! triple; `diff` is a signed multiplicity change. Collections are the
//! accumulation of their difference history.

use crate::time::Time;

/// Signed multiplicity change.
pub type Diff = isize;

/// A timestamped difference record.
pub type Delta<D> = (D, Time, Diff);

/// The `Data` bound required of everything flowing through a dataflow:
/// cheap to clone, totally ordered (for consolidation), hashable (for
/// keyed state), owned, and sendable (stateful operators shard their
/// keyed traces across pool workers).
pub trait Data: Clone + Ord + std::hash::Hash + std::fmt::Debug + Send + 'static {}
impl<T: Clone + Ord + std::hash::Hash + std::fmt::Debug + Send + 'static> Data for T {}

/// Sum the diffs of equal `(data, time)` pairs and drop zeros, in place.
pub fn consolidate<D: Data>(deltas: &mut Vec<Delta<D>>) {
    if deltas.len() <= 1 {
        deltas.retain(|(_, _, r)| *r != 0);
        return;
    }
    deltas.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    let mut write = 0;
    let mut read = 0;
    while read < deltas.len() {
        let mut run_end = read + 1;
        let mut sum = deltas[read].2;
        while run_end < deltas.len()
            && deltas[run_end].0 == deltas[read].0
            && deltas[run_end].1 == deltas[read].1
        {
            sum += deltas[run_end].2;
            run_end += 1;
        }
        if sum != 0 {
            deltas.swap(write, read);
            deltas[write].2 = sum;
            write += 1;
        }
        read = run_end;
    }
    deltas.truncate(write);
}

/// Sum the diffs of equal values (ignoring time) and drop zeros, in
/// place. Used for accumulated views.
pub fn consolidate_values<D: Data>(values: &mut Vec<(D, Diff)>) {
    if values.len() <= 1 {
        values.retain(|(_, r)| *r != 0);
        return;
    }
    values.sort_by(|a, b| a.0.cmp(&b.0));
    let mut write = 0;
    let mut read = 0;
    while read < values.len() {
        let mut run_end = read + 1;
        let mut sum = values[read].1;
        while run_end < values.len() && values[run_end].0 == values[read].0 {
            sum += values[run_end].1;
            run_end += 1;
        }
        if sum != 0 {
            values.swap(write, read);
            values[write].1 = sum;
            write += 1;
        }
        read = run_end;
    }
    values.truncate(write);
}

/// Multiset difference of two consolidated, sorted `(value, count)`
/// lists: `a ⊖ b`. Both inputs must be sorted by value with no
/// duplicates; the output is likewise.
pub fn value_delta<D: Data>(a: &[(D, Diff)], b: &[(D, Diff)]) -> Vec<(D, Diff)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => match x.0.cmp(&y.0) {
                std::cmp::Ordering::Less => {
                    out.push(x.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((y.0.clone(), -y.1));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if x.1 != y.1 {
                        out.push((x.0.clone(), x.1 - y.1));
                    }
                    i += 1;
                    j += 1;
                }
            },
            (Some(x), None) => {
                out.push(x.clone());
                i += 1;
            }
            (None, Some(y)) => {
                out.push((y.0.clone(), -y.1));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(e: u64) -> Time {
        Time::new(e, 0)
    }

    #[test]
    fn consolidate_merges_and_drops_zeros() {
        let mut v = vec![("a", t(1), 2), ("b", t(1), 1), ("a", t(1), -2), ("b", t(2), 1)];
        consolidate(&mut v);
        assert_eq!(v, vec![("b", t(1), 1), ("b", t(2), 1)]);
    }

    #[test]
    fn consolidate_keeps_distinct_times() {
        let mut v = vec![("a", t(1), 1), ("a", t(2), -1)];
        consolidate(&mut v);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn consolidate_values_ignores_time() {
        let mut v = vec![("a", 1), ("a", -1), ("b", 3)];
        consolidate_values(&mut v);
        assert_eq!(v, vec![("b", 3)]);
    }

    #[test]
    fn value_delta_subtracts() {
        let a = vec![("a", 1), ("b", 2)];
        let b = vec![("b", 1), ("c", 1)];
        assert_eq!(value_delta(&a, &b), vec![("a", 1), ("b", 1), ("c", -1)]);
        assert_eq!(value_delta(&a, &a), vec![]);
        assert_eq!(value_delta(&[], &b), vec![("b", -1), ("c", -1)]);
    }
}
