//! The differential binary equi-join.
//!
//! `join` maintains a full keyed trace of both inputs. A new difference
//! on either side is matched against the *entire history* of the other
//! side; each match `(dA at t1) × (B at t2)` contributes output at
//! `t1 ∨ t2`. The join of an in-loop time with a historical time can lie
//! at a *future* iteration of the current epoch — those contributions
//! are deferred and surfaced through `pending_iter`, which forces the
//! enclosing loop to revisit exactly the affected iterations.

use std::rc::Rc;

use crate::delta::{consolidate, Data, Delta};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue, Scheduler, UNBOUND};
use crate::time::Time;
use crate::trace::KeyTrace;

pub(crate) struct JoinNode<K: Data, V: Data, W: Data> {
    slot: usize,
    in_a: Queue<(K, V)>,
    in_b: Queue<(K, W)>,
    trace_a: KeyTrace<K, V>,
    trace_b: KeyTrace<K, W>,
    deferred: Vec<Delta<(K, (V, W))>>,
    output: Fanout<(K, (V, W))>,
    work: u64,
}

impl<K: Data, V: Data, W: Data> JoinNode<K, V, W> {
    pub fn new(in_a: Queue<(K, V)>, in_b: Queue<(K, W)>, output: Fanout<(K, (V, W))>) -> Self {
        JoinNode {
            slot: UNBOUND,
            in_a,
            in_b,
            trace_a: KeyTrace::new(),
            trace_b: KeyTrace::new(),
            deferred: Vec::new(),
            output,
            work: 0,
        }
    }
}

impl<K: Data, V: Data, W: Data> OpNode for JoinNode<K, V, W> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.slot = slot;
        self.in_a.bind(slot, sched);
        self.in_b.bind(slot, sched);
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let mut batch_a = self.in_a.take_batch();
        let mut batch_b = self.in_b.take_batch();
        if batch_a.is_empty() && batch_b.is_empty() && self.deferred.is_empty() {
            return Ok(());
        }
        consolidate(&mut batch_a);
        consolidate(&mut batch_b);
        self.work += (batch_a.len() + batch_b.len()) as u64;

        let mut staging: Vec<Delta<(K, (V, W))>> = Vec::new();
        let mut pairs = 0u64;
        // New A-differences against B's existing history (both spine
        // layers, iterated in place). B's history does not yet contain
        // this step's B-batch, so each (dA, dB) pair of this step is
        // produced exactly once (below).
        for ((k, v), t1, r1) in &batch_a {
            self.trace_b.for_each(k, |w, t2, r2| {
                pairs += 1;
                staging.push(((k.clone(), (v.clone(), w.clone())), t1.join(t2), r1 * r2));
            });
        }
        for ((k, v), t, r) in batch_a {
            self.trace_a.push(k, v, t, r);
        }
        // New B-differences against A's history *including* this step's
        // A-batch.
        for ((k, w), t2, r2) in &batch_b {
            self.trace_a.for_each(k, |v, t1, r1| {
                pairs += 1;
                staging.push(((k.clone(), (v.clone(), w.clone())), t1.join(*t2), r1 * r2));
            });
        }
        for ((k, w), t, r) in batch_b {
            self.trace_b.push(k, w, t, r);
        }
        self.work += pairs;

        // Release everything due at or before `now`; defer the rest.
        staging.append(&mut self.deferred);
        let (ready, later): (Vec<_>, Vec<_>) =
            staging.into_iter().partition(|(_, t, _)| t.leq(now));
        self.deferred = later;
        let mut ready = ready;
        consolidate(&mut ready);
        self.output.emit(ready);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.in_a.is_empty() || !self.in_b.is_empty()
    }

    fn has_internal_work(&self) -> bool {
        !self.deferred.is_empty()
    }

    fn pending_iter(&self, epoch: u64) -> Option<u32> {
        self.deferred.iter().filter(|(_, t, _)| t.epoch == epoch).map(|(_, t, _)| t.iter).min()
    }

    fn end_epoch(&mut self, epoch: u64) {
        debug_assert!(
            self.deferred.iter().all(|(_, t, _)| t.epoch > epoch),
            "join: deferred output for a completed epoch"
        );
        debug_assert!(!self.has_queued(), "join: input left queued at epoch end");
    }

    fn compact(&mut self, frontier: u64) {
        self.trace_a.compact(frontier);
        self.trace_b.compact(frontier);
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn collect_stats(&self, acc: &mut std::collections::BTreeMap<&'static str, crate::graph::OpStats>) {
        let e = acc.entry(self.name()).or_default();
        e.work += self.work;
        e.queued += self.in_a.len() + self.in_b.len();
        e.trace_records += self.trace_a.len() + self.trace_b.len();
        e.trace_base_records += self.trace_a.base_len() + self.trace_b.base_len();
        e.trace_recent_records += self.trace_a.recent_len() + self.trace_b.recent_len();
        e.pending += self.deferred.len();
    }

    fn name(&self) -> &'static str {
        "join"
    }
}
