//! The differential binary equi-join.
//!
//! `join` maintains a full keyed trace of both inputs. A new difference
//! on either side is matched against the *entire history* of the other
//! side; each match `(dA at t1) × (B at t2)` contributes output at
//! `t1 ∨ t2`. The join of an in-loop time with a historical time can lie
//! at a *future* iteration of the current epoch — those contributions
//! are deferred and surfaced through `pending_iter`, which forces the
//! enclosing loop to revisit exactly the affected iterations.

use crate::delta::{consolidate, Data, Delta};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue};
use crate::time::Time;
use crate::trace::KeyTrace;

pub(crate) struct JoinNode<K: Data, V: Data, W: Data> {
    in_a: Queue<(K, V)>,
    in_b: Queue<(K, W)>,
    trace_a: KeyTrace<K, V>,
    trace_b: KeyTrace<K, W>,
    deferred: Vec<Delta<(K, (V, W))>>,
    output: Fanout<(K, (V, W))>,
    work: u64,
}

impl<K: Data, V: Data, W: Data> JoinNode<K, V, W> {
    pub fn new(in_a: Queue<(K, V)>, in_b: Queue<(K, W)>, output: Fanout<(K, (V, W))>) -> Self {
        JoinNode {
            in_a,
            in_b,
            trace_a: KeyTrace::new(),
            trace_b: KeyTrace::new(),
            deferred: Vec::new(),
            output,
            work: 0,
        }
    }
}

impl<K: Data, V: Data, W: Data> OpNode for JoinNode<K, V, W> {
    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let mut batch_a = std::mem::take(&mut *self.in_a.borrow_mut());
        let mut batch_b = std::mem::take(&mut *self.in_b.borrow_mut());
        if batch_a.is_empty() && batch_b.is_empty() && self.deferred.is_empty() {
            return Ok(());
        }
        consolidate(&mut batch_a);
        consolidate(&mut batch_b);
        self.work += (batch_a.len() + batch_b.len()) as u64;

        let mut staging: Vec<Delta<(K, (V, W))>> = Vec::new();
        // New A-differences against B's existing history. B's history
        // does not yet contain this step's B-batch, so each (dA, dB)
        // pair of this step is produced exactly once (below).
        for ((k, v), t1, r1) in &batch_a {
            for (w, t2, r2) in self.trace_b.history(k) {
                self.work += 1;
                staging.push(((k.clone(), (v.clone(), w.clone())), t1.join(*t2), r1 * r2));
            }
        }
        for ((k, v), t, r) in batch_a {
            self.trace_a.push(k, v, t, r);
        }
        // New B-differences against A's history *including* this step's
        // A-batch.
        for ((k, w), t2, r2) in &batch_b {
            for (v, t1, r1) in self.trace_a.history(k) {
                self.work += 1;
                staging.push(((k.clone(), (v.clone(), w.clone())), t1.join(*t2), r1 * r2));
            }
        }
        for ((k, w), t, r) in batch_b {
            self.trace_b.push(k, w, t, r);
        }

        // Release everything due at or before `now`; defer the rest.
        staging.append(&mut self.deferred);
        let (ready, later): (Vec<_>, Vec<_>) =
            staging.into_iter().partition(|(_, t, _)| t.leq(now));
        self.deferred = later;
        let mut ready = ready;
        consolidate(&mut ready);
        self.output.emit(&ready);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.in_a.borrow().is_empty() || !self.in_b.borrow().is_empty()
    }

    fn pending_iter(&self, epoch: u64) -> Option<u32> {
        self.deferred.iter().filter(|(_, t, _)| t.epoch == epoch).map(|(_, t, _)| t.iter).min()
    }

    fn end_epoch(&mut self, epoch: u64) {
        debug_assert!(
            self.deferred.iter().all(|(_, t, _)| t.epoch > epoch),
            "join: deferred output for a completed epoch"
        );
        debug_assert!(!self.has_queued(), "join: input left queued at epoch end");
    }

    fn compact(&mut self, frontier: u64) {
        self.trace_a.compact(frontier);
        self.trace_b.compact(frontier);
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn collect_stats(&self, acc: &mut std::collections::BTreeMap<&'static str, crate::graph::OpStats>) {
        let e = acc.entry(self.name()).or_default();
        e.work += self.work;
        e.queued += self.in_a.borrow().len() + self.in_b.borrow().len();
        e.trace_records += self.trace_a.len() + self.trace_b.len();
        e.pending += self.deferred.len();
    }

    fn name(&self) -> &'static str {
        "join"
    }
}
