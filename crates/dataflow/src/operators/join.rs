//! The differential binary equi-join, sharded by key.
//!
//! `join` maintains a full keyed trace of both inputs. A new difference
//! on either side is matched against the *entire history* of the other
//! side; each match `(dA at t1) × (B at t2)` contributes output at
//! `t1 ∨ t2`. The join of an in-loop time with a historical time can lie
//! at a *future* iteration of the current epoch — those contributions
//! are deferred and surfaced through `pending_iter`, which forces the
//! enclosing loop to revisit exactly the affected iterations.
//!
//! State is partitioned into [`NUM_SHARDS`] key shards: every trace
//! entry, deferred output and routed batch record for key `k` lives in
//! shard `shard_of(k)`. Matches only ever form within a key — hence
//! within a shard — so the shards are independent and a step can run
//! them as pool tasks (see `graph::run_shards`). Shard outputs are
//! merged in shard order and globally consolidated, which sorts by
//! `(data, time)`; the emitted batch is therefore byte-identical to the
//! single-shard serial result at any worker count.

use std::rc::Rc;

use crate::delta::{consolidate, Data, Delta};
use crate::error::EvalError;
use crate::graph::{run_shards, Fanout, OpNode, Queue, Scheduler, ShardMode, UNBOUND};
use crate::time::Time;
use crate::trace::KeyTrace;
use crate::util::{shard_of, NUM_SHARDS};

/// One key shard: the slice of both traces and the deferred outputs
/// whose keys hash here, plus the exchange inboxes the routing phase
/// fills each step.
struct JoinShard<K: Data, V: Data, W: Data> {
    trace_a: KeyTrace<K, V>,
    trace_b: KeyTrace<K, W>,
    deferred: Vec<JoinDelta<K, V, W>>,
    batch_a: Vec<Delta<(K, V)>>,
    batch_b: Vec<Delta<(K, W)>>,
}

/// An output difference of the join: `(k, (v, w))` with time and diff.
type JoinDelta<K, V, W> = Delta<(K, (V, W))>;

impl<K: Data, V: Data, W: Data> JoinShard<K, V, W> {
    fn new() -> Self {
        JoinShard {
            trace_a: KeyTrace::new(),
            trace_b: KeyTrace::new(),
            deferred: Vec::new(),
            batch_a: Vec::new(),
            batch_b: Vec::new(),
        }
    }

    /// The serial join algorithm, restricted to this shard's keys.
    /// Returns the (unconsolidated) ready outputs and the number of
    /// matched pairs (work measure).
    fn step(&mut self, now: Time) -> (Vec<JoinDelta<K, V, W>>, u64) {
        let batch_a = std::mem::take(&mut self.batch_a);
        let batch_b = std::mem::take(&mut self.batch_b);
        let mut staging: Vec<JoinDelta<K, V, W>> = Vec::new();
        let mut pairs = 0u64;
        // New A-differences against B's existing history (both spine
        // layers, iterated in place). B's history does not yet contain
        // this step's B-batch, so each (dA, dB) pair of this step is
        // produced exactly once (below).
        for ((k, v), t1, r1) in &batch_a {
            self.trace_b.for_each(k, |w, t2, r2| {
                pairs += 1;
                staging.push(((k.clone(), (v.clone(), w.clone())), t1.join(t2), r1 * r2));
            });
        }
        for ((k, v), t, r) in batch_a {
            self.trace_a.push(k, v, t, r);
        }
        // New B-differences against A's history *including* this step's
        // A-batch.
        for ((k, w), t2, r2) in &batch_b {
            self.trace_a.for_each(k, |v, t1, r1| {
                pairs += 1;
                staging.push(((k.clone(), (v.clone(), w.clone())), t1.join(*t2), r1 * r2));
            });
        }
        for ((k, w), t, r) in batch_b {
            self.trace_b.push(k, w, t, r);
        }

        // Release everything due at or before `now`; defer the rest.
        staging.append(&mut self.deferred);
        let (ready, later): (Vec<_>, Vec<_>) =
            staging.into_iter().partition(|(_, t, _)| t.leq(now));
        self.deferred = later;
        (ready, pairs)
    }
}

pub(crate) struct JoinNode<K: Data, V: Data, W: Data> {
    slot: usize,
    sched: Option<Rc<Scheduler>>,
    in_a: Queue<(K, V)>,
    in_b: Queue<(K, W)>,
    shards: Vec<JoinShard<K, V, W>>,
    output: Fanout<(K, (V, W))>,
    work: u64,
    shard_dispatched: u64,
    shard_inlined: u64,
}

impl<K: Data, V: Data, W: Data> JoinNode<K, V, W> {
    pub fn new(in_a: Queue<(K, V)>, in_b: Queue<(K, W)>, output: Fanout<(K, (V, W))>) -> Self {
        JoinNode {
            slot: UNBOUND,
            sched: None,
            in_a,
            in_b,
            shards: (0..NUM_SHARDS).map(|_| JoinShard::new()).collect(),
            output,
            work: 0,
            shard_dispatched: 0,
            shard_inlined: 0,
        }
    }
}

impl<K: Data, V: Data, W: Data> OpNode for JoinNode<K, V, W> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.slot = slot;
        self.sched = Some(Rc::clone(sched));
        self.in_a.bind(slot, sched);
        self.in_b.bind(slot, sched);
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let mut batch_a = self.in_a.take_batch();
        let mut batch_b = self.in_b.take_batch();
        if batch_a.is_empty() && batch_b.is_empty() && !self.has_internal_work() {
            return Ok(());
        }
        consolidate(&mut batch_a);
        consolidate(&mut batch_b);
        let records = batch_a.len() + batch_b.len();
        self.work += records as u64;

        // Exchange: route each delta to the shard owning its key.
        for d in batch_a {
            let s = shard_of(&d.0 .0);
            self.shards[s].batch_a.push(d);
        }
        for d in batch_b {
            let s = shard_of(&d.0 .0);
            self.shards[s].batch_b.push(d);
        }

        let (results, mode) = run_shards(self.sched.as_ref(), records, &mut self.shards, |i, sh| {
            rc_faults::fire_shard(rc_faults::ShardSite::Dataflow, i);
            sh.step(now)
        });
        match mode {
            ShardMode::Dispatched => self.shard_dispatched += 1,
            ShardMode::Inlined => self.shard_inlined += 1,
            ShardMode::Serial => {}
        }

        // Merge in shard order, then consolidate globally: the result
        // is sorted by (data, time) — independent of sharding.
        let mut ready: Vec<Delta<(K, (V, W))>> = Vec::new();
        for (shard_ready, pairs) in results {
            self.work += pairs;
            ready.extend(shard_ready);
        }
        consolidate(&mut ready);
        self.output.emit(ready);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.in_a.is_empty() || !self.in_b.is_empty()
    }

    fn has_internal_work(&self) -> bool {
        self.shards.iter().any(|s| !s.deferred.is_empty())
    }

    fn pending_iter(&self, epoch: u64) -> Option<u32> {
        self.shards
            .iter()
            .flat_map(|s| s.deferred.iter())
            .filter(|(_, t, _)| t.epoch == epoch)
            .map(|(_, t, _)| t.iter)
            .min()
    }

    fn end_epoch(&mut self, epoch: u64) {
        debug_assert!(
            self.shards.iter().all(|s| s.deferred.iter().all(|(_, t, _)| t.epoch > epoch)),
            "join: deferred output for a completed epoch"
        );
        debug_assert!(!self.has_queued(), "join: input left queued at epoch end");
    }

    fn compact(&mut self, frontier: u64) {
        for s in &mut self.shards {
            s.trace_a.compact(frontier);
            s.trace_b.compact(frontier);
        }
    }

    fn trace_sizes(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(b, r), s| {
            (
                b + s.trace_a.base_len() + s.trace_b.base_len(),
                r + s.trace_a.recent_len() + s.trace_b.recent_len(),
            )
        })
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn collect_stats(&self, acc: &mut std::collections::BTreeMap<&'static str, crate::graph::OpStats>) {
        let e = acc.entry(self.name()).or_default();
        e.work += self.work;
        e.queued += self.in_a.len() + self.in_b.len();
        for (i, s) in self.shards.iter().enumerate() {
            let records = s.trace_a.len() + s.trace_b.len();
            e.trace_records += records;
            e.trace_base_records += s.trace_a.base_len() + s.trace_b.base_len();
            e.trace_recent_records += s.trace_a.recent_len() + s.trace_b.recent_len();
            e.pending += s.deferred.len();
            e.shard_records[i] += records;
        }
        e.shard_dispatched += self.shard_dispatched;
        e.shard_inlined += self.shard_inlined;
    }

    fn name(&self) -> &'static str {
        "join"
    }
}
