//! The feedback operator: re-timestamps differences to the next
//! iteration. Only used inside `iterate` scopes, where it closes the
//! loop-variable cycle.

use std::hash::{Hash, Hasher};
use std::rc::Rc;

use crate::delta::{consolidate, Data, Delta};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue, Scheduler, UNBOUND};
use crate::time::Time;
use crate::util::FxHasher;

pub(crate) struct DelayNode<D: Data> {
    slot: usize,
    input: Queue<D>,
    output: Fanout<D>,
    /// Re-timestamped records whose time is still in the future.
    deferred: Vec<Delta<D>>,
    /// Digest of the batch emitted by the most recent step (see
    /// `OpNode::step_digest`).
    last_digest: Option<u64>,
    work: u64,
}

impl<D: Data> DelayNode<D> {
    pub fn new(input: Queue<D>, output: Fanout<D>) -> Self {
        DelayNode { slot: UNBOUND, input, output, deferred: Vec::new(), last_digest: None, work: 0 }
    }
}

/// Order-insensitive, iteration-blind digest of a difference batch:
/// the loop state transition it encodes. Two iterations emitting the
/// same multiset of `(data, diff)` changes get the same digest.
fn digest_of<D: Data>(batch: &[Delta<D>]) -> Option<u64> {
    let mut normalized: Vec<Delta<D>> =
        batch.iter().map(|(d, _t, r)| (d.clone(), crate::time::Time::default(), *r)).collect();
    consolidate(&mut normalized);
    if normalized.is_empty() {
        return None;
    }
    let mut acc: u64 = 0;
    for (d, _, r) in &normalized {
        let mut h = FxHasher::default();
        d.hash(&mut h);
        r.hash(&mut h);
        acc = acc.wrapping_add(h.finish() | 1);
    }
    Some(acc)
}

impl<D: Data> OpNode for DelayNode<D> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.slot = slot;
        self.input.bind(slot, sched);
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let batch = self.input.take_batch();
        self.work += batch.len() as u64;
        for (d, t, r) in batch {
            debug_assert_eq!(t.epoch, now.epoch, "delay: cross-epoch feedback");
            self.deferred.push((d, t.delayed(), r));
        }
        self.last_digest = None;
        if self.deferred.iter().any(|(_, t, _)| t.leq(now)) {
            let (ready, later): (Vec<_>, Vec<_>) =
                std::mem::take(&mut self.deferred).into_iter().partition(|(_, t, _)| t.leq(now));
            self.deferred = later;
            self.last_digest = digest_of(&ready);
            self.output.emit(ready);
        }
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.input.is_empty()
    }

    fn has_internal_work(&self) -> bool {
        !self.deferred.is_empty()
    }

    fn pending_iter(&self, epoch: u64) -> Option<u32> {
        self.deferred.iter().filter(|(_, t, _)| t.epoch == epoch).map(|(_, t, _)| t.iter).min()
    }

    fn end_epoch(&mut self, _epoch: u64) {
        debug_assert!(self.deferred.is_empty(), "delay: deferred records at epoch end");
        debug_assert!(!self.has_queued(), "delay: input left queued at epoch end");
    }

    fn compact(&mut self, _frontier: u64) {}

    fn work(&self) -> u64 {
        self.work
    }

    fn step_digest(&self) -> Option<u64> {
        self.last_digest
    }

    fn name(&self) -> &'static str {
        "delay"
    }
}
