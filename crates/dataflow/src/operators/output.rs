//! Dataflow outputs: client-side views of a collection's changes and
//! accumulated state.

use crate::delta::{consolidate_values, Data, Diff};
use crate::graph::Queue;
use crate::util::FxHashMap;

/// Client-side handle observing a collection.
///
/// After each [`crate::Dataflow::advance`], [`OutputHandle::drain`]
/// returns the net changes of the epoch, and the handle folds them into
/// an accumulated multiset view available via [`OutputHandle::state`].
pub struct OutputHandle<D: Data> {
    queue: Queue<D>,
    state: FxHashMap<D, Diff>,
}

impl<D: Data> OutputHandle<D> {
    pub(crate) fn new(queue: Queue<D>) -> Self {
        OutputHandle { queue, state: FxHashMap::default() }
    }

    /// Net changes since the last `drain`, consolidated (time-erased)
    /// and sorted. Also folds the changes into the accumulated view.
    pub fn drain(&mut self) -> Vec<(D, Diff)> {
        let batch = self.queue.take_batch();
        let mut values: Vec<(D, Diff)> = batch.into_iter().map(|(d, _, r)| (d, r)).collect();
        consolidate_values(&mut values);
        for (d, r) in &values {
            let slot = self.state.entry(d.clone()).or_insert(0);
            *slot += *r;
            if *slot == 0 {
                self.state.remove(d);
            }
        }
        values
    }

    /// The accumulated multiset, sorted. Call [`OutputHandle::drain`]
    /// after each epoch to keep this current.
    pub fn state(&self) -> Vec<(D, Diff)> {
        let mut v: Vec<(D, Diff)> = self.state.iter().map(|(d, r)| (d.clone(), *r)).collect();
        v.sort();
        v
    }

    /// The accumulated *set* view: records with positive multiplicity.
    pub fn state_set(&self) -> Vec<D> {
        let mut v: Vec<D> =
            self.state.iter().filter(|(_, r)| **r > 0).map(|(d, _)| d.clone()).collect();
        v.sort();
        v
    }

    /// Multiplicity of `d` in the accumulated view.
    pub fn count(&self, d: &D) -> Diff {
        self.state.get(d).copied().unwrap_or(0)
    }

    /// Whether `d` is present (positive multiplicity).
    pub fn contains(&self, d: &D) -> bool {
        self.count(d) > 0
    }

    /// Number of distinct records with nonzero multiplicity.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }
}
