//! Dataflow inputs.

use std::cell::RefCell;
use std::rc::Rc;

use crate::delta::{consolidate, Data, Diff};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode};
use crate::time::Time;

type Buffer<D> = Rc<RefCell<Vec<(D, Diff)>>>;

/// Client-side handle to an input collection.
///
/// Changes pushed through the handle are buffered; they all take effect
/// atomically at the next [`crate::Dataflow::advance`].
pub struct InputHandle<D: Data> {
    buffer: Buffer<D>,
}

impl<D: Data> InputHandle<D> {
    /// Add one instance of `d` to the collection.
    pub fn insert(&self, d: D) {
        self.update(d, 1);
    }

    /// Remove one instance of `d` from the collection.
    pub fn remove(&self, d: D) {
        self.update(d, -1);
    }

    /// Change the multiplicity of `d` by `diff`.
    pub fn update(&self, d: D, diff: Diff) {
        if diff != 0 {
            self.buffer.borrow_mut().push((d, diff));
        }
    }

    /// Insert many records at once.
    pub fn extend<I: IntoIterator<Item = D>>(&self, items: I) {
        let mut buf = self.buffer.borrow_mut();
        buf.extend(items.into_iter().map(|d| (d, 1)));
    }

    /// Number of buffered (not yet applied) changes.
    pub fn buffered(&self) -> usize {
        self.buffer.borrow().len()
    }
}

pub(crate) struct InputNode<D: Data> {
    buffer: Buffer<D>,
    output: Fanout<D>,
    work: u64,
}

impl<D: Data> InputNode<D> {
    pub fn new(output: Fanout<D>) -> (InputHandle<D>, Self) {
        let buffer: Buffer<D> = Rc::new(RefCell::new(Vec::new()));
        (InputHandle { buffer: Rc::clone(&buffer) }, InputNode { buffer, output, work: 0 })
    }
}

impl<D: Data> OpNode for InputNode<D> {
    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let batch = std::mem::take(&mut *self.buffer.borrow_mut());
        if batch.is_empty() {
            return Ok(());
        }
        self.work += batch.len() as u64;
        let mut staged: Vec<_> = batch.into_iter().map(|(d, r)| (d, now, r)).collect();
        consolidate(&mut staged);
        self.output.emit(&staged);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        false
    }

    fn pending_iter(&self, _epoch: u64) -> Option<u32> {
        None
    }

    fn end_epoch(&mut self, _epoch: u64) {}

    fn compact(&mut self, _frontier: u64) {}

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "input"
    }
}
