//! Dataflow inputs.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::delta::{consolidate, Data, Diff};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Scheduler, UNBOUND};
use crate::time::Time;

/// Buffer shared between the client-side handle and the input node.
/// Knows the node's scheduler slot so client pushes mark it dirty — the
/// input node is only stepped on epochs where something was buffered.
struct InputShared<D> {
    buffer: RefCell<Vec<(D, Diff)>>,
    slot: Cell<usize>,
    sched: RefCell<Option<Rc<Scheduler>>>,
}

impl<D> InputShared<D> {
    fn mark_dirty(&self) {
        if let Some(sched) = &*self.sched.borrow() {
            sched.mark(self.slot.get());
        }
    }
}

/// Client-side handle to an input collection.
///
/// Changes pushed through the handle are buffered; they all take effect
/// atomically at the next [`crate::Dataflow::advance`].
pub struct InputHandle<D: Data> {
    shared: Rc<InputShared<D>>,
}

impl<D: Data> InputHandle<D> {
    /// Add one instance of `d` to the collection.
    pub fn insert(&self, d: D) {
        self.update(d, 1);
    }

    /// Remove one instance of `d` from the collection.
    pub fn remove(&self, d: D) {
        self.update(d, -1);
    }

    /// Change the multiplicity of `d` by `diff`.
    pub fn update(&self, d: D, diff: Diff) {
        if diff != 0 {
            self.shared.buffer.borrow_mut().push((d, diff));
            self.shared.mark_dirty();
        }
    }

    /// Insert many records at once.
    pub fn extend<I: IntoIterator<Item = D>>(&self, items: I) {
        let mut buf = self.shared.buffer.borrow_mut();
        let before = buf.len();
        buf.extend(items.into_iter().map(|d| (d, 1)));
        if buf.len() > before {
            drop(buf);
            self.shared.mark_dirty();
        }
    }

    /// Number of buffered (not yet applied) changes.
    pub fn buffered(&self) -> usize {
        self.shared.buffer.borrow().len()
    }
}

pub(crate) struct InputNode<D: Data> {
    shared: Rc<InputShared<D>>,
    output: Fanout<D>,
    work: u64,
}

impl<D: Data> InputNode<D> {
    pub fn new(output: Fanout<D>) -> (InputHandle<D>, Self) {
        let shared = Rc::new(InputShared {
            buffer: RefCell::new(Vec::new()),
            slot: Cell::new(UNBOUND),
            sched: RefCell::new(None),
        });
        (InputHandle { shared: Rc::clone(&shared) }, InputNode { shared, output, work: 0 })
    }
}

impl<D: Data> OpNode for InputNode<D> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.shared.slot.set(slot);
        *self.shared.sched.borrow_mut() = Some(Rc::clone(sched));
    }

    fn slot(&self) -> usize {
        self.shared.slot.get()
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let batch = std::mem::take(&mut *self.shared.buffer.borrow_mut());
        if batch.is_empty() {
            return Ok(());
        }
        self.work += batch.len() as u64;
        let mut staged: Vec<_> = batch.into_iter().map(|(d, r)| (d, now, r)).collect();
        consolidate(&mut staged);
        self.output.emit(staged);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        false
    }

    fn pending_iter(&self, _epoch: u64) -> Option<u32> {
        None
    }

    fn end_epoch(&mut self, _epoch: u64) {}

    fn compact(&mut self, _frontier: u64) {}

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "input"
    }
}
