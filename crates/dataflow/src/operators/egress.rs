//! Loop egress: erases the iteration component of timestamps, handing a
//! fixpoint's differences back to the enclosing scope.
//!
//! Differences are buffered for the duration of the loop and released
//! consolidated when the scope signals completion — intermediate
//! iterations routinely produce differences that cancel (a value
//! improved twice), and downstream operators should not see that churn.

use crate::delta::{consolidate, Data, Delta};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue};
use crate::time::Time;

pub(crate) struct EgressNode<D: Data> {
    input: Queue<D>,
    output: Fanout<D>,
    buffer: Vec<Delta<D>>,
    work: u64,
}

impl<D: Data> EgressNode<D> {
    pub fn new(input: Queue<D>, output: Fanout<D>) -> Self {
        EgressNode { input, output, buffer: Vec::new(), work: 0 }
    }
}

impl<D: Data> OpNode for EgressNode<D> {
    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let batch = std::mem::take(&mut *self.input.borrow_mut());
        self.work += batch.len() as u64;
        for (d, t, r) in batch {
            debug_assert!(t.leq(now), "egress: late record");
            self.buffer.push((d, t.outer(), r));
        }
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.input.borrow().is_empty()
    }

    fn pending_iter(&self, _epoch: u64) -> Option<u32> {
        // Buffered output is not pending loop work: it leaves the loop.
        None
    }

    fn flush_scope(&mut self, _epoch: u64) {
        consolidate(&mut self.buffer);
        self.output.emit(&self.buffer);
        self.buffer.clear();
    }

    fn end_epoch(&mut self, _epoch: u64) {
        debug_assert!(self.buffer.is_empty(), "egress: buffer not flushed at epoch end");
    }

    fn compact(&mut self, _frontier: u64) {}

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "egress"
    }
}
