//! Loop egress: erases the iteration component of timestamps, handing a
//! fixpoint's differences back to the enclosing scope.
//!
//! Differences are buffered for the duration of the loop and released
//! consolidated when the scope signals completion — intermediate
//! iterations routinely produce differences that cancel (a value
//! improved twice), and downstream operators should not see that churn.

use std::rc::Rc;

use crate::delta::{consolidate, Data, Delta};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue, Scheduler, UNBOUND};
use crate::time::Time;

pub(crate) struct EgressNode<D: Data> {
    slot: usize,
    input: Queue<D>,
    output: Fanout<D>,
    buffer: Vec<Delta<D>>,
    work: u64,
}

impl<D: Data> EgressNode<D> {
    pub fn new(input: Queue<D>, output: Fanout<D>) -> Self {
        EgressNode { slot: UNBOUND, input, output, buffer: Vec::new(), work: 0 }
    }
}

impl<D: Data> OpNode for EgressNode<D> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.slot = slot;
        self.input.bind(slot, sched);
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let batch = self.input.take_batch();
        self.work += batch.len() as u64;
        for (d, t, r) in batch {
            debug_assert!(t.leq(now), "egress: late record");
            self.buffer.push((d, t.outer(), r));
        }
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.input.is_empty()
    }

    fn pending_iter(&self, _epoch: u64) -> Option<u32> {
        // Buffered output is not pending loop work: it leaves the loop.
        None
    }

    fn flush_scope(&mut self, _epoch: u64) {
        consolidate(&mut self.buffer);
        self.output.emit(std::mem::take(&mut self.buffer));
    }

    fn end_epoch(&mut self, _epoch: u64) {
        debug_assert!(self.buffer.is_empty(), "egress: buffer not flushed at epoch end");
    }

    fn compact(&mut self, _frontier: u64) {}

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "egress"
    }
}
