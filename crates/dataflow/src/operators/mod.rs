//! Operator implementations.
//!
//! Operators fall into three groups:
//!
//! * **stateless / linear**: `map`, `filter`, `flat_map`, `negate`,
//!   `inspect`, `concat` — differences pass straight through;
//! * **stateful**: `join` and `reduce` keep full keyed difference
//!   traces so they can emit *corrections* when inputs change;
//! * **structural**: input, output, and the `iterate` scope machinery
//!   (feedback delay, egress, and the scope driver itself).

pub(crate) mod concat;
pub(crate) mod delay;
pub(crate) mod egress;
pub(crate) mod input;
pub(crate) mod join;
pub(crate) mod linear;
pub(crate) mod output;
pub(crate) mod reduce;
pub(crate) mod scope;

pub use input::InputHandle;
pub use output::OutputHandle;
