//! Multiset union of any number of collections.

use std::rc::Rc;

use crate::delta::{consolidate, Data};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue, Scheduler, UNBOUND};
use crate::time::Time;

pub(crate) struct ConcatNode<D: Data> {
    slot: usize,
    inputs: Vec<Queue<D>>,
    output: Fanout<D>,
    work: u64,
}

impl<D: Data> ConcatNode<D> {
    pub fn new(inputs: Vec<Queue<D>>, output: Fanout<D>) -> Self {
        ConcatNode { slot: UNBOUND, inputs, output, work: 0 }
    }
}

impl<D: Data> OpNode for ConcatNode<D> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.slot = slot;
        for q in &self.inputs {
            q.bind(slot, sched);
        }
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let mut staging = Vec::new();
        for q in &self.inputs {
            let mut batch = q.take_batch();
            if staging.is_empty() {
                staging = batch;
            } else {
                staging.append(&mut batch);
            }
        }
        if staging.is_empty() {
            return Ok(());
        }
        debug_assert!(staging.iter().all(|(_, t, _)| t.leq(now)), "concat: late record");
        self.work += staging.len() as u64;
        consolidate(&mut staging);
        self.output.emit(staging);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        self.inputs.iter().any(|q| !q.is_empty())
    }

    fn pending_iter(&self, _epoch: u64) -> Option<u32> {
        None
    }

    fn end_epoch(&mut self, _epoch: u64) {
        debug_assert!(!self.has_queued(), "concat: input left queued");
    }

    fn compact(&mut self, _frontier: u64) {}

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "concat"
    }
}
