//! Multiset union of any number of collections.

use crate::delta::{consolidate, Data};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue};
use crate::time::Time;

pub(crate) struct ConcatNode<D: Data> {
    inputs: Vec<Queue<D>>,
    output: Fanout<D>,
    work: u64,
}

impl<D: Data> ConcatNode<D> {
    pub fn new(inputs: Vec<Queue<D>>, output: Fanout<D>) -> Self {
        ConcatNode { inputs, output, work: 0 }
    }
}

impl<D: Data> OpNode for ConcatNode<D> {
    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let mut staging = Vec::new();
        for q in &self.inputs {
            staging.append(&mut q.borrow_mut());
        }
        if staging.is_empty() {
            return Ok(());
        }
        debug_assert!(staging.iter().all(|(_, t, _)| t.leq(now)), "concat: late record");
        self.work += staging.len() as u64;
        consolidate(&mut staging);
        self.output.emit(&staging);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        self.inputs.iter().any(|q| !q.borrow().is_empty())
    }

    fn pending_iter(&self, _epoch: u64) -> Option<u32> {
        None
    }

    fn end_epoch(&mut self, _epoch: u64) {
        debug_assert!(!self.has_queued(), "concat: input left queued");
    }

    fn compact(&mut self, _frontier: u64) {}

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "concat"
    }
}
